"""Minimal transaction model for the chain substrate.

The fairness analysis itself never needs transactions — rewards alone
determine the mining game — but a blockchain substrate without a
ledger would be a hollow shell, and transaction fees are a classic
source of proposer income.  This module keeps the model deliberately
small: value transfers with fees and per-sender nonces, validated
against account balances.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["Transaction"]


@dataclass(frozen=True)
class Transaction:
    """A signed value transfer.

    Attributes
    ----------
    sender / recipient:
        Account addresses (opaque strings; "signatures" are assumed
        valid — cryptography is out of scope, see DESIGN.md).
    amount:
        Value transferred (positive).
    fee:
        Fee paid to the including block's proposer (non-negative).
    nonce:
        Per-sender sequence number preventing replay.
    """

    sender: str
    recipient: str
    amount: float
    fee: float = 0.0
    nonce: int = 0

    def __post_init__(self) -> None:
        if not self.sender or not self.recipient:
            raise ValueError("sender and recipient must be non-empty")
        if self.sender == self.recipient:
            raise ValueError("self-transfers are not allowed")
        if self.amount <= 0.0:
            raise ValueError(f"amount must be positive, got {self.amount!r}")
        if self.fee < 0.0:
            raise ValueError(f"fee must be non-negative, got {self.fee!r}")
        if self.nonce < 0:
            raise ValueError(f"nonce must be non-negative, got {self.nonce!r}")

    @property
    def total_debit(self) -> float:
        """Amount leaving the sender's account (amount + fee)."""
        return self.amount + self.fee

    def key(self) -> tuple:
        """Stable identity used for deduplication in the mempool."""
        return (self.sender, self.nonce)
