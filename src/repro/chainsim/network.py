"""Network engines: the simulated clock and block-race resolution.

Three engines matching the three interaction styles of the protocols:

* :class:`TickMiningNetwork` — PoW and ML-PoS: advance a discrete
  clock, every node attempts its lottery each tick, simultaneous
  winners are resolved by lowest digest (the substrate's stand-in for
  the propagation race), difficulty retargets on a window.
* :class:`DeadlineMiningNetwork` — SL-PoS and FSL-PoS: event-driven;
  each block deterministically schedules every node's next proposal
  deadline and the earliest wins.
* :class:`CPoSNetwork` — C-PoS: epoch-driven committee election with
  per-shard proposer blocks and proportional attester inflation.

Every engine exposes ``income_series(addresses)`` — cumulative income
per address after each round — which is what the fairness harness
consumes.

Each engine has two bit-identical execution paths selected by the
``fast`` flag (mirroring the Monte Carlo engine's
``kernel="batched" | "naive"`` knob):

* ``fast=True`` (default) keeps hot state in preallocated NumPy
  income/issuance ledgers (:class:`_ArrayIncomeTracker`) and draws
  lottery digests through the hash oracle's batched-prefix interface
  (:class:`SharedRoundDraws`), so the per-round cost is dominated by
  the unavoidable SHA-256 tail updates instead of re-keyed hashing and
  dict bookkeeping;
* ``fast=False`` is the original per-round object loop, kept verbatim
  as the differential-test reference.
"""

from __future__ import annotations

import math

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from .._validation import ensure_positive_float, ensure_positive_int
from ..obs.trace import get_tracer
from .block import Block, fast_block
from .chain import Blockchain
from .c_pos_node import CPoSCommittee, CPoSValidator
from .difficulty import DifficultyAdjuster
from .hash_oracle import HASH_SPACE, HashOracle
from .mempool import Mempool
from .ml_pos_node import MLPoSNode
from .node import MiningNode
from .pow_node import PoWNode
from .sl_pos_node import FSLPoSNode, SLPoSNode


def _resolve_fast_method(node, stock_types, naive_name, fast_name):
    """The per-round method the fast loops may safely call on ``node``.

    Mirrors the kernel registry's exact-type doctrine: the batched-draw
    method is trusted for exact stock types and for classes that
    *explicitly* define their own fast method (including the base
    delegator).  A subclass that overrides the naive method while
    inheriting a stock fast implementation would silently diverge, so
    it gets the naive method instead.
    """
    cls = type(node)
    fast = getattr(node, fast_name)
    if cls in stock_types:
        return fast
    stock_fast = {getattr(stock, fast_name) for stock in stock_types}
    if getattr(cls, fast_name) not in stock_fast:
        # Explicit override or the MiningNode delegator — both honor
        # the bit-identity contract by definition.
        return fast
    naive = getattr(node, naive_name)

    def call_naive(chain, *args):
        # Same signature as the fast method; the trailing shared-draws
        # argument is dropped.
        return naive(chain, *args[:-1])

    return call_naive

__all__ = [
    "SharedRoundDraws",
    "TickMiningNetwork",
    "DeadlineMiningNetwork",
    "CPoSNetwork",
]


class SharedRoundDraws:
    """Per-round cache of oracle encodings shared across nodes.

    Built once per tick (tick networks) or per block (deadline
    networks) and handed to every node's ``fast_*`` method, so the
    encodings of the fields all nodes hash this round — the tick, the
    parent hash — are computed once instead of once per node, and the
    common digest prefix of the tick lottery is hashed once.

    Everything is lazy: a node type only pays for the pieces it reads.
    """

    __slots__ = (
        "oracle",
        "parent_hash",
        "parent_timestamp",
        "tick",
        "_parent_chunk",
        "_tick_parent_prefix",
    )

    def __init__(
        self,
        oracle: HashOracle,
        parent_hash: int,
        parent_timestamp: float = 0.0,
        tick: Optional[int] = None,
    ) -> None:
        self.oracle = oracle
        self.parent_hash = parent_hash
        self.parent_timestamp = parent_timestamp
        self.tick = tick
        self._parent_chunk: Optional[bytes] = None
        self._tick_parent_prefix = None

    def parent_chunk(self) -> bytes:
        """Wire encoding of the parent hash (cached)."""
        chunk = self._parent_chunk
        if chunk is None:
            chunk = self._parent_chunk = HashOracle.chunk(self.parent_hash)
        return chunk

    def tick_parent_prefix(self):
        """Pre-hashed ``key + tick + parent`` digest prefix (cached).

        The shared head of every ML-PoS lottery digest this tick;
        finish a copy with a node's address chunk.
        """
        prefix = self._tick_parent_prefix
        if prefix is None:
            prefix = self.oracle.prefix()
            prefix.update(HashOracle.chunk(self.tick))
            prefix.update(self.parent_chunk())
            self._tick_parent_prefix = prefix
        return prefix


class _IncomeTracker:
    """Cumulative per-round income bookkeeping shared by the engines.

    The dict-of-lists reference implementation, used by the
    ``fast=False`` paths; :class:`_ArrayIncomeTracker` is its
    bit-identical preallocated-NumPy twin.
    """

    def __init__(self, addresses: Sequence[str]) -> None:
        self._addresses = list(addresses)
        self._totals: Dict[str, float] = {a: 0.0 for a in self._addresses}
        self._history: Dict[str, List[float]] = {a: [] for a in self._addresses}
        self.total_issued_history: List[float] = []
        self._total_issued = 0.0

    def reserve(self, rounds: int) -> None:
        """Capacity hint; the list-backed tracker ignores it."""

    def record_round(self, incomes: Dict[str, float]) -> None:
        for address, amount in incomes.items():
            if address in self._totals:
                self._totals[address] += amount
            self._total_issued += amount
        for address in self._addresses:
            self._history[address].append(self._totals[address])
        self.total_issued_history.append(self._total_issued)

    def record_single(self, address: str, amount: float) -> None:
        """Record a round in which one address earned everything."""
        self.record_round({address: amount})

    def record_amounts(self, amounts: Sequence[float]) -> None:
        """Record a round of per-address incomes, in address order."""
        self.record_round(dict(zip(self._addresses, amounts)))

    def income_series(self, addresses: Sequence[str]) -> Dict[str, List[float]]:
        return {a: list(self._history[a]) for a in addresses}

    def ledgers(self, addresses: Sequence[str]) -> Tuple[np.ndarray, np.ndarray]:
        """``(history, issued)`` arrays: cumulative income per round and
        address (rounds x len(addresses), columns in ``addresses``
        order) and total issuance per round."""
        history = np.array(
            [self._history[a] for a in addresses], dtype=np.float64
        ).T.reshape(len(self.total_issued_history), len(addresses))
        issued = np.array(self.total_issued_history, dtype=np.float64)
        return history, issued


class _ArrayIncomeTracker:
    """Preallocated NumPy income/issuance ledgers.

    Bit-identical to :class:`_IncomeTracker`: every recorded amount is
    added to the same running total with one IEEE double addition, and
    the network-wide issuance accumulates in the same per-address
    order; only the storage (preallocated arrays vs dicts of growing
    lists) differs.
    """

    def __init__(self, addresses: Sequence[str]) -> None:
        self._addresses = list(addresses)
        self._index = {a: i for i, a in enumerate(self._addresses)}
        width = len(self._addresses)
        self._totals = np.zeros(width, dtype=np.float64)
        self._history = np.empty((0, width), dtype=np.float64)
        self._issued = np.empty(0, dtype=np.float64)
        self._rounds = 0
        self._total_issued = 0.0

    def reserve(self, rounds: int) -> None:
        """Ensure capacity for ``rounds`` more recorded rounds."""
        needed = self._rounds + rounds
        capacity = self._issued.shape[0]
        if needed <= capacity:
            return
        capacity = max(needed, 2 * capacity, 64)
        history = np.empty((capacity, self._totals.shape[0]), dtype=np.float64)
        history[: self._rounds] = self._history[: self._rounds]
        issued = np.empty(capacity, dtype=np.float64)
        issued[: self._rounds] = self._issued[: self._rounds]
        self._history = history
        self._issued = issued

    def _commit_row(self) -> None:
        if self._rounds == self._issued.shape[0]:
            self.reserve(1)
        row = self._rounds
        self._history[row] = self._totals
        self._issued[row] = self._total_issued
        self._rounds = row + 1

    def record_single(self, address: str, amount: float) -> None:
        """Record a round in which one address earned everything."""
        index = self._index.get(address)
        if index is not None:
            self._totals[index] += amount
        self._total_issued += amount
        self._commit_row()

    def record_amounts(self, amounts: Sequence[float]) -> None:
        """Record a round of per-address incomes, in address order."""
        totals = self._totals
        total_issued = self._total_issued
        for index, amount in enumerate(amounts):
            totals[index] += amount
            total_issued += amount
        self._total_issued = total_issued
        self._commit_row()

    def record_round(self, incomes: Dict[str, float]) -> None:
        """Record a round of per-address incomes keyed by address.

        Same accumulation order as :meth:`_IncomeTracker.record_round`
        (dict insertion order; unknown addresses count toward issuance
        only), so the naive engine bodies can run on this tracker too.
        """
        index = self._index
        totals = self._totals
        total_issued = self._total_issued
        for address, amount in incomes.items():
            position = index.get(address)
            if position is not None:
                totals[position] += amount
            total_issued += amount
        self._total_issued = total_issued
        self._commit_row()

    @property
    def total_issued_history(self) -> List[float]:
        return self._issued[: self._rounds].tolist()

    def income_series(self, addresses: Sequence[str]) -> Dict[str, List[float]]:
        history = self._history
        rounds = self._rounds
        return {
            a: history[:rounds, self._index[a]].tolist() for a in addresses
        }

    def ledgers(self, addresses: Sequence[str]) -> Tuple[np.ndarray, np.ndarray]:
        """See :meth:`_IncomeTracker.ledgers`; array slices, no copies
        beyond the column selection."""
        columns = [self._index[a] for a in addresses]
        return (
            self._history[: self._rounds][:, columns],
            self._issued[: self._rounds],
        )


def _make_tracker(addresses: Sequence[str], fast: bool):
    return _ArrayIncomeTracker(addresses) if fast else _IncomeTracker(addresses)


class TickMiningNetwork:
    """Discrete-clock mining for PoW / ML-PoS nodes.

    Parameters
    ----------
    chain:
        The shared ledger.
    nodes:
        Tick-mining nodes (must implement ``try_propose``).
    adjuster:
        Difficulty controller.
    block_reward:
        Subsidy per block.
    mempool / max_txs_per_block:
        Optional transaction inclusion.
    max_ticks_per_block:
        Safety valve: raise instead of looping forever when the
        difficulty is impossibly low.
    fast:
        Use the batched-draw loop with NumPy ledgers (default); False
        runs the original per-object loop.  Bit-identical either way.
    """

    def __init__(
        self,
        chain: Blockchain,
        nodes: Sequence[MiningNode],
        adjuster: DifficultyAdjuster,
        block_reward: float,
        *,
        mempool: Optional[Mempool] = None,
        max_txs_per_block: int = 100,
        max_ticks_per_block: int = 1_000_000,
        fast: bool = True,
    ) -> None:
        if not nodes:
            raise ValueError("need at least one node")
        self.chain = chain
        self.nodes = list(nodes)
        self.adjuster = adjuster
        self.block_reward = ensure_positive_float("block_reward", block_reward)
        self.mempool = mempool
        self.max_txs_per_block = ensure_positive_int(
            "max_txs_per_block", max_txs_per_block
        )
        self.max_ticks_per_block = ensure_positive_int(
            "max_ticks_per_block", max_ticks_per_block
        )
        self.fast = bool(fast)
        self.tick = 0
        # Exact-type specialization (mirroring the kernel registry's
        # exact-type rule): a subclass may override try_propose, so the
        # fully inlined ML-PoS race only engages for stock nodes on one
        # shared oracle; anything else takes the generic fast loop.
        self._ml_homogeneous = all(
            type(node) is MLPoSNode for node in self.nodes
        ) and len({id(node.oracle) for node in self.nodes}) == 1
        self._propose_calls = [
            (
                _resolve_fast_method(
                    node, (MLPoSNode, PoWNode),
                    "try_propose", "fast_try_propose",
                ),
                node,
            )
            for node in self.nodes
        ]
        self._tracker = _make_tracker([n.address for n in self.nodes], self.fast)

    def _seal_block(
        self, digest: int, winner: MiningNode, trusted: bool = False
    ) -> Block:
        """Shared block assembly: transactions, append, retarget, record.

        ``trusted`` (fast paths only) takes the validation-free append
        when there is no mempool — the block is transaction-less and
        built from the tip, so every checked property holds by
        construction.
        """
        if trusted and self.mempool is None:
            block = fast_block(
                height=self.chain.height + 1,
                parent_hash=self.chain.tip.block_hash,
                block_hash=digest,
                proposer=winner.address,
                timestamp=float(self.tick),
                reward=self.block_reward,
            )
            self.chain.append_trusted(block)
            self.adjuster.observe_block(block.timestamp)
            # No mempool: total_fees is exactly zero, so the recorded
            # income is the bare subsidy.
            self._tracker.record_single(winner.address, self.block_reward)
            return block
        transactions = (
            tuple(self.mempool.take(self.max_txs_per_block))
            if self.mempool is not None
            else ()
        )
        block = Block(
            height=self.chain.height + 1,
            parent_hash=self.chain.tip.block_hash,
            block_hash=digest,
            proposer=winner.address,
            timestamp=float(self.tick),
            reward=self.block_reward,
            transactions=transactions,
        )
        self.chain.append(block)
        self.adjuster.observe_block(block.timestamp)
        self._tracker.record_single(
            winner.address, self.block_reward + block.total_fees
        )
        return block

    def mine_block(self) -> Block:
        """Advance ticks until some node wins the lottery; append the block."""
        if self.fast:
            return self._mine_block_fast()
        ticks_waited = 0
        while True:
            self.tick += 1
            ticks_waited += 1
            if ticks_waited > self.max_ticks_per_block:
                raise RuntimeError(
                    "no block found within max_ticks_per_block; "
                    "difficulty is too low"
                )
            candidates: List[Tuple[int, MiningNode]] = []
            for node in self.nodes:
                digest = node.try_propose(self.chain, self.tick, self.adjuster.difficulty)
                if digest is not None:
                    candidates.append((digest, node))
            if not candidates:
                continue
            digest, winner = min(candidates, key=lambda item: item[0])
            return self._seal_block(digest, winner)

    def _mine_block_fast(self) -> Block:
        """The batched-draw tick loop: per-tick shared encodings, one
        common digest prefix, candidate race identical to the naive
        loop (lowest digest wins, earlier node on ties)."""
        if self._ml_homogeneous:
            return self._mine_block_ml_pos()
        chain = self.chain
        nodes = self.nodes
        oracle = nodes[0].oracle
        ticks_waited = 0
        while True:
            self.tick += 1
            ticks_waited += 1
            if ticks_waited > self.max_ticks_per_block:
                raise RuntimeError(
                    "no block found within max_ticks_per_block; "
                    "difficulty is too low"
                )
            tick = self.tick
            tip = chain.tip
            shared = SharedRoundDraws(oracle, tip.block_hash, tip.timestamp, tick)
            difficulty = self.adjuster.difficulty
            best_digest: Optional[int] = None
            winner: Optional[MiningNode] = None
            for propose, node in self._propose_calls:
                digest = propose(chain, tick, difficulty, shared)
                if digest is not None and (
                    best_digest is None or digest < best_digest
                ):
                    best_digest = digest
                    winner = node
            if winner is None:
                continue
            return self._seal_block(best_digest, winner, trusted=True)

    def _mine_block_ml_pos(self) -> Block:
        """Fully inlined ML-PoS race for stock nodes on one oracle.

        Within a block, balances and difficulty are frozen (both change
        only when a block seals), so each node's success threshold is
        hoisted out of the tick loop; every tick then costs one shared
        ``key+tick+parent`` prefix hash plus one hasher-copy/finalize
        per node.  Digest values, thresholds and the lowest-digest
        tie-break all replicate :meth:`MLPoSNode.try_propose` exactly
        (a zero-stake node's threshold of 0 can never beat a
        non-negative digest, matching its early ``None``).
        """
        chain = self.chain
        nodes = self.nodes
        oracle = nodes[0].oracle
        difficulty = self.adjuster.difficulty
        if difficulty <= 0.0:
            # The naive loop raises from the first node's try_propose,
            # after the tick has advanced; replicate that state.
            self.tick += 1
            raise ValueError("difficulty must be positive")
        targets = []
        for node in nodes:
            stake = chain.balance(node.address)
            targets.append(
                min(int(difficulty * stake), HASH_SPACE) if stake > 0.0 else 0
            )
        node_race = list(zip(targets, [n._address_chunk for n in nodes], nodes))
        parent_chunk = HashOracle.chunk(chain.tip.block_hash)
        from_bytes = int.from_bytes
        ticks_waited = 0
        while True:
            self.tick += 1
            ticks_waited += 1
            if ticks_waited > self.max_ticks_per_block:
                raise RuntimeError(
                    "no block found within max_ticks_per_block; "
                    "difficulty is too low"
                )
            tick = self.tick
            prefix = oracle.prefix()
            prefix.update(HashOracle.chunk(tick))
            prefix.update(parent_chunk)
            best_digest: Optional[int] = None
            winner: Optional[MiningNode] = None
            for target, address_chunk, node in node_race:
                hasher = prefix.copy()
                hasher.update(address_chunk)
                digest = from_bytes(hasher.digest(), "big")
                if digest < target and (
                    best_digest is None or digest < best_digest
                ):
                    best_digest = digest
                    winner = node
            if winner is None:
                continue
            return self._seal_block(best_digest, winner, trusted=True)

    def run(self, blocks: int) -> None:
        """Mine ``blocks`` consecutive blocks."""
        blocks = ensure_positive_int("blocks", blocks)
        tracer = get_tracer()
        if tracer.enabled:
            with tracer.span(
                "chainsim.run",
                network=type(self).__name__,
                rounds=blocks,
                fast=self.fast,
            ):
                self._run(blocks)
        else:
            self._run(blocks)

    def _run(self, blocks: int) -> None:
        self._tracker.reserve(blocks)
        for _ in range(blocks):
            self.mine_block()

    def income_series(self, addresses: Sequence[str]) -> Dict[str, List[float]]:
        """Cumulative income per address after each block."""
        return self._tracker.income_series(addresses)

    def total_issued_series(self) -> List[float]:
        """Total rewards issued network-wide after each block."""
        return list(self._tracker.total_issued_history)

    def ledgers(self, addresses: Sequence[str]) -> Tuple[np.ndarray, np.ndarray]:
        """Cumulative income and issuance ledgers as arrays."""
        return self._tracker.ledgers(addresses)


class DeadlineMiningNetwork:
    """Event-driven deadline mining for SL-PoS / FSL-PoS nodes."""

    def __init__(
        self,
        chain: Blockchain,
        nodes: Sequence[MiningNode],
        block_reward: float,
        *,
        basetime: float = 60.0,
        mempool: Optional[Mempool] = None,
        max_txs_per_block: int = 100,
        fast: bool = True,
    ) -> None:
        if not nodes:
            raise ValueError("need at least one node")
        self.chain = chain
        self.nodes = list(nodes)
        self.block_reward = ensure_positive_float("block_reward", block_reward)
        self.basetime = ensure_positive_float("basetime", basetime)
        self.mempool = mempool
        self.max_txs_per_block = ensure_positive_int(
            "max_txs_per_block", max_txs_per_block
        )
        self.fast = bool(fast)
        self._block_prefix = None
        # Exact-type specialization, as in TickMiningNetwork: the fully
        # inlined deadline race only engages for homogeneous stock
        # SL/FSL nodes on one shared oracle.
        node_types = {type(node) for node in self.nodes}
        self._deadline_exponential: Optional[bool] = None
        if len(node_types) == 1 and len(
            {id(node.oracle) for node in self.nodes}
        ) == 1:
            if node_types == {SLPoSNode}:
                self._deadline_exponential = False
            elif node_types == {FSLPoSNode}:
                self._deadline_exponential = True
        self._deadline_calls = [
            (
                _resolve_fast_method(
                    node, (SLPoSNode, FSLPoSNode),
                    "proposal_deadline", "fast_proposal_deadline",
                ),
                node,
            )
            for node in self.nodes
        ]
        self._tracker = _make_tracker([n.address for n in self.nodes], self.fast)

    def _winner_digest(self, winner: MiningNode, shared=None) -> int:
        """The accepted block's hash (same formula on both paths)."""
        tip_hash = self.chain.tip.block_hash
        if shared is not None and winner.oracle is shared.oracle:
            prefix = self._block_prefix
            if prefix is None:
                prefix = self._block_prefix = shared.oracle.prefix("block")
            tail = HashOracle.digest_tail(
                prefix, winner._address_chunk, shared.parent_chunk()
            )
        else:
            tail = winner.oracle.digest("block", winner.address, tip_hash)
        return tip_hash + 1 + tail % (1 << 64)

    def _seal_block(
        self,
        deadline: float,
        winner: MiningNode,
        shared=None,
        trusted: bool = False,
    ) -> Block:
        if trusted and self.mempool is None:
            # Stock-node fast path: the deadline extends the tip by a
            # non-negative wait and there are no transactions, so every
            # validated property holds by construction.
            block = fast_block(
                height=self.chain.height + 1,
                parent_hash=self.chain.tip.block_hash,
                block_hash=self._winner_digest(winner, shared),
                proposer=winner.address,
                timestamp=deadline,
                reward=self.block_reward,
            )
            self.chain.append_trusted(block)
            self._tracker.record_single(winner.address, self.block_reward)
            return block
        transactions = (
            tuple(self.mempool.take(self.max_txs_per_block))
            if self.mempool is not None
            else ()
        )
        block = Block(
            height=self.chain.height + 1,
            parent_hash=self.chain.tip.block_hash,
            block_hash=self._winner_digest(winner, shared),
            proposer=winner.address,
            timestamp=deadline,
            reward=self.block_reward,
            transactions=transactions,
        )
        self.chain.append(block)
        self._tracker.record_single(
            winner.address, self.block_reward + block.total_fees
        )
        return block

    def _mine_block_deadline_fast(self) -> Block:
        """Fully inlined deadline race for homogeneous SL/FSL nodes.

        Replicates the naive ``min((deadline, address, node))`` tuple
        race — strict deadline comparison, address tie-break — with the
        per-node hash reduced to one cached-prefix copy/finalize and
        the deadline arithmetic evaluated in the nodes' exact
        expression order.
        """
        chain = self.chain
        tip = chain.tip
        tip_timestamp = tip.timestamp
        basetime = self.basetime
        exponential = self._deadline_exponential
        shared = SharedRoundDraws(
            self.nodes[0].oracle, tip.block_hash, tip_timestamp
        )
        tip_chunk = shared.parent_chunk()
        from_bytes = int.from_bytes
        log1p = math.log1p
        inf = math.inf
        best: Optional[float] = None
        best_address: Optional[str] = None
        winner: Optional[MiningNode] = None
        for node in self.nodes:
            stake = chain.balance(node.address)
            if stake <= 0.0:
                deadline = inf
            else:
                prefix = node._deadline_prefix
                if prefix is None:
                    prefix = node._deadline_prefix = node.oracle.prefix(
                        node.address
                    )
                # Inlined HashOracle.fraction_tail (hot: per node
                # per block) — same copy/update/finalize and 53-bit map.
                hasher = prefix.copy()
                hasher.update(tip_chunk)
                u = (from_bytes(hasher.digest(), "big") >> 203) / 9007199254740992.0
                if exponential:
                    deadline = tip_timestamp + basetime * (-log1p(-u)) / stake
                else:
                    deadline = tip_timestamp + basetime * u / stake
            if (
                winner is None
                or deadline < best
                or (deadline == best and node.address < best_address)
            ):
                best = deadline
                best_address = node.address
                winner = node
        if best == inf:
            raise RuntimeError("no node can propose (all stakes are zero)")
        return self._seal_block(best, winner, shared, trusted=True)

    def mine_block(self) -> Block:
        """Resolve the deadline race for the next block and append it."""
        if self.fast:
            if self._deadline_exponential is not None:
                return self._mine_block_deadline_fast()
            tip = self.chain.tip
            shared = SharedRoundDraws(
                self.nodes[0].oracle, tip.block_hash, tip.timestamp
            )
            deadlines = [
                (
                    propose(self.chain, self.basetime, shared),
                    node.address,
                    node,
                )
                for propose, node in self._deadline_calls
            ]
            deadline, _, winner = min(deadlines)
            if deadline == float("inf"):
                raise RuntimeError("no node can propose (all stakes are zero)")
            return self._seal_block(deadline, winner, shared)
        deadlines: List[Tuple[float, str, MiningNode]] = []
        for node in self.nodes:
            deadline = node.proposal_deadline(self.chain, self.basetime)
            deadlines.append((deadline, node.address, node))
        deadline, _, winner = min(deadlines)
        if deadline == float("inf"):
            raise RuntimeError("no node can propose (all stakes are zero)")
        return self._seal_block(deadline, winner)

    def run(self, blocks: int) -> None:
        """Mine ``blocks`` consecutive blocks."""
        blocks = ensure_positive_int("blocks", blocks)
        tracer = get_tracer()
        if tracer.enabled:
            with tracer.span(
                "chainsim.run",
                network=type(self).__name__,
                rounds=blocks,
                fast=self.fast,
            ):
                self._run(blocks)
        else:
            self._run(blocks)

    def _run(self, blocks: int) -> None:
        self._tracker.reserve(blocks)
        for _ in range(blocks):
            self.mine_block()

    def income_series(self, addresses: Sequence[str]) -> Dict[str, List[float]]:
        """Cumulative income per address after each block."""
        return self._tracker.income_series(addresses)

    def total_issued_series(self) -> List[float]:
        """Total rewards issued network-wide after each block."""
        return list(self._tracker.total_issued_history)

    def ledgers(self, addresses: Sequence[str]) -> Tuple[np.ndarray, np.ndarray]:
        """Cumulative income and issuance ledgers as arrays."""
        return self._tracker.ledgers(addresses)


class CPoSNetwork:
    """Epoch-driven compound PoS with committees and inflation."""

    def __init__(
        self,
        chain: Blockchain,
        validators: Sequence[CPoSValidator],
        oracle: HashOracle,
        *,
        proposer_reward: float,
        inflation_reward: float,
        shards: int = 32,
        vote_participation: float = 1.0,
        epoch_duration: float = 384.0,
        fast: bool = True,
    ) -> None:
        self.chain = chain
        self.committee = CPoSCommittee(validators, oracle, shards)
        self.proposer_reward = ensure_positive_float(
            "proposer_reward", proposer_reward
        )
        if inflation_reward < 0.0:
            raise ValueError("inflation_reward must be non-negative")
        self.inflation_reward = float(inflation_reward)
        if not 0.0 < vote_participation <= 1.0:
            raise ValueError("vote_participation must be in (0, 1]")
        self.vote_participation = float(vote_participation)
        self.epoch_duration = ensure_positive_float("epoch_duration", epoch_duration)
        self.epoch = 0
        self.oracle = oracle
        self.fast = bool(fast)
        # Exact-type specialization, as in the mining networks: the
        # inlined epoch loop reads stakes straight off the ledger, so a
        # CPoSValidator subclass overriding stake() must take the naive
        # body (which consults v.stake) even under fast=True.
        self._stock_validators = all(
            type(validator) is CPoSValidator
            for validator in self.committee.validators
        )
        self._addresses = [v.address for v in self.committee.validators]
        self._shard_chunks = [
            HashOracle.chunk(shard) for shard in range(self.committee.shards)
        ]
        self._tracker = _make_tracker(self._addresses, self.fast)

    def run_epoch(self) -> List[str]:
        """Run one epoch: elect shard proposers, append blocks, pay attesters."""
        if self.fast and self._stock_validators:
            return self._run_epoch_fast()
        incomes: Dict[str, float] = {
            v.address: 0.0 for v in self.committee.validators
        }
        # Attester rewards are computed on the stakes at epoch start.
        attester = self.committee.attester_rewards(
            self.chain, self.inflation_reward, self.vote_participation
        )
        proposers = self.committee.elect_proposers(self.chain, self.epoch)
        per_shard_reward = self.proposer_reward / self.committee.shards
        base_time = self.epoch * self.epoch_duration
        for shard, proposer in enumerate(proposers):
            block = Block(
                height=self.chain.height + 1,
                parent_hash=self.chain.tip.block_hash,
                block_hash=self.oracle.digest(
                    "block", self.epoch, shard, self.chain.tip.block_hash
                ),
                proposer=proposer,
                timestamp=base_time + (shard + 1) * self.epoch_duration
                / self.committee.shards,
                reward=per_shard_reward,
            )
            self.chain.append(block)
            incomes[proposer] += per_shard_reward
        for address, amount in attester.items():
            self.chain.credit(address, amount)
            incomes[address] += amount
        self._tracker.record_round(incomes)
        self.epoch += 1
        return proposers

    def _run_epoch_fast(self) -> List[str]:
        """One epoch with shared stake shares, pre-hashed digest
        prefixes and array income ledgers.

        The naive path computes the stake-share dict twice (attester
        rewards, then proposer election) from the same epoch-start
        balances; computing it once yields the identical values.  All
        float accumulation orders — issuance, per-validator incomes,
        the election CDF walk — replicate the naive loop exactly.
        """
        chain = self.chain
        addresses = self._addresses
        count = len(addresses)
        stakes = [chain.balance(address) for address in addresses]
        total = sum(stakes)
        if total <= 0.0:
            raise ValueError("total validator stake must be positive")
        shares = [stake / total for stake in stakes]
        paid = self.inflation_reward * self.vote_participation
        attester_amounts = [paid * share for share in shares]

        oracle = self.oracle
        shard_chunks = self._shard_chunks
        epoch = self.epoch
        chunk = HashOracle.chunk
        from_bytes = int.from_bytes
        tip_chunk = chunk(chain.tip.block_hash)
        randao_prefix = oracle.prefix("randao", epoch)
        shards = self.committee.shards
        last = count - 1
        proposer_indices: List[int] = []
        for shard in range(shards):
            # Inlined HashOracle.fraction_tail (hot: per shard).
            hasher = randao_prefix.copy()
            hasher.update(shard_chunks[shard])
            hasher.update(tip_chunk)
            u = (from_bytes(hasher.digest(), "big") >> 203) / 9007199254740992.0
            cumulative = 0.0
            chosen = last
            for index in range(count):
                cumulative += shares[index]
                if u < cumulative:
                    chosen = index
                    break
            proposer_indices.append(chosen)

        incomes = [0.0] * count
        per_shard_reward = self.proposer_reward / shards
        base_time = epoch * self.epoch_duration
        epoch_duration = self.epoch_duration
        block_prefix = oracle.prefix("block", epoch)
        height = chain.height
        tip_hash = chain.tip.block_hash
        for shard, proposer_index in enumerate(proposer_indices):
            # Inlined HashOracle.digest_tail (hot: per shard; the
            # evolving tip's encoding cannot be hoisted).
            hasher = block_prefix.copy()
            hasher.update(shard_chunks[shard])
            hasher.update(chunk(tip_hash))
            height += 1
            block = fast_block(
                height=height,
                parent_hash=tip_hash,
                block_hash=from_bytes(hasher.digest(), "big"),
                proposer=addresses[proposer_index],
                timestamp=base_time + (shard + 1) * epoch_duration / shards,
                reward=per_shard_reward,
            )
            chain.append_trusted(block)
            tip_hash = block.block_hash
            incomes[proposer_index] += per_shard_reward
        for index, address in enumerate(addresses):
            chain.credit(address, attester_amounts[index])
            incomes[index] += attester_amounts[index]
        self._tracker.record_amounts(incomes)
        self.epoch += 1
        return [addresses[index] for index in proposer_indices]

    def run(self, epochs: int) -> None:
        """Run ``epochs`` consecutive epochs."""
        epochs = ensure_positive_int("epochs", epochs)
        tracer = get_tracer()
        if tracer.enabled:
            with tracer.span(
                "chainsim.run",
                network=type(self).__name__,
                rounds=epochs,
                fast=self.fast,
            ):
                self._run(epochs)
        else:
            self._run(epochs)

    def _run(self, epochs: int) -> None:
        self._tracker.reserve(epochs)
        for _ in range(epochs):
            self.run_epoch()

    def income_series(self, addresses: Sequence[str]) -> Dict[str, List[float]]:
        """Cumulative income per address after each epoch."""
        return self._tracker.income_series(addresses)

    def total_issued_series(self) -> List[float]:
        """Total rewards issued network-wide after each epoch."""
        return list(self._tracker.total_issued_history)

    def ledgers(self, addresses: Sequence[str]) -> Tuple[np.ndarray, np.ndarray]:
        """Cumulative income and issuance ledgers as arrays."""
        return self._tracker.ledgers(addresses)
