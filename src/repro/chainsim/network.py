"""Network engines: the simulated clock and block-race resolution.

Three engines matching the three interaction styles of the protocols:

* :class:`TickMiningNetwork` — PoW and ML-PoS: advance a discrete
  clock, every node attempts its lottery each tick, simultaneous
  winners are resolved by lowest digest (the substrate's stand-in for
  the propagation race), difficulty retargets on a window.
* :class:`DeadlineMiningNetwork` — SL-PoS and FSL-PoS: event-driven;
  each block deterministically schedules every node's next proposal
  deadline and the earliest wins.
* :class:`CPoSNetwork` — C-PoS: epoch-driven committee election with
  per-shard proposer blocks and proportional attester inflation.

Every engine exposes ``income_series(addresses)`` — cumulative income
per address after each round — which is what the fairness harness
consumes.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from .._validation import ensure_positive_float, ensure_positive_int
from .block import Block
from .chain import Blockchain
from .c_pos_node import CPoSCommittee, CPoSValidator
from .difficulty import DifficultyAdjuster
from .hash_oracle import HashOracle
from .mempool import Mempool
from .node import MiningNode

__all__ = ["TickMiningNetwork", "DeadlineMiningNetwork", "CPoSNetwork"]


class _IncomeTracker:
    """Cumulative per-round income bookkeeping shared by the engines."""

    def __init__(self, addresses: Sequence[str]) -> None:
        self._addresses = list(addresses)
        self._totals: Dict[str, float] = {a: 0.0 for a in self._addresses}
        self._history: Dict[str, List[float]] = {a: [] for a in self._addresses}
        self.total_issued_history: List[float] = []
        self._total_issued = 0.0

    def record_round(self, incomes: Dict[str, float]) -> None:
        for address, amount in incomes.items():
            if address in self._totals:
                self._totals[address] += amount
            self._total_issued += amount
        for address in self._addresses:
            self._history[address].append(self._totals[address])
        self.total_issued_history.append(self._total_issued)

    def income_series(self, addresses: Sequence[str]) -> Dict[str, List[float]]:
        return {a: list(self._history[a]) for a in addresses}


class TickMiningNetwork:
    """Discrete-clock mining for PoW / ML-PoS nodes.

    Parameters
    ----------
    chain:
        The shared ledger.
    nodes:
        Tick-mining nodes (must implement ``try_propose``).
    adjuster:
        Difficulty controller.
    block_reward:
        Subsidy per block.
    mempool / max_txs_per_block:
        Optional transaction inclusion.
    max_ticks_per_block:
        Safety valve: raise instead of looping forever when the
        difficulty is impossibly low.
    """

    def __init__(
        self,
        chain: Blockchain,
        nodes: Sequence[MiningNode],
        adjuster: DifficultyAdjuster,
        block_reward: float,
        *,
        mempool: Optional[Mempool] = None,
        max_txs_per_block: int = 100,
        max_ticks_per_block: int = 1_000_000,
    ) -> None:
        if not nodes:
            raise ValueError("need at least one node")
        self.chain = chain
        self.nodes = list(nodes)
        self.adjuster = adjuster
        self.block_reward = ensure_positive_float("block_reward", block_reward)
        self.mempool = mempool
        self.max_txs_per_block = ensure_positive_int(
            "max_txs_per_block", max_txs_per_block
        )
        self.max_ticks_per_block = ensure_positive_int(
            "max_ticks_per_block", max_ticks_per_block
        )
        self.tick = 0
        self._tracker = _IncomeTracker([n.address for n in self.nodes])

    def mine_block(self) -> Block:
        """Advance ticks until some node wins the lottery; append the block."""
        ticks_waited = 0
        while True:
            self.tick += 1
            ticks_waited += 1
            if ticks_waited > self.max_ticks_per_block:
                raise RuntimeError(
                    "no block found within max_ticks_per_block; "
                    "difficulty is too low"
                )
            candidates: List[Tuple[int, MiningNode]] = []
            for node in self.nodes:
                digest = node.try_propose(self.chain, self.tick, self.adjuster.difficulty)
                if digest is not None:
                    candidates.append((digest, node))
            if not candidates:
                continue
            digest, winner = min(candidates, key=lambda item: item[0])
            transactions = (
                tuple(self.mempool.take(self.max_txs_per_block))
                if self.mempool is not None
                else ()
            )
            block = Block(
                height=self.chain.height + 1,
                parent_hash=self.chain.tip.block_hash,
                block_hash=digest,
                proposer=winner.address,
                timestamp=float(self.tick),
                reward=self.block_reward,
                transactions=transactions,
            )
            self.chain.append(block)
            self.adjuster.observe_block(block.timestamp)
            self._tracker.record_round(
                {winner.address: self.block_reward + block.total_fees}
            )
            return block

    def run(self, blocks: int) -> None:
        """Mine ``blocks`` consecutive blocks."""
        blocks = ensure_positive_int("blocks", blocks)
        for _ in range(blocks):
            self.mine_block()

    def income_series(self, addresses: Sequence[str]) -> Dict[str, List[float]]:
        """Cumulative income per address after each block."""
        return self._tracker.income_series(addresses)

    def total_issued_series(self) -> List[float]:
        """Total rewards issued network-wide after each block."""
        return list(self._tracker.total_issued_history)


class DeadlineMiningNetwork:
    """Event-driven deadline mining for SL-PoS / FSL-PoS nodes."""

    def __init__(
        self,
        chain: Blockchain,
        nodes: Sequence[MiningNode],
        block_reward: float,
        *,
        basetime: float = 60.0,
        mempool: Optional[Mempool] = None,
        max_txs_per_block: int = 100,
    ) -> None:
        if not nodes:
            raise ValueError("need at least one node")
        self.chain = chain
        self.nodes = list(nodes)
        self.block_reward = ensure_positive_float("block_reward", block_reward)
        self.basetime = ensure_positive_float("basetime", basetime)
        self.mempool = mempool
        self.max_txs_per_block = ensure_positive_int(
            "max_txs_per_block", max_txs_per_block
        )
        self._tracker = _IncomeTracker([n.address for n in self.nodes])

    def mine_block(self) -> Block:
        """Resolve the deadline race for the next block and append it."""
        deadlines: List[Tuple[float, str, MiningNode]] = []
        for node in self.nodes:
            deadline = node.proposal_deadline(self.chain, self.basetime)
            deadlines.append((deadline, node.address, node))
        deadline, _, winner = min(deadlines)
        if deadline == float("inf"):
            raise RuntimeError("no node can propose (all stakes are zero)")
        transactions = (
            tuple(self.mempool.take(self.max_txs_per_block))
            if self.mempool is not None
            else ()
        )
        block = Block(
            height=self.chain.height + 1,
            parent_hash=self.chain.tip.block_hash,
            block_hash=self.chain.tip.block_hash + 1 + winner.oracle.digest(
                "block", winner.address, self.chain.tip.block_hash
            ) % (1 << 64),
            proposer=winner.address,
            timestamp=deadline,
            reward=self.block_reward,
            transactions=transactions,
        )
        self.chain.append(block)
        self._tracker.record_round(
            {winner.address: self.block_reward + block.total_fees}
        )
        return block

    def run(self, blocks: int) -> None:
        """Mine ``blocks`` consecutive blocks."""
        blocks = ensure_positive_int("blocks", blocks)
        for _ in range(blocks):
            self.mine_block()

    def income_series(self, addresses: Sequence[str]) -> Dict[str, List[float]]:
        """Cumulative income per address after each block."""
        return self._tracker.income_series(addresses)

    def total_issued_series(self) -> List[float]:
        """Total rewards issued network-wide after each block."""
        return list(self._tracker.total_issued_history)


class CPoSNetwork:
    """Epoch-driven compound PoS with committees and inflation."""

    def __init__(
        self,
        chain: Blockchain,
        validators: Sequence[CPoSValidator],
        oracle: HashOracle,
        *,
        proposer_reward: float,
        inflation_reward: float,
        shards: int = 32,
        vote_participation: float = 1.0,
        epoch_duration: float = 384.0,
    ) -> None:
        self.chain = chain
        self.committee = CPoSCommittee(validators, oracle, shards)
        self.proposer_reward = ensure_positive_float(
            "proposer_reward", proposer_reward
        )
        if inflation_reward < 0.0:
            raise ValueError("inflation_reward must be non-negative")
        self.inflation_reward = float(inflation_reward)
        if not 0.0 < vote_participation <= 1.0:
            raise ValueError("vote_participation must be in (0, 1]")
        self.vote_participation = float(vote_participation)
        self.epoch_duration = ensure_positive_float("epoch_duration", epoch_duration)
        self.epoch = 0
        self.oracle = oracle
        self._tracker = _IncomeTracker([v.address for v in self.committee.validators])

    def run_epoch(self) -> List[str]:
        """Run one epoch: elect shard proposers, append blocks, pay attesters."""
        incomes: Dict[str, float] = {
            v.address: 0.0 for v in self.committee.validators
        }
        # Attester rewards are computed on the stakes at epoch start.
        attester = self.committee.attester_rewards(
            self.chain, self.inflation_reward, self.vote_participation
        )
        proposers = self.committee.elect_proposers(self.chain, self.epoch)
        per_shard_reward = self.proposer_reward / self.committee.shards
        base_time = self.epoch * self.epoch_duration
        for shard, proposer in enumerate(proposers):
            block = Block(
                height=self.chain.height + 1,
                parent_hash=self.chain.tip.block_hash,
                block_hash=self.oracle.digest(
                    "block", self.epoch, shard, self.chain.tip.block_hash
                ),
                proposer=proposer,
                timestamp=base_time + (shard + 1) * self.epoch_duration
                / self.committee.shards,
                reward=per_shard_reward,
            )
            self.chain.append(block)
            incomes[proposer] += per_shard_reward
        for address, amount in attester.items():
            self.chain.credit(address, amount)
            incomes[address] += amount
        self._tracker.record_round(incomes)
        self.epoch += 1
        return proposers

    def run(self, epochs: int) -> None:
        """Run ``epochs`` consecutive epochs."""
        epochs = ensure_positive_int("epochs", epochs)
        for _ in range(epochs):
            self.run_epoch()

    def income_series(self, addresses: Sequence[str]) -> Dict[str, List[float]]:
        """Cumulative income per address after each epoch."""
        return self._tracker.income_series(addresses)

    def total_issued_series(self) -> List[float]:
        """Total rewards issued network-wide after each epoch."""
        return list(self._tracker.total_issued_history)
