"""The "real system experiment" harness.

Mirrors the paper's AWS deployments (Section 5.1): for each repeat, a
fresh two-or-more-node network is stood up with its own hash-oracle
universe, mined for a fixed number of blocks (or epochs), and the
focal miner's cumulative reward fraction is collected at checkpoints.
The repeats aggregate into the same :class:`~repro.core.EnsembleResult`
the Monte Carlo engine produces, so the green "system" bars and the
blue "simulation" bands of Figures 2-6 come from one analysis path.

The substitution (node-level simulator for Geth/Qtum/NXT binaries) is
documented in DESIGN.md section 2.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Sequence

import numpy as np

from .._validation import ensure_positive_float, ensure_positive_int
from ..core.miners import Allocation
from ..core.results import EnsembleResult
from ..sim.checkpoints import linear_checkpoints, validate_checkpoints
from ..sim.rng import RandomSource, SeedLike
from .chain import Blockchain
from .c_pos_node import CPoSValidator
from .difficulty import DifficultyAdjuster
from .hash_oracle import HASH_SPACE, HashOracle
from .ml_pos_node import MLPoSNode
from .network import CPoSNetwork, DeadlineMiningNetwork, TickMiningNetwork
from .node import MiningNode
from .pow_node import PoWNode
from .sl_pos_node import FSLPoSNode, SLPoSNode

__all__ = ["SystemExperiment", "SYSTEM_PROTOCOLS"]

#: Protocols the system harness can deploy.
SYSTEM_PROTOCOLS = (
    "pow",
    "ml-pos",
    "sl-pos",
    "fsl-pos",
    "fsl-pos-withhold",
    "c-pos",
)


class SystemExperiment:
    """Repeatable node-level experiment for one protocol.

    Parameters
    ----------
    protocol:
        One of :data:`SYSTEM_PROTOCOLS`.
    allocation:
        Initial resource allocation; miner names become addresses.
    reward:
        Block reward ``w`` (per epoch proposer reward for C-PoS),
        normalised against the initial supply of 1.0.
    inflation_reward:
        C-PoS inflation ``v`` per epoch (ignored elsewhere).
    shards:
        C-PoS shard count ``P``.
    hash_rate_scale:
        PoW only: total network hash rate in nonces/tick; per-node
        rates are the allocation shares of this total (rounded, min 1).
    target_interval:
        Tick networks: desired mean ticks per block for the difficulty
        controller.
    basetime:
        Deadline networks: the SL-PoS ``basetime`` constant.
    vesting_period:
        fsl-pos-withhold only: block height multiple at which pending
        rewards vest (Section 6.3).
    fast:
        Deploy the networks' vectorized loops (batched hash-oracle
        draws, preallocated NumPy income ledgers; the default).
        ``fast=False`` is the original per-object loop — bit-identical
        results, kept as the differential-test reference, mirroring
        the Monte Carlo engine's ``kernel="naive"`` escape hatch.
        Deliberately excluded from cache fingerprints: one cached
        artifact answers both paths.
    """

    #: Attributes outside the content address (bit-identical knobs).
    _fingerprint_exclude_ = frozenset({"fast"})

    def __init__(
        self,
        protocol: str,
        allocation: Allocation,
        *,
        reward: float = 0.01,
        inflation_reward: float = 0.1,
        shards: int = 32,
        hash_rate_scale: int = 50,
        target_interval: float = 20.0,
        basetime: float = 60.0,
        vesting_period: int = 1000,
        fast: bool = True,
    ) -> None:
        if protocol not in SYSTEM_PROTOCOLS:
            raise ValueError(
                f"unknown protocol {protocol!r}; expected one of {SYSTEM_PROTOCOLS}"
            )
        self.protocol = protocol
        self.allocation = allocation
        self.reward = ensure_positive_float("reward", reward)
        self.inflation_reward = float(inflation_reward)
        if self.inflation_reward < 0.0:
            raise ValueError("inflation_reward must be non-negative")
        self.shards = ensure_positive_int("shards", shards)
        self.hash_rate_scale = ensure_positive_int("hash_rate_scale", hash_rate_scale)
        self.target_interval = ensure_positive_float(
            "target_interval", target_interval
        )
        self.basetime = ensure_positive_float("basetime", basetime)
        self.vesting_period = ensure_positive_int("vesting_period", vesting_period)
        self.fast = bool(fast)

    # -- deployment -----------------------------------------------------------

    def _initial_balances(self) -> Dict[str, float]:
        return {
            miner.name: float(share)
            for miner, share in zip(self.allocation.miners, self.allocation.shares)
        }

    def _deploy(self, oracle: HashOracle):
        """Stand up a fresh chain + network for one repeat."""
        chain = Blockchain(self._initial_balances())
        addresses = [m.name for m in self.allocation.miners]
        if self.protocol == "pow":
            rates = [
                max(1, round(share * self.hash_rate_scale))
                for share in self.allocation.shares
            ]
            nodes: List[MiningNode] = [
                PoWNode(address, oracle, rate)
                for address, rate in zip(addresses, rates)
            ]
            total_rate = sum(rates)
            # Success probability per nonce tuned for the target interval.
            per_nonce = 1.0 / (total_rate * self.target_interval)
            adjuster = DifficultyAdjuster(
                per_nonce * HASH_SPACE, self.target_interval
            )
            return (
                TickMiningNetwork(
                    chain, nodes, adjuster, self.reward, fast=self.fast
                ),
                chain,
            )
        if self.protocol == "ml-pos":
            nodes = [MLPoSNode(address, oracle) for address in addresses]
            # Per-unit-stake threshold; total stake starts at 1.0.
            per_tick = 1.0 / self.target_interval
            adjuster = DifficultyAdjuster(per_tick * HASH_SPACE, self.target_interval)
            return (
                TickMiningNetwork(
                    chain, nodes, adjuster, self.reward, fast=self.fast
                ),
                chain,
            )
        if self.protocol in ("sl-pos", "fsl-pos", "fsl-pos-withhold"):
            if self.protocol == "fsl-pos-withhold":
                from .vesting import VestingBlockchain

                chain = VestingBlockchain(
                    self._initial_balances(), self.vesting_period
                )
            node_type = SLPoSNode if self.protocol == "sl-pos" else FSLPoSNode
            nodes = [node_type(address, oracle) for address in addresses]
            return (
                DeadlineMiningNetwork(
                    chain, nodes, self.reward, basetime=self.basetime,
                    fast=self.fast,
                ),
                chain,
            )
        validators = [CPoSValidator(address, oracle) for address in addresses]
        network = CPoSNetwork(
            chain,
            validators,
            oracle,
            proposer_reward=self.reward,
            inflation_reward=self.inflation_reward,
            shards=self.shards,
            fast=self.fast,
        )
        return network, chain

    # -- execution -------------------------------------------------------------

    def run(
        self,
        rounds: int,
        repeats: int = 10,
        *,
        checkpoints: Optional[Sequence[int]] = None,
        seed: SeedLike = None,
    ) -> EnsembleResult:
        """Run ``repeats`` independent deployments of ``rounds`` each.

        ``rounds`` counts blocks for pow/ml-pos/sl-pos/fsl-pos and
        epochs for c-pos, matching the paper's axes.

        When an ambient :class:`~repro.runtime.ParallelRunner` is
        configured (the CLI's ``--workers``/``--cache`` flags), the
        repeats are sharded/cached through it; otherwise they run
        serially in-process.  ``rounds`` and ``repeats`` are validated
        here, before any dispatch, so both paths reject bad values
        identically.
        """
        from ..runtime.context import get_default_runtime

        rounds = ensure_positive_int("rounds", rounds)
        repeats = ensure_positive_int("repeats", repeats)
        runtime = get_default_runtime()
        if runtime is not None:
            return runtime.run_system(
                self, rounds, repeats, checkpoints=checkpoints, seed=seed
            )
        return self._run_serial(rounds, repeats, checkpoints=checkpoints, seed=seed)

    def _run_serial(
        self,
        rounds: int,
        repeats: int = 10,
        *,
        checkpoints: Optional[Sequence[int]] = None,
        seed: SeedLike = None,
    ) -> EnsembleResult:
        """The in-process execution path (also the per-shard worker body)."""
        rounds = ensure_positive_int("rounds", rounds)
        repeats = ensure_positive_int("repeats", repeats)
        if checkpoints is None:
            checkpoint_list = linear_checkpoints(rounds, count=min(20, rounds))
        else:
            checkpoint_list = validate_checkpoints(checkpoints, rounds)
        source = seed if isinstance(seed, RandomSource) else RandomSource(seed)
        addresses = [m.name for m in self.allocation.miners]

        fractions = np.empty((repeats, len(checkpoint_list), len(addresses)))
        terminal = np.empty((repeats, len(addresses)))
        rows = np.asarray(checkpoint_list, dtype=np.intp) - 1
        for repeat, child in enumerate(source.spawn(repeats)):
            oracle_seed = int(child.generator().integers(0, 2**62))
            network, chain = self._deploy(HashOracle(oracle_seed))
            network.run(rounds)
            # One array divide over (checkpoints, miners) — the same
            # scalar divisions the per-checkpoint loop performed.
            history, issued = network.ledgers(addresses)
            np.divide(history[rows], issued[rows][:, None], out=fractions[repeat])
            for m_index, address in enumerate(addresses):
                terminal[repeat, m_index] = chain.balance(address)
        return EnsembleResult(
            protocol_name=f"system:{self.protocol}",
            allocation=self.allocation,
            checkpoints=checkpoint_list,
            reward_fractions=fractions,
            terminal_stakes=terminal,
            round_unit="epoch" if self.protocol == "c-pos" else "block",
        )

    def __repr__(self) -> str:
        return (
            f"SystemExperiment({self.protocol!r}, miners={self.allocation.size}, "
            f"reward={self.reward})"
        )
