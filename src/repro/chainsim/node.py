"""Base class for mining nodes.

A node owns an address (its public key, in the paper's notation ``pk``)
and reads its staking power straight from the ledger, so rewards
compound exactly as the protocols prescribe.  Concrete nodes implement
one of two interaction styles:

* **tick mining** (PoW, ML-PoS): the network advances a discrete clock
  and asks every node to try its lottery each tick
  (:meth:`try_propose`);
* **deadline mining** (SL-PoS, FSL-PoS): each new block immediately
  determines every node's next proposal time
  (:meth:`proposal_deadline`), and the earliest deadline wins.
"""

from __future__ import annotations

import abc
from typing import Optional

from .chain import Blockchain
from .hash_oracle import HashOracle

__all__ = ["MiningNode"]


class MiningNode(abc.ABC):
    """A network participant that can propose blocks.

    Parameters
    ----------
    address:
        The node's account address / public key.
    oracle:
        The shared hash oracle (same landscape for every node, keyed
        per experiment repeat).
    """

    def __init__(self, address: str, oracle: HashOracle) -> None:
        if not address:
            raise ValueError("address must be non-empty")
        self.address = address
        self.oracle = oracle
        # Wire encoding of the address, cached for the batched-draw
        # fast paths (the address appears in every lottery digest).
        self._address_chunk = HashOracle.chunk(address)
        self._deadline_prefix = None

    def stake(self, chain: Blockchain) -> float:
        """The node's current staking power: its ledger balance."""
        return chain.balance(self.address)

    # -- tick mining interface ------------------------------------------------

    def try_propose(
        self, chain: Blockchain, tick: int, difficulty: float
    ) -> Optional[int]:
        """Attempt the block lottery at ``tick``.

        Returns the winning digest when the attempt succeeds (used for
        tie-breaking simultaneous winners), or None.  Tick-mining nodes
        must override this.
        """
        raise NotImplementedError(
            f"{type(self).__name__} does not support tick mining"
        )

    def fast_try_propose(
        self, chain: Blockchain, tick: int, difficulty: float, shared
    ) -> Optional[int]:
        """Batched-draw variant of :meth:`try_propose`.

        ``shared`` is the network's per-round draw context
        (:class:`repro.chainsim.network.SharedRoundDraws`) carrying
        encodings and pre-hashed digest prefixes common to every node
        this round.  Must return bit-identical results to
        :meth:`try_propose`; the default simply delegates, so custom
        node types keep working under fast networks.
        """
        return self.try_propose(chain, tick, difficulty)

    # -- deadline mining interface -----------------------------------------------

    def proposal_deadline(self, chain: Blockchain, basetime: float) -> float:
        """The simulated time at which this node's candidate becomes valid.

        Deadline-mining nodes must override this.
        """
        raise NotImplementedError(
            f"{type(self).__name__} does not support deadline mining"
        )

    def fast_proposal_deadline(
        self, chain: Blockchain, basetime: float, shared
    ) -> float:
        """Batched-draw variant of :meth:`proposal_deadline`.

        Same contract as :meth:`fast_try_propose`: bit-identical to the
        naive method, defaulting to it for custom node types.
        """
        return self.proposal_deadline(chain, basetime)

    def __repr__(self) -> str:
        return f"{type(self).__name__}(address={self.address!r})"
