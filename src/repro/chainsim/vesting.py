"""A ledger with periodically vesting block rewards (Section 6.3).

The paper's reward-withholding remedy issues block rewards immediately
but lets them count as *staking power* only from the next multiple of
the vesting period.  :class:`VestingBlockchain` implements that on the
node-level substrate: rewards accumulate in a pending pot per address,
``balance()`` (what the staking nodes read) excludes the pot, and the
network calls :meth:`maybe_vest` after each block to fold the pot in
at period boundaries.

Transactions spend only vested funds — unvested rewards are locked,
which is the natural ledger semantics of withholding.
"""

from __future__ import annotations

from typing import Dict, Mapping

from .._validation import ensure_positive_int
from .block import Block
from .chain import Blockchain

__all__ = ["VestingBlockchain"]


class VestingBlockchain(Blockchain):
    """A :class:`Blockchain` whose block rewards vest periodically.

    Parameters
    ----------
    initial_balances:
        Genesis allocation (fully vested).
    vesting_period:
        Rewards take effect at the next block height that is a multiple
        of this period (the paper uses 1,000).

    Notes
    -----
    * ``balance(address)`` returns the *vested* balance — the staking
      power the mining lotteries see and the funds transactions can
      spend.
    * ``pending(address)`` returns the locked reward pot.
    * ``total_balance(address)`` is their sum (the income the fairness
      metrics count, since rewards are issued immediately).
    """

    def __init__(
        self, initial_balances: Mapping[str, float], vesting_period: int = 1000
    ) -> None:
        super().__init__(initial_balances)
        self.vesting_period = ensure_positive_int("vesting_period", vesting_period)
        self._pending: Dict[str, float] = {}
        self.vesting_events = 0

    # -- balances -----------------------------------------------------------

    def pending(self, address: str) -> float:
        """Rewards issued to ``address`` but not yet vested."""
        return self._pending.get(address, 0.0)

    def total_balance(self, address: str) -> float:
        """Vested balance plus pending rewards."""
        return self.balance(address) + self.pending(address)

    def total_supply(self) -> float:
        """Circulating supply including locked rewards."""
        return super().total_supply() + sum(self._pending.values())

    # -- block application ------------------------------------------------------

    def _apply_vesting(self, block: Block, base_append) -> None:
        """Divert the subsidy into the pending pot around ``base_append``."""
        reward = block.reward
        if reward > 0.0:
            # Re-create the block with zero subsidy for the base-class
            # bookkeeping, then stash the subsidy as pending.
            stripped = Block(
                height=block.height,
                parent_hash=block.parent_hash,
                block_hash=block.block_hash,
                proposer=block.proposer,
                timestamp=block.timestamp,
                reward=0.0,
                transactions=block.transactions,
            )
            base_append(stripped)
            self._pending[block.proposer] = (
                self._pending.get(block.proposer, 0.0) + reward
            )
        else:
            base_append(block)
        self.maybe_vest()

    def append(self, block: Block) -> None:
        """Apply a block, diverting its reward into the pending pot.

        Transaction fees still pay out immediately (they move existing,
        vested currency rather than minting new stake), matching the
        paper's focus on withholding the *block subsidy*.
        """
        self._apply_vesting(block, super().append)

    def append_trusted(self, block: Block) -> None:
        """Trusted-path twin of :meth:`append`: same subsidy diversion
        and vesting check, minus the validation the fast engines make
        redundant."""
        self._apply_vesting(block, super().append_trusted)

    def maybe_vest(self) -> bool:
        """Fold pending rewards into balances at period boundaries.

        Returns True when a vesting event fired.
        """
        if self.height == 0 or self.height % self.vesting_period != 0:
            return False
        if not self._pending:
            return False
        for address, amount in self._pending.items():
            if amount > 0.0:
                self.credit(address, amount)
        self._pending.clear()
        self.vesting_events += 1
        return True
