"""The ledger: an append-only chain with account balances.

Maintains the canonical chain (the substrate resolves block races at
proposal time, so no reorgs occur after acceptance), validates and
applies transactions, credits block rewards, and exposes the per-miner
income series the fairness harness consumes.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Optional, Sequence

from .block import GENESIS_PARENT, Block
from .transactions import Transaction

__all__ = ["Blockchain", "InvalidBlockError"]


class InvalidBlockError(ValueError):
    """Raised when a block fails validation against the current chain."""


class Blockchain:
    """An account-model blockchain.

    Parameters
    ----------
    initial_balances:
        Genesis allocation of the currency (stake) per address.

    Notes
    -----
    * Balances double as stakes: PoS nodes read their staking power
      straight from the ledger, so block rewards compound exactly as
      the paper's PoS models prescribe.
    * Per-sender nonces must be sequential; a block containing an
      invalid transaction is rejected wholesale (the substrate's
      stand-in for full validation).
    """

    def __init__(self, initial_balances: Mapping[str, float]) -> None:
        if not initial_balances:
            raise ValueError("initial_balances must not be empty")
        for address, balance in initial_balances.items():
            if not address:
                raise ValueError("addresses must be non-empty")
            if balance < 0.0:
                raise ValueError(f"balance of {address!r} must be non-negative")
        self._balances: Dict[str, float] = dict(initial_balances)
        self._nonces: Dict[str, int] = {address: 0 for address in initial_balances}
        genesis = Block(
            height=0,
            parent_hash=GENESIS_PARENT,
            block_hash=GENESIS_PARENT,
            proposer="",
            timestamp=0.0,
            reward=0.0,
        )
        self._blocks: List[Block] = [genesis]

    # -- chain accessors ---------------------------------------------------

    @property
    def height(self) -> int:
        """Height of the chain tip (number of non-genesis blocks)."""
        return self._blocks[-1].height

    @property
    def tip(self) -> Block:
        """The latest accepted block."""
        return self._blocks[-1]

    @property
    def blocks(self) -> Sequence[Block]:
        """All blocks including genesis (read-only view)."""
        return tuple(self._blocks)

    def balance(self, address: str) -> float:
        """Current balance (== staking power) of an address."""
        return self._balances.get(address, 0.0)

    def total_supply(self) -> float:
        """Total currency in circulation."""
        return sum(self._balances.values())

    def next_nonce(self, address: str) -> int:
        """The nonce the address's next transaction must carry."""
        return self._nonces.get(address, 0)

    # -- validation and application -------------------------------------------

    def _validate(self, block: Block) -> None:
        if block.height != self.height + 1:
            raise InvalidBlockError(
                f"block height {block.height} does not extend tip {self.height}"
            )
        if block.parent_hash != self.tip.block_hash:
            raise InvalidBlockError("block parent hash does not match the tip")
        if block.timestamp < self.tip.timestamp:
            raise InvalidBlockError("block timestamp precedes its parent")
        if not block.transactions:
            # Nothing further to check — and the scratch dict copies
            # below would dominate the per-block cost of the (typical)
            # transaction-less mining loops.
            return
        # Transactions must be applicable in order against a scratch view.
        scratch_balances = dict(self._balances)
        scratch_nonces = dict(self._nonces)
        for tx in block.transactions:
            if scratch_nonces.get(tx.sender, 0) != tx.nonce:
                raise InvalidBlockError(
                    f"bad nonce for {tx.sender!r}: expected "
                    f"{scratch_nonces.get(tx.sender, 0)}, got {tx.nonce}"
                )
            if scratch_balances.get(tx.sender, 0.0) < tx.total_debit:
                raise InvalidBlockError(
                    f"insufficient balance for {tx.sender!r}"
                )
            scratch_balances[tx.sender] = (
                scratch_balances.get(tx.sender, 0.0) - tx.total_debit
            )
            scratch_balances[tx.recipient] = (
                scratch_balances.get(tx.recipient, 0.0) + tx.amount
            )
            scratch_nonces[tx.sender] = tx.nonce + 1

    def append(self, block: Block) -> None:
        """Validate and apply a block, crediting reward and fees."""
        self._validate(block)
        for tx in block.transactions:
            self._balances[tx.sender] -= tx.total_debit
            self._balances[tx.recipient] = (
                self._balances.get(tx.recipient, 0.0) + tx.amount
            )
            self._nonces[tx.sender] = tx.nonce + 1
        credit = block.reward + block.total_fees
        if credit > 0.0:
            self._balances[block.proposer] = (
                self._balances.get(block.proposer, 0.0) + credit
            )
        self._blocks.append(block)

    def append_trusted(self, block: Block) -> None:
        """Apply a transaction-less block built from the current tip.

        The engines' fast paths construct blocks whose height, parent
        hash and timestamp are valid by construction; this skips
        re-deriving that and the empty-transaction scan.  Ledger
        effects are bit-identical to :meth:`append` for such blocks;
        blocks carrying transactions are rejected (their transfers
        would be silently dropped) — use :meth:`append` instead.
        """
        if block.transactions:
            raise InvalidBlockError(
                "append_trusted only accepts transaction-less blocks; "
                "use append() for blocks carrying transactions"
            )
        credit = block.reward
        if credit > 0.0:
            self._balances[block.proposer] = (
                self._balances.get(block.proposer, 0.0) + credit
            )
        self._blocks.append(block)

    def credit(self, address: str, amount: float) -> None:
        """Mint ``amount`` to an address outside block rewards.

        Used for protocol-level inflation (C-PoS attester rewards) that
        is not tied to block proposals.
        """
        if amount < 0.0:
            raise ValueError("amount must be non-negative")
        self._balances[address] = self._balances.get(address, 0.0) + amount

    # -- analysis helpers -----------------------------------------------------

    def proposer_counts(self) -> Dict[str, int]:
        """Number of blocks proposed per address (genesis excluded)."""
        counts: Dict[str, int] = {}
        for block in self._blocks[1:]:
            counts[block.proposer] = counts.get(block.proposer, 0) + 1
        return counts

    def reward_series(self, addresses: Iterable[str]) -> Dict[str, List[float]]:
        """Cumulative block-reward income per address after each block.

        Returns, for each requested address, a list of length
        ``height`` with the cumulative reward+fee income after blocks
        1, 2, ..., height.  Protocol-level inflation credited through
        :meth:`credit` is not included (the harness tracks it
        separately).
        """
        addresses = list(addresses)
        totals = {address: 0.0 for address in addresses}
        series: Dict[str, List[float]] = {address: [] for address in addresses}
        for block in self._blocks[1:]:
            income = block.reward + block.total_fees
            if block.proposer in totals:
                totals[block.proposer] += income
            for address in addresses:
                series[address].append(totals[address])
        return series

    def block_interval_mean(self, window: Optional[int] = None) -> float:
        """Mean timestamp gap between consecutive recent blocks."""
        blocks = self._blocks if window is None else self._blocks[-(window + 1):]
        if len(blocks) < 2:
            raise ValueError("need at least two blocks to measure intervals")
        gaps = [
            later.timestamp - earlier.timestamp
            for earlier, later in zip(blocks[:-1], blocks[1:])
        ]
        return sum(gaps) / len(gaps)
