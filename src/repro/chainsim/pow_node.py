"""PoW mining node: nonce grinding against ``Hash(nonce, ...) < D``.

This is the literal Section 2.1 loop.  A node with hash rate ``r``
checks ``r`` nonces per tick against the network difficulty; the
digest includes the parent hash (so work cannot be precomputed across
blocks) and the node's address (each miner grinds her own nonce
space, standing in for the coinbase field of a real block template).
"""

from __future__ import annotations

from typing import Optional

from .._validation import ensure_positive_int
from .chain import Blockchain
from .hash_oracle import HASH_SPACE, HashOracle
from .node import MiningNode

__all__ = ["PoWNode"]


class PoWNode(MiningNode):
    """A proof-of-work miner.

    Parameters
    ----------
    address, oracle:
        See :class:`MiningNode`.
    hash_rate:
        Nonces checked per tick — the node's share of total network
        hash rate is its resource share ``a``.
    """

    def __init__(self, address: str, oracle: HashOracle, hash_rate: int) -> None:
        super().__init__(address, oracle)
        self.hash_rate = ensure_positive_int("hash_rate", hash_rate)
        self._nonce = 0

    def try_propose(
        self, chain: Blockchain, tick: int, difficulty: float
    ) -> Optional[int]:
        """Grind ``hash_rate`` nonces; return the best winning digest."""
        if difficulty <= 0.0:
            raise ValueError("difficulty must be positive")
        target = min(int(difficulty), HASH_SPACE)
        parent_hash = chain.tip.block_hash
        best: Optional[int] = None
        for _ in range(self.hash_rate):
            digest = self.oracle.digest(self.address, parent_hash, self._nonce)
            self._nonce += 1
            if digest < target and (best is None or digest < best):
                best = digest
        return best
