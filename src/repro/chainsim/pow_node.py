"""PoW mining node: nonce grinding against ``Hash(nonce, ...) < D``.

This is the literal Section 2.1 loop.  A node with hash rate ``r``
checks ``r`` nonces per tick against the network difficulty; the
digest includes the parent hash (so work cannot be precomputed across
blocks) and the node's address (each miner grinds her own nonce
space, standing in for the coinbase field of a real block template).
"""

from __future__ import annotations

from typing import Optional

from .._validation import ensure_positive_int
from .chain import Blockchain
from .hash_oracle import HASH_SPACE, HashOracle
from .node import MiningNode

__all__ = ["PoWNode"]

#: 4-byte big-endian length prefixes (the oracle wire format's field
#: framing, precomputed) for nonce encodings up to 63 bytes — i.e.
#: nonces below ~2^480, far beyond any reachable grind.
_LEN4 = tuple(n.to_bytes(4, "big") for n in range(64))


class PoWNode(MiningNode):
    """A proof-of-work miner.

    Parameters
    ----------
    address, oracle:
        See :class:`MiningNode`.
    hash_rate:
        Nonces checked per tick — the node's share of total network
        hash rate is its resource share ``a``.
    """

    def __init__(self, address: str, oracle: HashOracle, hash_rate: int) -> None:
        super().__init__(address, oracle)
        self.hash_rate = ensure_positive_int("hash_rate", hash_rate)
        self._nonce = 0
        self._grind_parent: Optional[int] = None
        self._grind_prefix = None

    def try_propose(
        self, chain: Blockchain, tick: int, difficulty: float
    ) -> Optional[int]:
        """Grind ``hash_rate`` nonces; return the best winning digest."""
        if difficulty <= 0.0:
            raise ValueError("difficulty must be positive")
        target = min(int(difficulty), HASH_SPACE)
        parent_hash = chain.tip.block_hash
        best: Optional[int] = None
        for _ in range(self.hash_rate):
            digest = self.oracle.digest(self.address, parent_hash, self._nonce)
            self._nonce += 1
            if digest < target and (best is None or digest < best):
                best = digest
        return best

    def fast_try_propose(
        self, chain: Blockchain, tick: int, difficulty: float, shared
    ) -> Optional[int]:
        """Grind against a per-``(address, parent)`` pre-hashed prefix.

        The digest fields are ``(address, parent, nonce)``, so the
        whole key+address+parent state is hashed once per block and
        each nonce pays one hasher copy plus its own encoding —
        bit-identical to :meth:`try_propose` by the oracle's wire
        format.
        """
        if shared.oracle is not self.oracle:
            return self.try_propose(chain, tick, difficulty)
        if difficulty <= 0.0:
            raise ValueError("difficulty must be positive")
        target = min(int(difficulty), HASH_SPACE)
        parent_hash = chain.tip.block_hash
        if parent_hash != self._grind_parent:
            prefix = self.oracle.prefix()
            prefix.update(self._address_chunk)
            prefix.update(shared.parent_chunk())
            self._grind_prefix = prefix
            self._grind_parent = parent_hash
        best: Optional[int] = None
        nonce = self._nonce
        # Local bindings and a length-prefix table keep the innermost
        # loop to the irreducible hashlib calls per nonce.
        prefix_copy = self._grind_prefix.copy
        from_bytes = int.from_bytes
        len4 = _LEN4
        for _ in range(self.hash_rate):
            # Inlined HashOracle.chunk(nonce).
            encoded = b"i" + nonce.to_bytes(
                (nonce.bit_length() + 8) // 8 + 1, "big", signed=True
            )
            hasher = prefix_copy()
            hasher.update(len4[len(encoded)])
            hasher.update(encoded)
            digest = from_bytes(hasher.digest(), "big")
            nonce += 1
            if digest < target and (best is None or digest < best):
                best = digest
        self._nonce = nonce
        return best
