"""C-PoS committee machinery (Section 2.4).

Ethereum 2.0 epochs: stakeholder identities are partitioned into ``P``
shards; each shard elects one proposer per epoch uniformly over the
stake deposited in it, and every staker earns a proportional attester
(inflation) reward.  The substrate models the *generalised* C-PoS the
paper analyses: per shard, one proposer is drawn proportionally to
total stake, so the per-epoch proposer counts are
``Multinomial(P, shares)`` exactly as in Theorem 3.5's setup.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from .._validation import ensure_positive_int
from .chain import Blockchain
from .hash_oracle import HashOracle
from .node import MiningNode

__all__ = ["CPoSValidator", "CPoSCommittee"]


class CPoSValidator(MiningNode):
    """A C-PoS staker (attester + potential proposer).

    C-PoS nodes neither tick-mine nor race deadlines; the committee
    selects proposers centrally, mirroring the beacon-chain protocol.
    """


class CPoSCommittee:
    """Per-epoch proposer election and reward assignment.

    Parameters
    ----------
    validators:
        Participating stakers.
    oracle:
        Shared hash oracle; the epoch randomness stands in for
        Ethereum's RANDAO beacon.
    shards:
        Number of shards ``P`` per epoch.
    """

    def __init__(
        self,
        validators: Sequence[CPoSValidator],
        oracle: HashOracle,
        shards: int = 32,
    ) -> None:
        if not validators:
            raise ValueError("need at least one validator")
        addresses = [v.address for v in validators]
        if len(set(addresses)) != len(addresses):
            raise ValueError("validator addresses must be unique")
        self.validators = list(validators)
        self.oracle = oracle
        self.shards = ensure_positive_int("shards", shards)

    def stake_shares(self, chain: Blockchain) -> Dict[str, float]:
        """Current stake share per validator address."""
        stakes = {v.address: v.stake(chain) for v in self.validators}
        total = sum(stakes.values())
        if total <= 0.0:
            raise ValueError("total validator stake must be positive")
        return {address: stake / total for address, stake in stakes.items()}

    def elect_proposers(self, chain: Blockchain, epoch: int) -> List[str]:
        """Elect one proposer per shard for ``epoch``.

        Each shard's RANDAO value is hashed into a uniform fraction and
        inverted through the stake-share CDF — proportional sampling,
        independent across shards.
        """
        if epoch < 0:
            raise ValueError("epoch must be non-negative")
        shares = self.stake_shares(chain)
        addresses = [v.address for v in self.validators]
        proposers: List[str] = []
        for shard in range(self.shards):
            u = self.oracle.fraction("randao", epoch, shard, chain.tip.block_hash)
            cumulative = 0.0
            chosen = addresses[-1]
            for address in addresses:
                cumulative += shares[address]
                if u < cumulative:
                    chosen = address
                    break
            proposers.append(chosen)
        return proposers

    def attester_rewards(
        self, chain: Blockchain, inflation_reward: float, vote_participation: float = 1.0
    ) -> Dict[str, float]:
        """Proportional inflation income of one epoch per validator."""
        if inflation_reward < 0.0:
            raise ValueError("inflation_reward must be non-negative")
        if not 0.0 < vote_participation <= 1.0:
            raise ValueError("vote_participation must be in (0, 1]")
        shares = self.stake_shares(chain)
        paid = inflation_reward * vote_participation
        return {address: paid * share for address, share in shares.items()}
