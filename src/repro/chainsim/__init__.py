"""Node-level blockchain substrate.

Stands in for the paper's real-system testbeds (Geth v1.9.11, Qtum
v0.19.0.1, NXT v1.12.2 on AWS EC2) with a deterministic discrete-event
simulator that runs the Section 2 mining loops literally: PoW nonce
grinding, the ML-PoS per-timestamp kernel, the SL-PoS deadline lottery
(plus its FSL-PoS fix), and C-PoS epoch committees — over a real
ledger with balances, transactions and difficulty retargeting.

Entry point: :class:`SystemExperiment` runs repeated deployments and
returns the same :class:`~repro.core.EnsembleResult` as the Monte
Carlo engine.
"""

from .block import GENESIS_PARENT, Block
from .chain import Blockchain, InvalidBlockError
from .c_pos_node import CPoSCommittee, CPoSValidator
from .difficulty import DifficultyAdjuster
from .harness import SYSTEM_PROTOCOLS, SystemExperiment
from .hash_oracle import HASH_SPACE, HashOracle
from .mempool import Mempool
from .ml_pos_node import MLPoSNode
from .network import CPoSNetwork, DeadlineMiningNetwork, TickMiningNetwork
from .node import MiningNode
from .pow_node import PoWNode
from .sl_pos_node import FSLPoSNode, SLPoSNode
from .transactions import Transaction
from .vesting import VestingBlockchain

__all__ = [
    "GENESIS_PARENT",
    "Block",
    "Blockchain",
    "InvalidBlockError",
    "CPoSCommittee",
    "CPoSValidator",
    "DifficultyAdjuster",
    "SYSTEM_PROTOCOLS",
    "SystemExperiment",
    "HASH_SPACE",
    "HashOracle",
    "Mempool",
    "MLPoSNode",
    "CPoSNetwork",
    "DeadlineMiningNetwork",
    "TickMiningNetwork",
    "MiningNode",
    "PoWNode",
    "FSLPoSNode",
    "SLPoSNode",
    "Transaction",
    "VestingBlockchain",
]
