"""ML-PoS staking node: ``Hash(time, ...) < D * stake`` (Section 2.2).

The Qtum/Blackcoin kernel: exactly one trial per timestamp, whose
success threshold scales with the node's *current* ledger balance.
Using the timestamp (not a nonce) as the hashed field is what removes
computation power from the race — the paper's Section 2.2 remark — and
the substrate preserves that literally: a node cannot retry within a
tick.
"""

from __future__ import annotations

from typing import Optional

from .chain import Blockchain
from .hash_oracle import HASH_SPACE, HashOracle
from .node import MiningNode

__all__ = ["MLPoSNode"]


class MLPoSNode(MiningNode):
    """A multi-lottery proof-of-stake miner."""

    def try_propose(
        self, chain: Blockchain, tick: int, difficulty: float
    ) -> Optional[int]:
        """One kernel trial at timestamp ``tick``.

        Succeeds when ``Hash(tick, parent, pk) < D * stake``; the
        difficulty is a per-unit-stake threshold, so the success
        probability is proportional to the node's current balance.
        """
        if difficulty <= 0.0:
            raise ValueError("difficulty must be positive")
        stake = self.stake(chain)
        if stake <= 0.0:
            return None
        target = min(int(difficulty * stake), HASH_SPACE)
        digest = self.oracle.digest(tick, chain.tip.block_hash, self.address)
        if digest < target:
            return digest
        return None

    def fast_try_propose(
        self, chain: Blockchain, tick: int, difficulty: float, shared
    ) -> Optional[int]:
        """Kernel trial finishing the round's shared ``(tick, parent)``
        digest prefix with this node's cached address chunk —
        bit-identical to :meth:`try_propose` by the oracle's wire
        format."""
        if shared.oracle is not self.oracle:
            return self.try_propose(chain, tick, difficulty)
        if difficulty <= 0.0:
            raise ValueError("difficulty must be positive")
        stake = self.stake(chain)
        if stake <= 0.0:
            return None
        target = min(int(difficulty * stake), HASH_SPACE)
        digest = HashOracle.digest_tail(
            shared.tick_parent_prefix(), self._address_chunk
        )
        if digest < target:
            return digest
        return None
