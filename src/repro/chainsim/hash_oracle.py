"""A deterministic 256-bit hash oracle.

The protocols of Section 2 only need one property from ``Hash(...)``:
its output is uniform on ``[0, 2^256 - 1]`` and independent across
distinct inputs.  A keyed SHA-256 provides exactly that (as a PRF),
while remaining deterministic given the key — so a chainsim run is
fully reproducible from its seed, unlike a wall-clock mining race.

This substitutes the real mining hashes (Ethash in Geth, SHA-256d in
Qtum, Curve25519-based in NXT); the substitution is behaviour
preserving because the paper's analysis uses only the uniformity of
the hash output (see DESIGN.md section 2).
"""

from __future__ import annotations

import hashlib
from typing import Union

__all__ = ["HASH_SPACE", "HashOracle"]

#: The size of the hash output space, ``2^256``.
HASH_SPACE = 1 << 256

_FieldType = Union[int, str, bytes, float]


class HashOracle:
    """Keyed deterministic uniform hash on ``[0, 2^256 - 1]``.

    Parameters
    ----------
    seed:
        Key mixed into every digest; two oracles with different seeds
        produce independent hash landscapes (different "genesis
        universes" for repeated experiments).

    Examples
    --------
    >>> oracle = HashOracle(7)
    >>> 0 <= oracle.digest("pk-A", 123) < HASH_SPACE
    True
    >>> oracle.digest("pk-A", 123) == oracle.digest("pk-A", 123)
    True
    """

    def __init__(self, seed: int = 0) -> None:
        if not isinstance(seed, int):
            raise TypeError(f"seed must be an int, got {type(seed).__name__}")
        self._seed = seed
        self._key = seed.to_bytes(32, "big", signed=False) if seed >= 0 else (
            (-seed).to_bytes(32, "big") + b"-"
        )
        # Keyed start state, copied per digest: hashing the key once and
        # cloning the hasher consumes the identical byte stream as
        # re-feeding the key on every call, at a fraction of the cost.
        base = hashlib.sha256()
        base.update(self._key)
        self._base = base

    def __reduce__(self):
        # The cached _hashlib state is unpicklable; rebuild from the seed.
        return (type(self), (self._seed,))

    @staticmethod
    def _encode(field: _FieldType) -> bytes:
        if isinstance(field, bytes):
            return b"b" + field
        if isinstance(field, str):
            return b"s" + field.encode("utf-8")
        if isinstance(field, bool):  # pragma: no cover - defensive
            raise TypeError("bool fields are ambiguous; use int")
        if isinstance(field, int):
            return b"i" + field.to_bytes((field.bit_length() + 8) // 8 + 1, "big",
                                         signed=True)
        if isinstance(field, float):
            return b"f" + repr(field).encode("ascii")
        raise TypeError(f"unsupported hash field type: {type(field).__name__}")

    def digest(self, *fields: _FieldType) -> int:
        """Uniform 256-bit integer hash of the given fields.

        Fields are length-prefixed before concatenation so that
        distinct field tuples can never collide by boundary ambiguity.
        """
        hasher = self._base.copy()
        for field in fields:
            encoded = self._encode(field)
            hasher.update(len(encoded).to_bytes(4, "big"))
            hasher.update(encoded)
        return int.from_bytes(hasher.digest(), "big")

    # -- batched draws ------------------------------------------------------
    #
    # The node-level mining loops evaluate millions of digests whose
    # field tuples share long common prefixes (same tick, same parent
    # hash, same address).  The methods below expose the oracle's wire
    # format so hot loops can cache encoded fields and pre-hashed
    # prefixes; `digest_tail(prefix(*head), chunk(f))` consumes the
    # identical byte stream as `digest(*head, f)` and is therefore
    # bit-identical by construction.

    @classmethod
    def chunk(cls, field: _FieldType) -> bytes:
        """The length-prefixed wire encoding of one field.

        ``digest(*fields)`` hashes exactly the concatenation of the
        fields' chunks (after the key), so chunks may be cached and fed
        to pre-hashed prefixes without changing a single digest.
        """
        encoded = cls._encode(field)
        return len(encoded).to_bytes(4, "big") + encoded

    def prefix(self, *fields: _FieldType):
        """A reusable hasher pre-loaded with the key and ``fields``.

        The returned object is a standard ``hashlib`` hasher: extend a
        ``copy()`` of it with further chunks (:meth:`digest_tail`) to
        evaluate many digests sharing this field prefix.
        """
        hasher = self._base.copy()
        for field in fields:
            hasher.update(self.chunk(field))
        return hasher

    @staticmethod
    def digest_tail(prefix, *chunks: bytes) -> int:
        """Finish a digest from a pre-hashed prefix and trailing chunks."""
        hasher = prefix.copy()
        for chunk in chunks:
            hasher.update(chunk)
        return int.from_bytes(hasher.digest(), "big")

    @staticmethod
    def fraction_tail(prefix, *chunks: bytes) -> float:
        """Like :meth:`digest_tail`, mapped to ``[0, 1)`` as :meth:`fraction`."""
        hasher = prefix.copy()
        for chunk in chunks:
            hasher.update(chunk)
        return (int.from_bytes(hasher.digest(), "big") >> (256 - 53)) / float(1 << 53)

    def fraction(self, *fields: _FieldType) -> float:
        """The digest mapped to a float in ``[0, 1)``.

        Uses the top 53 bits so the mapping is exact in double
        precision.
        """
        return (self.digest(*fields) >> (256 - 53)) / float(1 << 53)

    def below(self, target: int, *fields: _FieldType) -> bool:
        """Whether ``digest(fields) < target`` — the PoW/PoS validity test."""
        if target < 0:
            raise ValueError("target must be non-negative")
        return self.digest(*fields) < target

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"HashOracle(key={self._key[:4].hex()}...)"
