"""A deterministic 256-bit hash oracle.

The protocols of Section 2 only need one property from ``Hash(...)``:
its output is uniform on ``[0, 2^256 - 1]`` and independent across
distinct inputs.  A keyed SHA-256 provides exactly that (as a PRF),
while remaining deterministic given the key — so a chainsim run is
fully reproducible from its seed, unlike a wall-clock mining race.

This substitutes the real mining hashes (Ethash in Geth, SHA-256d in
Qtum, Curve25519-based in NXT); the substitution is behaviour
preserving because the paper's analysis uses only the uniformity of
the hash output (see DESIGN.md section 2).
"""

from __future__ import annotations

import hashlib
from typing import Union

__all__ = ["HASH_SPACE", "HashOracle"]

#: The size of the hash output space, ``2^256``.
HASH_SPACE = 1 << 256

_FieldType = Union[int, str, bytes, float]


class HashOracle:
    """Keyed deterministic uniform hash on ``[0, 2^256 - 1]``.

    Parameters
    ----------
    seed:
        Key mixed into every digest; two oracles with different seeds
        produce independent hash landscapes (different "genesis
        universes" for repeated experiments).

    Examples
    --------
    >>> oracle = HashOracle(7)
    >>> 0 <= oracle.digest("pk-A", 123) < HASH_SPACE
    True
    >>> oracle.digest("pk-A", 123) == oracle.digest("pk-A", 123)
    True
    """

    def __init__(self, seed: int = 0) -> None:
        if not isinstance(seed, int):
            raise TypeError(f"seed must be an int, got {type(seed).__name__}")
        self._key = seed.to_bytes(32, "big", signed=False) if seed >= 0 else (
            (-seed).to_bytes(32, "big") + b"-"
        )

    @staticmethod
    def _encode(field: _FieldType) -> bytes:
        if isinstance(field, bytes):
            return b"b" + field
        if isinstance(field, str):
            return b"s" + field.encode("utf-8")
        if isinstance(field, bool):  # pragma: no cover - defensive
            raise TypeError("bool fields are ambiguous; use int")
        if isinstance(field, int):
            return b"i" + field.to_bytes((field.bit_length() + 8) // 8 + 1, "big",
                                         signed=True)
        if isinstance(field, float):
            return b"f" + repr(field).encode("ascii")
        raise TypeError(f"unsupported hash field type: {type(field).__name__}")

    def digest(self, *fields: _FieldType) -> int:
        """Uniform 256-bit integer hash of the given fields.

        Fields are length-prefixed before concatenation so that
        distinct field tuples can never collide by boundary ambiguity.
        """
        hasher = hashlib.sha256()
        hasher.update(self._key)
        for field in fields:
            encoded = self._encode(field)
            hasher.update(len(encoded).to_bytes(4, "big"))
            hasher.update(encoded)
        return int.from_bytes(hasher.digest(), "big")

    def fraction(self, *fields: _FieldType) -> float:
        """The digest mapped to a float in ``[0, 1)``.

        Uses the top 53 bits so the mapping is exact in double
        precision.
        """
        return (self.digest(*fields) >> (256 - 53)) / float(1 << 53)

    def below(self, target: int, *fields: _FieldType) -> bool:
        """Whether ``digest(fields) < target`` — the PoW/PoS validity test."""
        if target < 0:
            raise ValueError("target must be non-negative")
        return self.digest(*fields) < target

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"HashOracle(key={self._key[:4].hex()}...)"
