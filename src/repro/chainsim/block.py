"""Block headers for the chain substrate."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Tuple

from .transactions import Transaction

__all__ = ["Block", "GENESIS_PARENT", "fast_block"]

#: Parent hash of the genesis block.
GENESIS_PARENT = 0


def fast_block(
    height: int,
    parent_hash: int,
    block_hash: int,
    proposer: str,
    timestamp: float,
    reward: float,
) -> "Block":
    """Construct a transaction-less :class:`Block` without validation.

    For the mining engines' hot loops, which build blocks whose fields
    are valid by construction (height extends the tip, proposer
    non-empty, reward non-negative); skips the frozen-dataclass
    ``__init__``/``__post_init__`` machinery.  The result is a regular
    :class:`Block` — same equality, hashing and attributes.
    """
    block = object.__new__(Block)
    block.__dict__.update(
        height=height,
        parent_hash=parent_hash,
        block_hash=block_hash,
        proposer=proposer,
        timestamp=timestamp,
        reward=reward,
        transactions=(),
    )
    return block


@dataclass(frozen=True)
class Block:
    """An accepted block.

    Attributes
    ----------
    height:
        Position in the chain (genesis is 0).
    parent_hash:
        Hash of the parent block.
    block_hash:
        This block's hash (the winning lottery digest, so fork
        tie-breaks can use "lowest hash wins").
    proposer:
        Address of the winning miner ("" for genesis).
    timestamp:
        Simulated time at which the block became valid.
    reward:
        Block subsidy credited to the proposer.
    transactions:
        Included transactions (possibly empty).
    """

    height: int
    parent_hash: int
    block_hash: int
    proposer: str
    timestamp: float
    reward: float
    transactions: Tuple[Transaction, ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        if self.height < 0:
            raise ValueError(f"height must be non-negative, got {self.height!r}")
        if self.reward < 0.0:
            raise ValueError(f"reward must be non-negative, got {self.reward!r}")
        if self.height > 0 and not self.proposer:
            raise ValueError("non-genesis blocks need a proposer")

    @property
    def total_fees(self) -> float:
        """Sum of transaction fees paid to the proposer."""
        return sum(tx.fee for tx in self.transactions)

    @property
    def is_genesis(self) -> bool:
        return self.height == 0
