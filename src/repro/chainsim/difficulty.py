"""Difficulty retargeting for the tick-based mining loops.

Real chains retune their difficulty so the mean block interval stays
near a target regardless of total resource (Bitcoin every 2016 blocks,
Ethereum every block).  The substrate mirrors this with a windowed
multiplicative controller: after every ``window`` blocks, scale the
difficulty by ``observed_interval / target_interval`` clamped to a
maximum adjustment factor (Bitcoin clamps at 4x).

Keeping difficulty honest matters for fidelity — it pins the number of
lottery trials per block, which is what makes the tick-level mining
loops match the per-block lotteries analysed in the paper.
"""

from __future__ import annotations

from .._validation import ensure_positive_float, ensure_positive_int

__all__ = ["DifficultyAdjuster"]


class DifficultyAdjuster:
    """Windowed multiplicative difficulty controller.

    Parameters
    ----------
    initial_difficulty:
        Starting difficulty ``D`` (the protocols compare hashes against
        ``D`` or ``D * stake``).
    target_interval:
        Desired mean ticks between blocks.
    window:
        Number of blocks between retargets.
    max_adjustment:
        Clamp on the per-retarget scale factor (>= 1).
    """

    def __init__(
        self,
        initial_difficulty: float,
        target_interval: float,
        window: int = 50,
        max_adjustment: float = 4.0,
    ) -> None:
        self._difficulty = ensure_positive_float(
            "initial_difficulty", initial_difficulty
        )
        self.target_interval = ensure_positive_float(
            "target_interval", target_interval
        )
        self.window = ensure_positive_int("window", window)
        self.max_adjustment = ensure_positive_float("max_adjustment", max_adjustment)
        if self.max_adjustment < 1.0:
            raise ValueError("max_adjustment must be at least 1")
        self._window_start_time = 0.0
        self._blocks_in_window = 0
        self.retarget_count = 0

    @property
    def difficulty(self) -> float:
        """The current difficulty ``D``."""
        return self._difficulty

    def observe_block(self, timestamp: float) -> bool:
        """Record an accepted block; returns True if a retarget fired.

        Higher observed intervals mean blocks are too *slow*, so the
        difficulty (success threshold) must *rise* to make the lottery
        easier — note this substrate follows the paper's convention
        where larger ``D`` means easier blocks (``Hash < D``).
        """
        self._blocks_in_window += 1
        if self._blocks_in_window < self.window:
            return False
        elapsed = timestamp - self._window_start_time
        observed_interval = max(elapsed / self.window, 1e-12)
        scale = observed_interval / self.target_interval
        scale = min(max(scale, 1.0 / self.max_adjustment), self.max_adjustment)
        self._difficulty *= scale
        self._window_start_time = timestamp
        self._blocks_in_window = 0
        self.retarget_count += 1
        return True

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"DifficultyAdjuster(difficulty={self._difficulty:.4g}, "
            f"target_interval={self.target_interval}, window={self.window})"
        )
