"""A fee-prioritised transaction pool."""

from __future__ import annotations

import heapq
import itertools
from typing import Dict, List, Optional, Tuple

from .transactions import Transaction

__all__ = ["Mempool"]


class Mempool:
    """Pending transactions ordered by fee (highest first), FIFO on ties.

    Parameters
    ----------
    capacity:
        Maximum number of pending transactions; adding beyond capacity
        evicts the lowest-fee transaction (rejecting the newcomer if it
        is itself the lowest).

    Notes
    -----
    Duplicate ``(sender, nonce)`` pairs are rejected — the substrate's
    stand-in for replay protection.
    """

    def __init__(self, capacity: int = 10_000) -> None:
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity!r}")
        self.capacity = int(capacity)
        self._heap: List[Tuple[float, int, Transaction]] = []
        self._counter = itertools.count()
        self._index: Dict[tuple, Transaction] = {}

    def __len__(self) -> int:
        return len(self._index)

    def __contains__(self, transaction: Transaction) -> bool:
        return transaction.key() in self._index

    def add(self, transaction: Transaction) -> bool:
        """Add a transaction; returns False if rejected (duplicate/evicted)."""
        if transaction.key() in self._index:
            return False
        if len(self._index) >= self.capacity:
            lowest = self._peek_lowest()
            if lowest is not None and transaction.fee <= lowest.fee:
                return False
            self._evict_lowest()
        # Negative fee so the heap pops highest-fee first.
        heapq.heappush(
            self._heap, (-transaction.fee, next(self._counter), transaction)
        )
        self._index[transaction.key()] = transaction
        return True

    def _peek_lowest(self) -> Optional[Transaction]:
        live = [entry for entry in self._heap if entry[2].key() in self._index]
        if not live:
            return None
        return max(live, key=lambda entry: (entry[0], entry[1]))[2]

    def _evict_lowest(self) -> None:
        lowest = self._peek_lowest()
        if lowest is not None:
            del self._index[lowest.key()]

    def take(self, count: int) -> List[Transaction]:
        """Pop up to ``count`` highest-fee transactions."""
        if count < 0:
            raise ValueError("count must be non-negative")
        taken: List[Transaction] = []
        while self._heap and len(taken) < count:
            _, _, transaction = heapq.heappop(self._heap)
            if self._index.pop(transaction.key(), None) is not None:
                taken.append(transaction)
        return taken

    def clear(self) -> None:
        """Drop every pending transaction."""
        self._heap.clear()
        self._index.clear()
