"""SL-PoS and FSL-PoS staking nodes (Sections 2.3 and 6.2).

NXT's single-lottery scheme: when a block arrives, each miner's next
candidate gets one deterministic deadline

``time = basetime * Hash(pk, parent) / (2^256 * stake)``

and the earliest deadline is accepted.  :class:`SLPoSNode` implements
that literally; :class:`FSLPoSNode` applies the paper's treatment,

``time = basetime * (-ln(1 - Hash(pk, parent) / 2^256)) / stake``

turning the deadline exponential and the race proportional.
"""

from __future__ import annotations

import math

from .chain import Blockchain
from .hash_oracle import HashOracle
from .node import MiningNode

__all__ = ["SLPoSNode", "FSLPoSNode"]


class _PrefixDeadlineNode(MiningNode):
    """Shared batched-draw deadline machinery for SL/FSL nodes.

    Subclasses define :meth:`_deadline` — how a uniform draw becomes a
    waiting time; the guards, the lazily cached ``key+address`` digest
    prefix, and the draw itself live here once.
    """

    def _deadline(
        self, u: float, stake: float, start: float, basetime: float
    ) -> float:
        raise NotImplementedError

    def fast_proposal_deadline(
        self, chain: Blockchain, basetime: float, shared
    ) -> float:
        """Deadline from the cached digest prefix — bit-identical to
        :meth:`proposal_deadline`."""
        if shared.oracle is not self.oracle:
            return self.proposal_deadline(chain, basetime)
        if basetime <= 0.0:
            raise ValueError("basetime must be positive")
        stake = self.stake(chain)
        if stake <= 0.0:
            return math.inf
        prefix = self._deadline_prefix
        if prefix is None:
            prefix = self._deadline_prefix = self.oracle.prefix(self.address)
        u = HashOracle.fraction_tail(prefix, shared.parent_chunk())
        return self._deadline(u, stake, shared.parent_timestamp, basetime)


class SLPoSNode(_PrefixDeadlineNode):
    """A single-lottery proof-of-stake miner (NXT semantics)."""

    def proposal_deadline(self, chain: Blockchain, basetime: float) -> float:
        """Uniform waiting time inversely proportional to stake."""
        if basetime <= 0.0:
            raise ValueError("basetime must be positive")
        stake = self.stake(chain)
        if stake <= 0.0:
            return math.inf
        u = self.oracle.fraction(self.address, chain.tip.block_hash)
        return chain.tip.timestamp + basetime * u / stake

    def _deadline(
        self, u: float, stake: float, start: float, basetime: float
    ) -> float:
        return start + basetime * u / stake


class FSLPoSNode(_PrefixDeadlineNode):
    """A fair-single-lottery miner (the Section 6.2 treatment)."""

    def proposal_deadline(self, chain: Blockchain, basetime: float) -> float:
        """Exponential waiting time with rate proportional to stake."""
        if basetime <= 0.0:
            raise ValueError("basetime must be positive")
        stake = self.stake(chain)
        if stake <= 0.0:
            return math.inf
        u = self.oracle.fraction(self.address, chain.tip.block_hash)
        # -log1p(-u) = -ln(1 - u); u < 1 guaranteed by fraction().
        return chain.tip.timestamp + basetime * (-math.log1p(-u)) / stake

    def _deadline(
        self, u: float, stake: float, start: float, basetime: float
    ) -> float:
        return start + basetime * (-math.log1p(-u)) / stake
