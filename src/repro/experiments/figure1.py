"""Figure 1: the SL-PoS win probability and its drift field.

The paper's Figure 1 illustrates why SL-PoS monopolises: plotted
against the stake share ``z`` of miner A, the probability of winning
the next block lies *below* ``z`` for ``z < 1/2`` and *above* it for
``z > 1/2``, so the share is pushed towards the absorbing boundaries.
This experiment tabulates the win probability, the proportional
reference, and the stochastic-approximation drift ``f(z)``, and
reports the drift's zeros with their stability classes (the analytic
content of Theorem 4.9).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Tuple

import numpy as np

from ..theory.stochastic_approximation import (
    Stability,
    classify_zero,
    find_drift_zeros,
    sl_pos_drift,
    sl_pos_win_probability_from_share,
)
from .report import render_table

__all__ = ["Figure1Config", "Figure1Result", "run"]


@dataclass(frozen=True)
class Figure1Config:
    """Grid resolution for the drift tabulation."""

    points: int = 21

    def __post_init__(self) -> None:
        if self.points < 3:
            raise ValueError("points must be at least 3")


@dataclass
class Figure1Result:
    """Tabulated SL-PoS drift field and its rest points."""

    shares: np.ndarray
    win_probability: np.ndarray
    drift: np.ndarray
    zeros: List[Tuple[float, Stability]]
    config: Figure1Config = field(default_factory=Figure1Config)

    def render(self) -> str:
        rows = [
            [z, p, z, f]
            for z, p, f in zip(self.shares, self.win_probability, self.drift)
        ]
        table = render_table(
            ["share z", "Pr[win next block]", "proportional", "drift f(z)"],
            rows,
            title="Figure 1: SL-PoS win probability vs stake share",
        )
        zero_rows = [[z, s.value] for z, s in self.zeros]
        zeros_table = render_table(
            ["rest point", "stability"],
            zero_rows,
            title="Drift zeros (Theorem 4.9)",
        )
        return table + "\n\n" + zeros_table

    def to_dict(self) -> dict:
        return {
            "shares": self.shares.tolist(),
            "win_probability": self.win_probability.tolist(),
            "drift": self.drift.tolist(),
            "zeros": [[z, s.value] for z, s in self.zeros],
        }


def run(config: Figure1Config = Figure1Config()) -> Figure1Result:
    """Tabulate the Figure 1 curves and classify the drift zeros."""
    shares = np.linspace(0.0, 1.0, config.points)
    win_probability = np.asarray(sl_pos_win_probability_from_share(shares))
    drift = np.asarray(sl_pos_drift(shares))
    zeros = [
        (z, classify_zero(sl_pos_drift, z)) for z in find_drift_zeros(sl_pos_drift)
    ]
    return Figure1Result(
        shares=shares,
        win_probability=win_probability,
        drift=drift,
        zeros=zeros,
        config=config,
    )
