"""Figure 5: unfair probability under varying rewards ``w`` and ``v``.

Four panels, all with ``a = 0.2``, ``epsilon = delta = 0.1``:

* (a) ML-PoS, ``w`` in {1e-4, ..., 1e-1};
* (b) SL-PoS, same rewards;
* (c) C-PoS, same rewards with ``v = 0.1``;
* (d) C-PoS, ``w = 0.01`` with ``v`` in {0, 0.01, 0.1}.

Expected shapes (paper Section 5.4.2): ML-PoS unfairness grows sharply
with ``w`` (>=85% at ``w = 0.1``, tiny at ``w = 1e-4``); SL-PoS sits
near 1 for every ``w``; C-PoS mirrors ML-PoS far lower; raising ``v``
from 0 to 0.1 collapses the unfair probability from ~70% to ~10%.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

import numpy as np

from ..core.miners import Allocation
from ..protocols.c_pos import CompoundPoS
from ..protocols.ml_pos import MultiLotteryPoS
from ..protocols.sl_pos import SingleLotteryPoS
from ..sim.checkpoints import geometric_checkpoints
from ..sim.rng import RandomSource
from ._common import GridCell, run_simulation_grid
from .config import DEFAULT, Preset
from .report import render_table, subsample_rows

__all__ = ["Figure5Config", "Figure5Result", "run"]


@dataclass(frozen=True)
class Figure5Config:
    """Parameters of Figure 5 (paper defaults)."""

    share: float = 0.2
    rewards: Tuple[float, ...] = (1e-4, 1e-3, 1e-2, 1e-1)
    inflations: Tuple[float, ...] = (0.0, 0.01, 0.1)
    fixed_reward: float = 0.01
    fixed_inflation: float = 0.1
    shards: int = 32
    horizon: int = 2000
    epsilon: float = 0.1
    delta: float = 0.1
    preset: Preset = DEFAULT
    seed: int = 2021


@dataclass
class Figure5Result:
    """Unfair-probability series for the four panels."""

    config: Figure5Config
    checkpoints: np.ndarray
    ml_pos_by_reward: Dict[float, np.ndarray]
    sl_pos_by_reward: Dict[float, np.ndarray]
    c_pos_by_reward: Dict[float, np.ndarray]
    c_pos_by_inflation: Dict[float, np.ndarray]

    def _panel(self, title: str, series: Dict[float, np.ndarray], label: str,
               max_rows: int) -> str:
        headers = ["n"] + [f"{label}={key:g}" for key in sorted(series)]
        rows = []
        for i, n in enumerate(self.checkpoints):
            rows.append([int(n)] + [float(series[key][i]) for key in sorted(series)])
        return render_table(headers, subsample_rows(rows, max_rows), title=title)

    def render(self, *, max_rows: int = 10) -> str:
        return "\n\n".join(
            [
                self._panel(
                    "Figure 5(a): ML-PoS unfair probability by block reward",
                    self.ml_pos_by_reward, "w", max_rows,
                ),
                self._panel(
                    "Figure 5(b): SL-PoS unfair probability by block reward",
                    self.sl_pos_by_reward, "w", max_rows,
                ),
                self._panel(
                    f"Figure 5(c): C-PoS unfair probability by proposer reward "
                    f"(v={self.config.fixed_inflation:g})",
                    self.c_pos_by_reward, "w", max_rows,
                ),
                self._panel(
                    f"Figure 5(d): C-PoS unfair probability by inflation reward "
                    f"(w={self.config.fixed_reward:g})",
                    self.c_pos_by_inflation, "v", max_rows,
                ),
            ]
        )

    def to_dict(self) -> dict:
        def pack(series: Dict[float, np.ndarray]) -> dict:
            return {f"{k:g}": v.tolist() for k, v in series.items()}

        return {
            "checkpoints": self.checkpoints.tolist(),
            "ml_pos_by_reward": pack(self.ml_pos_by_reward),
            "sl_pos_by_reward": pack(self.sl_pos_by_reward),
            "c_pos_by_reward": pack(self.c_pos_by_reward),
            "c_pos_by_inflation": pack(self.c_pos_by_inflation),
        }


def run(config: Figure5Config = Figure5Config()) -> Figure5Result:
    """Run the Figure 5 experiment."""
    preset = config.preset
    source = RandomSource(config.seed)
    horizon = preset.horizon(config.horizon)
    checkpoints = geometric_checkpoints(horizon, count=30, first=10)
    allocation = Allocation.two_miners(config.share)

    # All four panels as one grid, in the panel order the per-cell
    # loops used to consume child streams: (a) ML-PoS by w, (b) SL-PoS
    # by w, (c) C-PoS by w, (d) C-PoS by v.  For panel (d), Theorem
    # 4.10 degenerates to ML-PoS sharded over P blocks at v=0;
    # CompoundPoS supports v=0 directly.
    protocols = (
        [MultiLotteryPoS(w) for w in config.rewards]
        + [SingleLotteryPoS(w) for w in config.rewards]
        + [
            CompoundPoS(w, config.fixed_inflation, config.shards)
            for w in config.rewards
        ]
        + [
            CompoundPoS(config.fixed_reward, v, config.shards)
            for v in config.inflations
        ]
    )
    cells = [
        GridCell(protocol, allocation, horizon, preset.trials, checkpoints)
        for protocol in protocols
    ]
    unfair = [
        result.unfair_probabilities(epsilon=config.epsilon)
        for result in run_simulation_grid(cells, source)
    ]

    panels = iter(unfair)
    ml_pos = {w: next(panels) for w in config.rewards}
    sl_pos = {w: next(panels) for w in config.rewards}
    c_pos_w = {w: next(panels) for w in config.rewards}
    c_pos_v = {v: next(panels) for v in config.inflations}

    return Figure5Result(
        config=config,
        checkpoints=np.asarray(checkpoints),
        ml_pos_by_reward=ml_pos,
        sl_pos_by_reward=sl_pos,
        c_pos_by_reward=c_pos_w,
        c_pos_by_inflation=c_pos_v,
    )
