"""Registry mapping experiment ids to their runners.

Each entry couples the paper artefact (figure/table number), a short
description of the expected shape, and the ``run`` callable.  The
benchmarks and the CLI both resolve experiments through this table, so
DESIGN.md's per-experiment index has a single executable counterpart.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Callable, Dict, Optional

from . import figure1, figure2, figure3, figure4, figure5, figure6, section64, table1
from .config import DEFAULT, Preset

__all__ = ["Experiment", "EXPERIMENTS", "get_experiment", "run_experiment"]


@dataclass(frozen=True)
class Experiment:
    """A registered paper artefact reproduction."""

    key: str
    artefact: str
    description: str
    run: Callable
    config_type: Optional[type]

    def run_with_preset(self, preset: Preset, seed: Optional[int] = None):
        """Run with a preset (and optional seed) applied to the config."""
        if self.config_type is None:
            return self.run()
        kwargs = {"preset": preset}
        if seed is not None:
            kwargs["seed"] = seed
        return self.run(self.config_type(**kwargs))


EXPERIMENTS: Dict[str, Experiment] = {
    "fig1": Experiment(
        key="fig1",
        artefact="Figure 1",
        description="SL-PoS win probability and SA drift with rest points",
        run=figure1.run,
        config_type=None,
    ),
    "fig2": Experiment(
        key="fig2",
        artefact="Figure 2",
        description="lambda_A evolution for PoW / ML-PoS / SL-PoS / C-PoS",
        run=figure2.run,
        config_type=figure2.Figure2Config,
    ),
    "fig3": Experiment(
        key="fig3",
        artefact="Figure 3",
        description="unfair probability vs n for varying initial shares",
        run=figure3.run,
        config_type=figure3.Figure3Config,
    ),
    "fig4": Experiment(
        key="fig4",
        artefact="Figure 4",
        description="SL-PoS mean lambda_A under varying a and w",
        run=figure4.run,
        config_type=figure4.Figure4Config,
    ),
    "fig5": Experiment(
        key="fig5",
        artefact="Figure 5",
        description="unfair probability under varying w and v",
        run=figure5.run,
        config_type=figure5.Figure5Config,
    ),
    "fig6": Experiment(
        key="fig6",
        artefact="Figure 6",
        description="FSL-PoS treatment and reward withholding",
        run=figure6.run,
        config_type=figure6.Figure6Config,
    ),
    "tab1": Experiment(
        key="tab1",
        artefact="Table 1",
        description="multi-miner game: avg lambda_A, unfair prob, convergence",
        run=table1.run,
        config_type=table1.Table1Config,
    ),
    "sec64": Experiment(
        key="sec64",
        artefact="Section 6.4",
        description="executable survey of NEO/Algorand/EOS/Wave/Vixify/Filecoin",
        run=section64.run,
        config_type=section64.Section64Config,
    ),
}


def get_experiment(key: str) -> Experiment:
    """Look up an experiment by id ('fig1'..'fig6', 'tab1')."""
    try:
        return EXPERIMENTS[key]
    except KeyError:
        raise ValueError(
            f"unknown experiment {key!r}; expected one of {sorted(EXPERIMENTS)}"
        ) from None


def run_experiment(
    key: str,
    preset: Preset = DEFAULT,
    seed: Optional[int] = None,
    *,
    runtime=None,
):
    """Resolve and run an experiment with the given preset.

    ``runtime`` (a :class:`~repro.runtime.ParallelRunner`) scopes
    sharded parallel execution and result caching over the run; None
    keeps whatever ambient runtime is already configured.
    """
    experiment = get_experiment(key)
    if runtime is None:
        return experiment.run_with_preset(preset, seed)
    from ..runtime import using_runtime

    with using_runtime(runtime):
        return experiment.run_with_preset(preset, seed)
