"""Command-line entry point: ``repro-experiments``.

Examples
--------
Run one experiment at CI scale::

    repro-experiments fig2 --preset ci

Run everything at paper scale, saving JSON series next to the text::

    repro-experiments all --preset paper --json results/

"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys
import time
from typing import List, Optional

from ..obs import (
    MetricsRegistry,
    Tracer,
    render_cache_stats,
    render_metrics,
    render_summary,
    summarize_spans,
    using_metrics,
    using_tracer,
)
from ..runtime import EXECUTOR_BACKENDS, ParallelRunner, using_runtime
from .config import get_preset
from .registry import EXPERIMENTS, get_experiment

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    """The CLI argument parser (exposed for tests)."""
    parser = argparse.ArgumentParser(
        prog="repro-experiments",
        description=(
            "Reproduce the figures and tables of 'Do the Rich Get Richer? "
            "Fairness Analysis for Blockchain Incentives' (SIGMOD 2021)."
        ),
    )
    parser.add_argument(
        "experiment",
        choices=sorted(EXPERIMENTS) + ["all", "cache-stats"],
        help="experiment id, 'all', or 'cache-stats' (print the "
        "hit/miss/eviction/occupancy stats of a --cache directory and "
        "exit)",
    )
    parser.add_argument(
        "--preset",
        default="default",
        choices=["paper", "default", "ci"],
        help="Monte Carlo scale preset (default: default)",
    )
    parser.add_argument(
        "--seed", type=int, default=None, help="override the experiment seed"
    )
    parser.add_argument(
        "--no-system",
        action="store_true",
        help="skip the node-level chainsim runs",
    )
    parser.add_argument(
        "--json",
        type=pathlib.Path,
        default=None,
        metavar="DIR",
        help="also write <experiment>.json series into DIR",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=1,
        metavar="N",
        help="fan Monte Carlo / system ensembles out over N processes "
        "(sharded runs are reproducible across any N, but use a "
        "different stream layout than the plain serial path)",
    )
    parser.add_argument(
        "--cache",
        type=pathlib.Path,
        default=None,
        metavar="DIR",
        help="content-addressed result cache; reruns of an identical "
        "spec load instead of simulating",
    )
    parser.add_argument(
        "--cache-budget",
        default=None,
        metavar="BYTES",
        help="size budget for --cache (accepts K/M/G suffixes, e.g. "
        "500M); least-recently-used artifacts are evicted once a "
        "write exceeds it",
    )
    parser.add_argument(
        "--no-verify",
        action="store_true",
        help="skip SHA-256 digest verification on cache reads (on by "
        "default: artifacts whose bytes no longer match their recorded "
        "digest are quarantined and recomputed).  Requires --cache; "
        "never changes results or cache keys",
    )
    parser.add_argument(
        "--backend",
        default=None,
        choices=list(EXECUTOR_BACKENDS),
        help="how --workers fan out: OS processes (default), or "
        "threads — cheaper start-up, no pickling; pays off because "
        "the batched NumPy kernels release the GIL.  Requires "
        "--workers > 1 or --cache",
    )
    parser.add_argument(
        "--stream",
        dest="stream",
        action="store_true",
        default=None,
        help="fold shard results as they complete (the default): peak "
        "memory stays O(workers) shard results instead of O(shards), "
        "bit-identical to the batch merge.  Requires --workers > 1 "
        "or --cache",
    )
    parser.add_argument(
        "--no-stream",
        dest="stream",
        action="store_false",
        help="collect every shard result before merging (the "
        "pre-streaming path; same bits, higher peak memory)",
    )
    parser.add_argument(
        "--reduce",
        default="full",
        choices=["full", "stats"],
        help="ensemble artifact shape: 'full' (default) keeps every "
        "trial's trajectory; 'stats' folds shards straight into "
        "mergeable sufficient statistics, so figure-scale series come "
        "out in bounded memory at population-scale trial counts.  A "
        "physics knob — unlike --backend/--stream it enters cache "
        "fingerprints, so the two modes never share cache entries",
    )
    parser.add_argument(
        "--retries",
        type=int,
        default=None,
        metavar="N",
        help="retry each failed shard up to N total attempts with "
        "exponential backoff (transient failures only: worker "
        "timeouts, crashes, broken pools, I/O errors).  Shards are "
        "idempotent pure functions of the plan, so retried runs stay "
        "bit-identical and retry knobs never enter cache keys.  "
        "Requires --workers > 1 or --cache",
    )
    parser.add_argument(
        "--shard-timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help="per-shard deadline: a worker that exceeds it is "
        "abandoned (threads) or its pool respawned (processes) and "
        "the shard counted as a transient failure, retryable under "
        "--retries.  Requires --workers > 1 or --cache",
    )
    parser.add_argument(
        "--resume",
        action="store_true",
        help="journal per-spec shard completion to "
        "<cache>/journal.jsonl and, on rerun, recompute only "
        "unjournaled shards — resuming a killed grid.  Requires "
        "--cache; never changes results or cache keys",
    )
    parser.add_argument(
        "--trace",
        type=pathlib.Path,
        default=None,
        metavar="PATH",
        help="record a span trace of the run (runner dispatch, per-"
        "shard submit/run/complete/merge, cache and kernel activity) "
        "as a JSONL file at PATH, and print the span summary table; "
        "inspect later with 'repro-trace summarize PATH'.  Tracing "
        "never changes results or cache keys",
    )
    parser.add_argument(
        "--metrics",
        action="store_true",
        help="collect runtime metrics (counters/histograms across "
        "runner, cache and kernels) and print the registry at the "
        "end of the run",
    )
    return parser


def _run_one(key: str, preset, seed: Optional[int], json_dir) -> str:
    experiment = get_experiment(key)
    start = time.perf_counter()
    result = experiment.run_with_preset(preset, seed)
    elapsed = time.perf_counter() - start
    text = result.render()
    banner = (
        f"=== {experiment.artefact} [{key}] "
        f"(preset={preset.name}, {elapsed:.1f}s) ==="
    )
    if json_dir is not None:
        json_dir.mkdir(parents=True, exist_ok=True)
        path = json_dir / f"{key}.json"
        with open(path, "w") as handle:
            json.dump(result.to_dict(), handle, indent=2)
    return f"{banner}\n{text}\n"


class _ShardProgress:
    """Render ``(completed, total)`` shard callbacks as one stderr line.

    A whole figure grid goes through a single pool dispatch, so the
    line counts shards across every cell of the grid; it is rewritten
    in place (carriage return) and finished with a newline when the
    dispatch completes.  On the (default) streaming path the count is
    of *merged* shards — the plan-order fold cursor — not dispatched
    ones, so ``k`` can never overshoot ``N`` when a shard fails
    mid-grid and the completed specs are salvaged.

    Retried shards never double-count: ``k`` advances once per shard's
    *final* outcome, while retries accumulate in a separate tally that
    is appended to the line (``[shards k/N, retries R]``) once any
    shard has been retried.
    """

    def __init__(self, stream=None) -> None:
        self.stream = sys.stderr if stream is None else stream
        self._open_line = False
        self.retries = 0
        self._last = (0, 0)

    def _render(self, completed: int, total: int) -> None:
        tail = f", retries {self.retries}" if self.retries else ""
        end = "\n" if completed >= total else ""
        self.stream.write(f"\r[shards {completed}/{total}{tail}]{end}")
        self.stream.flush()
        self._open_line = end == ""
        self._last = (completed, total)

    def __call__(self, completed: int, total: int) -> None:
        self._render(completed, total)

    def retry(self, task: int, attempt: int) -> None:
        """Tally one shard retry (called by the runner's retry listener)."""
        self.retries += 1
        if self._open_line:
            self._render(*self._last)

    def close(self) -> None:
        """Terminate an unfinished progress line.

        The runner calls this on both success and failure paths, so a
        ``ShardExecutionError`` traceback starts on its own line
        instead of printing after a half-written ``[shards k/N]``.
        """
        if self._open_line:
            self.stream.write("\n")
            self.stream.flush()
            self._open_line = False


def _parse_bytes(text: str) -> int:
    """Parse a byte count with an optional K/M/G suffix (base 1024)."""
    scales = {"K": 1 << 10, "M": 1 << 20, "G": 1 << 30}
    cleaned = text.strip().upper()
    if cleaned.endswith("B"):
        cleaned = cleaned[:-1]
    scale = 1
    if cleaned and cleaned[-1] in scales:
        scale = scales[cleaned[-1]]
        cleaned = cleaned[:-1]
    try:
        value = int(cleaned)
    except ValueError:
        raise SystemExit(
            f"--cache-budget expects an integer with optional K/M/G "
            f"suffix, got {text!r}"
        ) from None
    if value <= 0:
        raise SystemExit(f"--cache-budget must be positive, got {text!r}")
    return value * scale


def _build_runtime(args) -> Optional[ParallelRunner]:
    """The ParallelRunner the CLI flags ask for, or None for the old path."""
    if args.workers < 1:
        raise SystemExit(f"--workers must be >= 1, got {args.workers}")
    if args.cache_budget is not None and args.cache is None:
        raise SystemExit("--cache-budget requires --cache")
    if args.retries is not None and args.retries < 1:
        raise SystemExit(f"--retries must be >= 1, got {args.retries}")
    if args.shard_timeout is not None and args.shard_timeout <= 0:
        raise SystemExit(
            f"--shard-timeout must be positive, got {args.shard_timeout}"
        )
    if args.resume and args.cache is None:
        raise SystemExit("--resume requires --cache")
    if args.no_verify and args.cache is None:
        raise SystemExit("--no-verify requires --cache")
    if args.workers == 1 and args.cache is None and args.reduce == "full":
        # --reduce stats is excepted: the serial fallback would
        # silently ignore the knob, so it always gets a runner (the
        # runtime path is where stats shards are produced and merged).
        if args.backend is not None:
            # Mirror MiningGame.simulate: raise rather than silently
            # dropping a knob that cannot take effect in-process.
            raise SystemExit(
                "--backend requires --workers > 1 or --cache"
            )
        if args.stream is not None:
            raise SystemExit(
                "--stream/--no-stream requires --workers > 1 or --cache"
            )
        if args.retries is not None:
            raise SystemExit("--retries requires --workers > 1 or --cache")
        if args.shard_timeout is not None:
            raise SystemExit(
                "--shard-timeout requires --workers > 1 or --cache"
            )
        return None
    cache = args.cache
    if cache is not None and (args.cache_budget is not None or args.no_verify):
        from ..runtime import ResultCache

        budget = (
            _parse_bytes(args.cache_budget)
            if args.cache_budget is not None
            else None
        )
        cache = ResultCache(
            cache, max_bytes=budget, verify=not args.no_verify
        )
    journal = None
    if args.resume:
        cache_dir = getattr(cache, "directory", None) or pathlib.Path(
            args.cache
        )
        journal = pathlib.Path(cache_dir) / "journal.jsonl"
    try:
        return ParallelRunner(
            workers=args.workers,
            cache=cache,
            backend=args.backend or "processes",
            progress=_ShardProgress(),
            stream=True if args.stream is None else args.stream,
            retry=args.retries,
            timeout=args.shard_timeout,
            journal=journal,
            reduce=args.reduce,
        )
    except ValueError as error:
        raise SystemExit(str(error))


def _cache_stats(args) -> int:
    """The ``cache-stats`` subcommand: report on a cache directory."""
    if args.cache is None:
        raise SystemExit("cache-stats requires --cache DIR")
    from ..runtime import ResultCache

    cache = ResultCache(args.cache)
    stats = cache.stats()
    print(f"cache directory: {args.cache}")
    print(render_cache_stats(stats))
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns a process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.experiment == "cache-stats":
        return _cache_stats(args)
    preset = get_preset(args.preset)
    if args.no_system:
        preset = preset.with_system(False)
    keys = sorted(EXPERIMENTS) if args.experiment == "all" else [args.experiment]
    tracer = Tracer() if args.trace is not None else None
    metrics = MetricsRegistry() if args.metrics else None
    with using_tracer(tracer), using_metrics(metrics):
        with using_runtime(_build_runtime(args)):
            for key in keys:
                print(_run_one(key, preset, args.seed, args.json))
    if tracer is not None:
        spans = tracer.spans
        tracer.write(args.trace)
        print(render_summary(summarize_spans(spans)))
        print(
            f"[trace] wrote {len(spans)} spans to {args.trace}",
            file=sys.stderr,
        )
    if metrics is not None:
        print(render_metrics(metrics.snapshot()))
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
