"""Figure 6: the FSL-PoS treatment and reward withholding.

Evaluates the paper's two SL-PoS remedies at ``a = 0.2``,
``w = 0.01``:

* panel (a): FSL-PoS — the corrected exponential-deadline lottery
  restores ``E[lambda_A] = 0.2`` (expectational fairness) but the
  envelope stays wide (no robust fairness at this ``w``);
* panel (b): FSL-PoS with rewards vesting at the next multiple of
  1,000 blocks — the envelope collapses into the fair area.

The node-level system bars rerun both panels on the chainsim
substrate: the paper patched NXT, we patch :class:`SLPoSNode` into
:class:`FSLPoSNode` for panel (a) and run the vesting ledger
(:class:`~repro.chainsim.VestingBlockchain`) for panel (b).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from ..core.miners import Allocation
from ..core.results import SeriesSummary
from ..chainsim.harness import SystemExperiment
from ..protocols.fsl_pos import FairSingleLotteryPoS
from ..protocols.withholding import RewardWithholding
from ..sim.rng import RandomSource
from ._common import SystemGridCell, run_simulation, run_system_grid
from .config import DEFAULT, Preset
from .report import render_table, subsample_rows

__all__ = ["Figure6Config", "Figure6Result", "run"]


@dataclass(frozen=True)
class Figure6Config:
    """Parameters of Figure 6 (paper defaults)."""

    share: float = 0.2
    reward: float = 0.01
    vesting_period: int = 1000
    horizon: int = 5000
    epsilon: float = 0.1
    preset: Preset = DEFAULT
    seed: int = 2021


@dataclass
class Figure6Result:
    """Evolution series of the two remedies."""

    config: Figure6Config
    fsl: SeriesSummary
    fsl_withholding: SeriesSummary
    system_fsl: Optional[SeriesSummary] = None
    system_withholding: Optional[SeriesSummary] = None

    def render(self, *, max_rows: int = 12) -> str:
        def table(summary: SeriesSummary, title: str) -> str:
            rows = [
                [int(n), m, lo, hi]
                for n, m, lo, hi in zip(
                    summary.checkpoints, summary.mean, summary.lower, summary.upper
                )
            ]
            return render_table(
                ["n", "mean", "p5", "p95"], subsample_rows(rows, max_rows), title=title
            )

        sections = [
            table(self.fsl, "Figure 6(a): FSL-PoS lambda_A evolution"),
            table(
                self.fsl_withholding,
                f"Figure 6(b): FSL-PoS with reward withholding "
                f"(vesting period {self.config.vesting_period})",
            ),
        ]
        if self.system_fsl is not None:
            sections.append(
                table(self.system_fsl, "Figure 6(a): node-level system runs")
            )
        if self.system_withholding is not None:
            sections.append(
                table(
                    self.system_withholding,
                    "Figure 6(b): node-level system runs (vesting ledger)",
                )
            )
        return "\n\n".join(sections)

    def to_dict(self) -> dict:
        def pack(summary: Optional[SeriesSummary]) -> Optional[dict]:
            if summary is None:
                return None
            return {
                "checkpoints": summary.checkpoints.tolist(),
                "mean": summary.mean.tolist(),
                "p5": summary.lower.tolist(),
                "p95": summary.upper.tolist(),
            }

        return {
            "fsl": pack(self.fsl),
            "fsl_withholding": pack(self.fsl_withholding),
            "system_fsl": pack(self.system_fsl),
            "system_withholding": pack(self.system_withholding),
        }


def run(config: Figure6Config = Figure6Config()) -> Figure6Result:
    """Run the Figure 6 experiment."""
    preset = config.preset
    source = RandomSource(config.seed)
    horizon = preset.horizon(config.horizon)
    allocation = Allocation.two_miners(config.share)

    fsl_result = run_simulation(
        FairSingleLotteryPoS(config.reward), allocation, horizon,
        preset.trials, source,
    )
    vesting = max(2, preset.horizon(config.vesting_period))
    withhold_result = run_simulation(
        RewardWithholding(FairSingleLotteryPoS(config.reward), vesting),
        allocation, horizon, preset.trials, source,
    )

    system_fsl = None
    system_withholding = None
    if preset.include_system:
        # Both panels' node-level runs form one grid: a single pool
        # dispatch covers them when an ambient runtime is configured.
        rounds = preset.horizon(1500)
        system_cells = [
            SystemGridCell(
                SystemExperiment("fsl-pos", allocation, reward=config.reward),
                rounds=rounds,
                repeats=preset.system_repeats_pos,
            ),
            SystemGridCell(
                SystemExperiment(
                    "fsl-pos-withhold",
                    allocation,
                    reward=config.reward,
                    vesting_period=max(2, min(vesting, rounds)),
                ),
                rounds=rounds,
                repeats=preset.system_repeats_pos,
            ),
        ]
        system, withhold_system = run_system_grid(system_cells, source)
        system_fsl = system.summary(epsilon=config.epsilon)
        system_withholding = withhold_system.summary(epsilon=config.epsilon)

    return Figure6Result(
        config=config,
        fsl=fsl_result.summary(epsilon=config.epsilon),
        fsl_withholding=withhold_result.summary(epsilon=config.epsilon),
        system_fsl=system_fsl,
        system_withholding=system_withholding,
    )
