"""Shared experiment configuration and scale presets.

Every experiment accepts a :class:`Preset` bundling the Monte Carlo
scale knobs.  Three stock presets:

* ``PAPER`` — the paper's scale: 10,000 simulation trials; system
  experiments with 10 repeats for PoW and 500 for PoS (Section 5.1).
* ``DEFAULT`` — same horizons, fewer trials; minutes-not-hours on a
  laptop while preserving every qualitative shape.
* ``CI`` — seconds-scale for tests and benchmarks.

The per-figure horizons live in the experiment modules (they are part
of what the paper specifies); presets only scale sampling effort.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from .._validation import ensure_positive_int

__all__ = ["Preset", "PAPER", "DEFAULT", "CI", "get_preset"]


@dataclass(frozen=True)
class Preset:
    """Monte Carlo scale knobs shared by all experiments.

    Attributes
    ----------
    name:
        Preset identifier.
    trials:
        Simulation trials per configuration (the paper uses 10,000).
    heavy_trials:
        Trials for long-horizon configurations (Figure 4's 100,000
        block runs) where the per-trial cost is ~20x higher.
    system_repeats_pow / system_repeats_pos:
        Chainsim repeats standing in for the paper's 10 PoW / 500 PoS
        AWS repeats.
    horizon_scale:
        Multiplier applied to the paper's horizons (CI shrinks them).
    include_system:
        Whether experiments also run the node-level substrate.
    """

    name: str
    trials: int
    heavy_trials: int
    system_repeats_pow: int
    system_repeats_pos: int
    horizon_scale: float
    include_system: bool

    def __post_init__(self) -> None:
        ensure_positive_int("trials", self.trials)
        ensure_positive_int("heavy_trials", self.heavy_trials)
        ensure_positive_int("system_repeats_pow", self.system_repeats_pow)
        ensure_positive_int("system_repeats_pos", self.system_repeats_pos)
        if self.horizon_scale <= 0.0 or self.horizon_scale > 1.0:
            raise ValueError("horizon_scale must be in (0, 1]")

    def horizon(self, paper_horizon: int) -> int:
        """The paper horizon scaled to this preset (at least 10 rounds)."""
        ensure_positive_int("paper_horizon", paper_horizon)
        return max(10, int(round(paper_horizon * self.horizon_scale)))

    def with_system(self, include: bool) -> "Preset":
        """Copy of this preset with ``include_system`` overridden."""
        return replace(self, include_system=include)


PAPER = Preset(
    name="paper",
    trials=10_000,
    heavy_trials=2_000,
    system_repeats_pow=10,
    system_repeats_pos=500,
    horizon_scale=1.0,
    include_system=True,
)

DEFAULT = Preset(
    name="default",
    trials=2_000,
    heavy_trials=500,
    system_repeats_pow=5,
    system_repeats_pos=50,
    horizon_scale=1.0,
    include_system=True,
)

CI = Preset(
    name="ci",
    trials=300,
    heavy_trials=100,
    system_repeats_pow=2,
    system_repeats_pos=8,
    horizon_scale=0.1,
    include_system=False,
)

_PRESETS = {preset.name: preset for preset in (PAPER, DEFAULT, CI)}


def get_preset(name: str) -> Preset:
    """Look up a stock preset by name ('paper', 'default', 'ci')."""
    try:
        return _PRESETS[name]
    except KeyError:
        raise ValueError(
            f"unknown preset {name!r}; expected one of {sorted(_PRESETS)}"
        ) from None
