"""Figure 3: unfair probability vs block count under varying ``a``.

For each protocol and each initial share ``a`` in {0.1, ..., 0.5}, the
experiment tracks ``Pr[lambda_A outside the fair area]`` as blocks
accumulate (``w = 0.01``, ``v = 0.1``, ``epsilon = 0.1``).

Expected shapes (paper Section 5.4.1):

* PoW — unfair probability decays to ~0; faster for larger ``a``
  (fairness after <800 blocks at ``a = 0.3`` vs >2,000 at ``a = 0.1``);
* ML-PoS — decays then *plateaus* above ``delta = 0.1``; richer miners
  plateau lower;
* SL-PoS — *increases* to 1 for every ``a < 0.5``;
* C-PoS — like ML-PoS but far lower; drops below ``delta`` for
  moderate ``a``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Tuple

import numpy as np

from ..core.metrics import convergence_time
from ..core.miners import Allocation
from ..sim.checkpoints import geometric_checkpoints
from ..sim.rng import RandomSource
from ._common import (
    PAPER_PROTOCOL_ORDER,
    GridCell,
    build_protocol,
    run_simulation_grid,
)
from .config import DEFAULT, Preset
from .report import render_table, subsample_rows

__all__ = ["Figure3Config", "Figure3Result", "run"]


@dataclass(frozen=True)
class Figure3Config:
    """Parameters of Figure 3 (paper defaults)."""

    shares: Tuple[float, ...] = (0.1, 0.2, 0.3, 0.4, 0.5)
    reward: float = 0.01
    inflation: float = 0.1
    shards: int = 32
    horizon: int = 3000
    epsilon: float = 0.1
    delta: float = 0.1
    preset: Preset = DEFAULT
    seed: int = 2021


@dataclass
class Figure3Result:
    """Unfair-probability series keyed by (protocol, share)."""

    config: Figure3Config
    checkpoints: np.ndarray
    series: Dict[Tuple[str, float], np.ndarray]
    convergence: Dict[Tuple[str, float], float] = field(default_factory=dict)

    def render(self, *, max_rows: int = 10) -> str:
        sections = []
        for protocol in PAPER_PROTOCOL_ORDER:
            shares = [s for (p, s) in self.series if p == protocol]
            headers = ["n"] + [f"a={share:g}" for share in sorted(shares)]
            rows = []
            for i, n in enumerate(self.checkpoints):
                row = [int(n)] + [
                    float(self.series[(protocol, share)][i])
                    for share in sorted(shares)
                ]
                rows.append(row)
            sections.append(
                render_table(
                    headers,
                    subsample_rows(rows, max_rows),
                    title=f"Figure 3 ({protocol}): unfair probability vs n "
                    f"(delta={self.config.delta})",
                )
            )
            conv_rows = [
                [f"a={share:g}", self.convergence.get((protocol, share), float("inf"))]
                for share in sorted(shares)
            ]
            sections.append(
                render_table(
                    ["share", "convergence n"],
                    conv_rows,
                    title=f"{protocol}: first sustained (eps,delta)-fair checkpoint",
                )
            )
        return "\n\n".join(sections)

    def to_dict(self) -> dict:
        return {
            "checkpoints": self.checkpoints.tolist(),
            "series": {
                f"{p}|{s:g}": values.tolist()
                for (p, s), values in self.series.items()
            },
            "convergence": {
                f"{p}|{s:g}": value for (p, s), value in self.convergence.items()
            },
        }


def run(config: Figure3Config = Figure3Config()) -> Figure3Result:
    """Run the Figure 3 experiment."""
    preset = config.preset
    source = RandomSource(config.seed)
    horizon = preset.horizon(config.horizon)
    checkpoints = geometric_checkpoints(horizon, count=40, first=10)

    grid = [
        (protocol_name, share)
        for protocol_name in PAPER_PROTOCOL_ORDER
        for share in config.shares
    ]
    cells = [
        GridCell(
            build_protocol(
                protocol_name,
                reward=config.reward,
                inflation=config.inflation,
                shards=config.shards,
            ),
            Allocation.two_miners(share),
            horizon,
            preset.trials,
            checkpoints,
        )
        for protocol_name, share in grid
    ]
    results = run_simulation_grid(cells, source)

    series: Dict[Tuple[str, float], np.ndarray] = {}
    convergence: Dict[Tuple[str, float], float] = {}
    for (protocol_name, share), result in zip(grid, results):
        unfair = result.unfair_probabilities(epsilon=config.epsilon)
        series[(protocol_name, share)] = unfair
        convergence[(protocol_name, share)] = convergence_time(
            result.checkpoints, unfair, config.delta
        )
    return Figure3Result(
        config=config,
        checkpoints=np.asarray(checkpoints),
        series=series,
        convergence=convergence,
    )
