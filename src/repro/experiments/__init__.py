"""Reproductions of every evaluation artefact in the paper.

One module per figure/table (``figure1`` ... ``figure6``, ``table1``),
each exposing a frozen ``Config`` dataclass with the paper's defaults
and a ``run(config)`` returning a result object with ``render()`` and
``to_dict()``.  The :mod:`~repro.experiments.registry` maps experiment
ids to runners; :mod:`~repro.experiments.runner` is the
``repro-experiments`` CLI.
"""

from . import (
    figure1,
    figure2,
    figure3,
    figure4,
    figure5,
    figure6,
    section64,
    table1,
)
from .config import CI, DEFAULT, PAPER, Preset, get_preset
from .registry import EXPERIMENTS, Experiment, get_experiment, run_experiment

__all__ = [
    "figure1",
    "figure2",
    "figure3",
    "figure4",
    "figure5",
    "figure6",
    "section64",
    "table1",
    "CI",
    "DEFAULT",
    "PAPER",
    "Preset",
    "get_preset",
    "EXPERIMENTS",
    "Experiment",
    "get_experiment",
    "run_experiment",
]
