"""Section 6.4 — fairness of the six additional incentive protocols.

The paper surveys NEO, Algorand, EOS, Wave, Vixify and Filecoin
*qualitatively*; this experiment turns the survey into numbers by
running every model through the same fairness pipeline as the four
main protocols.  Expected verdicts (Section 6.4):

* NEO — both fairness types (PoW-like: rewards never compound);
* Algorand — absolutely fair ((0, 0): deterministic proportional);
* EOS — neither (flat proposer reward distorts expectations);
* Wave / Vixify — expectational yes, robust no at sizeable ``w``
  (ML-PoS/FSL-PoS profile);
* Filecoin — expectational yes; robustness between PoW and ML-PoS
  depending on the storage weight.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from ..analysis.equitability import equitability
from ..core.fairness import DEFAULT_DELTA, DEFAULT_EPSILON
from ..core.miners import Allocation
from ..protocols.base import IncentiveProtocol
from ..protocols.extended import (
    AlgorandPoS,
    EOSDelegatedPoS,
    FilecoinStorage,
    NeoPoS,
    VixifyPoS,
    WavePoS,
)
from ..sim.rng import RandomSource
from ._common import GridCell, run_simulation_grid
from .config import DEFAULT, Preset
from .report import render_table

__all__ = ["Section64Config", "Section64Row", "Section64Result", "run"]


@dataclass(frozen=True)
class Section64Config:
    """Parameters of the Section 6.4 survey.

    The allocation is deliberately *asymmetric* (A below the equal
    split) so that flat-reward distortions (EOS) are visible.
    """

    share: float = 0.1
    miners: int = 4
    reward: float = 0.01
    inflation: float = 0.1
    storage_weight: float = 0.5
    horizon: int = 3000
    epsilon: float = DEFAULT_EPSILON
    delta: float = DEFAULT_DELTA
    preset: Preset = DEFAULT
    seed: int = 2021


@dataclass(frozen=True)
class Section64Row:
    """Measured fairness of one extended protocol."""

    protocol: str
    paper_expectational: bool
    paper_robust_profile: str
    mean_fraction: float
    unfair_probability: float
    equitability: float
    expectational_ok: bool

    def matches_paper(self) -> bool:
        """Whether the measured expectational verdict matches Section 6.4."""
        return self.expectational_ok == self.paper_expectational


@dataclass
class Section64Result:
    """The executable Section 6.4 survey table."""

    config: Section64Config
    rows: List[Section64Row]

    def render(self) -> str:
        table_rows = [
            [
                row.protocol,
                "yes" if row.paper_expectational else "no",
                row.paper_robust_profile,
                row.mean_fraction,
                row.unfair_probability,
                row.equitability,
                "yes" if row.matches_paper() else "NO",
            ]
            for row in self.rows
        ]
        return render_table(
            [
                "protocol", "paper E-fair", "paper robust profile",
                "E[lambda_A]", "unfair prob", "equit.", "match",
            ],
            table_rows,
            precision=3,
            title=(
                f"Section 6.4 survey: a={self.config.share}, "
                f"{self.config.miners} miners, horizon={self.config.horizon}"
            ),
        )

    def to_dict(self) -> dict:
        return {
            row.protocol: {
                "mean": row.mean_fraction,
                "unfair": row.unfair_probability,
                "equitability": row.equitability,
                "expectational_ok": row.expectational_ok,
                "matches_paper": row.matches_paper(),
            }
            for row in self.rows
        }


def _protocol_zoo(config: Section64Config) -> List[tuple]:
    """(protocol, paper expectational verdict, paper robust profile)."""
    return [
        (NeoPoS(config.reward), True, "yes (PoW-like)"),
        (AlgorandPoS(config.inflation), True, "yes ((0,0)-fair)"),
        (EOSDelegatedPoS(config.reward, config.inflation), False, "no"),
        (WavePoS(config.reward), True, "no at large w"),
        (VixifyPoS(config.reward), True, "no at large w"),
        (
            FilecoinStorage(config.reward, config.storage_weight),
            True,
            "between PoW and ML-PoS",
        ),
    ]


def run(config: Section64Config = Section64Config()) -> Section64Result:
    """Run the Section 6.4 survey."""
    preset = config.preset
    source = RandomSource(config.seed)
    horizon = preset.horizon(config.horizon)
    allocation = Allocation.focal_vs_equal(config.share, config.miners)
    share = allocation.focal_share

    zoo = _protocol_zoo(config)
    cells = [
        GridCell(protocol, allocation, horizon, preset.trials)
        for protocol, _, _ in zoo
    ]
    results = run_simulation_grid(cells, source)

    rows: List[Section64Row] = []
    for (protocol, paper_expectational, robust_profile), result in zip(
        zoo, results
    ):
        final = result.final_fractions()
        expectational = result.expectational_verdict(
            tolerance=0.1 * share
        )
        robust = result.robust_verdict(
            epsilon=config.epsilon, delta=config.delta
        )
        rows.append(
            Section64Row(
                protocol=protocol.name,
                paper_expectational=paper_expectational,
                paper_robust_profile=robust_profile,
                mean_fraction=float(final.mean()),
                unfair_probability=robust.unfair_probability,
                equitability=equitability(final, share),
                expectational_ok=expectational.is_fair,
            )
        )
    return Section64Result(config=config, rows=rows)
