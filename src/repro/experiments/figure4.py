"""Figure 4: the SL-PoS expectational-fairness study.

Tracks the *average* reward proportion ``E[lambda_A]`` of SL-PoS over
long horizons:

* panel (a): ``w = 0.01``, initial shares ``a`` in {0.1, ..., 0.5};
* panel (b): ``a = 0.2``, block rewards ``w`` in {1e-4, ..., 1e-1}.

Expected shapes (paper Section 5.3): every ``a < 0.5`` decays to ~0
(larger ``a`` decays slower); ``a = 0.5`` stays put by symmetry; the
decay rate grows with ``w`` because larger rewards compound the
advantage faster.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

import numpy as np

from ..core.miners import Allocation
from ..protocols.sl_pos import SingleLotteryPoS
from ..sim.checkpoints import geometric_checkpoints
from ..sim.rng import RandomSource
from ._common import GridCell, run_simulation_grid
from .config import DEFAULT, Preset
from .report import render_table, subsample_rows

__all__ = ["Figure4Config", "Figure4Result", "run"]


@dataclass(frozen=True)
class Figure4Config:
    """Parameters of Figure 4 (paper defaults)."""

    shares: Tuple[float, ...] = (0.1, 0.2, 0.3, 0.4, 0.5)
    rewards: Tuple[float, ...] = (1e-4, 1e-3, 1e-2, 1e-1)
    fixed_reward: float = 0.01
    fixed_share: float = 0.2
    horizon: int = 100_000
    preset: Preset = DEFAULT
    seed: int = 2021


@dataclass
class Figure4Result:
    """Mean ``lambda_A`` series for both panels."""

    config: Figure4Config
    checkpoints: np.ndarray
    by_share: Dict[float, np.ndarray]
    by_reward: Dict[float, np.ndarray]

    def render(self, *, max_rows: int = 12) -> str:
        share_headers = ["n"] + [f"a={share:g}" for share in sorted(self.by_share)]
        share_rows = []
        for i, n in enumerate(self.checkpoints):
            share_rows.append(
                [int(n)]
                + [float(self.by_share[share][i]) for share in sorted(self.by_share)]
            )
        reward_headers = ["n"] + [f"w={reward:g}" for reward in sorted(self.by_reward)]
        reward_rows = []
        for i, n in enumerate(self.checkpoints):
            reward_rows.append(
                [int(n)]
                + [float(self.by_reward[reward][i]) for reward in sorted(self.by_reward)]
            )
        return "\n\n".join(
            [
                render_table(
                    share_headers,
                    subsample_rows(share_rows, max_rows),
                    title=(
                        "Figure 4(a): SL-PoS mean lambda_A by initial share "
                        f"(w={self.config.fixed_reward:g})"
                    ),
                ),
                render_table(
                    reward_headers,
                    subsample_rows(reward_rows, max_rows),
                    title=(
                        "Figure 4(b): SL-PoS mean lambda_A by block reward "
                        f"(a={self.config.fixed_share:g})"
                    ),
                ),
            ]
        )

    def to_dict(self) -> dict:
        return {
            "checkpoints": self.checkpoints.tolist(),
            "by_share": {f"{k:g}": v.tolist() for k, v in self.by_share.items()},
            "by_reward": {f"{k:g}": v.tolist() for k, v in self.by_reward.items()},
        }


def run(config: Figure4Config = Figure4Config()) -> Figure4Result:
    """Run the Figure 4 experiment."""
    preset = config.preset
    source = RandomSource(config.seed)
    horizon = preset.horizon(config.horizon)
    checkpoints = geometric_checkpoints(horizon, count=30, first=10)
    trials = preset.heavy_trials

    # Panel (a) cells first, panel (b) cells after — the same child
    # stream order as the old per-cell loops.
    cells = [
        GridCell(
            SingleLotteryPoS(config.fixed_reward),
            Allocation.two_miners(share),
            horizon,
            trials,
            checkpoints,
        )
        for share in config.shares
    ] + [
        GridCell(
            SingleLotteryPoS(reward),
            Allocation.two_miners(config.fixed_share),
            horizon,
            trials,
            checkpoints,
        )
        for reward in config.rewards
    ]
    results = run_simulation_grid(cells, source)

    by_share: Dict[float, np.ndarray] = {
        share: result.summary().mean
        for share, result in zip(config.shares, results)
    }
    by_reward: Dict[float, np.ndarray] = {
        reward: result.summary().mean
        for reward, result in zip(config.rewards, results[len(config.shares):])
    }

    return Figure4Result(
        config=config,
        checkpoints=np.asarray(checkpoints),
        by_share=by_share,
        by_reward=by_reward,
    )
