"""Plain-text rendering of experiment results.

The repository regenerates every figure as a numeric series rendered
as an aligned text table (no plotting dependency is guaranteed
offline; EXPERIMENTS.md records these tables).  This module holds the
small formatting toolkit the experiment modules share.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Sequence

__all__ = ["format_value", "render_table", "render_kv", "subsample_rows"]


def format_value(value, *, precision: int = 4) -> str:
    """Format one cell: floats to fixed precision, inf as 'never'."""
    if value is None:
        return "-"
    if isinstance(value, float):
        if math.isinf(value):
            return "never"
        if math.isnan(value):
            return "nan"
        return f"{value:.{precision}f}"
    return str(value)


def render_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    *,
    precision: int = 4,
    title: Optional[str] = None,
) -> str:
    """Render an aligned monospace table.

    Parameters
    ----------
    headers:
        Column names.
    rows:
        Row values (any mix of str/int/float/None).
    precision:
        Decimal places for float cells.
    title:
        Optional table caption printed above.
    """
    if not headers:
        raise ValueError("headers must not be empty")
    formatted = [
        [format_value(cell, precision=precision) for cell in row] for row in rows
    ]
    for row in formatted:
        if len(row) != len(headers):
            raise ValueError(
                f"row width {len(row)} does not match {len(headers)} headers"
            )
    widths = [
        max(len(str(header)), *(len(row[i]) for row in formatted))
        if formatted
        else len(str(header))
        for i, header in enumerate(headers)
    ]
    lines: List[str] = []
    if title:
        lines.append(title)
    header_line = "  ".join(
        str(header).rjust(width) for header, width in zip(headers, widths)
    )
    lines.append(header_line)
    lines.append("  ".join("-" * width for width in widths))
    for row in formatted:
        lines.append("  ".join(cell.rjust(width) for cell, width in zip(row, widths)))
    return "\n".join(lines)


def render_kv(pairs: Dict[str, object], *, title: Optional[str] = None) -> str:
    """Render key/value metadata as aligned lines."""
    if not pairs:
        raise ValueError("pairs must not be empty")
    width = max(len(key) for key in pairs)
    lines = [title] if title else []
    for key, value in pairs.items():
        lines.append(f"{key.ljust(width)} : {format_value(value)}")
    return "\n".join(lines)


def subsample_rows(rows: Sequence[Sequence[object]], max_rows: int = 12) -> List:
    """Evenly subsample table rows, always keeping the first and last."""
    if max_rows < 2:
        raise ValueError("max_rows must be at least 2")
    rows = list(rows)
    if len(rows) <= max_rows:
        return rows
    step = (len(rows) - 1) / (max_rows - 1)
    indices = sorted({round(i * step) for i in range(max_rows)})
    indices[-1] = len(rows) - 1
    return [rows[i] for i in indices]
