"""Table 1: the multi-miner game (Section 6.1).

Miner A controls 20% of the initial resource; the remaining miners
split the other 80% equally.  For 2, 3, 4, 5 and 10 total miners and
each of the four protocols, the experiment reports:

* the average final reward fraction of A,
* the final unfair probability,
* the convergence time (first sustained (eps, delta)-fair checkpoint).

Expected shape (paper Table 1): PoW/ML-PoS/C-PoS are insensitive to
the miner count (avg 0.20; unfair prob ~0 / ~0.14 / ~0.08; convergence
~1,000 blocks / never / ~100-140 epochs).  SL-PoS flips with the
*relative* position of A: with 2-4 miners A is below the biggest
competitor and loses everything (avg ~0); with 5 equal miners
symmetry holds (~0.2); with 10 miners A is the biggest and monopolises
(~0.98 — rich get richer).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

from ..core.miners import Allocation
from ..sim.checkpoints import geometric_checkpoints
from ..sim.rng import RandomSource
from ._common import (
    PAPER_PROTOCOL_ORDER,
    GridCell,
    build_protocol,
    run_simulation_grid,
)
from .config import DEFAULT, Preset
from .report import render_table

__all__ = ["Table1Config", "Table1Result", "Table1Cell", "run"]


@dataclass(frozen=True)
class Table1Config:
    """Parameters of Table 1 (paper defaults)."""

    focal_share: float = 0.2
    miner_counts: Tuple[int, ...] = (2, 3, 4, 5, 10)
    reward: float = 0.01
    inflation: float = 0.1
    shards: int = 32
    horizon: int = 10_000
    epsilon: float = 0.1
    delta: float = 0.1
    preset: Preset = DEFAULT
    seed: int = 2021


@dataclass(frozen=True)
class Table1Cell:
    """One (protocol, miner-count) entry of Table 1."""

    average_fraction: float
    unfair_probability: float
    convergence_time: float


@dataclass
class Table1Result:
    """The full multi-miner comparison."""

    config: Table1Config
    cells: Dict[Tuple[str, int], Table1Cell]

    def render(self) -> str:
        def block(metric: str, extractor) -> str:
            rows = []
            for count in self.config.miner_counts:
                row = [f"{count} miners"] + [
                    extractor(self.cells[(protocol, count)])
                    for protocol in PAPER_PROTOCOL_ORDER
                ]
                rows.append(row)
            return render_table(
                ["", *PAPER_PROTOCOL_ORDER], rows, title=metric, precision=2
            )

        return "\n\n".join(
            [
                block("Table 1 - Avg. of lambda_A",
                      lambda cell: cell.average_fraction),
                block("Table 1 - Unfair probability",
                      lambda cell: cell.unfair_probability),
                block("Table 1 - Convergence time",
                      lambda cell: cell.convergence_time),
            ]
        )

    def to_dict(self) -> dict:
        return {
            f"{protocol}|{count}": {
                "avg": cell.average_fraction,
                "unfair": cell.unfair_probability,
                "convergence": cell.convergence_time,
            }
            for (protocol, count), cell in self.cells.items()
        }


def run(config: Table1Config = Table1Config()) -> Table1Result:
    """Run the Table 1 experiment."""
    preset = config.preset
    source = RandomSource(config.seed)
    horizon = preset.horizon(config.horizon)
    checkpoints = geometric_checkpoints(horizon, count=40, first=10)

    grid = [
        (protocol_name, count)
        for protocol_name in PAPER_PROTOCOL_ORDER
        for count in config.miner_counts
    ]
    grid_cells = [
        GridCell(
            build_protocol(
                protocol_name,
                reward=config.reward,
                inflation=config.inflation,
                shards=config.shards,
            ),
            Allocation.focal_vs_equal(config.focal_share, count),
            horizon,
            preset.trials,
            checkpoints,
        )
        for protocol_name, count in grid
    ]
    results = run_simulation_grid(grid_cells, source)

    cells: Dict[Tuple[str, int], Table1Cell] = {}
    for (protocol_name, count), result in zip(grid, results):
        unfair = result.unfair_probabilities(epsilon=config.epsilon)
        cells[(protocol_name, count)] = Table1Cell(
            average_fraction=float(result.final_fractions().mean()),
            unfair_probability=float(unfair[-1]),
            convergence_time=result.convergence_time(
                epsilon=config.epsilon, delta=config.delta
            ),
        )
    return Table1Result(config=config, cells=cells)
