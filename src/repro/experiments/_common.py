"""Shared plumbing for the experiment modules."""

from __future__ import annotations

from typing import Dict, Optional, Sequence

from ..core.miners import Allocation
from ..core.results import EnsembleResult, SeriesSummary
from ..protocols.base import IncentiveProtocol
from ..protocols.c_pos import CompoundPoS
from ..protocols.fsl_pos import FairSingleLotteryPoS
from ..protocols.ml_pos import MultiLotteryPoS
from ..protocols.pow import ProofOfWork
from ..protocols.sl_pos import SingleLotteryPoS
from ..sim.engine import MonteCarloEngine
from ..sim.rng import RandomSource

__all__ = [
    "PAPER_PROTOCOL_ORDER",
    "build_protocol",
    "run_simulation",
]

#: The order in which the paper presents the four protocols.
PAPER_PROTOCOL_ORDER = ("PoW", "ML-PoS", "SL-PoS", "C-PoS")


def build_protocol(
    key: str,
    *,
    reward: float,
    inflation: float = 0.1,
    shards: int = 32,
) -> IncentiveProtocol:
    """Construct one of the paper's four protocols by display name."""
    if key == "PoW":
        return ProofOfWork(reward=reward)
    if key == "ML-PoS":
        return MultiLotteryPoS(reward=reward)
    if key == "SL-PoS":
        return SingleLotteryPoS(reward=reward)
    if key == "C-PoS":
        return CompoundPoS(
            proposer_reward=reward, inflation_reward=inflation, shards=shards
        )
    if key == "FSL-PoS":
        return FairSingleLotteryPoS(reward=reward)
    raise ValueError(f"unknown protocol key {key!r}")


def run_simulation(
    protocol: IncentiveProtocol,
    allocation: Allocation,
    horizon: int,
    trials: int,
    source: RandomSource,
    checkpoints: Optional[Sequence[int]] = None,
) -> EnsembleResult:
    """Run one Monte Carlo configuration on a child random stream.

    When an ambient :class:`~repro.runtime.ParallelRunner` is
    configured (``--workers``/``--cache``), the ensemble is sharded
    and cached through it; otherwise it runs in-process.  Either way
    exactly one child stream of ``source`` is consumed.
    """
    from ..runtime.context import get_default_runtime
    from ..runtime.spec import SimulationSpec

    seed = source.spawn_one()
    runtime = get_default_runtime()
    if runtime is not None:
        spec = SimulationSpec(
            protocol=protocol,
            allocation=allocation,
            trials=trials,
            horizon=horizon,
            checkpoints=None if checkpoints is None else tuple(checkpoints),
            seed=seed,
        )
        return runtime.run(spec)
    engine = MonteCarloEngine(protocol, allocation, trials=trials, seed=seed)
    return engine.run(horizon, checkpoints)
