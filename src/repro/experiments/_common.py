"""Shared plumbing for the experiment modules."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from ..core.miners import Allocation
from ..core.results import EnsembleResult, SeriesSummary
from ..protocols.base import IncentiveProtocol
from ..protocols.c_pos import CompoundPoS
from ..protocols.fsl_pos import FairSingleLotteryPoS
from ..protocols.ml_pos import MultiLotteryPoS
from ..protocols.pow import ProofOfWork
from ..protocols.sl_pos import SingleLotteryPoS
from ..sim.engine import MonteCarloEngine
from ..sim.rng import RandomSource

__all__ = [
    "PAPER_PROTOCOL_ORDER",
    "GridCell",
    "SystemGridCell",
    "build_protocol",
    "run_simulation",
    "run_simulation_grid",
    "run_system",
    "run_system_grid",
]

#: The order in which the paper presents the four protocols.
PAPER_PROTOCOL_ORDER = ("PoW", "ML-PoS", "SL-PoS", "C-PoS")


def build_protocol(
    key: str,
    *,
    reward: float,
    inflation: float = 0.1,
    shards: int = 32,
) -> IncentiveProtocol:
    """Construct one of the paper's four protocols by display name."""
    if key == "PoW":
        return ProofOfWork(reward=reward)
    if key == "ML-PoS":
        return MultiLotteryPoS(reward=reward)
    if key == "SL-PoS":
        return SingleLotteryPoS(reward=reward)
    if key == "C-PoS":
        return CompoundPoS(
            proposer_reward=reward, inflation_reward=inflation, shards=shards
        )
    if key == "FSL-PoS":
        return FairSingleLotteryPoS(reward=reward)
    raise ValueError(f"unknown protocol key {key!r}")


@dataclass(frozen=True)
class GridCell:
    """One Monte Carlo configuration in an experiment grid."""

    protocol: IncentiveProtocol
    allocation: Allocation
    horizon: int
    trials: int
    checkpoints: Optional[Sequence[int]] = None


def run_simulation_grid(
    cells: Sequence[GridCell], source: RandomSource
) -> List[EnsembleResult]:
    """Run a grid of Monte Carlo configurations on child random streams.

    One child stream of ``source`` is consumed per cell, in cell order
    — exactly like a loop of :func:`run_simulation` calls, so results
    are bit-identical to the per-cell path.  When an ambient
    :class:`~repro.runtime.ParallelRunner` is configured
    (``--workers``/``--cache``), every uncached shard of the whole grid
    goes to the pool in a single dispatch via
    :meth:`~repro.runtime.ParallelRunner.run_many` — by default with
    the streaming merge (the CLI's ``--stream``/``--no-stream``): each
    cell's shards fold as they complete and the cell's artifact is
    cached the moment its last shard lands, so grid-wide peak memory
    holds ``O(workers)`` shard results rather than every shard of
    every cell.  Otherwise cells run serially in-process.
    """
    from ..runtime.context import get_default_runtime
    from ..runtime.spec import SimulationSpec

    cells = list(cells)
    seeds = [source.spawn_one() for _ in cells]
    runtime = get_default_runtime()
    if runtime is not None:
        # The runtime's ambient ``reduce`` lands on every spec it
        # builds — a physics knob, so it enters each spec's fingerprint
        # and stats grids never collide with full ones in the cache.
        specs = [
            SimulationSpec(
                protocol=cell.protocol,
                allocation=cell.allocation,
                trials=cell.trials,
                horizon=cell.horizon,
                checkpoints=(
                    None
                    if cell.checkpoints is None
                    else tuple(cell.checkpoints)
                ),
                seed=seed,
                reduce=getattr(runtime, "reduce", "full"),
            )
            for cell, seed in zip(cells, seeds)
        ]
        return runtime.run_many(specs)
    return [
        MonteCarloEngine(
            cell.protocol, cell.allocation, trials=cell.trials, seed=seed
        ).run(cell.horizon, cell.checkpoints)
        for cell, seed in zip(cells, seeds)
    ]


def run_simulation(
    protocol: IncentiveProtocol,
    allocation: Allocation,
    horizon: int,
    trials: int,
    source: RandomSource,
    checkpoints: Optional[Sequence[int]] = None,
) -> EnsembleResult:
    """Run one Monte Carlo configuration on a child random stream.

    The single-cell case of :func:`run_simulation_grid`: exactly one
    child stream of ``source`` is consumed, and the ensemble is
    sharded/cached through the ambient runtime when one is configured.
    """
    cell = GridCell(protocol, allocation, horizon, trials, checkpoints)
    return run_simulation_grid([cell], source)[0]


@dataclass(frozen=True)
class SystemGridCell:
    """One node-level system configuration in an experiment grid.

    ``experiment`` is a
    :class:`~repro.chainsim.harness.SystemExperiment`; ``rounds`` and
    ``repeats`` mirror its ``run`` arguments.
    """

    experiment: "object"
    rounds: int
    repeats: int
    checkpoints: Optional[Sequence[int]] = None


def run_system_grid(
    cells: Sequence[SystemGridCell], source: RandomSource
) -> List[EnsembleResult]:
    """Run a grid of node-level system configurations on child streams.

    The :class:`SystemGridCell` counterpart of
    :func:`run_simulation_grid`: one child stream of ``source`` is
    consumed per cell, in cell order — exactly like a loop of
    ``cell.experiment.run(...)`` calls, so results are bit-identical to
    the per-cell path.  When an ambient
    :class:`~repro.runtime.ParallelRunner` is configured
    (``--workers``/``--cache``), every uncached shard of every cell —
    e.g. all four protocols of Figure 2's system sweep — goes to the
    pool in a *single* :meth:`~repro.runtime.ParallelRunner.run_system_many`
    dispatch under the grid-wide shard progress line (streaming merge
    by default, exactly like :func:`run_simulation_grid`); otherwise
    cells run serially in-process.
    """
    from ..runtime.context import get_default_runtime
    from ..runtime.spec import SystemSpec

    cells = list(cells)
    seeds = [source.spawn_one() for _ in cells]
    runtime = get_default_runtime()
    if runtime is not None:
        specs = [
            SystemSpec(
                experiment=cell.experiment,
                rounds=cell.rounds,
                repeats=cell.repeats,
                checkpoints=(
                    None
                    if cell.checkpoints is None
                    else tuple(cell.checkpoints)
                ),
                seed=seed,
                reduce=getattr(runtime, "reduce", "full"),
            )
            for cell, seed in zip(cells, seeds)
        ]
        return runtime.run_system_many(specs)
    return [
        cell.experiment.run(
            cell.rounds,
            cell.repeats,
            checkpoints=cell.checkpoints,
            seed=seed,
        )
        for cell, seed in zip(cells, seeds)
    ]


def run_system(
    experiment: "object",
    rounds: int,
    repeats: int,
    source: RandomSource,
    checkpoints: Optional[Sequence[int]] = None,
) -> EnsembleResult:
    """Run one system configuration on a child random stream.

    The single-cell case of :func:`run_system_grid`.
    """
    cell = SystemGridCell(experiment, rounds, repeats, checkpoints)
    return run_system_grid([cell], source)[0]
