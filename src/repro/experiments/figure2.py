"""Figure 2: evolution of ``lambda_A`` for the four protocols.

Reproduces the paper's headline figure: miner A holds ``a = 0.2`` of
the resource, blocks pay ``w = 0.01``, C-PoS adds ``v = 0.1`` over
``P = 32`` shards.  For each protocol the experiment records the
sample mean of ``lambda_A`` (orange line), the 5th/95th percentile
envelope (blue band), and optionally the node-level system bars from
:mod:`repro.chainsim`.

Expected shapes (paper Section 5.2):

* PoW — mean pinned at 0.2, envelope narrowing into the fair area
  after ~1,000 blocks;
* ML-PoS — mean at 0.2 but a persistently wide envelope (Beta limit);
* SL-PoS — mean *decaying towards zero* (monopolisation);
* C-PoS — mean at 0.2 with a much narrower envelope than ML-PoS.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from ..core.miners import Allocation
from ..core.results import SeriesSummary
from ..chainsim.harness import SystemExperiment
from ..sim.rng import RandomSource
from ._common import (
    PAPER_PROTOCOL_ORDER,
    GridCell,
    SystemGridCell,
    build_protocol,
    run_simulation_grid,
    run_system_grid,
)
from .config import DEFAULT, Preset
from .report import render_table, subsample_rows

__all__ = ["Figure2Config", "Figure2Result", "run"]


@dataclass(frozen=True)
class Figure2Config:
    """Parameters of Figure 2 (paper defaults)."""

    share: float = 0.2
    reward: float = 0.01
    inflation: float = 0.1
    shards: int = 32
    horizon: int = 5000
    epsilon: float = 0.1
    preset: Preset = DEFAULT
    seed: int = 2021


@dataclass
class Figure2Result:
    """Per-protocol evolution series (simulation and optional system)."""

    config: Figure2Config
    simulation: Dict[str, SeriesSummary]
    system: Dict[str, SeriesSummary] = field(default_factory=dict)

    def render(self, *, max_rows: int = 12) -> str:
        sections = []
        area_low = (1 - self.config.epsilon) * self.config.share
        area_high = (1 + self.config.epsilon) * self.config.share
        for name, summary in self.simulation.items():
            rows = [
                [int(n), m, lo, hi]
                for n, m, lo, hi in zip(
                    summary.checkpoints, summary.mean, summary.lower, summary.upper
                )
            ]
            sections.append(
                render_table(
                    ["n", "mean", "p5", "p95"],
                    subsample_rows(rows, max_rows),
                    title=(
                        f"Figure 2 ({name}): lambda_A evolution, a={self.config.share}, "
                        f"fair area [{area_low:.3f}, {area_high:.3f}]"
                    ),
                )
            )
            system = self.system.get(name)
            if system is not None:
                sys_rows = [
                    [int(n), m, lo, hi]
                    for n, m, lo, hi in zip(
                        system.checkpoints, system.mean, system.lower, system.upper
                    )
                ]
                sections.append(
                    render_table(
                        ["n", "mean", "p5", "p95"],
                        subsample_rows(sys_rows, max_rows),
                        title=f"Figure 2 ({name}): node-level system runs",
                    )
                )
        return "\n\n".join(sections)

    def to_dict(self) -> dict:
        def pack(summary: SeriesSummary) -> dict:
            return {
                "checkpoints": summary.checkpoints.tolist(),
                "mean": summary.mean.tolist(),
                "p5": summary.lower.tolist(),
                "p95": summary.upper.tolist(),
            }

        return {
            "simulation": {k: pack(v) for k, v in self.simulation.items()},
            "system": {k: pack(v) for k, v in self.system.items()},
        }


#: Node-level run lengths per protocol (tick networks are the slow ones).
_SYSTEM_ROUNDS = {"PoW": 300, "ML-PoS": 500, "SL-PoS": 1500, "C-PoS": 300}
_SYSTEM_KEYS = {"PoW": "pow", "ML-PoS": "ml-pos", "SL-PoS": "sl-pos", "C-PoS": "c-pos"}


def run(config: Figure2Config = Figure2Config()) -> Figure2Result:
    """Run the Figure 2 experiment."""
    preset = config.preset
    allocation = Allocation.two_miners(config.share)
    source = RandomSource(config.seed)
    horizon = preset.horizon(config.horizon)

    cells = [
        GridCell(
            build_protocol(
                name,
                reward=config.reward,
                inflation=config.inflation,
                shards=config.shards,
            ),
            allocation,
            horizon,
            preset.trials,
        )
        for name in PAPER_PROTOCOL_ORDER
    ]
    results = run_simulation_grid(cells, source)
    simulation: Dict[str, SeriesSummary] = {
        name: result.summary(epsilon=config.epsilon)
        for name, result in zip(PAPER_PROTOCOL_ORDER, results)
    }

    system: Dict[str, SeriesSummary] = {}
    if preset.include_system:
        # One grid over all four protocols: with an ambient runtime the
        # whole system sweep shares a single pool dispatch instead of
        # one per protocol.
        system_cells = [
            SystemGridCell(
                SystemExperiment(
                    _SYSTEM_KEYS[name],
                    allocation,
                    reward=config.reward,
                    inflation_reward=config.inflation,
                    shards=config.shards,
                ),
                rounds=preset.horizon(_SYSTEM_ROUNDS[name]),
                repeats=(
                    preset.system_repeats_pow
                    if name == "PoW"
                    else preset.system_repeats_pos
                ),
            )
            for name in PAPER_PROTOCOL_ORDER
        ]
        system = {
            name: result.summary(epsilon=config.epsilon)
            for name, result in zip(
                PAPER_PROTOCOL_ORDER, run_system_grid(system_cells, source)
            )
        }

    return Figure2Result(config=config, simulation=simulation, system=system)
