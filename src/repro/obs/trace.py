"""Structured span tracing for the runtime.

A :class:`Tracer` records *spans* — named, timed regions with
parent/child nesting and free-form attributes — into an in-memory
buffer that serialises to JSON-lines trace files.  The design is
shaped by three hard constraints inherited from the runtime's
doctrine:

* **Disabled means free.**  The ambient default is the
  :data:`NULL_TRACER` singleton; hot paths guard instrumentation with
  ``if tracer.enabled:`` so a disabled tracer costs one attribute read
  and allocates nothing (``tests/obs`` pins the zero-allocation
  contract, and a perf test pins <2% overhead on the kernel bench
  smoke config).
* **Bit-identity-neutral.**  Tracing reads clocks and counters only —
  never a random generator — so traced and untraced runs produce
  byte-identical ensembles and identical cache fingerprints.
* **Process- and thread-safe.**  Each shard worker records into its
  own private :class:`Tracer` (installed as a thread-local override by
  the runner's worker entry points) and ships the finished span
  records back with the shard payload; the parent
  :meth:`Tracer.ingest`\\ s them.  Buffer appends are lock-protected,
  and the active-span stack used for parent/child nesting is
  thread-local, so the threads backend can trace from every pool
  thread at once.

Span records are plain dicts (JSON- and pickle-ready)::

    {"name": str, "span_id": int, "parent_id": int | null,
     "ts": float,   # wall-clock start, seconds since the epoch
     "dur": float,  # duration in seconds (0.0 for point events)
     "pid": int, "tid": int, "attrs": {...}}

``span_id`` is unique per process (``pid`` disambiguates across
workers); ``parent_id`` links within one process only.  Trace files
open with a header line ``{"schema": "repro-trace/v1", ...}`` that
:func:`validate_trace` checks.
"""

from __future__ import annotations

import contextlib
import itertools
import json
import os
import pathlib
import threading
import time
from typing import Any, Dict, Iterator, List, Optional, Sequence, Tuple, Union

__all__ = [
    "NULL_TRACER",
    "TRACE_SCHEMA",
    "NullTracer",
    "Tracer",
    "get_tracer",
    "read_trace",
    "set_tracer",
    "using_tracer",
    "using_worker_tracer",
    "validate_trace",
    "write_trace",
]

#: Schema tag written as the first line of every trace file.
TRACE_SCHEMA = "repro-trace/v1"

#: Required span-record fields and the types :func:`validate_trace`
#: accepts for each (``parent_id`` additionally accepts None).
_SPAN_FIELDS: Dict[str, tuple] = {
    "name": (str,),
    "span_id": (int,),
    "parent_id": (int, type(None)),
    "ts": (int, float),
    "dur": (int, float),
    "pid": (int,),
    "tid": (int,),
    "attrs": (dict,),
}


class _ActiveSpan:
    """A span being timed; the context manager ``Tracer.span`` returns.

    Entering records the wall-clock and monotonic start and pushes the
    span onto the thread-local nesting stack; exiting pops, computes
    the monotonic duration and appends the finished record to the
    tracer's buffer (exceptions still record the span).  ``set`` adds
    attributes discovered mid-span (e.g. whether a cache get hit).
    """

    __slots__ = (
        "_tracer", "name", "attrs", "span_id", "_parent_id",
        "_ts", "_perf",
    )

    def __init__(self, tracer: "Tracer", name: str, attrs: dict) -> None:
        self._tracer = tracer
        self.name = name
        self.attrs = attrs
        self.span_id = tracer._next_id()
        self._parent_id: Optional[int] = None
        self._ts = 0.0
        self._perf = 0.0

    def set(self, key: str, value: Any) -> None:
        """Attach one attribute to the span."""
        self.attrs[key] = value

    def __enter__(self) -> "_ActiveSpan":
        stack = self._tracer._stack_for_thread()
        self._parent_id = stack[-1] if stack else None
        stack.append(self.span_id)
        # repro-lint: disable=DET003  # span start is trace metadata: read, never fed back into simulation
        self._ts = time.time()
        self._perf = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        duration = time.perf_counter() - self._perf
        stack = self._tracer._stack_for_thread()
        if stack and stack[-1] == self.span_id:
            stack.pop()
        self._tracer.record({
            "name": self.name,
            "span_id": self.span_id,
            "parent_id": self._parent_id,
            "ts": self._ts,
            "dur": duration,
            "pid": os.getpid(),
            "tid": threading.get_ident(),
            "attrs": self.attrs,
        })
        return False


class Tracer:
    """A thread-safe, in-memory span recorder.

    Examples
    --------
    >>> tracer = Tracer()
    >>> with tracer.span("outer", grid="fig3"):
    ...     with tracer.span("inner"):
    ...         pass
    >>> [s["name"] for s in tracer.spans]
    ['inner', 'outer']
    >>> tracer.spans[0]["parent_id"] == tracer.spans[1]["span_id"]
    True
    """

    enabled = True

    def __init__(self) -> None:
        self._records: List[dict] = []
        self._lock = threading.Lock()
        self._local = threading.local()
        self._ids = itertools.count(1)

    # -- recording --------------------------------------------------------

    def span(self, name: str, **attrs: Any) -> _ActiveSpan:
        """A context manager timing one named region."""
        return _ActiveSpan(self, name, attrs)

    def event(self, name: str, **attrs: Any) -> None:
        """Record a zero-duration point event."""
        stack = self._stack_for_thread()
        self.record({
            "name": name,
            "span_id": self._next_id(),
            "parent_id": stack[-1] if stack else None,
            "ts": time.time(),  # repro-lint: disable=DET003  # event timestamp is trace metadata, never consumed by simulation
            "dur": 0.0,
            "pid": os.getpid(),
            "tid": threading.get_ident(),
            "attrs": attrs,
        })

    def record(self, record: dict) -> None:
        """Append one finished span record to the buffer."""
        with self._lock:
            self._records.append(record)

    def ingest(self, records: Sequence[dict]) -> None:
        """Adopt span records produced elsewhere (e.g. a shard worker)."""
        with self._lock:
            self._records.extend(records)

    # -- access -----------------------------------------------------------

    @property
    def spans(self) -> List[dict]:
        """A snapshot of the recorded spans, in completion order."""
        with self._lock:
            return list(self._records)

    def drain(self) -> List[dict]:
        """Remove and return every recorded span."""
        with self._lock:
            records, self._records = self._records, []
            return records

    def __len__(self) -> int:
        with self._lock:
            return len(self._records)

    def write(self, path: Union[str, pathlib.Path]) -> pathlib.Path:
        """Write the buffered spans as a JSONL trace file."""
        return write_trace(path, self.spans)

    # -- internals --------------------------------------------------------

    def _next_id(self) -> int:
        return next(self._ids)

    def _stack_for_thread(self) -> List[int]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = []
            self._local.stack = stack
        return stack

    def __repr__(self) -> str:
        return f"Tracer(spans={len(self)})"


class _NullSpan:
    """The do-nothing span; a single shared instance, never allocated
    per call."""

    __slots__ = ()

    def set(self, key: str, value: Any) -> None:
        pass

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False


_NULL_SPAN = _NullSpan()


class NullTracer:
    """The disabled tracer: every operation is a no-op.

    Hot paths check ``tracer.enabled`` before building attribute dicts,
    so a disabled tracer allocates nothing per span — the contract the
    zero-allocation test in ``tests/obs`` pins.  ``span`` (called
    without keyword attributes) returns a shared singleton, so even an
    unguarded ``with tracer.span("x"):`` stays allocation-free.
    """

    enabled = False

    def span(self, name: str, **attrs: Any) -> _NullSpan:
        return _NULL_SPAN

    def event(self, name: str, **attrs: Any) -> None:
        pass

    def record(self, record: dict) -> None:
        pass

    def ingest(self, records: Sequence[dict]) -> None:
        pass

    @property
    def spans(self) -> List[dict]:
        return []

    def drain(self) -> List[dict]:
        return []

    def __len__(self) -> int:
        return 0

    def __repr__(self) -> str:
        return "NullTracer()"


#: The shared disabled tracer (the ambient default).
NULL_TRACER = NullTracer()

_default_tracer: Union[Tracer, NullTracer] = NULL_TRACER
_thread_override = threading.local()


def get_tracer() -> Union[Tracer, NullTracer]:
    """The active tracer: the thread's worker override, else the
    process default, else :data:`NULL_TRACER`.

    This is the hot-path lookup — one thread-local ``getattr`` and no
    allocation — so instrumented code can call it unconditionally.
    """
    tracer = getattr(_thread_override, "tracer", None)
    return _default_tracer if tracer is None else tracer


def set_tracer(tracer: Union[Tracer, NullTracer, None]):
    """Install ``tracer`` (None restores the null tracer) as the
    process default; returns the previous default."""
    global _default_tracer
    previous = _default_tracer
    _default_tracer = NULL_TRACER if tracer is None else tracer
    return previous


@contextlib.contextmanager
def using_tracer(tracer: Union[Tracer, NullTracer, None]) -> Iterator[None]:
    """Scope ``tracer`` as the process default for a ``with`` block."""
    previous = set_tracer(tracer)
    try:
        yield
    finally:
        set_tracer(previous)


@contextlib.contextmanager
def using_worker_tracer(tracer: Union[Tracer, NullTracer]) -> Iterator[None]:
    """Scope ``tracer`` as *this thread's* tracer for a ``with`` block.

    Shard workers use this so nested instrumentation (kernels, cache,
    chainsim) records into the worker's private buffer — which ships
    back with the shard payload — instead of a forked copy of the
    parent's tracer (whose records would be lost) or, on the threads
    backend, the parent's live tracer (which would double-count once
    the shipped spans are ingested).
    """
    previous = getattr(_thread_override, "tracer", None)
    _thread_override.tracer = tracer
    try:
        yield
    finally:
        _thread_override.tracer = previous


# -- trace files --------------------------------------------------------------


def write_trace(
    path: Union[str, pathlib.Path], spans: Sequence[dict]
) -> pathlib.Path:
    """Write spans as a JSONL trace file with a schema header line."""
    path = pathlib.Path(path)
    if path.parent != pathlib.Path("."):
        path.parent.mkdir(parents=True, exist_ok=True)
    with open(path, "w") as handle:
        json.dump(
            # repro-lint: disable=DET003  # file-creation stamp in the trace header, outside any simulation path
            {"schema": TRACE_SCHEMA, "created": time.time(), "spans": len(spans)},
            handle,
            separators=(",", ":"),
        )
        handle.write("\n")
        for span in spans:
            json.dump(span, handle, separators=(",", ":"), sort_keys=True)
            handle.write("\n")
    return path


def read_trace(path: Union[str, pathlib.Path]) -> Tuple[dict, List[dict]]:
    """Load a trace file, returning ``(header, spans)``.

    Raises ``ValueError`` on a malformed file; use
    :func:`validate_trace` to collect every problem instead of failing
    at the first.
    """
    header, spans, errors = _parse_trace(path)
    if errors:
        raise ValueError(f"invalid trace file {str(path)!r}: {errors[0]}")
    return header, spans


def validate_trace(path: Union[str, pathlib.Path]) -> List[str]:
    """Every schema violation in a trace file (empty means valid)."""
    _, _, errors = _parse_trace(path)
    return errors


def _parse_trace(
    path: Union[str, pathlib.Path]
) -> Tuple[dict, List[dict], List[str]]:
    header: dict = {}
    spans: List[dict] = []
    errors: List[str] = []
    with open(path) as handle:
        lines = handle.read().splitlines()
    if not lines:
        return header, spans, ["empty file: missing schema header"]
    try:
        header = json.loads(lines[0])
    except json.JSONDecodeError as error:
        return header, spans, [f"line 1: not JSON ({error})"]
    if not isinstance(header, dict) or header.get("schema") != TRACE_SCHEMA:
        errors.append(
            f"line 1: expected schema header {TRACE_SCHEMA!r}, "
            f"got {header!r}"
        )
    for number, line in enumerate(lines[1:], start=2):
        if not line.strip():
            continue
        try:
            record = json.loads(line)
        except json.JSONDecodeError as error:
            errors.append(f"line {number}: not JSON ({error})")
            continue
        if not isinstance(record, dict):
            errors.append(f"line {number}: span record must be an object")
            continue
        for field, types in _SPAN_FIELDS.items():
            if field not in record:
                errors.append(f"line {number}: missing field {field!r}")
            elif not isinstance(record[field], types):
                # bool is an int subclass; reject it for numeric fields.
                errors.append(
                    f"line {number}: field {field!r} has type "
                    f"{type(record[field]).__name__}"
                )
        if isinstance(record.get("dur"), (int, float)) and record["dur"] < 0:
            errors.append(f"line {number}: negative duration")
        if not errors or errors[-1].split(":")[0] != f"line {number}":
            spans.append(record)
    return header, spans, errors
