"""End-of-run telemetry reporting and the ``repro-trace`` CLI.

:func:`summarize_spans` turns a span list into the numbers the paper's
perf story cares about: per-shard wall time, queue wait (submit →
worker start) and merge lag (worker complete → folded into the
accumulator) percentiles, cache hit/miss/eviction traffic, and the
kernel-vs-naive time split.  :func:`render_summary` prints it as an
aligned table; ``repro-trace summarize PATH`` does both from a trace
file, and ``--check`` validates the JSONL schema (the CI trace-smoke
step runs exactly that).

Shard phases are joined on the ``task`` attribute: the runner stamps
``shard.submit`` / ``shard.complete`` / ``shard.merge`` events and the
worker stamps its ``shard.run`` span with the same task index, so the
report can line them up even though worker spans carry a different
pid.  Queue wait and merge lag are computed from wall-clock ``ts``
differences across processes — coarser than the monotonic in-process
durations, but the only clock processes share.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Dict, List, Optional, Sequence, Tuple

from .trace import TRACE_SCHEMA, read_trace, validate_trace

__all__ = [
    "main",
    "percentile",
    "render_cache_stats",
    "render_metrics",
    "render_summary",
    "summarize_spans",
]

_PERCENTILES = (0.5, 0.9, 0.99)


def percentile(values: Sequence[float], q: float) -> float:
    """The ``q``-quantile by linear interpolation (numpy 'linear')."""
    if not values:
        raise ValueError("percentile of empty sequence")
    if not 0.0 <= q <= 1.0:
        raise ValueError(f"quantile must be in [0, 1], got {q}")
    ordered = sorted(values)
    if len(ordered) == 1:
        return ordered[0]
    rank = q * (len(ordered) - 1)
    low = int(rank)
    high = min(low + 1, len(ordered) - 1)
    fraction = rank - low
    return ordered[low] * (1 - fraction) + ordered[high] * fraction


def _phase_stats(values: List[float]) -> dict:
    return {
        "count": len(values),
        "total": sum(values),
        "p50": percentile(values, 0.5),
        "p90": percentile(values, 0.9),
        "p99": percentile(values, 0.99),
        "max": max(values),
    }


def summarize_spans(spans: Sequence[dict]) -> dict:
    """Aggregate a span list into the end-of-run summary structure.

    Returns a dict with (present only when the trace has the relevant
    spans): ``runs`` (root dispatch spans), ``shards`` (wall/queue
    wait/merge lag stats), ``cache`` (hit/miss/eviction/put counts and
    bytes), ``kernel`` (batched vs naive time split) and ``chainsim``
    (fast vs naive network time split).
    """
    by_name: Dict[str, List[dict]] = {}
    for span in spans:
        by_name.setdefault(span["name"], []).append(span)

    summary: dict = {"spans": len(spans)}

    roots = [s for s in spans if s["name"].startswith("runner.")]
    if roots:
        summary["runs"] = [
            {
                "name": s["name"],
                "dur": s["dur"],
                "attrs": s["attrs"],
            }
            for s in roots
        ]

    # -- shard phase join on attrs["task"] -------------------------------
    submits = {s["attrs"].get("task"): s for s in by_name.get("shard.submit", ())}
    runs = {s["attrs"].get("task"): s for s in by_name.get("shard.run", ())}
    completes = {
        s["attrs"].get("task"): s for s in by_name.get("shard.complete", ())
    }
    merges = {s["attrs"].get("task"): s for s in by_name.get("shard.merge", ())}

    walls = [s["dur"] for s in runs.values()]
    queue_waits = [
        runs[task]["ts"] - submits[task]["ts"]
        for task in runs
        if task in submits
    ]
    merge_lags = [
        merges[task]["ts"] - (runs[task]["ts"] + runs[task]["dur"])
        for task in merges
        if task in runs
    ]
    shards: dict = {}
    if walls:
        shards["wall"] = _phase_stats(walls)
    if queue_waits:
        # Cross-process wall-clock deltas can go slightly negative
        # under clock skew; clamp rather than report nonsense.
        shards["queue_wait"] = _phase_stats([max(0.0, w) for w in queue_waits])
    if merge_lags:
        shards["merge_lag"] = _phase_stats([max(0.0, w) for w in merge_lags])
    retries = by_name.get("shard.retry", ())
    if submits or completes:
        # The task-keyed dicts above collapse repeat attempts of one
        # shard, so retried shards never double-count in submitted /
        # completed; retries are tallied separately from their events.
        shards["submitted"] = len(submits)
        shards["completed"] = len(completes)
        shards["failed"] = sum(
            1 for s in completes.values() if not s["attrs"].get("ok", True)
        )
        shards["retries"] = len(retries)
    if shards:
        summary["shards"] = shards

    # -- cache ------------------------------------------------------------
    gets = by_name.get("cache.get", ())
    puts = by_name.get("cache.put", ())
    evictions = by_name.get("cache.evict", ())
    quarantines = by_name.get("cache.quarantine", ())
    degradations = by_name.get("cache.degraded", ())
    if gets or puts or evictions or quarantines or degradations:
        hits = [s for s in gets if s["attrs"].get("hit")]
        summary["cache"] = {
            "gets": len(gets),
            "hits": len(hits),
            "misses": len(gets) - len(hits),
            "puts": len(puts),
            "put_bytes": sum(s["attrs"].get("bytes", 0) for s in puts),
            "evictions": len(evictions),
            "evicted_bytes": sum(
                s["attrs"].get("bytes", 0) for s in evictions
            ),
            "quarantined": len(quarantines),
            "quarantined_bytes": sum(
                s["attrs"].get("bytes", 0) for s in quarantines
            ),
            "degraded": bool(degradations),
            "get_seconds": sum(s["dur"] for s in gets),
            "put_seconds": sum(s["dur"] for s in puts),
        }

    # -- kernel split -----------------------------------------------------
    kernel_spans = by_name.get("kernel.advance", ())
    if kernel_spans:
        split: Dict[str, dict] = {}
        for span in kernel_spans:
            mode = span["attrs"].get("mode", "unknown")
            entry = split.setdefault(
                mode, {"calls": 0, "rounds": 0, "seconds": 0.0}
            )
            entry["calls"] += 1
            entry["rounds"] += span["attrs"].get("rounds", 0)
            entry["seconds"] += span["dur"]
        summary["kernel"] = split

    # -- chainsim split ---------------------------------------------------
    chain_spans = by_name.get("chainsim.run", ())
    if chain_spans:
        split = {}
        for span in chain_spans:
            mode = "fast" if span["attrs"].get("fast") else "naive"
            entry = split.setdefault(
                mode, {"calls": 0, "rounds": 0, "seconds": 0.0}
            )
            entry["calls"] += 1
            entry["rounds"] += span["attrs"].get("rounds", 0)
            entry["seconds"] += span["dur"]
        summary["chainsim"] = split

    return summary


# -- rendering ----------------------------------------------------------------


def _seconds(value: float) -> str:
    if value < 0.001:
        return f"{value * 1e6:.0f}us"
    if value < 1.0:
        return f"{value * 1e3:.1f}ms"
    return f"{value:.2f}s"


def _bytes(value: float) -> str:
    for unit in ("B", "KiB", "MiB", "GiB"):
        if value < 1024 or unit == "GiB":
            return f"{value:.0f}{unit}" if unit == "B" else f"{value:.1f}{unit}"
        value /= 1024
    return f"{value:.1f}GiB"


def _rows_to_table(rows: List[Tuple[str, ...]], indent: str = "  ") -> str:
    widths = [
        max(len(row[column]) for row in rows)
        for column in range(len(rows[0]))
    ]
    lines = []
    for row in rows:
        cells = [cell.ljust(width) for cell, width in zip(row, widths)]
        lines.append(indent + "  ".join(cells).rstrip())
    return "\n".join(lines)


def render_summary(summary: dict) -> str:
    """Render :func:`summarize_spans` output as an aligned text table."""
    lines: List[str] = [f"trace summary ({summary.get('spans', 0)} spans)"]

    for run in summary.get("runs", ()):
        attrs = run["attrs"]
        detail = ", ".join(f"{k}={v}" for k, v in sorted(attrs.items()))
        lines.append(
            f"  {run['name']}: {_seconds(run['dur'])}"
            + (f" ({detail})" if detail else "")
        )

    shards = summary.get("shards")
    if shards:
        lines.append("shards")
        if "submitted" in shards:
            lines.append(
                f"  submitted={shards['submitted']} "
                f"completed={shards['completed']} failed={shards['failed']} "
                f"retries={shards.get('retries', 0)}"
            )
        rows = [("phase", "count", "p50", "p90", "p99", "max", "total")]
        for phase in ("wall", "queue_wait", "merge_lag"):
            stats = shards.get(phase)
            if stats:
                rows.append((
                    phase,
                    str(stats["count"]),
                    _seconds(stats["p50"]),
                    _seconds(stats["p90"]),
                    _seconds(stats["p99"]),
                    _seconds(stats["max"]),
                    _seconds(stats["total"]),
                ))
        if len(rows) > 1:
            lines.append(_rows_to_table(rows))

    cache = summary.get("cache")
    if cache:
        lines.append("cache")
        lines.append(
            f"  gets={cache['gets']} hits={cache['hits']} "
            f"misses={cache['misses']} puts={cache['puts']} "
            f"evictions={cache['evictions']}"
        )
        lines.append(
            f"  put={_bytes(cache['put_bytes'])} "
            f"evicted={_bytes(cache['evicted_bytes'])} "
            f"get_time={_seconds(cache['get_seconds'])} "
            f"put_time={_seconds(cache['put_seconds'])}"
        )
        if cache.get("quarantined"):
            lines.append(
                f"  quarantined={cache['quarantined']} "
                f"({_bytes(cache.get('quarantined_bytes', 0))}) "
                f"-- run repro-fsck on the cache directory"
            )
        if cache.get("degraded"):
            lines.append(
                "  DEGRADED: cache went pass-through after ENOSPC"
            )

    for section in ("kernel", "chainsim"):
        split = summary.get(section)
        if split:
            lines.append(section)
            rows = [("mode", "calls", "rounds", "time")]
            for mode in sorted(split):
                entry = split[mode]
                rows.append((
                    mode,
                    str(entry["calls"]),
                    str(entry["rounds"]),
                    _seconds(entry["seconds"]),
                ))
            lines.append(_rows_to_table(rows))

    return "\n".join(lines)


def render_metrics(snapshot: dict) -> str:
    """Render a :meth:`MetricsRegistry.snapshot` as aligned text."""
    from .metrics import histogram_quantile

    lines: List[str] = ["metrics"]
    counters = snapshot.get("counters", {})
    gauges = snapshot.get("gauges", {})
    histograms = snapshot.get("histograms", {})
    if counters:
        rows = [
            (name, str(counters[name])) for name in sorted(counters)
        ]
        lines.append(_rows_to_table([("counter", "value")] + rows))
    if gauges:
        rows = [(name, str(gauges[name])) for name in sorted(gauges)]
        lines.append(_rows_to_table([("gauge", "value")] + rows))
    if histograms:
        rows = [("histogram", "count", "p50", "p99", "sum")]
        for name in sorted(histograms):
            state = histograms[name]
            p50 = histogram_quantile(state, 0.5)
            p99 = histogram_quantile(state, 0.99)
            rows.append((
                name,
                str(state["count"]),
                "-" if p50 is None else _seconds(p50),
                "-" if p99 is None else _seconds(p99),
                _seconds(state["sum"]),
            ))
        lines.append(_rows_to_table(rows))
    if len(lines) == 1:
        lines.append("  (empty)")
    return "\n".join(lines)


def render_cache_stats(stats: dict) -> str:
    """Render :meth:`ResultCache.stats` output as aligned text."""
    rows = [("stat", "value")]
    for key in ("entries", "hits", "misses", "evictions", "quarantined",
                "io_errors"):
        if key in stats:
            rows.append((key, str(stats[key])))
    if "bytes" in stats:
        rows.append(("bytes", _bytes(stats["bytes"])))
    if stats.get("max_bytes") is not None:
        rows.append(("max_bytes", _bytes(stats["max_bytes"])))
    if stats.get("degraded"):
        rows.append(("degraded", "yes (pass-through after ENOSPC)"))
    return "cache stats\n" + _rows_to_table(rows)


# -- CLI ----------------------------------------------------------------------


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-trace",
        description="Inspect repro runtime trace files.",
    )
    commands = parser.add_subparsers(dest="command", required=True)
    summarize = commands.add_parser(
        "summarize",
        help=f"summarize a {TRACE_SCHEMA} JSONL trace file",
    )
    summarize.add_argument("path", help="trace file written by --trace")
    summarize.add_argument(
        "--check",
        action="store_true",
        help="validate the JSONL schema and exit non-zero on violations",
    )
    summarize.add_argument(
        "--json",
        action="store_true",
        help="emit the summary as JSON instead of a table",
    )
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    if args.command == "summarize":
        errors = validate_trace(args.path)
        if errors:
            for error in errors:
                print(f"{args.path}: {error}", file=sys.stderr)
            print(
                f"{args.path}: INVALID ({len(errors)} schema "
                f"violation{'s' if len(errors) != 1 else ''})",
                file=sys.stderr,
            )
            return 1
        header, spans = read_trace(args.path)
        if args.check:
            print(
                f"{args.path}: OK ({header.get('schema')}, "
                f"{len(spans)} spans)"
            )
            return 0
        summary = summarize_spans(spans)
        if args.json:
            print(json.dumps(summary, indent=2, sort_keys=True))
        else:
            print(render_summary(summary))
        return 0
    return 2


if __name__ == "__main__":
    raise SystemExit(main())
