"""Runtime observability: span tracing, metrics, and reporting.

Zero-dependency telemetry for the parallel runtime.  Three doctrine
rules bind every instrument in this package:

1. **Never in fingerprints.**  Telemetry objects and flags are
   execution knobs, not part of an experiment's identity — they must
   never reach :func:`repro.runtime.spec.spec_fingerprint`.
2. **Bit-identity-neutral.**  Instrumentation reads clocks and
   counters, never random state; a traced run produces byte-identical
   results to an untraced one.
3. **Disabled means free.**  The ambient defaults are null objects;
   hot paths guard on ``tracer.enabled`` so disabled telemetry costs
   one attribute read (<2% on the kernel bench smoke config, enforced
   by a perf test) and allocates nothing.

Worker processes ship their telemetry home in a :class:`ShardEnvelope`
— a picklable (payload, spans, metrics-snapshot) triple the runner
unwraps and ingests (the cross-process analogue of
:class:`~repro.core.results.MergeAccumulator` folding).
"""

from __future__ import annotations

from typing import Any, List, NamedTuple, Optional

from .metrics import (
    DEFAULT_LATENCY_BUCKETS,
    NULL_METRICS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NullMetrics,
    get_metrics,
    histogram_quantile,
    merge_snapshots,
    set_metrics,
    using_metrics,
    using_worker_metrics,
)
from .report import (
    render_cache_stats,
    render_metrics,
    render_summary,
    summarize_spans,
)
from .trace import (
    NULL_TRACER,
    TRACE_SCHEMA,
    NullTracer,
    Tracer,
    get_tracer,
    read_trace,
    set_tracer,
    using_tracer,
    using_worker_tracer,
    validate_trace,
    write_trace,
)

__all__ = [
    "DEFAULT_LATENCY_BUCKETS",
    "NULL_METRICS",
    "NULL_TRACER",
    "TRACE_SCHEMA",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NullMetrics",
    "NullTracer",
    "ShardEnvelope",
    "Tracer",
    "get_metrics",
    "get_tracer",
    "histogram_quantile",
    "ingest_envelope",
    "merge_snapshots",
    "read_trace",
    "render_cache_stats",
    "render_metrics",
    "render_summary",
    "set_metrics",
    "set_tracer",
    "summarize_spans",
    "using_metrics",
    "using_tracer",
    "using_worker_metrics",
    "using_worker_tracer",
    "validate_trace",
    "write_trace",
]


class ShardEnvelope(NamedTuple):
    """A shard payload plus the telemetry its worker recorded.

    Plain data all the way down (result object, span dicts, metrics
    snapshot dict), so it pickles across the processes backend exactly
    like a bare payload.
    """

    payload: Any
    spans: List[dict]
    metrics: Optional[dict]


def ingest_envelope(envelope: "ShardEnvelope") -> Any:
    """Fold an envelope's telemetry into the ambient tracer/metrics
    and return the bare payload.

    Tolerates a bare (non-envelope) payload so the runner can unwrap
    unconditionally — untraced workers return payloads directly.
    """
    if not isinstance(envelope, ShardEnvelope):
        return envelope
    if envelope.spans:
        get_tracer().ingest(envelope.spans)
    if envelope.metrics is not None:
        get_metrics().merge(envelope.metrics)
    return envelope.payload
