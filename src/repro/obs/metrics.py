"""A mergeable metrics registry: counters, gauges, histograms.

The registry mirrors the runtime's :class:`~repro.core.results.MergeAccumulator`
philosophy: each worker process records into its own registry, ships a
plain-dict :meth:`MetricsRegistry.snapshot` back with the shard
payload, and the parent folds snapshots together with
:func:`merge_snapshots` / :meth:`MetricsRegistry.merge`.  Merging is
associative and commutative (counters add; histograms add bucket
counts and sums; gauges keep the max), so fold order — which varies
with shard completion order — cannot change the reported totals.

Like the tracer, metrics never touch random state and never enter
cache fingerprints: they observe the run, they do not participate in
it.
"""

from __future__ import annotations

import bisect
import contextlib
import threading
from typing import Dict, Iterator, List, Optional, Sequence, Tuple, Union

__all__ = [
    "DEFAULT_LATENCY_BUCKETS",
    "NULL_METRICS",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NullMetrics",
    "get_metrics",
    "histogram_quantile",
    "merge_snapshots",
    "set_metrics",
    "using_metrics",
    "using_worker_metrics",
]

#: Fixed bucket upper bounds (seconds) for latency histograms —
#: roughly log-spaced from 100µs to 100s.  Fixed boundaries are what
#: make histograms mergeable across processes: every worker counts
#: into the same bins.
DEFAULT_LATENCY_BUCKETS: Tuple[float, ...] = (
    0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05,
    0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 25.0, 50.0, 100.0,
)


class Counter:
    """A monotonically increasing count.  Merge: addition."""

    __slots__ = ("name", "value", "_lock")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value: Union[int, float] = 0
        self._lock = threading.Lock()

    def inc(self, amount: Union[int, float] = 1) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.name!r} cannot decrease")
        with self._lock:
            self.value += amount


class Gauge:
    """A point-in-time level.  Merge: maximum (the only associative,
    commutative choice that keeps "peak concurrency"-style gauges
    meaningful across workers)."""

    __slots__ = ("name", "value", "_lock")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value: Union[int, float] = 0
        self._lock = threading.Lock()

    def set(self, value: Union[int, float]) -> None:
        with self._lock:
            self.value = value

    def inc(self, amount: Union[int, float] = 1) -> None:
        with self._lock:
            self.value += amount

    def dec(self, amount: Union[int, float] = 1) -> None:
        with self._lock:
            self.value -= amount


class Histogram:
    """Fixed-boundary bucketed observations.  Merge: elementwise
    addition of bucket counts plus count/sum.

    ``boundaries`` are inclusive upper bounds; one overflow bucket
    catches everything beyond the last boundary, so ``len(buckets) ==
    len(boundaries) + 1``.
    """

    __slots__ = ("name", "boundaries", "buckets", "count", "sum", "_lock")

    def __init__(
        self,
        name: str,
        boundaries: Sequence[float] = DEFAULT_LATENCY_BUCKETS,
    ) -> None:
        bounds = tuple(float(b) for b in boundaries)
        if not bounds:
            raise ValueError(f"histogram {name!r}: no boundaries")
        if any(b >= a for b, a in zip(bounds, bounds[1:])):
            raise ValueError(
                f"histogram {name!r}: boundaries must strictly increase"
            )
        self.name = name
        self.boundaries = bounds
        self.buckets: List[int] = [0] * (len(bounds) + 1)
        self.count = 0
        self.sum: Union[int, float] = 0
        self._lock = threading.Lock()

    def observe(self, value: Union[int, float]) -> None:
        index = bisect.bisect_left(self.boundaries, value)
        with self._lock:
            self.buckets[index] += 1
            self.count += 1
            self.sum += value


class MetricsRegistry:
    """A named collection of counters, gauges and histograms.

    Getter methods create on first use and return the same instrument
    thereafter, so instrumented code never has to pre-register::

        metrics.counter("cache.hits").inc()
        metrics.histogram("shard.wall_seconds").observe(dt)

    Examples
    --------
    >>> a, b = MetricsRegistry(), MetricsRegistry()
    >>> a.counter("jobs").inc(2); b.counter("jobs").inc(3)
    >>> merged = MetricsRegistry()
    >>> merged.merge(a.snapshot()); merged.merge(b.snapshot())
    >>> merged.counter("jobs").value
    5
    """

    enabled = True

    def __init__(self) -> None:
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}
        self._lock = threading.Lock()

    # -- instruments ------------------------------------------------------

    def counter(self, name: str) -> Counter:
        with self._lock:
            instrument = self._counters.get(name)
            if instrument is None:
                instrument = self._counters[name] = Counter(name)
            return instrument

    def gauge(self, name: str) -> Gauge:
        with self._lock:
            instrument = self._gauges.get(name)
            if instrument is None:
                instrument = self._gauges[name] = Gauge(name)
            return instrument

    def histogram(
        self,
        name: str,
        boundaries: Sequence[float] = DEFAULT_LATENCY_BUCKETS,
    ) -> Histogram:
        with self._lock:
            instrument = self._histograms.get(name)
            if instrument is None:
                instrument = self._histograms[name] = Histogram(name, boundaries)
            elif instrument.boundaries != tuple(float(b) for b in boundaries):
                raise ValueError(
                    f"histogram {name!r} already registered with different "
                    f"boundaries"
                )
            return instrument

    # -- snapshot / merge -------------------------------------------------

    def snapshot(self) -> dict:
        """A plain-dict, picklable copy of every instrument's state."""
        with self._lock:
            counters = {n: c.value for n, c in self._counters.items()}
            gauges = {n: g.value for n, g in self._gauges.items()}
            histograms = {
                n: {
                    "boundaries": list(h.boundaries),
                    "buckets": list(h.buckets),
                    "count": h.count,
                    "sum": h.sum,
                }
                for n, h in self._histograms.items()
            }
        return {
            "counters": counters,
            "gauges": gauges,
            "histograms": histograms,
        }

    def merge(self, snapshot: dict) -> None:
        """Fold one :meth:`snapshot` into this registry."""
        for name, value in snapshot.get("counters", {}).items():
            self.counter(name).inc(value)
        for name, value in snapshot.get("gauges", {}).items():
            gauge = self.gauge(name)
            with gauge._lock:
                gauge.value = max(gauge.value, value)
        for name, state in snapshot.get("histograms", {}).items():
            histogram = self.histogram(name, state["boundaries"])
            with histogram._lock:
                for index, count in enumerate(state["buckets"]):
                    histogram.buckets[index] += count
                histogram.count += state["count"]
                histogram.sum += state["sum"]

    def __repr__(self) -> str:
        with self._lock:
            return (
                f"MetricsRegistry(counters={len(self._counters)}, "
                f"gauges={len(self._gauges)}, "
                f"histograms={len(self._histograms)})"
            )


def merge_snapshots(*snapshots: dict) -> dict:
    """Fold any number of registry snapshots into one (associative)."""
    merged = MetricsRegistry()
    for snapshot in snapshots:
        merged.merge(snapshot)
    return merged.snapshot()


def histogram_quantile(state: dict, q: float) -> Optional[float]:
    """Estimate the ``q``-quantile from a snapshot histogram entry.

    Returns the upper boundary of the bucket containing the quantile
    (the standard bucketed-histogram estimate); None when empty.  The
    overflow bucket reports the last finite boundary.
    """
    if not 0.0 <= q <= 1.0:
        raise ValueError(f"quantile must be in [0, 1], got {q}")
    total = state["count"]
    if total == 0:
        return None
    boundaries = state["boundaries"]
    rank = q * total
    seen = 0
    for index, count in enumerate(state["buckets"]):
        seen += count
        if seen >= rank and count:
            return boundaries[min(index, len(boundaries) - 1)]
    return boundaries[-1]


class NullMetrics:
    """The disabled registry: instruments that swallow every update.

    A single shared no-op instrument is handed out for every name, so
    the disabled path allocates nothing.
    """

    enabled = False

    def counter(self, name: str) -> "_NullInstrument":
        return _NULL_INSTRUMENT

    def gauge(self, name: str) -> "_NullInstrument":
        return _NULL_INSTRUMENT

    def histogram(
        self,
        name: str,
        boundaries: Sequence[float] = DEFAULT_LATENCY_BUCKETS,
    ) -> "_NullInstrument":
        return _NULL_INSTRUMENT

    def snapshot(self) -> dict:
        return {"counters": {}, "gauges": {}, "histograms": {}}

    def merge(self, snapshot: dict) -> None:
        pass

    def __repr__(self) -> str:
        return "NullMetrics()"


class _NullInstrument:
    __slots__ = ()
    value = 0

    def inc(self, amount: Union[int, float] = 1) -> None:
        pass

    def dec(self, amount: Union[int, float] = 1) -> None:
        pass

    def set(self, value: Union[int, float]) -> None:
        pass

    def observe(self, value: Union[int, float]) -> None:
        pass


_NULL_INSTRUMENT = _NullInstrument()

#: The shared disabled registry (the ambient default).
NULL_METRICS = NullMetrics()

_default_metrics: Union[MetricsRegistry, NullMetrics] = NULL_METRICS
_thread_override = threading.local()


def get_metrics() -> Union[MetricsRegistry, NullMetrics]:
    """The active registry: thread override, else process default."""
    metrics = getattr(_thread_override, "metrics", None)
    return _default_metrics if metrics is None else metrics


def set_metrics(metrics: Union[MetricsRegistry, NullMetrics, None]):
    """Install ``metrics`` (None restores the null registry) as the
    process default; returns the previous default."""
    global _default_metrics
    previous = _default_metrics
    _default_metrics = NULL_METRICS if metrics is None else metrics
    return previous


@contextlib.contextmanager
def using_metrics(
    metrics: Union[MetricsRegistry, NullMetrics, None]
) -> Iterator[None]:
    """Scope ``metrics`` as the process default for a ``with`` block."""
    previous = set_metrics(metrics)
    try:
        yield
    finally:
        set_metrics(previous)


@contextlib.contextmanager
def using_worker_metrics(
    metrics: Union[MetricsRegistry, NullMetrics]
) -> Iterator[None]:
    """Scope ``metrics`` as *this thread's* registry (see
    :func:`repro.obs.trace.using_worker_tracer` for why workers need a
    thread-local override rather than the process default)."""
    previous = getattr(_thread_override, "metrics", None)
    _thread_override.metrics = metrics
    try:
        yield
    finally:
        _thread_override.metrics = previous
