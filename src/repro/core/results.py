"""Structured results of ensemble mining simulations.

An :class:`EnsembleResult` captures everything the paper's figures
need: the reward fraction ``lambda`` of every miner in every trial at a
set of checkpoints, plus terminal stake shares.  It offers the derived
series that Figures 2-6 plot (sample mean, percentile envelope, unfair
probability) and the summary statistics of Table 1.

The full trajectory cube costs ``trials x checkpoints x miners``
doubles (~1.8 GB at 10M trials).  Runs past ~1M trials should use
``reduce="stats"`` instead, which keeps only mergeable sufficient
statistics (:class:`repro.core.stats.StatsSummary`) with the same
figure-facing API at O(1) memory per shard.
"""

from __future__ import annotations

import math
import warnings
from dataclasses import dataclass, field
from typing import Optional, Sequence, Tuple

import numpy as np

from .._validation import ensure_epsilon_delta
from .fairness import (
    DEFAULT_DELTA,
    DEFAULT_EPSILON,
    ExpectationalFairness,
    ExpectationalVerdict,
    RobustFairness,
    RobustVerdict,
)
from .metrics import (
    convergence_time,
    monopolisation_probability,
    unfair_probability_series,
)
from .miners import Allocation

__all__ = ["EnsembleResult", "MergeAccumulator", "SeriesSummary", "merge_parts"]


@dataclass(frozen=True)
class SeriesSummary:
    """The per-checkpoint series a paper figure plots for one miner.

    Attributes
    ----------
    checkpoints:
        Block (or epoch) counts at which the series is evaluated.
    mean:
        Sample mean of ``lambda`` (the orange line in Figure 2).
    lower / upper:
        Percentile envelope (the blue band in Figure 2; 5th and 95th
        percentiles by default).
    unfair_probability:
        Mass outside the fair area at each checkpoint (Figures 3/5).
    """

    checkpoints: np.ndarray
    mean: np.ndarray
    lower: np.ndarray
    upper: np.ndarray
    unfair_probability: np.ndarray

    def __post_init__(self) -> None:
        lengths = {
            len(self.checkpoints),
            len(self.mean),
            len(self.lower),
            len(self.upper),
            len(self.unfair_probability),
        }
        if len(lengths) != 1:
            raise ValueError("all series must have the same length")


class EnsembleResult:
    """Monte Carlo outcome of a mining game over many independent trials.

    Parameters
    ----------
    protocol_name:
        Name of the simulated incentive protocol.
    allocation:
        The initial resource allocation.
    checkpoints:
        Strictly increasing block/epoch counts at which fractions were
        recorded.
    reward_fractions:
        Array of shape ``(trials, checkpoints, miners)`` holding each
        miner's cumulative reward fraction ``lambda`` at each
        checkpoint.
    terminal_stakes:
        Array of shape ``(trials, miners)`` with final stake shares
        (equal to hash-power shares for PoW).
    round_unit:
        "block" or "epoch"; cosmetic, used by reports.
    """

    def __init__(
        self,
        protocol_name: str,
        allocation: Allocation,
        checkpoints: Sequence[int],
        reward_fractions: np.ndarray,
        terminal_stakes: Optional[np.ndarray] = None,
        *,
        round_unit: str = "block",
    ) -> None:
        self.protocol_name = str(protocol_name)
        self.allocation = allocation
        self.checkpoints = np.asarray(list(checkpoints), dtype=int)
        if self.checkpoints.ndim != 1 or self.checkpoints.size == 0:
            raise ValueError("checkpoints must be a non-empty 1-D sequence")
        if np.any(np.diff(self.checkpoints) <= 0):
            raise ValueError("checkpoints must be strictly increasing")
        fractions = np.asarray(reward_fractions, dtype=float)
        if fractions.ndim != 3:
            raise ValueError(
                "reward_fractions must have shape (trials, checkpoints, miners), "
                f"got {fractions.shape}"
            )
        trials, n_checkpoints, miners = fractions.shape
        if n_checkpoints != self.checkpoints.size:
            raise ValueError(
                f"reward_fractions has {n_checkpoints} checkpoints but "
                f"{self.checkpoints.size} were supplied"
            )
        if miners != allocation.size:
            raise ValueError(
                f"reward_fractions covers {miners} miners but the allocation "
                f"has {allocation.size}"
            )
        if np.any(fractions < -1e-9) or np.any(fractions > 1.0 + 1e-9):
            raise ValueError("reward fractions must lie in [0, 1]")
        self.reward_fractions = np.clip(fractions, 0.0, 1.0)
        if terminal_stakes is not None:
            terminal = np.asarray(terminal_stakes, dtype=float)
            if terminal.shape != (trials, miners):
                raise ValueError(
                    f"terminal_stakes must have shape ({trials}, {miners}), "
                    f"got {terminal.shape}"
                )
            self.terminal_stakes = terminal
        else:
            self.terminal_stakes = None
        if round_unit not in ("block", "epoch"):
            raise ValueError("round_unit must be 'block' or 'epoch'")
        self.round_unit = round_unit

    # -- construction -----------------------------------------------------

    @classmethod
    def _from_validated(
        cls,
        protocol_name: str,
        allocation: Allocation,
        checkpoints: Sequence[int],
        reward_fractions: np.ndarray,
        terminal_stakes: Optional[np.ndarray],
        round_unit: str,
    ) -> "EnsembleResult":
        """Adopt already-validated arrays without the constructor's copies.

        The public constructor re-clips ``reward_fractions`` into a
        fresh array — pure waste (and a transient 2x memory peak) when
        every value was copied out of EnsembleResults that were
        validated and clipped at their own construction.  Callers must
        guarantee exactly that invariant; :class:`MergeAccumulator`
        does, which is what keeps the streaming merge's peak at one
        merged ensemble.
        """
        result = cls.__new__(cls)
        result.protocol_name = str(protocol_name)
        result.allocation = allocation
        result.checkpoints = np.asarray(list(checkpoints), dtype=int)
        result.reward_fractions = reward_fractions
        result.terminal_stakes = terminal_stakes
        result.round_unit = round_unit
        return result

    @staticmethod
    def _ensure_mergeable(first: "EnsembleResult", part: "EnsembleResult") -> None:
        """Raise unless ``part`` describes the same game as ``first``."""
        if part.protocol_name != first.protocol_name:
            raise ValueError(
                f"cannot merge results of different protocols: "
                f"{first.protocol_name!r} vs {part.protocol_name!r}"
            )
        if part.allocation != first.allocation:
            raise ValueError("cannot merge results of different allocations")
        if not np.array_equal(part.checkpoints, first.checkpoints):
            raise ValueError("cannot merge results of different checkpoints")
        if part.round_unit != first.round_unit:
            raise ValueError("cannot merge results of different round units")
        if (part.terminal_stakes is None) != (first.terminal_stakes is None):
            raise ValueError(
                "cannot merge results that disagree on terminal stake recording"
            )

    @classmethod
    def merge(cls, results: Sequence["EnsembleResult"]) -> "EnsembleResult":
        """Concatenate shard results into one ensemble, in the given order.

        All parts must describe the same game: identical protocol
        name, allocation, checkpoints, and round unit; terminal stakes
        must be recorded by all parts or by none.  Trials concatenate
        along axis 0, so merging is exact — the merged ensemble is
        bit-identical no matter how the parts were distributed across
        workers, as long as their order is fixed.

        Holds every part alive plus the concatenated output (~2x the
        merged footprint); :class:`MergeAccumulator` produces the same
        bytes while holding only the output and one part at a time.
        """
        parts = list(results)
        if not parts:
            raise ValueError("cannot merge an empty sequence of results")
        first = parts[0]
        for part in parts[1:]:
            cls._ensure_mergeable(first, part)
        recorded = all(part.terminal_stakes is not None for part in parts)
        terminal = (
            np.concatenate([part.terminal_stakes for part in parts], axis=0)
            if recorded
            else None
        )
        return cls(
            protocol_name=first.protocol_name,
            allocation=first.allocation,
            checkpoints=first.checkpoints,
            reward_fractions=np.concatenate(
                [part.reward_fractions for part in parts], axis=0
            ),
            terminal_stakes=terminal,
            round_unit=first.round_unit,
        )

    def merge_into(self, accumulator: "MergeAccumulator") -> "MergeAccumulator":
        """Fold this result into ``accumulator``; returns the accumulator.

        ``acc = part.merge_into(acc)`` is the streaming spelling of
        ``EnsembleResult.merge([... , part])`` — feed parts in plan
        order and the accumulator's final result is byte-identical to
        the batch merge of the same sequence.
        """
        accumulator.add(self)
        return accumulator

    # -- basic accessors --------------------------------------------------

    @property
    def trials(self) -> int:
        """Number of independent Monte Carlo trials."""
        return self.reward_fractions.shape[0]

    @property
    def miners(self) -> int:
        """Number of miners in the game."""
        return self.reward_fractions.shape[2]

    @property
    def horizon(self) -> int:
        """The final recorded block/epoch count."""
        return int(self.checkpoints[-1])

    def fractions_of(self, miner: int = 0) -> np.ndarray:
        """Reward-fraction paths of one miner, shape ``(trials, checkpoints)``."""
        if not 0 <= miner < self.miners:
            raise IndexError(f"miner index {miner} out of range")
        return self.reward_fractions[:, :, miner]

    def final_fractions(self, miner: int = 0) -> np.ndarray:
        """Reward fractions at the final checkpoint, shape ``(trials,)``."""
        return self.fractions_of(miner)[:, -1]

    def terminal_stake_shares(self) -> np.ndarray:
        """Final stake shares, shape ``(trials, miners)``.

        Trials whose total terminal stake is zero (possible under full
        withholding / zero-issuance configurations) have no holder:
        their share rows are reported as all zeros — with a
        :class:`RuntimeWarning` — instead of the NaN/inf a bare
        division would produce.  Such rows count as non-monopolised in
        :meth:`monopolisation_probability`.
        """
        if self.terminal_stakes is None:
            raise ValueError("this result did not record terminal stakes")
        totals = self.terminal_stakes.sum(axis=1, keepdims=True)
        zero_rows = totals <= 0.0
        if np.any(zero_rows):
            warnings.warn(
                f"{int(np.count_nonzero(zero_rows))} trial(s) have zero total "
                "terminal stake; their shares are reported as 0 (no holder)",
                RuntimeWarning,
                stacklevel=2,
            )
            safe_totals = np.where(zero_rows, 1.0, totals)
            return np.where(zero_rows, 0.0, self.terminal_stakes / safe_totals)
        return self.terminal_stakes / totals

    # -- figure series ------------------------------------------------------

    def summary(
        self,
        miner: int = 0,
        *,
        epsilon: float = DEFAULT_EPSILON,
        percentiles: Tuple[float, float] = (5.0, 95.0),
    ) -> SeriesSummary:
        """The Figure 2 style series for one miner."""
        low_pct, high_pct = percentiles
        if not 0.0 <= low_pct < high_pct <= 100.0:
            raise ValueError("percentiles must satisfy 0 <= low < high <= 100")
        paths = self.fractions_of(miner)
        share = float(self.allocation.shares[miner])
        return SeriesSummary(
            checkpoints=self.checkpoints.copy(),
            mean=paths.mean(axis=0),
            lower=np.percentile(paths, low_pct, axis=0),
            upper=np.percentile(paths, high_pct, axis=0),
            unfair_probability=unfair_probability_series(paths, share, epsilon),
        )

    def unfair_probabilities(
        self, miner: int = 0, *, epsilon: float = DEFAULT_EPSILON
    ) -> np.ndarray:
        """Unfair probability at every checkpoint (Figures 3 and 5)."""
        share = float(self.allocation.shares[miner])
        return unfair_probability_series(self.fractions_of(miner), share, epsilon)

    # -- fairness verdicts ----------------------------------------------------

    def expectational_verdict(
        self, miner: int = 0, *, tolerance: Optional[float] = None
    ) -> ExpectationalVerdict:
        """Definition 3.1 check at the final checkpoint."""
        share = float(self.allocation.shares[miner])
        checker = ExpectationalFairness(share, tolerance=tolerance)
        return checker.evaluate(self.final_fractions(miner))

    def robust_verdict(
        self,
        miner: int = 0,
        *,
        epsilon: float = DEFAULT_EPSILON,
        delta: float = DEFAULT_DELTA,
    ) -> RobustVerdict:
        """Definition 4.1 check at the final checkpoint."""
        share = float(self.allocation.shares[miner])
        checker = RobustFairness(share, epsilon, delta)
        return checker.evaluate(self.final_fractions(miner))

    def convergence_time(
        self,
        miner: int = 0,
        *,
        epsilon: float = DEFAULT_EPSILON,
        delta: float = DEFAULT_DELTA,
    ) -> float:
        """Table 1 "Cvg. Time": first sustained (epsilon, delta)-fair checkpoint."""
        ensure_epsilon_delta(epsilon, delta)
        return convergence_time(
            self.checkpoints,
            self.unfair_probabilities(miner, epsilon=epsilon),
            delta,
        )

    def monopolisation_probability(self, *, margin: float = 0.99) -> float:
        """Fraction of trials ending in near-monopoly (Theorem 4.9 check)."""
        return monopolisation_probability(
            self.terminal_stake_shares(), margin=margin
        )

    # -- persistence / interchange ---------------------------------------------

    def to_dict(self) -> dict:
        """Plain-Python summary (checkpoint series only) for serialisation."""
        summary = self.summary()
        return {
            "protocol": self.protocol_name,
            "round_unit": self.round_unit,
            "trials": self.trials,
            "shares": self.allocation.shares.tolist(),
            "checkpoints": self.checkpoints.tolist(),
            "mean": summary.mean.tolist(),
            "p5": summary.lower.tolist(),
            "p95": summary.upper.tolist(),
            "unfair_probability": summary.unfair_probability.tolist(),
        }

    def __repr__(self) -> str:
        return (
            f"EnsembleResult({self.protocol_name!r}, trials={self.trials}, "
            f"miners={self.miners}, horizon={self.horizon} {self.round_unit}s)"
        )


@dataclass(frozen=True)
class _MergeTemplate:
    """The first part's game metadata, without its trial arrays.

    Duck-types as the ``first`` argument of
    :meth:`EnsembleResult._ensure_mergeable` (which only inspects
    metadata and whether ``terminal_stakes`` is None), so an
    accumulator can validate later parts without keeping the first
    part's — potentially large — arrays alive.
    """

    protocol_name: str
    allocation: Allocation
    checkpoints: np.ndarray
    round_unit: str
    terminal_stakes: Optional[bool]  # truthy marker, never the array
    miners: int


class MergeAccumulator:
    """Incremental, bounded-memory equivalent of the batch merge.

    Feed shard results in plan order through :meth:`add` (or
    :meth:`EnsembleResult.merge_into`); :meth:`result` returns the
    merged ensemble.  The folded output is **byte-identical** to
    ``merge_parts(parts)`` for the same part order.  For
    :class:`EnsembleResult` parts the accumulator writes each part's
    trials into their final position as they arrive instead of holding
    every part alive until a terminal concatenate; for
    :class:`~repro.core.stats.StatsSummary` parts it keeps one running
    summary, so the whole fold is O(1) in the trial count.

    Parts must carry at least one trial — a zero-trial part cannot come
    out of ``plan_shards`` (which clamps every shard to >= 1 trial), so
    accepting one would mean a corrupted shard payload; :meth:`add`
    rejects it.

    After :meth:`result` the accumulator is *finalized*: repeated
    :meth:`result` calls return the **same** object, and further
    :meth:`add` calls raise — the preallocated buffers were adopted by
    the returned ensemble, so reuse would silently mutate it.

    Parameters
    ----------
    expected_trials:
        Total trial count of the finished ensemble (the shard plan's
        ``total``).  When given, the merged arrays are preallocated
        once and each part is copied into place and can then be
        released by the caller, so peak memory is one merged ensemble
        plus a single in-flight part — this is what makes the runtime's
        streaming merge O(workers) instead of O(shards) in working-set.
        When None, full parts are staged and folded by a terminal
        :meth:`EnsembleResult.merge` (no memory bound, same bytes);
        stats parts fold incrementally either way.

    Examples
    --------
    >>> # doctest-style sketch; see tests/runtime/test_streaming_merge.py
    >>> # acc = MergeAccumulator(expected_trials=plan.total)
    >>> # for shard_result in shard_results:  # plan order
    >>> #     acc.add(shard_result)
    >>> # merged = acc.result()
    """

    def __init__(self, expected_trials: Optional[int] = None) -> None:
        if expected_trials is not None and expected_trials <= 0:
            raise ValueError(
                f"expected_trials must be positive, got {expected_trials!r}"
            )
        self.expected_trials = expected_trials
        # Metadata of the first part only — retaining the part itself
        # would keep its trial arrays alive for the whole fold and
        # break the one-in-flight-part memory bound.
        self._template: Optional["_MergeTemplate"] = None
        self._parts: list = []  # staging for the unbounded fallback
        self._fractions: Optional[np.ndarray] = None
        self._terminal: Optional[np.ndarray] = None
        self._stats = None  # running StatsSummary fold
        self._offset = 0
        self._count = 0
        self._final = None  # the adopted result once finalized

    @property
    def count(self) -> int:
        """Number of parts folded so far."""
        return self._count

    @property
    def trials(self) -> int:
        """Number of trials folded so far."""
        return self._offset

    @property
    def complete(self) -> bool:
        """Whether the accumulated trials match ``expected_trials``."""
        if self.expected_trials is None:
            return self._count > 0
        return self._offset == self.expected_trials

    @property
    def finalized(self) -> bool:
        """Whether :meth:`result` has been called."""
        return self._final is not None

    def add(self, part) -> "MergeAccumulator":
        """Fold the next part, in plan order; returns self for chaining."""
        from .stats import StatsSummary

        if self._final is not None:
            raise RuntimeError(
                "MergeAccumulator is finalized: result() already adopted the "
                "merged buffers, create a new accumulator instead"
            )
        if not isinstance(part, (EnsembleResult, StatsSummary)):
            raise TypeError(
                f"can only accumulate EnsembleResults or StatsSummaries, "
                f"got {type(part).__name__}"
            )
        if part.trials == 0:
            raise ValueError(
                "cannot accumulate a zero-trial part: plan_shards clamps "
                "every shard to >= 1 trial, so an empty part means a "
                "corrupted payload"
            )
        if isinstance(part, StatsSummary):
            return self._add_stats(part)
        if self._stats is not None:
            raise TypeError(
                "cannot mix EnsembleResult parts into a StatsSummary fold"
            )
        if self._template is None:
            self._template = _MergeTemplate(
                protocol_name=part.protocol_name,
                allocation=part.allocation,
                checkpoints=part.checkpoints,
                round_unit=part.round_unit,
                terminal_stakes=True if part.terminal_stakes is not None else None,
                miners=part.miners,
            )
        else:
            EnsembleResult._ensure_mergeable(self._template, part)
        if self.expected_trials is None:
            self._parts.append(part)
            self._offset += part.trials
            self._count += 1
            return self
        if self._offset + part.trials > self.expected_trials:
            raise ValueError(
                f"accumulated {self._offset + part.trials} trials, more than "
                f"the expected {self.expected_trials}"
            )
        if self._fractions is None:
            self._fractions = np.empty(
                (
                    self.expected_trials,
                    self._template.checkpoints.size,
                    self._template.miners,
                ),
                dtype=float,
            )
            if self._template.terminal_stakes is not None:
                self._terminal = np.empty(
                    (self.expected_trials, self._template.miners), dtype=float
                )
        end = self._offset + part.trials
        self._fractions[self._offset:end] = part.reward_fractions
        if self._terminal is not None:
            self._terminal[self._offset:end] = part.terminal_stakes
        self._offset = end
        self._count += 1
        return self

    def _add_stats(self, part) -> "MergeAccumulator":
        """Fold a StatsSummary part: one running summary, O(1) memory."""
        if self._template is not None or self._parts:
            raise TypeError(
                "cannot mix StatsSummary parts into an EnsembleResult fold"
            )
        if (
            self.expected_trials is not None
            and self._offset + part.trials > self.expected_trials
        ):
            raise ValueError(
                f"accumulated {self._offset + part.trials} trials, more than "
                f"the expected {self.expected_trials}"
            )
        if self._stats is None:
            self._stats = part
        else:
            # Pairwise left fold: the exact operation sequence of
            # StatsSummary.merge(parts) in the same order, so the
            # streamed fold is bit-identical to the batch merge.
            self._stats = self._stats._merged_with(part)
        self._offset += part.trials
        self._count += 1
        return self

    def result(self):
        """The merged ensemble; byte-identical to the batch merge.

        Raises if nothing was folded, or if ``expected_trials`` was
        given and the folded trials fall short of it.  The first call
        finalizes the accumulator: later calls return the same object
        and :meth:`add` refuses further parts.
        """
        if self._final is not None:
            return self._final
        if self._count == 0:
            raise ValueError("cannot merge an empty sequence of results")
        if (
            self.expected_trials is not None
            and self._offset != self.expected_trials
        ):
            raise ValueError(
                f"accumulated {self._offset} of the expected "
                f"{self.expected_trials} trials"
            )
        if self._stats is not None:
            self._final = self._stats
        elif self.expected_trials is None:
            self._final = EnsembleResult.merge(self._parts)
        else:
            # Every block was copied out of a validated (clipped)
            # EnsembleResult, so adopt the buffers instead of paying the
            # public constructor's re-clip copy — that copy alone would
            # put the peak back at two merged ensembles.  Adoption is
            # why finalization matters: a live accumulator would keep
            # writing into the returned ensemble's arrays.
            self._final = EnsembleResult._from_validated(
                protocol_name=self._template.protocol_name,
                allocation=self._template.allocation,
                checkpoints=self._template.checkpoints,
                reward_fractions=self._fractions,
                terminal_stakes=self._terminal,
                round_unit=self._template.round_unit,
            )
        return self._final

    def __repr__(self) -> str:
        expected = (
            "?" if self.expected_trials is None else str(self.expected_trials)
        )
        return (
            f"MergeAccumulator(parts={self._count}, "
            f"trials={self._offset}/{expected})"
        )


def merge_parts(parts: Sequence) -> object:
    """Merge homogeneous shard parts, dispatching on their kind.

    ``EnsembleResult`` parts concatenate; ``StatsSummary`` parts fold
    their sufficient statistics.  Mixing kinds raises — a grid must
    run entirely under one ``reduce`` mode (the spec fingerprint
    guarantees the cache never hands back the other kind).
    """
    staged = list(parts)
    if not staged:
        raise ValueError("cannot merge an empty sequence of results")
    cls = type(staged[0])
    for part in staged[1:]:
        if type(part) is not cls:
            raise TypeError(
                f"cannot merge mixed part kinds: {cls.__name__} vs "
                f"{type(part).__name__}"
            )
    return cls.merge(staged)
