"""The paper's primary contribution: fairness definitions and analysis.

Submodules
----------
miners
    Miner identities and normalised resource allocations.
fairness
    Expectational fairness (Def. 3.1) and robust
    ``(epsilon, delta)``-fairness (Def. 4.1) checkers.
metrics
    Derived metrics: unfair probability, convergence time, ROI,
    decentralisation indices.
results
    :class:`EnsembleResult` — structured Monte Carlo output.
stats
    :class:`StatsSummary` — the ``reduce="stats"`` counterpart:
    mergeable sufficient statistics in O(1) memory per shard.
game
    :class:`MiningGame` — the one-call facade combining simulation,
    empirical verdicts and theoretical predictions.
"""

from .fairness import (
    DEFAULT_DELTA,
    DEFAULT_EPSILON,
    ExpectationalFairness,
    ExpectationalVerdict,
    FairArea,
    RobustFairness,
    RobustVerdict,
)
from .game import FairnessReport, MiningGame, TheoreticalPrediction, predict
from .metrics import (
    convergence_time,
    gini_coefficient,
    herfindahl_index,
    monopolisation_probability,
    nakamoto_coefficient,
    return_on_investment,
    reward_fraction,
    unfair_probability,
    unfair_probability_series,
)
from .miners import Allocation, Miner
from .results import EnsembleResult, MergeAccumulator, SeriesSummary, merge_parts
from .stats import MomentView, StatsCollector, StatsSummary

__all__ = [
    "DEFAULT_DELTA",
    "DEFAULT_EPSILON",
    "ExpectationalFairness",
    "ExpectationalVerdict",
    "FairArea",
    "RobustFairness",
    "RobustVerdict",
    "FairnessReport",
    "MiningGame",
    "TheoreticalPrediction",
    "predict",
    "convergence_time",
    "gini_coefficient",
    "herfindahl_index",
    "monopolisation_probability",
    "nakamoto_coefficient",
    "return_on_investment",
    "reward_fraction",
    "unfair_probability",
    "unfair_probability_series",
    "Allocation",
    "Miner",
    "EnsembleResult",
    "MergeAccumulator",
    "SeriesSummary",
    "merge_parts",
    "MomentView",
    "StatsCollector",
    "StatsSummary",
]
