"""Sufficient-statistics ensembles: population-scale trials in O(1) memory.

A :class:`StatsSummary` is the ``reduce="stats"`` counterpart of
:class:`~repro.core.results.EnsembleResult`.  Instead of the full
``(trials, checkpoints, miners)`` trajectory cube (~17.6 MB per 100k
trials, ~1.8 GB at the 10M-trial scale) it keeps only the sufficient
statistics every paper figure actually consumes:

* per-(checkpoint, miner) ``count``/``mean``/``M2`` moments, merged
  across shards with Chan's parallel-variance update — the Figure 2
  mean line, the Table 1 averages, and Definition 3.1 verdicts;
* a fixed-grid CDF sketch (histogram over [0, 1], ``bins`` cells) per
  (checkpoint, miner) — the Figure 2 percentile envelope, with
  absolute quantile error bounded by one bin width (``1 / bins``);
* **exact** integer counters for unfair events (Figures 3/5,
  Definition 4.1 verdicts, convergence times) at the recorded
  ``epsilon``, and for terminal win/monopolisation events at the
  recorded ``margin``.

Exactness contract (the golden differential suite pins this):

* ``unfair_probabilities`` / ``robust_verdict`` / ``convergence_time``
  at the recorded ``epsilon`` and ``monopolisation_probability`` at
  the recorded ``margin`` are **bit-identical** to full mode — they
  are computed from exact counters with the same final arithmetic.
* ``summary().mean`` and ``final_fractions().mean()`` match full mode
  to float tolerance (shard-local means are exact; cross-shard Chan
  merges reassociate the sum).
* ``summary().lower/.upper`` (and off-recorded ``epsilon``/``margin``
  queries) carry a documented bounded error of at most ``2 / bins``
  in the value domain.

Merging is associative exactly for the integer counters and up to
float rounding for the moments; the runtime always folds shards
left-to-right in plan order, so merged summaries are bit-reproducible
for a fixed shard plan regardless of worker count or backend.

The sketch parameters (``bins``, ``epsilon``, ``margin``) are part of
the artifact's content, so they are folded into the spec fingerprint
payload by :func:`repro.runtime.spec.spec_fingerprint` — changing the
defaults below invalidates stats-mode cache entries, never corrupts
them.
"""

from __future__ import annotations

import math
import warnings
from typing import Optional, Sequence, Tuple

import numpy as np

from .._validation import ensure_epsilon_delta
from .fairness import (
    DEFAULT_DELTA,
    DEFAULT_EPSILON,
    ExpectationalFairness,
    ExpectationalVerdict,
    FairArea,
    RobustFairness,
    RobustVerdict,
)
from .metrics import convergence_time
from .miners import Allocation
from .results import SeriesSummary

__all__ = [
    "DEFAULT_BINS",
    "DEFAULT_MARGIN",
    "REDUCE_MODES",
    "MomentView",
    "StatsCollector",
    "StatsSummary",
    "ensure_reduce_mode",
]

#: Valid settings of the ``reduce`` knob.  Unlike ``kernel``/``fast``
#: this is a *physics* knob: the two modes produce different artifact
#: bytes, so ``reduce`` always enters the spec fingerprint.
REDUCE_MODES = ("full", "stats")


def ensure_reduce_mode(value: str) -> str:
    """Validate a ``reduce`` knob setting and return it."""
    if value not in REDUCE_MODES:
        raise ValueError(
            f"reduce must be one of {REDUCE_MODES}, got {value!r}"
        )
    return value

#: Cells of the fixed-grid CDF sketch over [0, 1].  Quantile queries
#: carry an absolute error of at most one bin width (~0.001).  Part of
#: the artifact content: bumping this changes stats-mode fingerprints
#: (see ``spec_fingerprint``), so cached artifacts can never silently
#: disagree with the code that reads them.
DEFAULT_BINS = 1024

#: Dominance threshold whose monopolisation counter is recorded
#: exactly (the Theorem 4.9 default).  Other margins are answered from
#: the max-share sketch with bounded error.
DEFAULT_MARGIN = 0.99

_TRAJECTORY_HINT = (
    "stats-reduced results keep sufficient statistics only, not "
    "per-trial trajectories; rerun with reduce='full' for raw samples"
)


class MomentView:
    """Moment-only stand-in for a per-trial sample vector.

    ``StatsSummary.final_fractions()`` returns one of these where
    ``EnsembleResult.final_fractions()`` returns the raw ``(trials,)``
    array.  It answers the aggregate queries the experiments make
    (``.mean()``, ``.std()``, ``.var()``, ``len()``) and refuses
    element access loudly, so full-trajectory consumers fail with a
    pointer at ``reduce="full"`` instead of a shape error.
    """

    def __init__(self, count: int, mean: float, m2: float) -> None:
        self.count = int(count)
        self._mean = float(mean)
        self._m2 = max(float(m2), 0.0)

    @property
    def size(self) -> int:
        return self.count

    def __len__(self) -> int:
        return self.count

    def mean(self) -> float:
        """Sample mean (exact up to cross-shard reassociation)."""
        return self._mean

    def var(self, ddof: int = 0) -> float:
        """Sample variance from the merged second moment."""
        if self.count - ddof <= 0:
            return 0.0
        return self._m2 / (self.count - ddof)

    def std(self, ddof: int = 0) -> float:
        """Sample standard deviation from the merged second moment."""
        return math.sqrt(self.var(ddof=ddof))

    def __array__(self, dtype=None):  # pragma: no cover - signature only
        raise TypeError(_TRAJECTORY_HINT)

    def __iter__(self):
        raise TypeError(_TRAJECTORY_HINT)

    def __getitem__(self, index):
        raise TypeError(_TRAJECTORY_HINT)

    def __repr__(self) -> str:
        return (
            f"MomentView(count={self.count}, mean={self._mean:.6g}, "
            f"std={self.std():.6g})"
        )


def _value_bins(values: np.ndarray, bins: int) -> np.ndarray:
    """Grid-cell index of each value in [0, 1]; 1.0 lands in the last cell."""
    return np.minimum((values * bins).astype(np.int64), bins - 1)


def _histogram_quantile(counts: np.ndarray, total: int, pct: float) -> float:
    """Quantile estimate from one fixed-grid histogram row.

    Mirrors ``np.percentile``'s default linear interpolation between
    the two bracketing order statistics; each order statistic is
    located by inverting the sketch CDF and spread uniformly inside
    its cell, so the absolute error is bounded by one bin width.
    """
    bins = counts.shape[0]
    cumulative = np.cumsum(counts)

    def order_value(index: int) -> float:
        target = index + 1  # order statistics are 1-based in the CDF
        cell = int(np.searchsorted(cumulative, target, side="left"))
        before = int(cumulative[cell - 1]) if cell > 0 else 0
        inside = target - before
        return (cell + (inside - 0.5) / float(counts[cell])) / bins

    rank = pct / 100.0 * (total - 1)
    low_index = int(math.floor(rank))
    high_index = int(math.ceil(rank))
    low_value = order_value(low_index)
    if high_index == low_index:
        return low_value
    high_value = order_value(high_index)
    return low_value + (rank - low_index) * (high_value - low_value)


def _interval_mass(counts: np.ndarray, total: int, lower: float, upper: float) -> float:
    """Approximate probability mass of ``[lower, upper]`` from a sketch row.

    Cells fully inside the interval contribute exactly; the two
    straddling cells contribute pro rata, so the error is bounded by
    the mass of two cells.
    """
    bins = counts.shape[0]
    lower = min(max(lower, 0.0), 1.0)
    upper = min(max(upper, 0.0), 1.0)
    if upper <= lower:
        return 0.0
    edges = np.arange(bins + 1) / bins
    left = np.clip((np.minimum(edges[1:], upper) - np.maximum(edges[:-1], lower)), 0.0, None)
    weights = left * bins  # fraction of each cell inside the interval
    return float(np.dot(weights, counts) / total)


class StatsSummary:
    """Mergeable sufficient statistics of a Monte Carlo ensemble.

    API-compatible with :class:`~repro.core.results.EnsembleResult`
    for every aggregate consumer (``summary``,
    ``unfair_probabilities``, fairness verdicts, ``convergence_time``,
    ``monopolisation_probability``, ``to_dict``); per-trial accessors
    raise with a pointer at ``reduce="full"``.

    Build instances with :class:`StatsCollector` (streaming, used by
    the engine) or :meth:`from_ensemble` (reduction of an existing
    full result, used by the system path and the differential tests).
    """

    def __init__(
        self,
        protocol_name: str,
        allocation: Allocation,
        checkpoints: Sequence[int],
        *,
        round_unit: str,
        trials: int,
        epsilon: float,
        bins: int,
        margin: float,
        mean: np.ndarray,
        m2: np.ndarray,
        hist: np.ndarray,
        unfair: np.ndarray,
        terminal_mean: Optional[np.ndarray] = None,
        terminal_m2: Optional[np.ndarray] = None,
        terminal_hist: Optional[np.ndarray] = None,
        max_share_hist: Optional[np.ndarray] = None,
        monopolised: int = 0,
        wins: Optional[np.ndarray] = None,
        zero_stake_trials: int = 0,
    ) -> None:
        self.protocol_name = str(protocol_name)
        self.allocation = allocation
        self.checkpoints = np.asarray(list(checkpoints), dtype=int)
        if self.checkpoints.ndim != 1 or self.checkpoints.size == 0:
            raise ValueError("checkpoints must be a non-empty 1-D sequence")
        if np.any(np.diff(self.checkpoints) <= 0):
            raise ValueError("checkpoints must be strictly increasing")
        if round_unit not in ("block", "epoch"):
            raise ValueError("round_unit must be 'block' or 'epoch'")
        self.round_unit = round_unit
        self.trials = int(trials)
        if self.trials <= 0:
            raise ValueError(f"trials must be positive, got {trials!r}")
        eps, _ = ensure_epsilon_delta(epsilon, 0.5)
        self.epsilon = eps
        self.bins = int(bins)
        if self.bins <= 0:
            raise ValueError(f"bins must be positive, got {bins!r}")
        if not 0.5 < margin <= 1.0:
            raise ValueError("margin must be in (0.5, 1]")
        self.margin = float(margin)
        shape = (self.checkpoints.size, allocation.size)
        self.mean = np.asarray(mean, dtype=float)
        self.m2 = np.asarray(m2, dtype=float)
        self.hist = np.asarray(hist, dtype=np.int64)
        self.unfair = np.asarray(unfair, dtype=np.int64)
        if self.mean.shape != shape or self.m2.shape != shape:
            raise ValueError(
                f"mean/m2 must have shape {shape}, got "
                f"{self.mean.shape}/{self.m2.shape}"
            )
        if self.hist.shape != shape + (self.bins,):
            raise ValueError(
                f"hist must have shape {shape + (self.bins,)}, got {self.hist.shape}"
            )
        if self.unfair.shape != shape:
            raise ValueError(f"unfair must have shape {shape}, got {self.unfair.shape}")
        terminal_fields = (terminal_mean, terminal_m2, terminal_hist, max_share_hist, wins)
        if any(f is not None for f in terminal_fields):
            if any(f is None for f in terminal_fields):
                raise ValueError(
                    "terminal statistics must be supplied together or not at all"
                )
            self.terminal_mean = np.asarray(terminal_mean, dtype=float)
            self.terminal_m2 = np.asarray(terminal_m2, dtype=float)
            self.terminal_hist = np.asarray(terminal_hist, dtype=np.int64)
            self.max_share_hist = np.asarray(max_share_hist, dtype=np.int64)
            self.wins = np.asarray(wins, dtype=np.int64)
        else:
            self.terminal_mean = None
            self.terminal_m2 = None
            self.terminal_hist = None
            self.max_share_hist = None
            self.wins = None
        self.monopolised = int(monopolised)
        self.zero_stake_trials = int(zero_stake_trials)

    # -- basic accessors --------------------------------------------------

    @property
    def miners(self) -> int:
        """Number of miners in the game."""
        return self.mean.shape[1]

    @property
    def horizon(self) -> int:
        """The final recorded block/epoch count."""
        return int(self.checkpoints[-1])

    @property
    def has_terminal(self) -> bool:
        """Whether terminal-stake statistics were recorded."""
        return self.terminal_mean is not None

    def fractions_of(self, miner: int = 0) -> np.ndarray:
        raise TypeError(_TRAJECTORY_HINT)

    def terminal_stake_shares(self) -> np.ndarray:
        raise TypeError(_TRAJECTORY_HINT)

    def final_fractions(self, miner: int = 0) -> MomentView:
        """Moments of the final-checkpoint reward fraction of one miner.

        Returns a :class:`MomentView` — supports ``.mean()`` /
        ``.std()`` / ``len()`` but refuses per-trial access.
        """
        self._check_miner(miner)
        return MomentView(
            count=self.trials,
            mean=float(self.mean[-1, miner]),
            m2=float(self.m2[-1, miner]),
        )

    def _check_miner(self, miner: int) -> None:
        if not 0 <= miner < self.miners:
            raise IndexError(f"miner index {miner} out of range")

    # -- figure series ------------------------------------------------------

    def _unfair_series(self, miner: int, epsilon: float) -> np.ndarray:
        """Unfair probability per checkpoint; exact at the recorded epsilon."""
        share = float(self.allocation.shares[miner])
        area = FairArea(share=share, epsilon=epsilon)
        if area.epsilon == self.epsilon:
            # Exact counters, final arithmetic identical to the full
            # mode path (1 - mean of the fair indicator).
            fair = (self.trials - self.unfair[:, miner]).astype(float)
            return 1.0 - fair / self.trials
        fair = np.array(
            [
                _interval_mass(self.hist[c, miner], self.trials, area.lower, area.upper)
                for c in range(self.checkpoints.size)
            ]
        )
        return 1.0 - fair

    def summary(
        self,
        miner: int = 0,
        *,
        epsilon: float = DEFAULT_EPSILON,
        percentiles: Tuple[float, float] = (5.0, 95.0),
    ) -> SeriesSummary:
        """The Figure 2 style series for one miner.

        The mean matches full mode to float tolerance and the unfair
        probability exactly (at the recorded epsilon); the percentile
        envelope comes from the CDF sketch with absolute error bounded
        by ``2 / bins``.
        """
        self._check_miner(miner)
        low_pct, high_pct = percentiles
        if not 0.0 <= low_pct < high_pct <= 100.0:
            raise ValueError("percentiles must satisfy 0 <= low < high <= 100")
        lower = np.array(
            [
                _histogram_quantile(self.hist[c, miner], self.trials, low_pct)
                for c in range(self.checkpoints.size)
            ]
        )
        upper = np.array(
            [
                _histogram_quantile(self.hist[c, miner], self.trials, high_pct)
                for c in range(self.checkpoints.size)
            ]
        )
        return SeriesSummary(
            checkpoints=self.checkpoints.copy(),
            mean=self.mean[:, miner].copy(),
            lower=lower,
            upper=upper,
            unfair_probability=self._unfair_series(miner, epsilon),
        )

    def unfair_probabilities(
        self, miner: int = 0, *, epsilon: float = DEFAULT_EPSILON
    ) -> np.ndarray:
        """Unfair probability at every checkpoint (Figures 3 and 5)."""
        self._check_miner(miner)
        return self._unfair_series(miner, epsilon)

    # -- fairness verdicts ----------------------------------------------------

    def expectational_verdict(
        self, miner: int = 0, *, tolerance: Optional[float] = None
    ) -> ExpectationalVerdict:
        """Definition 3.1 check at the final checkpoint (from moments)."""
        self._check_miner(miner)
        share = float(self.allocation.shares[miner])
        checker = ExpectationalFairness(share, tolerance=tolerance)
        mean = float(self.mean[-1, miner])
        if self.trials > 1:
            std = math.sqrt(max(float(self.m2[-1, miner]), 0.0) / (self.trials - 1))
            stderr = std / math.sqrt(self.trials)
        else:
            stderr = 0.0
        # Decision logic mirrors ExpectationalFairness.evaluate.
        if checker.tolerance is not None:
            is_fair = abs(mean - share) <= checker.tolerance
            z_score = (mean - share) / stderr if stderr > 0 else math.nan
        elif stderr <= 1e-15:
            z_score = math.nan
            is_fair = abs(mean - share) <= 1e-9
        else:
            z_score = (mean - share) / stderr
            is_fair = abs(z_score) <= checker.z_threshold
        return ExpectationalVerdict(
            share=share,
            sample_mean=mean,
            standard_error=stderr,
            z_score=z_score,
            is_fair=is_fair,
        )

    def robust_verdict(
        self,
        miner: int = 0,
        *,
        epsilon: float = DEFAULT_EPSILON,
        delta: float = DEFAULT_DELTA,
    ) -> RobustVerdict:
        """Definition 4.1 check at the final checkpoint (exact counters)."""
        self._check_miner(miner)
        share = float(self.allocation.shares[miner])
        checker = RobustFairness(share, epsilon, delta)
        if checker.epsilon == self.epsilon:
            # Same arithmetic order as RobustFairness.evaluate: the
            # exact fair mass first, then one subtraction.
            fair = (self.trials - int(self.unfair[-1, miner])) / self.trials
        else:
            area = checker.fair_area
            fair = _interval_mass(
                self.hist[-1, miner], self.trials, area.lower, area.upper
            )
        unfair = 1.0 - fair
        return RobustVerdict(
            fair_area=checker.fair_area,
            delta=checker.delta,
            fair_probability=fair,
            unfair_probability=unfair,
            is_fair=unfair <= checker.delta,
            sample_size=self.trials,
        )

    def convergence_time(
        self,
        miner: int = 0,
        *,
        epsilon: float = DEFAULT_EPSILON,
        delta: float = DEFAULT_DELTA,
    ) -> float:
        """Table 1 "Cvg. Time"; exact at the recorded epsilon."""
        ensure_epsilon_delta(epsilon, delta)
        return convergence_time(
            self.checkpoints,
            self.unfair_probabilities(miner, epsilon=epsilon),
            delta,
        )

    def monopolisation_probability(self, *, margin: float = 0.99) -> float:
        """Fraction of trials ending in near-monopoly (Theorem 4.9 check).

        Exact at the recorded margin; other margins are answered from
        the max-share sketch with error bounded by two cell masses.
        """
        if not self.has_terminal:
            raise ValueError("this result did not record terminal stakes")
        if not 0.5 < margin <= 1.0:
            raise ValueError("margin must be in (0.5, 1]")
        if margin == self.margin:
            return self.monopolised / self.trials
        return self._max_share_tail(margin)

    def _max_share_tail(self, margin: float) -> float:
        """P(max terminal share >= margin) from the sketch, pro-rata cell."""
        cell = int(_value_bins(np.array([margin]), self.bins)[0])
        above = int(self.max_share_hist[cell + 1:].sum())
        cell_right = (cell + 1) / self.bins
        inside = float(self.max_share_hist[cell]) * (cell_right - margin) * self.bins
        return (above + inside) / self.trials

    def win_probabilities(self) -> np.ndarray:
        """Fraction of trials each miner ends with the strictly largest stake.

        Ties (and all-zero stake rows) have no winner, so the vector
        may sum to less than one.
        """
        if not self.has_terminal:
            raise ValueError("this result did not record terminal stakes")
        return self.wins / float(self.trials)

    # -- merging ------------------------------------------------------------

    @staticmethod
    def _ensure_mergeable(first: "StatsSummary", part: "StatsSummary") -> None:
        """Raise unless ``part`` describes the same game and sketch grid."""
        if part.protocol_name != first.protocol_name:
            raise ValueError(
                f"cannot merge results of different protocols: "
                f"{first.protocol_name!r} vs {part.protocol_name!r}"
            )
        if part.allocation != first.allocation:
            raise ValueError("cannot merge results of different allocations")
        if not np.array_equal(part.checkpoints, first.checkpoints):
            raise ValueError("cannot merge results of different checkpoints")
        if part.round_unit != first.round_unit:
            raise ValueError("cannot merge results of different round units")
        if part.has_terminal != first.has_terminal:
            raise ValueError(
                "cannot merge results that disagree on terminal stake recording"
            )
        if (part.epsilon, part.bins, part.margin) != (
            first.epsilon,
            first.bins,
            first.margin,
        ):
            raise ValueError(
                "cannot merge stats summaries with different sketch parameters"
            )

    def _merged_with(self, other: "StatsSummary") -> "StatsSummary":
        """Pairwise Chan merge; counters add exactly."""
        StatsSummary._ensure_mergeable(self, other)
        n_a = self.trials
        n_b = other.trials
        total = n_a + n_b
        delta = other.mean - self.mean
        mean = self.mean + delta * (n_b / total)
        m2 = self.m2 + other.m2 + delta * delta * (n_a * n_b / total)
        kwargs = {}
        if self.has_terminal:
            t_delta = other.terminal_mean - self.terminal_mean
            kwargs = dict(
                terminal_mean=self.terminal_mean + t_delta * (n_b / total),
                terminal_m2=(
                    self.terminal_m2
                    + other.terminal_m2
                    + t_delta * t_delta * (n_a * n_b / total)
                ),
                terminal_hist=self.terminal_hist + other.terminal_hist,
                max_share_hist=self.max_share_hist + other.max_share_hist,
                wins=self.wins + other.wins,
            )
        return StatsSummary(
            protocol_name=self.protocol_name,
            allocation=self.allocation,
            checkpoints=self.checkpoints,
            round_unit=self.round_unit,
            trials=total,
            epsilon=self.epsilon,
            bins=self.bins,
            margin=self.margin,
            mean=mean,
            m2=m2,
            hist=self.hist + other.hist,
            unfair=self.unfair + other.unfair,
            monopolised=self.monopolised + other.monopolised,
            zero_stake_trials=self.zero_stake_trials + other.zero_stake_trials,
            **kwargs,
        )

    @classmethod
    def merge(cls, parts: Sequence["StatsSummary"]) -> "StatsSummary":
        """Fold shard summaries left-to-right, in the given order.

        Integer counters merge exactly (fully associative); moments
        merge with Chan's update, so for a fixed part order the result
        is bit-reproducible across worker counts and backends.
        """
        staged = list(parts)
        if not staged:
            raise ValueError("cannot merge an empty sequence of results")
        merged = staged[0]
        for part in staged[1:]:
            merged = merged._merged_with(part)
        return merged

    def merge_into(self, accumulator) -> "MergeAccumulator":
        """Fold this summary into a results ``MergeAccumulator``."""
        accumulator.add(self)
        return accumulator

    # -- construction -------------------------------------------------------

    @classmethod
    def from_ensemble(
        cls,
        result,
        *,
        epsilon: float = DEFAULT_EPSILON,
        bins: int = DEFAULT_BINS,
        margin: float = DEFAULT_MARGIN,
    ) -> "StatsSummary":
        """Reduce a full :class:`EnsembleResult` to its statistics.

        Used by the system-experiment shard path (whose serial runner
        produces full results) and as the ground-truth reduction in
        the differential tests.
        """
        collector = StatsCollector(
            protocol_name=result.protocol_name,
            allocation=result.allocation,
            checkpoints=result.checkpoints,
            round_unit=result.round_unit,
            epsilon=epsilon,
            bins=bins,
            margin=margin,
        )
        for position in range(result.checkpoints.size):
            collector.observe(position, result.reward_fractions[:, position, :])
        if result.terminal_stakes is not None:
            collector.observe_terminal(result.terminal_stakes)
        return collector.build(result.trials)

    # -- persistence / interchange ---------------------------------------------

    def to_dict(self) -> dict:
        """Plain-Python summary, same shape as ``EnsembleResult.to_dict``."""
        summary = self.summary()
        return {
            "protocol": self.protocol_name,
            "round_unit": self.round_unit,
            "trials": self.trials,
            "shares": self.allocation.shares.tolist(),
            "checkpoints": self.checkpoints.tolist(),
            "mean": summary.mean.tolist(),
            "p5": summary.lower.tolist(),
            "p95": summary.upper.tolist(),
            "unfair_probability": summary.unfair_probability.tolist(),
        }

    def state_arrays(self) -> dict:
        """The mergeable sketch state as plain arrays (for .npz storage)."""
        arrays = {
            "stats_mean": self.mean,
            "stats_m2": self.m2,
            "stats_hist": self.hist,
            "stats_unfair": self.unfair,
        }
        if self.has_terminal:
            arrays.update(
                stats_terminal_mean=self.terminal_mean,
                stats_terminal_m2=self.terminal_m2,
                stats_terminal_hist=self.terminal_hist,
                stats_max_share_hist=self.max_share_hist,
                stats_wins=self.wins,
            )
        return arrays

    def state_meta(self) -> dict:
        """Scalar sketch state for the .npz metadata record."""
        return {
            "trials": self.trials,
            "epsilon": self.epsilon,
            "bins": self.bins,
            "margin": self.margin,
            "monopolised": self.monopolised,
            "zero_stake_trials": self.zero_stake_trials,
        }

    def __repr__(self) -> str:
        return (
            f"StatsSummary({self.protocol_name!r}, trials={self.trials}, "
            f"miners={self.miners}, horizon={self.horizon} {self.round_unit}s, "
            f"bins={self.bins})"
        )


class StatsCollector:
    """Streaming builder for :class:`StatsSummary`.

    The engine calls :meth:`observe` once per checkpoint with the raw
    ``(trials, miners)`` fraction matrix — values are validated and
    clipped exactly as :class:`EnsembleResult`'s constructor would, so
    shard-local statistics are computed from the same numbers full
    mode stores — then :meth:`observe_terminal` with the final stake
    matrix, then :meth:`build`.
    """

    def __init__(
        self,
        protocol_name: str,
        allocation: Allocation,
        checkpoints: Sequence[int],
        *,
        round_unit: str = "block",
        epsilon: float = DEFAULT_EPSILON,
        bins: int = DEFAULT_BINS,
        margin: float = DEFAULT_MARGIN,
    ) -> None:
        self.protocol_name = str(protocol_name)
        self.allocation = allocation
        self.checkpoints = np.asarray(list(checkpoints), dtype=int)
        self.round_unit = round_unit
        eps, _ = ensure_epsilon_delta(epsilon, 0.5)
        self.epsilon = eps
        self.bins = int(bins)
        self.margin = float(margin)
        miners = allocation.size
        shape = (self.checkpoints.size, miners)
        self._mean = np.zeros(shape)
        self._m2 = np.zeros(shape)
        self._hist = np.zeros(shape + (self.bins,), dtype=np.int64)
        self._unfair = np.zeros(shape, dtype=np.int64)
        self._areas = [
            FairArea(share=float(allocation.shares[m]), epsilon=eps)
            for m in range(miners)
        ]
        self._terminal_mean: Optional[np.ndarray] = None
        self._terminal_m2: Optional[np.ndarray] = None
        self._terminal_hist: Optional[np.ndarray] = None
        self._max_share_hist: Optional[np.ndarray] = None
        self._wins: Optional[np.ndarray] = None
        self._monopolised = 0
        self._zero_stake_trials = 0
        self._trials: Optional[int] = None

    def _note_trials(self, count: int) -> None:
        if self._trials is None:
            self._trials = count
        elif self._trials != count:
            raise ValueError(
                f"observation covers {count} trials but earlier ones covered "
                f"{self._trials}"
            )

    def observe(self, position: int, raw_fractions: np.ndarray) -> None:
        """Fold one checkpoint's ``(trials, miners)`` fraction matrix."""
        values = np.asarray(raw_fractions, dtype=float)
        if values.ndim != 2 or values.shape[1] != self.allocation.size:
            raise ValueError(
                f"raw_fractions must have shape (trials, {self.allocation.size}), "
                f"got {values.shape}"
            )
        if np.any(values < -1e-9) or np.any(values > 1.0 + 1e-9):
            raise ValueError("reward fractions must lie in [0, 1]")
        self._note_trials(values.shape[0])
        values = np.clip(values, 0.0, 1.0)
        # Shard-local moments are exact: one np.mean per checkpoint,
        # the same numbers full mode would aggregate.
        mean = values.mean(axis=0)
        self._mean[position] = mean
        self._m2[position] = ((values - mean) ** 2).sum(axis=0)
        cells = _value_bins(values, self.bins)
        miners = self.allocation.size
        flat = cells + (np.arange(miners, dtype=np.int64) * self.bins)[None, :]
        self._hist[position] += np.bincount(
            flat.ravel(), minlength=miners * self.bins
        ).reshape(miners, self.bins)
        for m, area in enumerate(self._areas):
            self._unfair[position, m] = int(
                self._trials - np.count_nonzero(area.contains(values[:, m]))
            )

    def observe_terminal(self, stakes: np.ndarray) -> None:
        """Fold the final ``(trials, miners)`` stake matrix.

        Rows with zero total stake get zero shares (no holder) — the
        same guarded semantics as
        :meth:`EnsembleResult.terminal_stake_shares` — and are counted
        in ``zero_stake_trials``.
        """
        stakes = np.asarray(stakes, dtype=float)
        if stakes.ndim != 2 or stakes.shape[1] != self.allocation.size:
            raise ValueError(
                f"stakes must have shape (trials, {self.allocation.size}), "
                f"got {stakes.shape}"
            )
        self._note_trials(stakes.shape[0])
        totals = stakes.sum(axis=1, keepdims=True)
        zero_rows = totals <= 0.0
        zero_count = int(np.count_nonzero(zero_rows))
        if zero_count:
            warnings.warn(
                f"{zero_count} trial(s) have zero total terminal stake; "
                "their shares are recorded as 0 (no holder)",
                RuntimeWarning,
                stacklevel=2,
            )
        shares = np.where(zero_rows, 0.0, stakes / np.where(zero_rows, 1.0, totals))
        mean = shares.mean(axis=0)
        self._terminal_mean = mean
        self._terminal_m2 = ((shares - mean) ** 2).sum(axis=0)
        cells = _value_bins(shares, self.bins)
        miners = self.allocation.size
        flat = cells + (np.arange(miners, dtype=np.int64) * self.bins)[None, :]
        self._terminal_hist = np.bincount(
            flat.ravel(), minlength=miners * self.bins
        ).reshape(miners, self.bins)
        max_shares = shares.max(axis=1)
        self._max_share_hist = np.bincount(
            _value_bins(max_shares, self.bins), minlength=self.bins
        ).astype(np.int64)
        self._monopolised = int(np.count_nonzero(max_shares >= self.margin))
        # A miner "wins" when it holds strictly more than every rival;
        # ties and zero-stake rows have no winner.
        strict_max = shares == max_shares[:, None]
        unique = strict_max.sum(axis=1) == 1
        winner_rows = unique & ~zero_rows.ravel()
        self._wins = (strict_max & winner_rows[:, None]).sum(axis=0).astype(np.int64)
        self._zero_stake_trials = zero_count

    def build(self, trials: Optional[int] = None) -> StatsSummary:
        """Freeze the collected state into a :class:`StatsSummary`."""
        if self._trials is None:
            raise ValueError("no observations were folded")
        if trials is not None and trials != self._trials:
            raise ValueError(
                f"collector saw {self._trials} trials but {trials} were expected"
            )
        kwargs = {}
        if self._terminal_mean is not None:
            kwargs = dict(
                terminal_mean=self._terminal_mean,
                terminal_m2=self._terminal_m2,
                terminal_hist=self._terminal_hist,
                max_share_hist=self._max_share_hist,
                wins=self._wins,
            )
        return StatsSummary(
            protocol_name=self.protocol_name,
            allocation=self.allocation,
            checkpoints=self.checkpoints,
            round_unit=self.round_unit,
            trials=self._trials,
            epsilon=self.epsilon,
            bins=self.bins,
            margin=self.margin,
            mean=self._mean,
            m2=self._m2,
            hist=self._hist,
            unfair=self._unfair,
            monopolised=self._monopolised,
            zero_stake_trials=self._zero_stake_trials,
            **kwargs,
        )
