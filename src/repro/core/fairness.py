"""The paper's two fairness notions (Definitions 3.1 and 4.1).

* :class:`ExpectationalFairness` — ``E[lambda_A] = a`` (Definition 3.1).
  Checked against simulation output with a configurable tolerance or a
  normal-approximation confidence band.
* :class:`RobustFairness` — ``Pr[(1-e)a <= lambda_A <= (1+e)a] >= 1 - d``
  (Definition 4.1), the ``(epsilon, delta)``-fairness criterion.  The
  closed interval ``[(1-e)a, (1+e)a]`` is the paper's *fair area*; its
  complement within [0, 1] is the *unfair area*.

Both classes evaluate samples of the reward fraction ``lambda_A`` and
return structured verdicts, so experiments can render uniform reports.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional

import numpy as np

from .._validation import (
    ensure_epsilon_delta,
    ensure_fraction,
    ensure_positive_float,
)

__all__ = [
    "FairArea",
    "ExpectationalVerdict",
    "RobustVerdict",
    "ExpectationalFairness",
    "RobustFairness",
    "DEFAULT_EPSILON",
    "DEFAULT_DELTA",
]

#: The paper's default robust-fairness parameters (Section 5.1).
DEFAULT_EPSILON = 0.1
DEFAULT_DELTA = 0.1


@dataclass(frozen=True)
class FairArea:
    """The fair interval ``[(1 - epsilon) a, (1 + epsilon) a]``.

    Both endpoints are clipped to [0, 1] since ``lambda`` is a
    fraction.
    """

    share: float
    epsilon: float

    def __post_init__(self) -> None:
        object.__setattr__(self, "share", ensure_fraction("share", self.share))
        eps, _ = ensure_epsilon_delta(self.epsilon, 0.5)
        object.__setattr__(self, "epsilon", eps)

    @property
    def lower(self) -> float:
        """Lower endpoint ``max(0, (1 - epsilon) a)``."""
        return max(0.0, (1.0 - self.epsilon) * self.share)

    @property
    def upper(self) -> float:
        """Upper endpoint ``min(1, (1 + epsilon) a)``."""
        return min(1.0, (1.0 + self.epsilon) * self.share)

    def contains(self, fractions) -> np.ndarray:
        """Element-wise membership of reward fractions in the fair area.

        Endpoints are treated with a 1e-12 absolute tolerance so that
        float rounding of ``(1 +- epsilon) * a`` cannot exclude values
        that are exactly on the boundary.
        """
        values = np.asarray(fractions, dtype=float)
        atol = 1e-12
        result = (values >= self.lower - atol) & (values <= self.upper + atol)
        if result.ndim == 0:
            return bool(result)
        return result

    def fair_probability(self, fractions) -> float:
        """Empirical probability mass inside the fair area."""
        values = np.asarray(fractions, dtype=float)
        if values.size == 0:
            raise ValueError("fractions must not be empty")
        return float(np.mean(self.contains(values)))

    def unfair_probability(self, fractions) -> float:
        """Empirical probability mass in the unfair area (Section 5.4)."""
        return 1.0 - self.fair_probability(fractions)


@dataclass(frozen=True)
class ExpectationalVerdict:
    """Outcome of an expectational-fairness check.

    Attributes
    ----------
    share:
        Target expected fraction ``a``.
    sample_mean:
        Empirical mean of ``lambda_A``.
    standard_error:
        Standard error of the sample mean.
    z_score:
        Studentised deviation ``(mean - a) / stderr`` (``nan`` when the
        standard error is zero).
    is_fair:
        Whether the mean is within the acceptance region.
    """

    share: float
    sample_mean: float
    standard_error: float
    z_score: float
    is_fair: bool

    @property
    def bias(self) -> float:
        """Signed deviation of the empirical mean from ``a``."""
        return self.sample_mean - self.share


@dataclass(frozen=True)
class RobustVerdict:
    """Outcome of an ``(epsilon, delta)``-fairness check.

    Attributes
    ----------
    fair_area:
        The interval tested.
    delta:
        Allowed unfair probability.
    fair_probability / unfair_probability:
        Empirical masses inside/outside the fair area.
    is_fair:
        ``unfair_probability <= delta``.
    sample_size:
        Number of evaluated outcomes.
    """

    fair_area: FairArea
    delta: float
    fair_probability: float
    unfair_probability: float
    is_fair: bool
    sample_size: int


class ExpectationalFairness:
    """Checker for Definition 3.1, ``E[lambda_A] = a``.

    Two acceptance modes:

    * ``tolerance`` — accept when ``|mean - a| <= tolerance``.
    * ``z_threshold`` (default 4.0) — accept when the studentised
      deviation is below the threshold; adapts automatically to the
      Monte Carlo sample size.

    Parameters
    ----------
    share:
        The miner's initial resource share ``a``.
    tolerance:
        Absolute tolerance on the mean; overrides the z-test if given.
    z_threshold:
        Studentised-deviation threshold used when no tolerance is set.
    """

    def __init__(
        self,
        share: float,
        *,
        tolerance: Optional[float] = None,
        z_threshold: float = 4.0,
    ) -> None:
        self.share = ensure_fraction("share", share)
        self.tolerance = (
            None if tolerance is None else ensure_positive_float("tolerance", tolerance)
        )
        self.z_threshold = ensure_positive_float("z_threshold", z_threshold)

    def evaluate(self, fractions) -> ExpectationalVerdict:
        """Evaluate samples of ``lambda_A`` and return a verdict."""
        values = np.asarray(fractions, dtype=float).ravel()
        if values.size == 0:
            raise ValueError("fractions must not be empty")
        if np.any(values < -1e-12) or np.any(values > 1.0 + 1e-12):
            raise ValueError("reward fractions must lie in [0, 1]")
        mean = float(values.mean())
        if values.size > 1:
            stderr = float(values.std(ddof=1) / math.sqrt(values.size))
        else:
            stderr = 0.0
        if self.tolerance is not None:
            is_fair = abs(mean - self.share) <= self.tolerance
            z_score = (mean - self.share) / stderr if stderr > 0 else math.nan
        elif stderr <= 1e-15:
            # Degenerate (near-constant) sample: the z-test is
            # meaningless, compare means directly.
            z_score = math.nan
            is_fair = abs(mean - self.share) <= 1e-9
        else:
            z_score = (mean - self.share) / stderr
            is_fair = abs(z_score) <= self.z_threshold
        return ExpectationalVerdict(
            share=self.share,
            sample_mean=mean,
            standard_error=stderr,
            z_score=z_score,
            is_fair=is_fair,
        )

    def __repr__(self) -> str:
        return f"ExpectationalFairness(share={self.share})"


class RobustFairness:
    """Checker for Definition 4.1, ``(epsilon, delta)``-fairness.

    Parameters
    ----------
    share:
        The miner's initial resource share ``a``.
    epsilon:
        Relative width of the fair area (default 0.1, Section 5.1).
    delta:
        Allowed unfair probability (default 0.1, Section 5.1).
    """

    def __init__(
        self,
        share: float,
        epsilon: float = DEFAULT_EPSILON,
        delta: float = DEFAULT_DELTA,
    ) -> None:
        epsilon, delta = ensure_epsilon_delta(epsilon, delta)
        self.fair_area = FairArea(share=share, epsilon=epsilon)
        self.delta = delta

    @property
    def share(self) -> float:
        return self.fair_area.share

    @property
    def epsilon(self) -> float:
        return self.fair_area.epsilon

    def evaluate(self, fractions) -> RobustVerdict:
        """Evaluate samples of ``lambda_A`` and return a verdict."""
        values = np.asarray(fractions, dtype=float).ravel()
        if values.size == 0:
            raise ValueError("fractions must not be empty")
        fair = self.fair_area.fair_probability(values)
        unfair = 1.0 - fair
        return RobustVerdict(
            fair_area=self.fair_area,
            delta=self.delta,
            fair_probability=fair,
            unfair_probability=unfair,
            is_fair=unfair <= self.delta,
            sample_size=values.size,
        )

    def __repr__(self) -> str:
        return (
            f"RobustFairness(share={self.share}, epsilon={self.epsilon}, "
            f"delta={self.delta})"
        )
