"""Scalar metrics derived from mining outcomes.

Beyond the two fairness notions, the experiments report several
derived quantities:

* :func:`reward_fraction` — ``lambda_A`` from reward tallies.
* :func:`return_on_investment` — the normalised ROI ``lambda_A / a``
  (robust fairness says this concentrates near 1).
* :func:`unfair_probability` — the Section 5.4 metric.
* :func:`convergence_time` — the Table 1 "Cvg. Time" column: the first
  checkpoint after which the unfair probability stays at or below
  ``delta``.
* :func:`gini_coefficient` / :func:`herfindahl_index` /
  :func:`nakamoto_coefficient` — decentralisation measures used in the
  extended analyses (Section 6.5 motivates monitoring concentration).
"""

from __future__ import annotations

import math
from typing import Optional, Sequence

import numpy as np

from .._validation import ensure_epsilon_delta, ensure_fraction
from .fairness import FairArea

__all__ = [
    "reward_fraction",
    "return_on_investment",
    "unfair_probability",
    "unfair_probability_series",
    "convergence_time",
    "gini_coefficient",
    "herfindahl_index",
    "nakamoto_coefficient",
    "monopolisation_probability",
]

#: Sentinel returned by :func:`convergence_time` when fairness is never reached.
NEVER = math.inf


def reward_fraction(rewards, total_reward) -> np.ndarray:
    """Fraction of the total issued reward captured by a miner.

    Parameters
    ----------
    rewards:
        Reward amounts (scalar or array).
    total_reward:
        Total rewards issued over the same period (broadcastable).
    """
    rewards_arr = np.asarray(rewards, dtype=float)
    total_arr = np.asarray(total_reward, dtype=float)
    if np.any(total_arr <= 0.0):
        raise ValueError("total_reward must be positive")
    result = rewards_arr / total_arr
    if np.any(result < -1e-12) or np.any(result > 1.0 + 1e-12):
        raise ValueError("reward fraction escaped [0, 1]; inconsistent totals")
    return np.clip(result, 0.0, 1.0)


def return_on_investment(fractions, share: float) -> np.ndarray:
    """Normalised return on investment ``lambda / a``.

    Equal to one for a perfectly proportional outcome; robust fairness
    states it concentrates within ``[1 - epsilon, 1 + epsilon]``.
    """
    share = ensure_fraction("share", share)
    return np.asarray(fractions, dtype=float) / share


def unfair_probability(
    fractions, share: float, epsilon: float = 0.1
) -> float:
    """``Pr[lambda < (1-e)a or lambda > (1+e)a]`` (Section 5.4)."""
    area = FairArea(share=share, epsilon=epsilon)
    return area.unfair_probability(fractions)


def unfair_probability_series(
    fractions_by_checkpoint: np.ndarray, share: float, epsilon: float = 0.1
) -> np.ndarray:
    """Unfair probability at every checkpoint.

    Parameters
    ----------
    fractions_by_checkpoint:
        Array of shape ``(trials, checkpoints)`` of reward fractions.
    share, epsilon:
        Fair-area parameters.

    Returns
    -------
    numpy.ndarray of shape ``(checkpoints,)``.
    """
    values = np.asarray(fractions_by_checkpoint, dtype=float)
    if values.ndim != 2:
        raise ValueError(
            f"fractions_by_checkpoint must be 2-D (trials, checkpoints), "
            f"got shape {values.shape}"
        )
    area = FairArea(share=share, epsilon=epsilon)
    return 1.0 - np.asarray(area.contains(values), dtype=float).mean(axis=0)


def convergence_time(
    checkpoints: Sequence[int],
    unfair_probabilities: Sequence[float],
    delta: float = 0.1,
    *,
    sustained: bool = True,
) -> float:
    """First checkpoint at which (epsilon, delta)-fairness is achieved.

    Implements the Table 1 "Cvg. Time" column: the earliest recorded
    block/epoch count whose unfair probability is at most ``delta``.
    With ``sustained=True`` (default) the unfair probability must also
    stay at or below ``delta`` at every later checkpoint, so transient
    dips do not count as convergence.

    Returns
    -------
    float
        The checkpoint value, or ``math.inf`` ("Never") when fairness
        is not achieved within the recorded horizon.
    """
    _, delta = ensure_epsilon_delta(0.0, delta)
    checkpoints_arr = np.asarray(list(checkpoints), dtype=float)
    unfair_arr = np.asarray(list(unfair_probabilities), dtype=float)
    if checkpoints_arr.shape != unfair_arr.shape:
        raise ValueError("checkpoints and unfair_probabilities must align")
    if checkpoints_arr.size == 0:
        raise ValueError("need at least one checkpoint")
    if np.any(np.diff(checkpoints_arr) <= 0):
        raise ValueError("checkpoints must be strictly increasing")
    below = unfair_arr <= delta
    if sustained:
        # below and stays below: suffix-all of the boolean series.
        suffix_ok = np.logical_and.accumulate(below[::-1])[::-1]
        hits = np.nonzero(suffix_ok)[0]
    else:
        hits = np.nonzero(below)[0]
    if hits.size == 0:
        return NEVER
    return float(checkpoints_arr[hits[0]])


def gini_coefficient(amounts) -> float:
    """Gini coefficient of a non-negative amount vector (0 = equal)."""
    values = np.sort(np.asarray(amounts, dtype=float).ravel())
    if values.size == 0:
        raise ValueError("amounts must not be empty")
    if np.any(values < 0.0):
        raise ValueError("amounts must be non-negative")
    total = values.sum()
    if total == 0.0:
        return 0.0
    n = values.size
    ranks = np.arange(1, n + 1)
    return float((2.0 * np.sum(ranks * values)) / (n * total) - (n + 1.0) / n)


def herfindahl_index(amounts) -> float:
    """Herfindahl-Hirschman concentration index, ``sum(share_i^2)``.

    Ranges from ``1/m`` (equal split among ``m`` holders) to 1
    (monopoly).
    """
    values = np.asarray(amounts, dtype=float).ravel()
    if values.size == 0:
        raise ValueError("amounts must not be empty")
    if np.any(values < 0.0):
        raise ValueError("amounts must be non-negative")
    total = values.sum()
    if total == 0.0:
        raise ValueError("amounts must not be all zero")
    shares = values / total
    return float(np.sum(shares * shares))


def nakamoto_coefficient(amounts, threshold: float = 0.5) -> int:
    """Minimum number of holders jointly exceeding ``threshold`` of the total.

    The blockchain community's standard decentralisation measure; a
    value of 1 means a single entity already controls a majority (the
    51%-attack condition discussed in Section 6.5).
    """
    if not 0.0 < threshold < 1.0:
        raise ValueError("threshold must be in (0, 1)")
    values = np.sort(np.asarray(amounts, dtype=float).ravel())[::-1]
    if values.size == 0:
        raise ValueError("amounts must not be empty")
    if np.any(values < 0.0):
        raise ValueError("amounts must be non-negative")
    total = values.sum()
    if total == 0.0:
        raise ValueError("amounts must not be all zero")
    cumulative = np.cumsum(values) / total
    # Strictly exceed the threshold: two of four equal holders reach
    # exactly 50% but cannot attack, so they do not count.
    return int(np.searchsorted(cumulative, threshold, side="right") + 1)


def monopolisation_probability(
    terminal_shares: np.ndarray, *, margin: float = 0.99
) -> float:
    """Fraction of trials in which one miner holds >= ``margin`` of stakes.

    Used to verify Theorem 4.9 numerically: for SL-PoS this approaches
    one as the horizon grows.

    Parameters
    ----------
    terminal_shares:
        Array of shape ``(trials, miners)`` of final stake shares.
    margin:
        Dominance threshold (default 0.99).
    """
    if not 0.5 < margin <= 1.0:
        raise ValueError("margin must be in (0.5, 1]")
    shares = np.asarray(terminal_shares, dtype=float)
    if shares.ndim != 2:
        raise ValueError("terminal_shares must be 2-D (trials, miners)")
    return float(np.mean(shares.max(axis=1) >= margin))
