"""High-level mining-game facade tying protocols, simulation and fairness.

:class:`MiningGame` is the main entry point of the library: it couples
an incentive protocol with an initial allocation, runs the Monte Carlo
engine, and produces a :class:`FairnessReport` combining the empirical
verdicts of Definitions 3.1/4.1 with the paper's theoretical
predictions for that protocol.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

from .._validation import ensure_epsilon_delta, ensure_positive_int
from ..protocols.base import IncentiveProtocol
from ..protocols.c_pos import CompoundPoS
from ..protocols.extended import AlgorandPoS, EOSDelegatedPoS, NeoPoS
from ..protocols.fsl_pos import FairSingleLotteryPoS
from ..protocols.ml_pos import MultiLotteryPoS
from ..protocols.pow import ProofOfWork
from ..protocols.sl_pos import SingleLotteryPoS
from ..protocols.withholding import RewardWithholding
from .fairness import (
    DEFAULT_DELTA,
    DEFAULT_EPSILON,
    ExpectationalVerdict,
    RobustVerdict,
)
from .miners import Allocation
from .results import EnsembleResult, SeriesSummary

__all__ = ["TheoreticalPrediction", "FairnessReport", "MiningGame", "predict"]


@dataclass(frozen=True)
class TheoreticalPrediction:
    """What the paper's theorems predict for a protocol.

    Attributes
    ----------
    expectational:
        Whether expectational fairness is guaranteed (None = depends on
        parameters in a way the paper does not settle).
    robust:
        Whether robust fairness is achievable at the requested
        ``(epsilon, delta)`` within the given horizon — True when the
        sufficient condition holds, False when the paper proves failure
        (SL-PoS), None when the sufficient condition fails but no
        impossibility is known (the ML-PoS grey zone).
    source:
        The theorem(s) backing the prediction.
    """

    expectational: Optional[bool]
    robust: Optional[bool]
    source: str


def predict(
    protocol: IncentiveProtocol,
    share: float,
    horizon: int,
    *,
    epsilon: float = DEFAULT_EPSILON,
    delta: float = DEFAULT_DELTA,
) -> TheoreticalPrediction:
    """Theoretical fairness prediction for ``protocol`` (Sections 3-4, 6.4).

    Unwraps :class:`RewardWithholding` (the wrapper preserves the inner
    protocol's expectational fairness and can only improve robustness,
    Section 6.3).
    """
    ensure_epsilon_delta(epsilon, delta)
    ensure_positive_int("horizon", horizon)
    from ..theory.bounds import (
        CPoSFairnessBound,
        MLPoSFairnessBound,
        PoWFairnessBound,
    )

    if isinstance(protocol, RewardWithholding):
        inner = predict(
            protocol.inner, share, horizon, epsilon=epsilon, delta=delta
        )
        return TheoreticalPrediction(
            expectational=inner.expectational,
            robust=True if inner.robust else None,
            source=f"{inner.source} + Section 6.3 (withholding improves robustness)",
        )
    if isinstance(protocol, (ProofOfWork, NeoPoS)):
        sufficient = PoWFairnessBound(epsilon, delta, share).is_sufficient(horizon)
        return TheoreticalPrediction(
            expectational=True,
            robust=True if sufficient else None,
            source="Theorems 3.2, 4.2",
        )
    if isinstance(protocol, SingleLotteryPoS):
        return TheoreticalPrediction(
            expectational=False, robust=False, source="Theorems 3.4, 4.9"
        )
    if isinstance(protocol, CompoundPoS):
        sufficient = CPoSFairnessBound(epsilon, delta, share).is_sufficient(
            horizon,
            protocol.shards,
            protocol.proposer_reward,
            protocol.inflation_reward,
        )
        return TheoreticalPrediction(
            expectational=True,
            robust=True if sufficient else None,
            source="Theorems 3.5, 4.10",
        )
    if isinstance(protocol, (MultiLotteryPoS, FairSingleLotteryPoS)):
        sufficient = MLPoSFairnessBound(epsilon, delta, share).is_sufficient(
            horizon, protocol.reward
        )
        return TheoreticalPrediction(
            expectational=True,
            robust=True if sufficient else None,
            source="Theorems 3.3, 4.3 (FSL-PoS: Section 6.2)",
        )
    if isinstance(protocol, AlgorandPoS):
        return TheoreticalPrediction(
            expectational=True, robust=True, source="Section 6.4 (Algorand)"
        )
    if isinstance(protocol, EOSDelegatedPoS):
        return TheoreticalPrediction(
            expectational=False, robust=False, source="Section 6.4 (EOS)"
        )
    return TheoreticalPrediction(
        expectational=None, robust=None, source="no closed-form result"
    )


@dataclass(frozen=True)
class FairnessReport:
    """Joint empirical + theoretical fairness assessment of one game."""

    protocol_name: str
    share: float
    horizon: int
    trials: int
    epsilon: float
    delta: float
    expectational: ExpectationalVerdict
    robust: RobustVerdict
    convergence_time: float
    prediction: TheoreticalPrediction
    summary: SeriesSummary

    def consistent_with_theory(self) -> bool:
        """Whether the empirical verdicts match the definite predictions.

        ``None`` predictions (parameter-dependent cases) are treated as
        compatible with any outcome.
        """
        checks = []
        if self.prediction.expectational is not None:
            checks.append(
                self.expectational.is_fair == self.prediction.expectational
            )
        if self.prediction.robust is not None:
            checks.append(self.robust.is_fair == self.prediction.robust)
        return all(checks)

    def render(self) -> str:
        """Human-readable multi-line report."""
        exp = self.expectational
        rob = self.robust
        lines = [
            f"protocol            : {self.protocol_name}",
            f"initial share a     : {self.share:.4f}",
            f"horizon             : {self.horizon}",
            f"trials              : {self.trials}",
            f"E[lambda_A]         : {exp.sample_mean:.4f}"
            f" (target {exp.share:.4f}, stderr {exp.standard_error:.2g})",
            f"expectational fair  : {exp.is_fair}"
            f" (theory: {self.prediction.expectational})",
            f"fair area           : [{rob.fair_area.lower:.4f}, {rob.fair_area.upper:.4f}]",
            f"unfair probability  : {rob.unfair_probability:.4f} (delta {self.delta})",
            f"robustly fair       : {rob.is_fair} (theory: {self.prediction.robust})",
            f"convergence time    : "
            + ("never" if self.convergence_time == float("inf")
               else f"{self.convergence_time:.0f}"),
            f"theory source       : {self.prediction.source}",
        ]
        return "\n".join(lines)


class MiningGame:
    """A mining game: protocol + allocation, analysable in one call.

    Parameters
    ----------
    protocol:
        Any :class:`~repro.protocols.IncentiveProtocol`.
    allocation:
        Initial resource allocation; the focal miner is index 0.

    Examples
    --------
    >>> from repro.protocols import ProofOfWork
    >>> game = MiningGame(ProofOfWork(reward=0.01), Allocation.two_miners(0.2))
    >>> report = game.play(horizon=2000, trials=500, seed=7)
    >>> report.expectational.is_fair and report.robust.is_fair
    True
    """

    def __init__(self, protocol: IncentiveProtocol, allocation: Allocation) -> None:
        self.protocol = protocol
        self.allocation = allocation

    def simulate(
        self,
        horizon: int,
        trials: int = 10_000,
        *,
        checkpoints: Optional[Sequence[int]] = None,
        events: Sequence = (),
        seed=None,
        record_terminal_stakes: bool = True,
        workers: int = 1,
        cache=None,
        backend: Optional[str] = None,
        kernel: str = "batched",
    ) -> EnsembleResult:
        """Run the Monte Carlo engine and return the raw ensemble result.

        ``workers`` > 1 shards the ensemble via
        :class:`repro.runtime.ParallelRunner` (``backend`` picks
        processes or threads); ``cache`` (a directory or
        :class:`repro.runtime.ResultCache`) memoises the merged result
        under the spec's content address.  ``events`` and
        ``record_terminal_stakes`` are forwarded on *both* the serial
        and the sharded path; an unsupported knob combination raises
        instead of being silently ignored.  ``kernel`` selects the
        fused batched advance (default) or the naive per-round loop —
        bit-identical outputs either way.

        .. note::
           Setting ``workers`` or ``cache`` switches to the *sharded*
           random-stream layout: results are bit-identical across any
           ``workers`` count (and across cache hits) but not
           bit-identical to the plain single-stream run without these
           knobs — the ensembles are statistically identical, the
           per-trial draws differ.
        """
        if workers > 1 or cache is not None:
            from ..runtime.runner import ParallelRunner
            from ..runtime.spec import SimulationSpec

            spec = SimulationSpec(
                protocol=self.protocol,
                allocation=self.allocation,
                trials=trials,
                horizon=horizon,
                checkpoints=None if checkpoints is None else tuple(checkpoints),
                events=tuple(events),
                seed=seed,
                record_terminal_stakes=record_terminal_stakes,
                kernel=kernel,
            )
            runner = ParallelRunner(
                workers=workers,
                cache=cache,
                backend="processes" if backend is None else backend,
            )
            return runner.run(spec)
        if backend is not None:
            raise ValueError(
                "backend requires workers > 1 or cache; at workers=1 the "
                "run is in-process — drop the backend knob or add workers"
            )
        from ..sim.engine import MonteCarloEngine

        engine = MonteCarloEngine(
            self.protocol, self.allocation, trials=trials, seed=seed,
            kernel=kernel,
        )
        return engine.run(
            horizon,
            checkpoints,
            events=events,
            record_terminal_stakes=record_terminal_stakes,
        )

    def play(
        self,
        horizon: int,
        trials: int = 10_000,
        *,
        epsilon: float = DEFAULT_EPSILON,
        delta: float = DEFAULT_DELTA,
        checkpoints: Optional[Sequence[int]] = None,
        events: Sequence = (),
        seed=None,
        record_terminal_stakes: bool = True,
        workers: int = 1,
        cache=None,
        backend: Optional[str] = None,
        kernel: str = "batched",
    ) -> FairnessReport:
        """Simulate and return a full fairness report for the focal miner.

        Accepts every :meth:`simulate` knob and forwards them all —
        including ``events`` and ``record_terminal_stakes`` on the
        sharded path.
        """
        result = self.simulate(
            horizon,
            trials,
            checkpoints=checkpoints,
            events=events,
            seed=seed,
            record_terminal_stakes=record_terminal_stakes,
            workers=workers,
            cache=cache,
            backend=backend,
            kernel=kernel,
        )
        share = self.allocation.focal_share
        return FairnessReport(
            protocol_name=self.protocol.name,
            share=share,
            horizon=horizon,
            trials=trials,
            epsilon=epsilon,
            delta=delta,
            expectational=result.expectational_verdict(),
            robust=result.robust_verdict(epsilon=epsilon, delta=delta),
            convergence_time=result.convergence_time(epsilon=epsilon, delta=delta),
            prediction=predict(
                self.protocol, share, horizon, epsilon=epsilon, delta=delta
            ),
            summary=result.summary(epsilon=epsilon),
        )

    def __repr__(self) -> str:
        return f"MiningGame({self.protocol.name!r}, {self.allocation!r})"
