"""Miner identities and resource allocations.

The paper's games are parameterised by an initial *resource
allocation*: hash-power shares for PoW, stake shares for PoS,
normalised to sum to one (Assumption 2).  This module provides
:class:`Miner` (a named participant) and :class:`Allocation` (an
immutable normalised share vector with the constructors used across
the experiments: two-miner ``a`` vs ``1-a``, and the Table 1 layout of
one focal miner plus equal competitors).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, List, Optional, Sequence, Tuple

import numpy as np

from .._validation import ensure_allocation, ensure_fraction, ensure_positive_int

__all__ = ["Miner", "Allocation"]


@dataclass(frozen=True)
class Miner:
    """A mining participant.

    Attributes
    ----------
    name:
        Human-readable identifier ("A", "B", "pool-3", ...).
    index:
        Position in the allocation vector.
    share:
        Initial fraction of the total resource.
    """

    name: str
    index: int
    share: float

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("miner name must be non-empty")
        if self.index < 0:
            raise ValueError("miner index must be non-negative")
        if not 0.0 < self.share < 1.0:
            raise ValueError(f"miner share must be in (0, 1), got {self.share!r}")


class Allocation:
    """An immutable, normalised vector of initial resource shares.

    Parameters
    ----------
    shares:
        Positive per-miner shares.  Must sum to one unless
        ``normalise=True``.
    names:
        Optional miner names; defaults to "A", "B", "C", ... then
        "miner-10", "miner-11", ... beyond the alphabet.
    normalise:
        Rescale the shares to sum to one.

    Examples
    --------
    >>> alloc = Allocation.two_miners(0.2)
    >>> alloc.shares
    array([0.2, 0.8])
    >>> alloc.focal.name
    'A'
    """

    def __init__(
        self,
        shares: Sequence[float],
        *,
        names: Optional[Sequence[str]] = None,
        normalise: bool = False,
    ) -> None:
        array = ensure_allocation("shares", shares, normalise=normalise)
        array.setflags(write=False)
        self._shares = array
        if names is None:
            names = [self._default_name(i) for i in range(array.size)]
        else:
            names = list(names)
            if len(names) != array.size:
                raise ValueError(
                    f"names has {len(names)} entries for {array.size} miners"
                )
            if len(set(names)) != len(names):
                raise ValueError("miner names must be unique")
        self._miners: Tuple[Miner, ...] = tuple(
            Miner(name=name, index=i, share=float(share))
            for i, (name, share) in enumerate(zip(names, array))
        )

    @staticmethod
    def _default_name(index: int) -> str:
        alphabet = "ABCDEFGHIJ"
        if index < len(alphabet):
            return alphabet[index]
        return f"miner-{index}"

    # -- constructors ---------------------------------------------------

    @classmethod
    def two_miners(cls, focal_share: float) -> "Allocation":
        """The paper's default two-miner game: A holds ``a``, B holds ``1-a``."""
        focal_share = ensure_fraction("focal_share", focal_share)
        return cls([focal_share, 1.0 - focal_share])

    @classmethod
    def focal_vs_equal(cls, focal_share: float, total_miners: int) -> "Allocation":
        """Table 1 layout: A holds ``a``; the rest split ``1-a`` equally."""
        focal_share = ensure_fraction("focal_share", focal_share)
        total_miners = ensure_positive_int("total_miners", total_miners)
        if total_miners < 2:
            raise ValueError("total_miners must be at least 2")
        others = total_miners - 1
        rest = (1.0 - focal_share) / others
        return cls([focal_share] + [rest] * others)

    @classmethod
    def uniform(cls, total_miners: int) -> "Allocation":
        """Every miner holds an identical share ``1/m``."""
        total_miners = ensure_positive_int("total_miners", total_miners)
        if total_miners < 2:
            raise ValueError("total_miners must be at least 2")
        return cls([1.0 / total_miners] * total_miners)

    # -- accessors ------------------------------------------------------

    @property
    def shares(self) -> np.ndarray:
        """The (read-only) normalised share vector."""
        return self._shares

    @property
    def miners(self) -> Tuple[Miner, ...]:
        """The miners in index order."""
        return self._miners

    @property
    def focal(self) -> Miner:
        """The focal miner (index 0, "miner A" throughout the paper)."""
        return self._miners[0]

    @property
    def focal_share(self) -> float:
        """The focal miner's initial share ``a``."""
        return float(self._shares[0])

    @property
    def size(self) -> int:
        """Number of miners."""
        return self._shares.size

    def share_of(self, name: str) -> float:
        """The initial share of the miner called ``name``."""
        for miner in self._miners:
            if miner.name == name:
                return miner.share
        raise KeyError(f"no miner named {name!r}")

    def tiled(self, trials: int) -> np.ndarray:
        """Shares repeated into a ``(trials, miners)`` ensemble matrix."""
        trials = ensure_positive_int("trials", trials)
        return np.tile(self._shares, (trials, 1))

    # -- dunder ----------------------------------------------------------

    def __len__(self) -> int:
        return self._shares.size

    def __iter__(self) -> Iterator[Miner]:
        return iter(self._miners)

    def __getitem__(self, index: int) -> Miner:
        return self._miners[index]

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Allocation):
            return NotImplemented
        return (
            self._shares.shape == other._shares.shape
            and bool(np.allclose(self._shares, other._shares))
            and [m.name for m in self._miners] == [m.name for m in other._miners]
        )

    def __hash__(self) -> int:
        return hash(
            (tuple(np.round(self._shares, 12)), tuple(m.name for m in self._miners))
        )

    def __repr__(self) -> str:
        parts = ", ".join(f"{m.name}={m.share:.4g}" for m in self._miners)
        return f"Allocation({parts})"
