"""Reproducible random-number streams for Monte Carlo simulation.

Every stochastic component in :mod:`repro` draws its randomness from a
:class:`numpy.random.Generator`.  This module centralises how those
generators are created so that

* a single integer seed reproduces an entire experiment,
* independent components (trials, nodes, experiments) get provably
  independent streams via :class:`numpy.random.SeedSequence` spawning,
* tests can inject fixed generators.
"""

from __future__ import annotations

from typing import Iterator, List, Optional, Sequence, Union

import numpy as np

from .._validation import ensure_positive_int

__all__ = ["RandomSource", "make_generator", "spawn_generators"]

SeedLike = Union[None, int, Sequence[int], np.random.SeedSequence, np.random.Generator]


def make_generator(seed: SeedLike = None) -> np.random.Generator:
    """Create a :class:`numpy.random.Generator` from any seed-like value.

    Accepts ``None`` (fresh entropy), an integer, a sequence of
    integers, a :class:`~numpy.random.SeedSequence`, or an existing
    generator (returned unchanged).
    """
    if isinstance(seed, np.random.Generator):
        return seed
    if isinstance(seed, np.random.SeedSequence):
        return np.random.default_rng(seed)
    return np.random.default_rng(seed)


def spawn_generators(seed: SeedLike, count: int) -> List[np.random.Generator]:
    """Create ``count`` statistically independent generators.

    Uses :meth:`numpy.random.SeedSequence.spawn` so that the streams do
    not overlap regardless of how many values each consumes.
    """
    count = ensure_positive_int("count", count)
    if isinstance(seed, np.random.Generator):
        # Derive a seed sequence from the generator's own bit stream so
        # existing generators can still fan out into children.
        children = np.random.SeedSequence(seed.integers(0, 2**63 - 1, size=4)).spawn(count)
    elif isinstance(seed, np.random.SeedSequence):
        children = seed.spawn(count)
    else:
        children = np.random.SeedSequence(seed).spawn(count)
    return [np.random.default_rng(child) for child in children]


class RandomSource:
    """A hierarchical, reproducible source of random generators.

    A :class:`RandomSource` wraps a :class:`numpy.random.SeedSequence`
    and hands out either a root generator or independent child sources.
    Experiments use one source per figure; the source then spawns one
    child per protocol, per repeat, or per node.

    Parameters
    ----------
    seed:
        Root seed.  ``None`` draws fresh OS entropy (not reproducible);
        pass an integer for reproducible runs.

    Examples
    --------
    >>> source = RandomSource(7)
    >>> a, b = source.spawn(2)
    >>> a.generator().random() != b.generator().random()
    True
    """

    def __init__(self, seed: SeedLike = None) -> None:
        if isinstance(seed, RandomSource):
            seed = seed._sequence
        if isinstance(seed, np.random.Generator):
            seed = np.random.SeedSequence(seed.integers(0, 2**63 - 1, size=4))
        if isinstance(seed, np.random.SeedSequence):
            self._sequence = seed
        else:
            self._sequence = np.random.SeedSequence(seed)
        self._generator: Optional[np.random.Generator] = None

    @property
    def entropy(self):
        """The root entropy of this source (for logging/reproduction)."""
        return self._sequence.entropy

    @property
    def sequence(self) -> np.random.SeedSequence:
        """The underlying seed sequence (for sharding/fingerprinting)."""
        return self._sequence

    def generator(self) -> np.random.Generator:
        """Return the (memoised) root generator of this source."""
        if self._generator is None:
            self._generator = np.random.default_rng(self._sequence)
        return self._generator

    def spawn(self, count: int) -> List["RandomSource"]:
        """Return ``count`` independent child sources."""
        count = ensure_positive_int("count", count)
        return [RandomSource(child) for child in self._sequence.spawn(count)]

    def spawn_one(self) -> "RandomSource":
        """Return a single independent child source."""
        return self.spawn(1)[0]

    def stream(self) -> Iterator["RandomSource"]:
        """Yield an unbounded stream of independent child sources."""
        while True:
            yield self.spawn_one()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"RandomSource(entropy={self._sequence.entropy!r})"
