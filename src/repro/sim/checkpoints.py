"""Checkpoint schedules for trajectory recording.

The paper's figures plot statistics of ``lambda_A`` at a modest number
of block counts while the games themselves run for thousands of
blocks.  Recording at every block would dominate memory, so the engine
records at *checkpoints*.  Two stock schedules:

* :func:`linear_checkpoints` — evenly spaced, matching the linear axes
  of Figure 2.
* :func:`geometric_checkpoints` — log-spaced, matching the log axes of
  Figures 3-5 where early blocks matter most.
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np

from .._validation import ensure_positive_int

__all__ = [
    "linear_checkpoints",
    "geometric_checkpoints",
    "validate_checkpoints",
]


def linear_checkpoints(horizon: int, count: int = 50) -> List[int]:
    """``count`` evenly spaced checkpoints ending exactly at ``horizon``."""
    horizon = ensure_positive_int("horizon", horizon)
    count = ensure_positive_int("count", count)
    count = min(count, horizon)
    raw = np.linspace(horizon / count, horizon, count)
    checkpoints = sorted(set(int(round(x)) for x in raw))
    if checkpoints[-1] != horizon:  # pragma: no cover - numeric guard
        checkpoints[-1] = horizon
    return [c for c in checkpoints if c >= 1]


def geometric_checkpoints(horizon: int, count: int = 50, first: int = 1) -> List[int]:
    """~``count`` log-spaced checkpoints from ``first`` to ``horizon``."""
    horizon = ensure_positive_int("horizon", horizon)
    count = ensure_positive_int("count", count)
    first = ensure_positive_int("first", first)
    if first > horizon:
        raise ValueError("first checkpoint must not exceed the horizon")
    raw = np.geomspace(first, horizon, count)
    checkpoints = sorted(set(int(round(x)) for x in raw))
    checkpoints[-1] = horizon
    return sorted(set(checkpoints))


def validate_checkpoints(checkpoints: Sequence[int], horizon: int) -> List[int]:
    """Validate a user-provided checkpoint list against a horizon.

    Checkpoints must be strictly increasing positive integers, the last
    equal to ``horizon`` (appended automatically if missing).
    """
    horizon = ensure_positive_int("horizon", horizon)
    result = [int(c) for c in checkpoints]
    if not result:
        raise ValueError("checkpoints must not be empty")
    if any(c < 1 for c in result):
        raise ValueError("checkpoints must be positive")
    if any(b <= a for a, b in zip(result, result[1:])):
        raise ValueError("checkpoints must be strictly increasing")
    if result[-1] > horizon:
        raise ValueError("checkpoints must not exceed the horizon")
    if result[-1] != horizon:
        result.append(horizon)
    return result
