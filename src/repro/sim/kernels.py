"""Fused batched advance kernels for the Monte Carlo engine.

The naive :meth:`~repro.protocols.base.IncentiveProtocol.advance_many`
loops ``step`` in Python: every round pays an ``rng.random`` call, a
fresh ``np.cumsum`` and several ``(trials, miners)`` temporaries, so at
paper scale (10,000 trials over thousands of rounds per grid cell)
interpreter and allocator overhead — not arithmetic — dominates.  This
module fuses whole checkpoint segments into far fewer NumPy dispatches
while staying **bit-identical** to the per-round loop:

* **Pre-drawn uniform blocks** — ``rng.random((chunk, trials))`` fills
  an array in C order from the same bit stream as ``chunk`` sequential
  ``rng.random(trials)`` calls, so batching the draws consumes the
  generator identically and every downstream comparison sees the same
  uniforms.  Blocks are chunked (:data:`DEFAULT_CHUNK_ROUNDS` rounds,
  capped by :data:`DEFAULT_CHUNK_BUDGET_BYTES`) so peak memory stays
  bounded at 100k-trial scale.
* **Scratch-buffer reuse** — a :class:`ScratchBuffers` pool hangs off
  ``state.scratch`` and every inner-loop array op writes into a
  preallocated buffer (``np.cumsum(..., out=)``, ``np.divide(...,
  out=)``), so the steady-state loop allocates nothing.
* **Identical arithmetic** — kernels perform the same floating-point
  operations in the same order as the naive loop (verified by the
  differential tests in ``tests/sim/test_kernels.py``).  Where a
  kernel replaces a scatter ``a[rows, winners] += w`` with a one-hot
  masked add, the non-winning lanes receive ``+0.0``, which is a
  bitwise no-op for the non-negative stakes/rewards arrays.

Kernels are registered per concrete protocol class.  Lookup is by
*exact type* (plus explicitly registered aliases such as
:class:`~repro.protocols.extended.NeoPoS`): a user-defined subclass
with different dynamics silently falls back to the naive loop rather
than risk a wrong fused recurrence.

:func:`batched_advance` is the single entry point; the engine's
``kernel="batched" | "naive"`` knob selects between it and the plain
``advance_many`` loop for differential testing.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterator, Optional, Tuple, Type

import numpy as np

from .._validation import ensure_positive_int
from ..obs.trace import get_tracer
from ..protocols.base import (
    EnsembleState,
    IncentiveProtocol,
    winners_from_uniforms,
)
from ..protocols.c_pos import BlockGranularCompoundPoS, CompoundPoS
from ..protocols.extended import (
    AlgorandPoS,
    EOSDelegatedPoS,
    FilecoinStorage,
    NeoPoS,
    VixifyPoS,
    WavePoS,
)
from ..protocols.fsl_pos import FairSingleLotteryPoS
from ..protocols.ml_pos import MultiLotteryPoS
from ..protocols.pow import ProofOfWork
from ..protocols.sl_pos import SingleLotteryPoS
from ..protocols.withholding import RewardWithholding

__all__ = [
    "KERNEL_MODES",
    "DEFAULT_CHUNK_ROUNDS",
    "DEFAULT_CHUNK_BUDGET_BYTES",
    "ScratchBuffers",
    "batched_advance",
    "ensure_kernel_mode",
    "find_kernel",
    "register_kernel",
]

#: Valid values of the engine/spec ``kernel`` knob.
KERNEL_MODES = ("batched", "naive")

#: Upper bound on rounds per pre-drawn uniform block.
DEFAULT_CHUNK_ROUNDS = 256

#: Cap on the bytes a single pre-drawn block may occupy; at 100k-trial
#: scale this, not DEFAULT_CHUNK_ROUNDS, bounds the chunk.
DEFAULT_CHUNK_BUDGET_BYTES = 64 << 20


def ensure_kernel_mode(kernel: str) -> str:
    """Validate a ``kernel`` knob value, returning it unchanged."""
    if kernel not in KERNEL_MODES:
        raise ValueError(
            f"kernel must be one of {KERNEL_MODES}, got {kernel!r}"
        )
    return kernel


class ScratchBuffers:
    """A keyed pool of preallocated work arrays.

    Kernels request buffers by name; a buffer is (re)allocated only
    when first requested or when the requested shape/dtype changes, so
    across rounds — and across the many ``advance`` segments of one
    engine run — the inner loops allocate nothing.

    Buffer contents are *not* preserved between ``get`` calls in any
    contractual sense: every kernel fully overwrites a buffer before
    reading it.
    """

    __slots__ = ("_arrays",)

    def __init__(self) -> None:
        self._arrays: Dict[str, np.ndarray] = {}

    def get(
        self, name: str, shape: Tuple[int, ...], dtype=np.float64
    ) -> np.ndarray:
        """The buffer registered under ``name``, allocating on demand."""
        shape = tuple(int(s) for s in shape)
        dtype = np.dtype(dtype)
        array = self._arrays.get(name)
        if array is None or array.shape != shape or array.dtype != dtype:
            array = np.empty(shape, dtype=dtype)
            self._arrays[name] = array
        return array

    @property
    def nbytes(self) -> int:
        """Total bytes currently held by the pool."""
        return sum(array.nbytes for array in self._arrays.values())

    def __len__(self) -> int:
        return len(self._arrays)

    def __repr__(self) -> str:
        return f"ScratchBuffers(buffers={len(self)}, nbytes={self.nbytes})"


# -- chunked pre-drawn uniform blocks -----------------------------------------


def _chunk_size(rounds: int, floats_per_round: int, chunk: Optional[int]) -> int:
    """Rounds per pre-drawn block: explicit, or budget-capped default."""
    if chunk is None:
        budget = DEFAULT_CHUNK_BUDGET_BYTES // (8 * max(1, floats_per_round))
        chunk = max(1, min(DEFAULT_CHUNK_ROUNDS, int(budget)))
    return max(1, min(chunk, rounds))


def _uniform_blocks(
    rng: np.random.Generator,
    scratch: ScratchBuffers,
    name: str,
    rounds: int,
    round_shape: Tuple[int, ...],
    chunk: Optional[int],
) -> Iterator[np.ndarray]:
    """Yield ``(n, *round_shape)`` blocks of pre-drawn uniforms.

    ``rng.random(out=block)`` fills the block in C order from the same
    stream positions as ``n`` sequential ``rng.random(round_shape)``
    calls, so consuming blocks is bit-identical to the per-round draws
    of the naive loop — for any chunking.
    """
    per_round = 1
    for extent in round_shape:
        per_round *= extent
    size = _chunk_size(rounds, per_round, chunk)
    block = scratch.get(name, (size,) + tuple(round_shape))
    done = 0
    while done < rounds:
        count = min(size, rounds - done)
        view = block[:count]
        rng.random(out=view)
        yield view
        done += count


# -- registry -----------------------------------------------------------------

KernelFn = Callable[
    [IncentiveProtocol, EnsembleState, int, np.random.Generator,
     ScratchBuffers, Optional[int]],
    None,
]

_KERNELS: Dict[Type[IncentiveProtocol], KernelFn] = {}


def register_kernel(*protocol_types: Type[IncentiveProtocol]):
    """Class decorator registering a fused kernel for exact types."""

    def decorator(fn: KernelFn) -> KernelFn:
        for protocol_type in protocol_types:
            _KERNELS[protocol_type] = fn
        return fn

    return decorator


def find_kernel(protocol: IncentiveProtocol) -> Optional[KernelFn]:
    """The fused kernel for ``protocol``'s exact class, or None.

    Exact-type lookup (no MRO walk): a subclass may redefine ``step``,
    and a fused recurrence for the parent would silently diverge from
    it.  Unknown classes fall back to the naive loop instead.
    """
    return _KERNELS.get(type(protocol))


def batched_advance(
    protocol: IncentiveProtocol,
    state: EnsembleState,
    rounds: int,
    rng: np.random.Generator,
    *,
    chunk: Optional[int] = None,
) -> None:
    """Advance ``state`` by ``rounds`` rounds through the fused kernels.

    Bit-identical to ``protocol.advance_many(state, rounds, rng)`` —
    same final arrays, same generator position — for every registered
    protocol and any ``chunk``; unregistered protocols delegate to the
    naive loop.  ``chunk`` overrides the pre-drawn block length
    (default: :data:`DEFAULT_CHUNK_ROUNDS`, memory-capped).
    """
    rounds = ensure_positive_int("rounds", rounds)
    if chunk is not None:
        chunk = ensure_positive_int("chunk", chunk)
    kernel = find_kernel(protocol)
    tracer = get_tracer()
    if kernel is None:
        if tracer.enabled:
            # Unregistered protocol: the segment runs the per-round
            # loop, so report it on the naive side of the time split.
            with tracer.span(
                "kernel.advance",
                mode="naive",
                protocol=protocol.name,
                rounds=rounds,
                trials=state.trials,
            ):
                protocol.advance_many(state, rounds, rng)
        else:
            protocol.advance_many(state, rounds, rng)
        return
    if state.scratch is None:
        state.scratch = ScratchBuffers()
    if tracer.enabled:
        with tracer.span(
            "kernel.advance",
            mode="batched",
            protocol=protocol.name,
            rounds=rounds,
            trials=state.trials,
        ):
            kernel(protocol, state, rounds, rng, state.scratch, chunk)
    else:
        kernel(protocol, state, rounds, rng, state.scratch, chunk)


# -- closed-form protocols ----------------------------------------------------


@register_kernel(ProofOfWork, NeoPoS, AlgorandPoS)
def _advance_closed_form(protocol, state, rounds, rng, scratch, chunk):
    """PoW/NEO (multinomial jump) and Algorand (deterministic jump)
    already advance whole segments in O(1) dispatches; delegate."""
    protocol.advance_many(state, rounds, rng)


# -- proportional lottery on compounding stakes (the Polya urn) ---------------


def _advance_polya_two(protocol, state, rounds, rng, scratch, chunk):
    """ML-PoS two-miner fast path: the paper's headline configuration.

    Per round the naive loop pays ~12 dispatches plus allocations; this
    recurrence pays 9 allocation-free dispatches on contiguous
    ``(trials,)`` columns.  Identities relied upon (all bitwise):

    * ``stakes.sum(axis=1)`` for two columns is ``s0 + s1``;
    * the first CDF entry is ``s0 / total`` and the last is forced to
      1.0, so with uniforms in ``[0, 1)`` the winner index is exactly
      ``draw > s0 / total``;
    * crediting via ``+= w * won`` adds ``+0.0`` on losing lanes — a
      no-op for the non-negative stakes/rewards arrays.
    """
    trials = state.trials
    reward = protocol.reward
    stakes_t = scratch.get("polya2_stakes_t", (2, trials))
    rewards_t = scratch.get("polya2_rewards_t", (2, trials))
    stakes_t[...] = state.stakes.T
    rewards_t[...] = state.rewards.T
    stake_a, stake_b = stakes_t[0], stakes_t[1]
    reward_a, reward_b = rewards_t[0], rewards_t[1]
    total = scratch.get("polya2_total", (trials,))
    cdf_a = scratch.get("polya2_cdf_a", (trials,))
    gain_b = scratch.get("polya2_gain_b", (trials,))
    gain_a = scratch.get("polya2_gain_a", (trials,))
    for block in _uniform_blocks(
        rng, scratch, "polya2_draws", rounds, (trials,), chunk
    ):
        for draws in block:
            np.add(stake_a, stake_b, out=total)
            np.divide(stake_a, total, out=cdf_a)
            np.greater(draws, cdf_a, out=gain_b)  # 1.0 where B wins
            np.multiply(gain_b, reward, out=gain_b)
            np.subtract(reward, gain_b, out=gain_a)
            np.add(reward_b, gain_b, out=reward_b)
            np.add(stake_b, gain_b, out=stake_b)
            np.add(reward_a, gain_a, out=reward_a)
            np.add(stake_a, gain_a, out=stake_a)
    state.stakes[...] = stakes_t.T
    state.rewards[...] = rewards_t.T
    state.round_index += rounds


def _advance_polya_many(protocol, state, rounds, rng, scratch, chunk):
    """ML-PoS general-miner path on a transposed ``(miners, trials)``
    layout, so reductions and cumulative sums run along contiguous
    memory (axis-1 ops on ``(trials, miners)`` arrays are strided and
    no faster than the naive loop).  Reductions over the miner axis
    add elements in the same index order either way, so the transposed
    arithmetic is bit-identical.

    Three identities carry the fusion beyond the one-hot formulation
    (all bitwise):

    * ``np.cumsum(..., axis=0)`` is the row recurrence
      ``cdf[m] = cdf[m-1] + shares[m]`` — running it as M-1 contiguous
      row adds gives the same values without the pathologically
      strided axis-0 cumsum dispatch;
    * the last CDF row is forced to 1.0 and uniforms live in
      ``[0, 1)``, so ``draws > cdf[-1]`` is always false — the last
      row's divide/compare never affects the winner count and is
      skipped outright;
    * the credit is a flat-index scatter on the ``(winner, trial)``
      pairs — exactly the naive loop's ``stakes[rows, winners] += w``
      on the transposed layout (each trial appears once per round, so
      the scatter is well-defined), replacing the four full
      ``(miners, trials)`` passes of a one-hot masked credit with two
      ``(trials,)``-sized gathers/scatters.

    Together these lift the many-miner grids from ~1.5x to >3x over
    the naive loop."""
    trials, miners = state.trials, state.miners
    reward = protocol.reward
    stakes_t = scratch.get("polya_stakes_t", (miners, trials))
    rewards_t = scratch.get("polya_rewards_t", (miners, trials))
    stakes_t[...] = state.stakes.T
    rewards_t[...] = state.rewards.T
    stakes_flat = stakes_t.reshape(-1)
    rewards_flat = rewards_t.reshape(-1)
    total = scratch.get("polya_total", (trials,))
    cdf_t = scratch.get("polya_cdf_t", (miners, trials))
    above = scratch.get("polya_above", (miners, trials), np.bool_)
    winners = scratch.get("polya_winners", (trials,), np.intp)
    flat_index = scratch.get("polya_flat_index", (trials,), np.intp)
    trial_index = scratch.get("polya_trial_index", (trials,), np.intp)
    trial_index[...] = np.arange(trials)
    for block in _uniform_blocks(
        rng, scratch, "polya_draws", rounds, (trials,), chunk
    ):
        for draws in block:
            np.sum(stakes_t, axis=0, out=total)
            np.divide(stakes_t[:-1], total, out=cdf_t[:-1])
            for row in range(1, miners - 1):
                np.add(cdf_t[row], cdf_t[row - 1], out=cdf_t[row])
            np.greater(draws, cdf_t[:-1], out=above[:-1])
            np.sum(above[:-1], axis=0, out=winners)
            np.multiply(winners, trials, out=flat_index)
            np.add(flat_index, trial_index, out=flat_index)
            rewards_flat[flat_index] += reward
            stakes_flat[flat_index] += reward
    state.stakes[...] = stakes_t.T
    state.rewards[...] = rewards_t.T
    state.round_index += rounds


def _advance_categorical(protocol, state, rounds, rng, scratch, chunk):
    """Semi-fused path for categorical lotteries with a per-round law
    that is cheapest to obtain from ``protocol.win_probabilities``
    (ML-PoS exact race, Filecoin's mixed mining power): batch the
    uniforms, keep the per-round law/credit calls verbatim."""
    for block in _uniform_blocks(
        rng, scratch, "categorical_draws", rounds, (state.trials,), chunk
    ):
        for draws in block:
            winners = winners_from_uniforms(
                protocol.win_probabilities(state), draws
            )
            protocol.credit_reward(state, winners)
            state.round_index += 1


@register_kernel(MultiLotteryPoS)
def _advance_ml_pos(protocol, state, rounds, rng, scratch, chunk):
    if protocol.exact_race:
        _advance_categorical(protocol, state, rounds, rng, scratch, chunk)
    elif state.miners == 2:
        _advance_polya_two(protocol, state, rounds, rng, scratch, chunk)
    else:
        _advance_polya_many(protocol, state, rounds, rng, scratch, chunk)


@register_kernel(FilecoinStorage)
def _advance_filecoin(protocol, state, rounds, rng, scratch, chunk):
    """Filecoin's mixed mining power, fused on the transposed layout.

    The storage term is bitwise-constant across an advance (storage
    never changes and the naive loop recomputes the identical values
    every round), so ``theta * storage_shares`` is hoisted out of the
    loop; the per-round stake term, normalisation, inverse-CDF draw
    and credit all run allocation-free."""
    trials, miners = state.trials, state.miners
    reward = protocol.reward
    theta = protocol.storage_weight
    stake_weight = 1.0 - protocol.storage_weight
    stakes_t = scratch.get("filecoin_stakes_t", (miners, trials))
    rewards_t = scratch.get("filecoin_rewards_t", (miners, trials))
    stakes_t[...] = state.stakes.T
    rewards_t[...] = state.rewards.T
    storage_t = scratch.get("filecoin_storage_t", (miners, trials))
    storage_t[...] = state.extra["storage"].T
    total = scratch.get("filecoin_total", (trials,))
    storage_term = scratch.get("filecoin_storage_term", (miners, trials))
    np.sum(storage_t, axis=0, out=total)
    np.divide(storage_t, total, out=storage_term)
    np.multiply(storage_term, theta, out=storage_term)
    power_t = scratch.get("filecoin_power_t", (miners, trials))
    cdf_t = scratch.get("filecoin_cdf_t", (miners, trials))
    above = scratch.get("filecoin_above", (miners, trials), np.bool_)
    winners = scratch.get("filecoin_winners", (trials,), np.int64)
    one_hot = scratch.get("filecoin_one_hot", (miners, trials), np.bool_)
    gain_t = scratch.get("filecoin_gain_t", (miners, trials))
    columns = scratch.get("filecoin_columns", (miners, 1), np.int64)
    columns[...] = np.arange(miners)[:, None]
    for block in _uniform_blocks(
        rng, scratch, "filecoin_draws", rounds, (trials,), chunk
    ):
        for draws in block:
            np.sum(stakes_t, axis=0, out=total)
            np.divide(stakes_t, total, out=power_t)
            np.multiply(power_t, stake_weight, out=power_t)
            np.add(storage_term, power_t, out=power_t)
            np.sum(power_t, axis=0, out=total)
            np.divide(power_t, total, out=power_t)
            np.cumsum(power_t, axis=0, out=cdf_t)
            cdf_t[-1, :] = 1.0
            np.greater(draws, cdf_t, out=above)
            np.sum(above, axis=0, out=winners)
            np.equal(columns, winners, out=one_hot)
            np.multiply(one_hot, reward, out=gain_t)
            np.add(rewards_t, gain_t, out=rewards_t)
            np.add(stakes_t, gain_t, out=stakes_t)
    state.stakes[...] = stakes_t.T
    state.rewards[...] = rewards_t.T
    state.round_index += rounds


# -- earliest-deadline lotteries ----------------------------------------------


def _exponentiate_block(block: np.ndarray) -> None:
    """Turn a block of uniforms into exponential numerators, in place.

    ``-log1p(-u) = -ln(1 - u)`` — the FSL-PoS inverse transform.  The
    op sequence matches the naive sampler exactly, and the transform
    is elementwise, so hoisting it from the per-round loop to the
    whole pre-drawn block yields identical values."""
    np.negative(block, out=block)
    np.log1p(block, out=block)
    np.negative(block, out=block)


def _advance_deadline_two(
    protocol, state, rounds, rng, scratch, chunk, *, exponential: bool
):
    """Two-miner earliest-deadline fast path.

    ``argmin`` over two columns is exactly the strict comparison
    ``deadline_B < deadline_A`` (ties resolve to index 0 either way,
    and occur with probability zero), so a round reduces to two column
    divides, one compare and four adds on contiguous ``(trials,)``
    arrays — the ``+0.0`` on losing lanes is a bitwise no-op for the
    non-negative stakes/rewards."""
    trials = state.trials
    reward = protocol.reward
    stakes_t = scratch.get("deadline2_stakes_t", (2, trials))
    rewards_t = scratch.get("deadline2_rewards_t", (2, trials))
    stakes_t[...] = state.stakes.T
    rewards_t[...] = state.rewards.T
    stake_a, stake_b = stakes_t[0], stakes_t[1]
    reward_a, reward_b = rewards_t[0], rewards_t[1]
    deadline_a = scratch.get("deadline2_a", (trials,))
    deadline_b = scratch.get("deadline2_b", (trials,))
    gain_b = scratch.get("deadline2_gain_b", (trials,))
    gain_a = scratch.get("deadline2_gain_a", (trials,))
    for block in _uniform_blocks(
        rng, scratch, "deadline_draws", rounds, (trials, 2), chunk
    ):
        if exponential:
            _exponentiate_block(block)
        for numerators in block:
            np.divide(numerators[:, 0], stake_a, out=deadline_a)
            np.divide(numerators[:, 1], stake_b, out=deadline_b)
            np.less(deadline_b, deadline_a, out=gain_b)  # 1.0 where B wins
            np.multiply(gain_b, reward, out=gain_b)
            np.subtract(reward, gain_b, out=gain_a)
            np.add(reward_b, gain_b, out=reward_b)
            np.add(stake_b, gain_b, out=stake_b)
            np.add(reward_a, gain_a, out=reward_a)
            np.add(stake_a, gain_a, out=stake_a)
    state.stakes[...] = stakes_t.T
    state.rewards[...] = rewards_t.T
    state.round_index += rounds


def _advance_deadline(
    protocol, state, rounds, rng, scratch, chunk, *, exponential: bool
):
    """SL-PoS (uniform deadlines) and FSL-PoS/Wave/Vixify (exponential
    deadlines): pre-draw ``(chunk, trials, miners)`` uniforms, compute
    deadlines in place, arg-min, credit via one-hot adds."""
    if state.miners == 2:
        _advance_deadline_two(
            protocol, state, rounds, rng, scratch, chunk,
            exponential=exponential,
        )
        return
    trials, miners = state.trials, state.miners
    reward = protocol.reward
    deadlines = scratch.get("deadline_buf", (trials, miners))
    winners = scratch.get("deadline_winners", (trials,), np.intp)
    one_hot = scratch.get("deadline_one_hot", (trials, miners), np.bool_)
    gain = scratch.get("deadline_gain", (trials, miners))
    columns = scratch.get("deadline_columns", (miners,), np.intp)
    columns[...] = np.arange(miners)
    for block in _uniform_blocks(
        rng, scratch, "deadline_draws", rounds, (trials, miners), chunk
    ):
        if exponential:
            _exponentiate_block(block)
        for numerators in block:
            np.divide(numerators, state.stakes, out=deadlines)
            np.argmin(deadlines, axis=1, out=winners)
            np.equal(winners[:, None], columns, out=one_hot)
            np.multiply(one_hot, reward, out=gain)
            np.add(state.rewards, gain, out=state.rewards)
            np.add(state.stakes, gain, out=state.stakes)
    state.round_index += rounds


@register_kernel(SingleLotteryPoS)
def _advance_sl_pos(protocol, state, rounds, rng, scratch, chunk):
    _advance_deadline(
        protocol, state, rounds, rng, scratch, chunk, exponential=False
    )


@register_kernel(FairSingleLotteryPoS, WavePoS, VixifyPoS)
def _advance_fsl_pos(protocol, state, rounds, rng, scratch, chunk):
    _advance_deadline(
        protocol, state, rounds, rng, scratch, chunk, exponential=True
    )


# -- compound PoS -------------------------------------------------------------


@register_kernel(CompoundPoS)
def _advance_c_pos(protocol, state, rounds, rng, scratch, chunk):
    """C-PoS epoch loop with scratch reuse.  The multinomial proposer
    draw depends on the evolving shares, so it stays a per-epoch
    ``rng.multinomial`` call (same consumption as the naive loop); the
    share/income arithmetic runs allocation-free."""
    trials, miners = state.trials, state.miners
    proposer_reward = protocol.proposer_reward
    inflation_reward = protocol.inflation_reward
    shards = protocol.shards
    total = scratch.get("cpos_total", (trials, 1))
    shares = scratch.get("cpos_shares", (trials, miners))
    income = scratch.get("cpos_income", (trials, miners))
    inflation = scratch.get("cpos_inflation", (trials, miners))
    for _ in range(rounds):
        np.sum(state.stakes, axis=1, keepdims=True, out=total)
        np.divide(state.stakes, total, out=shares)
        shard_wins = rng.multinomial(shards, shares)
        np.multiply(shard_wins, proposer_reward, out=income)
        np.divide(income, shards, out=income)
        np.multiply(shares, inflation_reward, out=inflation)
        np.add(income, inflation, out=income)
        np.add(state.rewards, income, out=state.rewards)
        np.add(state.stakes, income, out=state.stakes)
        state.round_index += 1


@register_kernel(BlockGranularCompoundPoS)
def _advance_c_pos_block(protocol, state, rounds, rng, scratch, chunk):
    """Block-granular C-PoS: the committee CDF is frozen for a whole
    epoch, so it is computed once per epoch instead of once per block;
    proposer draws come from pre-drawn uniform blocks."""
    trials, miners = state.trials, state.miners
    shards = protocol.shards
    block_reward = protocol.proposer_reward / shards
    inflation_reward = protocol.inflation_reward
    cdf = scratch.get("cposb_cdf", (trials, miners))
    above = scratch.get("cposb_above", (trials, miners), np.bool_)
    winners = scratch.get("cposb_winners", (trials,), np.int64)
    one_hot = scratch.get("cposb_one_hot", (trials, miners), np.bool_)
    gain = scratch.get("cposb_gain", (trials, miners))
    inflation = scratch.get("cposb_inflation", (trials, miners))
    columns = scratch.get("cposb_columns", (miners,), np.int64)
    columns[...] = np.arange(miners)
    # A segment may start mid-epoch: rebuild the CDF of the stored
    # committee shares before the first block either way.
    refresh_cdf = True
    for block in _uniform_blocks(
        rng, scratch, "cposb_draws", rounds, (trials,), chunk
    ):
        for draws in block:
            position = state.round_index % shards
            if position == 0:
                # New epoch: committee drawn from the current stakes.
                state.extra["epoch_shares"] = state.stake_shares()
                refresh_cdf = True
            shares = state.extra["epoch_shares"]
            if refresh_cdf:
                np.cumsum(shares, axis=1, out=cdf)
                cdf[:, -1] = 1.0
                refresh_cdf = False
            np.greater(draws[:, None], cdf, out=above)
            np.sum(above, axis=1, out=winners)
            np.equal(winners[:, None], columns, out=one_hot)
            np.multiply(one_hot, block_reward, out=gain)
            np.add(state.rewards, gain, out=state.rewards)
            np.add(state.stakes, gain, out=state.stakes)
            if position == shards - 1 and inflation_reward > 0.0:
                np.multiply(shares, inflation_reward, out=inflation)
                np.add(state.rewards, inflation, out=state.rewards)
                np.add(state.stakes, inflation, out=state.stakes)
            state.round_index += 1


# -- delegate committee -------------------------------------------------------


@register_kernel(EOSDelegatedPoS)
def _advance_eos(protocol, state, rounds, rng, scratch, chunk):
    """EOS epochs are deterministic given the shares; no draws to
    batch, but the share/income arithmetic runs allocation-free on the
    transposed layout (contiguous reductions)."""
    trials, miners = state.trials, state.miners
    flat = protocol._proposer_reward / miners
    inflation_reward = protocol._inflation_reward
    stakes_t = scratch.get("eos_stakes_t", (miners, trials))
    rewards_t = scratch.get("eos_rewards_t", (miners, trials))
    stakes_t[...] = state.stakes.T
    rewards_t[...] = state.rewards.T
    total = scratch.get("eos_total", (trials,))
    income_t = scratch.get("eos_income_t", (miners, trials))
    for _ in range(rounds):
        np.sum(stakes_t, axis=0, out=total)
        np.divide(stakes_t, total, out=income_t)
        np.multiply(income_t, inflation_reward, out=income_t)
        np.add(income_t, flat, out=income_t)
        np.add(rewards_t, income_t, out=rewards_t)
        if protocol.compound:
            np.add(stakes_t, income_t, out=stakes_t)
        state.round_index += 1
    state.stakes[...] = stakes_t.T
    state.rewards[...] = rewards_t.T


# -- reward withholding -------------------------------------------------------


def _withhold_winners_categorical(inner, state, uniforms):
    """Winner indices for categorical inners, from given uniforms."""
    return winners_from_uniforms(inner.win_probabilities(state), uniforms)


def _withhold_winners_uniform_deadline(inner, state, uniforms):
    return np.argmin(uniforms / state.stakes, axis=1)


def _withhold_winners_exponential_deadline(inner, state, uniforms):
    return np.argmin(-np.log1p(-uniforms) / state.stakes, axis=1)


#: Exact inner type -> (per-round uniform layout, winner function).
#: "proportional" inners (win law = stake_shares of the *vested*
#: stakes) get the fully fused transposed path instead of a winner fn.
_WITHHOLD_SAMPLERS = {
    MultiLotteryPoS: ("proportional", None),
    ProofOfWork: ("proportional", None),
    NeoPoS: ("proportional", None),
    FilecoinStorage: ("trial", _withhold_winners_categorical),
    SingleLotteryPoS: ("trial_miner", _withhold_winners_uniform_deadline),
    FairSingleLotteryPoS: ("trial_miner", _withhold_winners_exponential_deadline),
    WavePoS: ("trial_miner", _withhold_winners_exponential_deadline),
    VixifyPoS: ("trial_miner", _withhold_winners_exponential_deadline),
}


def _advance_withholding_proportional(
    protocol, state, rounds, rng, scratch, chunk
):
    """Fused path for withholding over a proportional inner lottery
    (ML-PoS, PoW, NEO — their win law is ``stake_shares`` of the
    vested stakes).  Transposed layout for contiguous reductions;
    credits land in rewards and the pending-vesting buffer, and the
    buffer folds into stakes at period boundaries exactly as the
    wrapper's ``credit_reward`` does."""
    trials, miners = state.trials, state.miners
    reward = protocol.reward
    period = protocol.vesting_period
    pending = state.extra["pending"]
    stakes_t = scratch.get("withhold_stakes_t", (miners, trials))
    rewards_t = scratch.get("withhold_rewards_t", (miners, trials))
    pending_t = scratch.get("withhold_pending_t", (miners, trials))
    stakes_t[...] = state.stakes.T
    rewards_t[...] = state.rewards.T
    pending_t[...] = pending.T
    total = scratch.get("withhold_total", (trials,))
    shares_t = scratch.get("withhold_shares_t", (miners, trials))
    cdf_t = scratch.get("withhold_cdf_t", (miners, trials))
    above = scratch.get("withhold_above", (miners, trials), np.bool_)
    winners = scratch.get("withhold_winners", (trials,), np.int64)
    one_hot = scratch.get("withhold_one_hot_t", (miners, trials), np.bool_)
    gain_t = scratch.get("withhold_gain_t", (miners, trials))
    columns = scratch.get("withhold_columns_t", (miners, 1), np.int64)
    columns[...] = np.arange(miners)[:, None]
    for block in _uniform_blocks(
        rng, scratch, "withhold_draws", rounds, (trials,), chunk
    ):
        for draws in block:
            np.sum(stakes_t, axis=0, out=total)
            np.divide(stakes_t, total, out=shares_t)
            np.cumsum(shares_t, axis=0, out=cdf_t)
            cdf_t[-1, :] = 1.0
            np.greater(draws, cdf_t, out=above)
            np.sum(above, axis=0, out=winners)
            np.equal(columns, winners, out=one_hot)
            np.multiply(one_hot, reward, out=gain_t)
            np.add(rewards_t, gain_t, out=rewards_t)
            np.add(pending_t, gain_t, out=pending_t)
            if (state.round_index + 1) % period == 0:
                np.add(stakes_t, pending_t, out=stakes_t)
                pending_t[...] = 0.0
            state.round_index += 1
    state.stakes[...] = stakes_t.T
    state.rewards[...] = rewards_t.T
    pending[...] = pending_t.T


@register_kernel(RewardWithholding)
def _advance_withholding(protocol, state, rounds, rng, scratch, chunk):
    """Vesting wrapper: batch the inner lottery's uniforms; replay the
    wrapper's credit/vesting logic round by round (vesting boundaries
    depend on the running round index)."""
    sampler = _WITHHOLD_SAMPLERS.get(type(protocol.inner))
    if sampler is None:
        protocol.advance_many(state, rounds, rng)
        return
    layout, winner_fn = sampler
    if layout == "proportional":
        inner = protocol.inner
        if isinstance(inner, MultiLotteryPoS) and inner.exact_race:
            layout, winner_fn = "trial", _withhold_winners_categorical
        else:
            _advance_withholding_proportional(
                protocol, state, rounds, rng, scratch, chunk
            )
            return
    trials, miners = state.trials, state.miners
    reward = protocol.reward
    period = protocol.vesting_period
    pending = state.extra["pending"]
    round_shape = (trials,) if layout == "trial" else (trials, miners)
    one_hot = scratch.get("withhold_one_hot", (trials, miners), np.bool_)
    gain = scratch.get("withhold_gain", (trials, miners))
    columns = scratch.get("withhold_columns", (miners,), np.intp)
    columns[...] = np.arange(miners)
    for block in _uniform_blocks(
        rng, scratch, "withhold_draws", rounds, round_shape, chunk
    ):
        for uniforms in block:
            winners = winner_fn(protocol.inner, state, uniforms)
            np.equal(winners[:, None], columns, out=one_hot)
            np.multiply(one_hot, reward, out=gain)
            np.add(state.rewards, gain, out=state.rewards)
            np.add(pending, gain, out=pending)
            if (state.round_index + 1) % period == 0:
                state.stakes += pending
                pending[:] = 0.0
            state.round_index += 1
