"""Vectorised Monte Carlo simulation of mining games.

Submodules
----------
engine
    :class:`MonteCarloEngine` / :func:`simulate` — the ensemble
    simulator behind all numerical experiments.
checkpoints
    Linear and geometric recording schedules.
events
    Scheduled perturbations (top-up, withdrawal, outage) for
    what-if studies and failure-injection tests.
kernels
    Fused batched advance kernels — pre-drawn uniform blocks and
    scratch-buffer reuse, bit-identical to the per-round loop.
rng
    Reproducible hierarchical random streams.
"""

from .checkpoints import (
    geometric_checkpoints,
    linear_checkpoints,
    validate_checkpoints,
)
from .engine import MonteCarloEngine, simulate
from .kernels import (
    KERNEL_MODES,
    ScratchBuffers,
    batched_advance,
    ensure_kernel_mode,
)
from .persistence import load_result, save_result
from .events import (
    GameEvent,
    MinerOutage,
    MinerRecovery,
    StakeTopUp,
    StakeWithdrawal,
    plan_segments,
)
from .rng import RandomSource, make_generator, spawn_generators

__all__ = [
    "MonteCarloEngine",
    "simulate",
    "KERNEL_MODES",
    "ScratchBuffers",
    "batched_advance",
    "ensure_kernel_mode",
    "plan_segments",
    "save_result",
    "load_result",
    "linear_checkpoints",
    "geometric_checkpoints",
    "validate_checkpoints",
    "GameEvent",
    "StakeTopUp",
    "StakeWithdrawal",
    "MinerOutage",
    "MinerRecovery",
    "RandomSource",
    "make_generator",
    "spawn_generators",
]
