"""The vectorised Monte Carlo engine.

Runs many independent mining games simultaneously as ``(trials,
miners)`` array operations, recording reward fractions at checkpoints.
This is the "numerical simulations" half of the paper's evaluation
(10,000 repeats); :mod:`repro.chainsim` provides the slower
node-level counterpart of the real-system half.

Each segment between checkpoint/event boundaries advances through the
fused batched kernels (:mod:`repro.sim.kernels`) by default; the
``kernel="naive"`` escape hatch runs the original per-round loop
instead.  The two paths are bit-identical — the knob exists for
differential testing and as a safety valve, not because results
differ.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from .._validation import ensure_positive_int
from ..core.miners import Allocation
from ..core.results import EnsembleResult
from ..core.stats import StatsCollector, ensure_reduce_mode
from ..obs.trace import get_tracer
from ..protocols.base import EnsembleState, IncentiveProtocol
from .checkpoints import linear_checkpoints, validate_checkpoints
from .events import GameEvent, plan_segments
from .kernels import batched_advance, ensure_kernel_mode
from .rng import RandomSource, SeedLike

__all__ = ["MonteCarloEngine", "simulate"]


class MonteCarloEngine:
    """Simulate an ensemble of independent mining games.

    Parameters
    ----------
    protocol:
        The incentive model to run.
    allocation:
        Initial resource allocation (shared by every trial).
    trials:
        Number of independent games (the paper uses 10,000 for
        simulations, 500 for PoS system experiments).
    seed:
        Seed, :class:`~repro.sim.rng.RandomSource`, or generator for
        reproducibility.
    kernel:
        ``"batched"`` (default) advances segments through the fused
        kernels of :mod:`repro.sim.kernels`; ``"naive"`` loops the
        protocol's per-round ``step``.  Bit-identical outputs either
        way — the naive path is kept for differential testing.

    Examples
    --------
    >>> from repro.protocols import MultiLotteryPoS
    >>> from repro.core.miners import Allocation
    >>> engine = MonteCarloEngine(
    ...     MultiLotteryPoS(reward=0.01), Allocation.two_miners(0.2),
    ...     trials=200, seed=1)
    >>> result = engine.run(horizon=500)
    >>> abs(result.expectational_verdict().sample_mean - 0.2) < 0.1
    True
    """

    def __init__(
        self,
        protocol: IncentiveProtocol,
        allocation: Allocation,
        trials: int = 10_000,
        seed: SeedLike = None,
        kernel: str = "batched",
    ) -> None:
        if not isinstance(protocol, IncentiveProtocol):
            raise TypeError(
                f"protocol must be an IncentiveProtocol, got {type(protocol).__name__}"
            )
        if not isinstance(allocation, Allocation):
            raise TypeError(
                f"allocation must be an Allocation, got {type(allocation).__name__}"
            )
        self.protocol = protocol
        self.allocation = allocation
        self.trials = ensure_positive_int("trials", trials)
        self.kernel = ensure_kernel_mode(kernel)
        self._source = seed if isinstance(seed, RandomSource) else RandomSource(seed)

    def run(
        self,
        horizon: int,
        checkpoints: Optional[Sequence[int]] = None,
        *,
        events: Sequence[GameEvent] = (),
        record_terminal_stakes: bool = True,
        reduce: str = "full",
    ):
        """Run every trial for ``horizon`` rounds.

        Parameters
        ----------
        horizon:
            Total number of blocks/epochs per game.
        checkpoints:
            Rounds at which to record reward fractions; defaults to 50
            evenly spaced checkpoints.  The horizon itself is always
            recorded.
        events:
            Optional scheduled perturbations (see
            :mod:`repro.sim.events`).
        record_terminal_stakes:
            Whether to keep the final stake matrix in the result.
        reduce:
            ``"full"`` (default) materialises the ``(trials,
            checkpoints, miners)`` trajectory cube into an
            :class:`EnsembleResult`; ``"stats"`` folds each checkpoint
            straight into mergeable sufficient statistics and returns
            a :class:`~repro.core.stats.StatsSummary` — the cube is
            never allocated, so memory stays O(trials x miners).

        Returns
        -------
        EnsembleResult or StatsSummary
        """
        horizon = ensure_positive_int("horizon", horizon)
        ensure_reduce_mode(reduce)
        if checkpoints is None:
            checkpoint_list = linear_checkpoints(horizon)
        else:
            checkpoint_list = validate_checkpoints(checkpoints, horizon)
        event_list = sorted(events, key=lambda e: e.round_index)
        for event in event_list:
            if event.round_index > horizon:
                raise ValueError(
                    f"event at round {event.round_index} exceeds horizon {horizon}"
                )

        rng = self._source.spawn_one().generator()
        state = self.protocol.make_state(self.allocation, self.trials)

        collector: Optional[StatsCollector] = None
        fractions: Optional[np.ndarray] = None
        if reduce == "stats":
            collector = StatsCollector(
                protocol_name=self.protocol.name,
                allocation=self.allocation,
                checkpoints=checkpoint_list,
                round_unit=self.protocol.round_unit,
            )
        else:
            fractions = np.empty(
                (self.trials, len(checkpoint_list), self.allocation.size)
            )
        boundaries = plan_segments(checkpoint_list, event_list)
        checkpoint_positions = {c: i for i, c in enumerate(checkpoint_list)}
        pending_events = list(event_list)

        # Fire any events scheduled before the first round.
        while pending_events and pending_events[0].round_index == 0:
            pending_events.pop(0).apply(state)

        previous = 0
        for boundary in boundaries:
            gap = boundary - previous
            if gap > 0:
                self._advance(state, gap, rng)
            previous = boundary
            while pending_events and pending_events[0].round_index == boundary:
                pending_events.pop(0).apply(state)
            position = checkpoint_positions.get(boundary)
            if position is not None:
                issued = self.protocol.total_issued(boundary)
                if collector is not None:
                    collector.observe(position, state.rewards / issued)
                else:
                    fractions[:, position, :] = state.rewards / issued

        if collector is not None:
            if record_terminal_stakes:
                collector.observe_terminal(state.stakes)
            return collector.build(self.trials)
        terminal = state.stakes.copy() if record_terminal_stakes else None
        return EnsembleResult(
            protocol_name=self.protocol.name,
            allocation=self.allocation,
            checkpoints=checkpoint_list,
            reward_fractions=fractions,
            terminal_stakes=terminal,
            round_unit=self.protocol.round_unit,
        )

    def _advance(
        self, state: EnsembleState, rounds: int, rng: np.random.Generator
    ) -> None:
        """Advance one segment through the configured kernel path."""
        if self.kernel == "batched":
            batched_advance(self.protocol, state, rounds, rng)
            return
        tracer = get_tracer()
        if tracer.enabled:
            with tracer.span(
                "kernel.advance",
                mode="naive",
                protocol=self.protocol.name,
                rounds=rounds,
                trials=self.trials,
            ):
                self.protocol.advance_many(state, rounds, rng)
        else:
            self.protocol.advance_many(state, rounds, rng)

    def __repr__(self) -> str:
        return (
            f"MonteCarloEngine({self.protocol.name!r}, "
            f"miners={self.allocation.size}, trials={self.trials}, "
            f"kernel={self.kernel!r})"
        )


def simulate(
    protocol: IncentiveProtocol,
    allocation: Allocation,
    horizon: int,
    *,
    trials: int = 10_000,
    checkpoints: Optional[Sequence[int]] = None,
    events: Sequence[GameEvent] = (),
    seed: SeedLike = None,
    record_terminal_stakes: bool = True,
    kernel: str = "batched",
    reduce: str = "full",
):
    """One-call convenience wrapper around :class:`MonteCarloEngine`."""
    engine = MonteCarloEngine(
        protocol, allocation, trials=trials, seed=seed, kernel=kernel
    )
    return engine.run(
        horizon,
        checkpoints,
        events=events,
        record_terminal_stakes=record_terminal_stakes,
        reduce=reduce,
    )
