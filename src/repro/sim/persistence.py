"""Saving and loading ensemble results.

Paper-scale runs take minutes; persisting their output lets the
analysis and rendering layers iterate without re-simulating.  Results
are stored as a single ``.npz`` archive: numeric arrays natively,
metadata (protocol name, miner names, round unit) as a JSON string.

Two artifact kinds share the format: full
:class:`~repro.core.results.EnsembleResult` trajectories (the original
layout, readable by every prior release) and ``reduce="stats"``
:class:`~repro.core.stats.StatsSummary` sketch state, marked by a
``kind`` field in the metadata record.  Both round-trip bit-identically
— ``.npz`` stores the arrays verbatim — which is what lets the result
cache and the resume journal treat either kind as shard currency.
"""

from __future__ import annotations

import json
import pathlib
from typing import Union

import numpy as np

from ..core.miners import Allocation
from ..core.results import EnsembleResult
from ..core.stats import StatsSummary

__all__ = ["save_result", "load_result"]

_FORMAT_VERSION = 1

PathLike = Union[str, pathlib.Path]

#: Array names of the optional terminal-stats block, in constructor order.
_STATS_TERMINAL_KEYS = (
    "stats_terminal_mean",
    "stats_terminal_m2",
    "stats_terminal_hist",
    "stats_max_share_hist",
    "stats_wins",
)


def save_result(
    result: Union[EnsembleResult, StatsSummary], path: PathLike
) -> pathlib.Path:
    """Write a result artifact to ``path`` (.npz appended if absent).

    Accepts an :class:`EnsembleResult` (full trajectories) or a
    :class:`StatsSummary` (sufficient statistics); returns the final
    path written.
    """
    path = pathlib.Path(path)
    if path.suffix != ".npz":
        path = path.with_suffix(path.suffix + ".npz")
    metadata = {
        "format_version": _FORMAT_VERSION,
        "protocol_name": result.protocol_name,
        "round_unit": result.round_unit,
        "miner_names": [m.name for m in result.allocation.miners],
    }
    arrays = {
        "shares": result.allocation.shares,
        "checkpoints": result.checkpoints,
    }
    if isinstance(result, StatsSummary):
        metadata["kind"] = "stats"
        metadata.update(result.state_meta())
        arrays.update(result.state_arrays())
    else:
        # The original layout, deliberately unmarked: archives written
        # by prior releases load unchanged.
        arrays["reward_fractions"] = result.reward_fractions
        if result.terminal_stakes is not None:
            arrays["terminal_stakes"] = result.terminal_stakes
    arrays["metadata"] = np.array(json.dumps(metadata))
    path.parent.mkdir(parents=True, exist_ok=True)
    np.savez_compressed(path, **arrays)
    return path


def _load_stats(archive, metadata: dict, allocation: Allocation) -> StatsSummary:
    """Rebuild a :class:`StatsSummary` from its sketch-state arrays."""
    kwargs = {}
    if _STATS_TERMINAL_KEYS[0] in archive.files:
        kwargs = {
            "terminal_mean": archive["stats_terminal_mean"],
            "terminal_m2": archive["stats_terminal_m2"],
            "terminal_hist": archive["stats_terminal_hist"],
            "max_share_hist": archive["stats_max_share_hist"],
            "wins": archive["stats_wins"],
        }
    return StatsSummary(
        protocol_name=metadata["protocol_name"],
        allocation=allocation,
        checkpoints=archive["checkpoints"],
        round_unit=metadata["round_unit"],
        trials=metadata["trials"],
        epsilon=metadata["epsilon"],
        bins=metadata["bins"],
        margin=metadata["margin"],
        mean=archive["stats_mean"],
        m2=archive["stats_m2"],
        hist=archive["stats_hist"],
        unfair=archive["stats_unfair"],
        monopolised=metadata["monopolised"],
        zero_stake_trials=metadata["zero_stake_trials"],
        **kwargs,
    )


def load_result(path: PathLike) -> Union[EnsembleResult, StatsSummary]:
    """Read an artifact written by :func:`save_result` (either kind)."""
    path = pathlib.Path(path)
    if not path.exists() and path.suffix != ".npz":
        path = path.with_suffix(path.suffix + ".npz")
    with np.load(path, allow_pickle=False) as archive:
        metadata = json.loads(str(archive["metadata"]))
        if metadata.get("format_version") != _FORMAT_VERSION:
            raise ValueError(
                f"unsupported result format version "
                f"{metadata.get('format_version')!r}"
            )
        allocation = Allocation(
            archive["shares"], names=metadata["miner_names"]
        )
        if metadata.get("kind") == "stats":
            return _load_stats(archive, metadata, allocation)
        terminal = (
            archive["terminal_stakes"]
            if "terminal_stakes" in archive.files
            else None
        )
        return EnsembleResult(
            protocol_name=metadata["protocol_name"],
            allocation=allocation,
            checkpoints=archive["checkpoints"],
            reward_fractions=archive["reward_fractions"],
            terminal_stakes=terminal,
            round_unit=metadata["round_unit"],
        )
