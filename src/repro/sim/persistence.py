"""Saving and loading ensemble results.

Paper-scale runs take minutes; persisting their output lets the
analysis and rendering layers iterate without re-simulating.  Results
are stored as a single ``.npz`` archive: numeric arrays natively,
metadata (protocol name, miner names, round unit) as a JSON string.
"""

from __future__ import annotations

import json
import pathlib
from typing import Union

import numpy as np

from ..core.miners import Allocation
from ..core.results import EnsembleResult

__all__ = ["save_result", "load_result"]

_FORMAT_VERSION = 1

PathLike = Union[str, pathlib.Path]


def save_result(result: EnsembleResult, path: PathLike) -> pathlib.Path:
    """Write an :class:`EnsembleResult` to ``path`` (.npz appended if absent).

    Returns the final path written.
    """
    path = pathlib.Path(path)
    if path.suffix != ".npz":
        path = path.with_suffix(path.suffix + ".npz")
    metadata = {
        "format_version": _FORMAT_VERSION,
        "protocol_name": result.protocol_name,
        "round_unit": result.round_unit,
        "miner_names": [m.name for m in result.allocation.miners],
    }
    arrays = {
        "metadata": np.array(json.dumps(metadata)),
        "shares": result.allocation.shares,
        "checkpoints": result.checkpoints,
        "reward_fractions": result.reward_fractions,
    }
    if result.terminal_stakes is not None:
        arrays["terminal_stakes"] = result.terminal_stakes
    path.parent.mkdir(parents=True, exist_ok=True)
    np.savez_compressed(path, **arrays)
    return path


def load_result(path: PathLike) -> EnsembleResult:
    """Read an :class:`EnsembleResult` written by :func:`save_result`."""
    path = pathlib.Path(path)
    if not path.exists() and path.suffix != ".npz":
        path = path.with_suffix(path.suffix + ".npz")
    with np.load(path, allow_pickle=False) as archive:
        metadata = json.loads(str(archive["metadata"]))
        if metadata.get("format_version") != _FORMAT_VERSION:
            raise ValueError(
                f"unsupported result format version "
                f"{metadata.get('format_version')!r}"
            )
        allocation = Allocation(
            archive["shares"], names=metadata["miner_names"]
        )
        terminal = (
            archive["terminal_stakes"]
            if "terminal_stakes" in archive.files
            else None
        )
        return EnsembleResult(
            protocol_name=metadata["protocol_name"],
            allocation=allocation,
            checkpoints=archive["checkpoints"],
            reward_fractions=archive["reward_fractions"],
            terminal_stakes=terminal,
            round_unit=metadata["round_unit"],
        )
