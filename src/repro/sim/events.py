"""Scheduled perturbations of a running mining game.

Assumption 4 of the paper says miners take no action after the game
starts; these events deliberately *break* that assumption so the
library can study what happens when they do (withdrawal, top-up,
temporary outage — the actions cited from [34, 39]).  They also serve
as failure injection for the test suite: invariants such as stake
positivity and reward conservation must survive arbitrary event
schedules.

An event fires once, after a given round completes.  The engine splits
its advance loop at event rounds, so events compose with arbitrary
checkpoint schedules.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import List, Sequence

import numpy as np

from .._validation import (
    ensure_non_negative_int,
    ensure_positive_float,
    ensure_positive_int,
)
from ..protocols.base import EnsembleState

__all__ = [
    "GameEvent",
    "StakeTopUp",
    "StakeWithdrawal",
    "MinerOutage",
    "MinerRecovery",
    "plan_segments",
]


def plan_segments(
    checkpoints: Sequence[int], events: Sequence["GameEvent"]
) -> List[int]:
    """Merged, sorted advance boundaries: checkpoints plus event rounds.

    The engine advances the ensemble in one fused
    :func:`~repro.sim.kernels.batched_advance` call per segment between
    consecutive boundaries, firing events and recording checkpoints at
    the boundary itself — which is what lets events compose with
    arbitrary checkpoint schedules without a per-round loop.  Round-0
    events fire before the first segment and plant no boundary.
    """
    boundaries = set(checkpoints)
    boundaries.update(e.round_index for e in events if e.round_index > 0)
    return sorted(boundaries)


@dataclass(frozen=True)
class GameEvent(abc.ABC):
    """A one-shot perturbation applied after ``round_index`` rounds.

    Attributes
    ----------
    round_index:
        The event fires once the game has completed this many rounds
        (0 fires before the first round).
    miner:
        Index of the affected miner.
    """

    round_index: int
    miner: int

    def __post_init__(self) -> None:
        ensure_non_negative_int("round_index", self.round_index)
        ensure_non_negative_int("miner", self.miner)

    @abc.abstractmethod
    def apply(self, state: EnsembleState) -> None:
        """Mutate the ensemble state in place (all trials alike)."""

    def _check_miner(self, state: EnsembleState) -> None:
        if self.miner >= state.miners:
            raise IndexError(
                f"event targets miner {self.miner} but the game has "
                f"{state.miners} miners"
            )


@dataclass(frozen=True)
class StakeTopUp(GameEvent):
    """Miner adds ``amount`` fresh resource (stake purchase / new rigs)."""

    amount: float = 0.0

    def __post_init__(self) -> None:
        super().__post_init__()
        ensure_positive_float("amount", self.amount)

    def apply(self, state: EnsembleState) -> None:
        self._check_miner(state)
        state.stakes[:, self.miner] += self.amount


@dataclass(frozen=True)
class StakeWithdrawal(GameEvent):
    """Miner withdraws a fraction of her current resource.

    The withdrawal is proportional (per trial) so it is well-defined
    even though trials hold different absolute stakes.
    """

    fraction: float = 0.0

    def __post_init__(self) -> None:
        super().__post_init__()
        if not 0.0 < self.fraction < 1.0:
            raise ValueError(
                f"fraction must be in the open interval (0, 1), got {self.fraction!r}"
            )

    def apply(self, state: EnsembleState) -> None:
        self._check_miner(state)
        state.stakes[:, self.miner] *= 1.0 - self.fraction


@dataclass(frozen=True)
class MinerOutage(GameEvent):
    """Miner goes offline: her competing resource is parked at ~zero.

    The parked amount is saved in ``state.extra`` so a matching
    :class:`MinerRecovery` can restore it.  A tiny residual stake is
    kept so share computations stay well-defined.
    """

    residual: float = 1e-12

    def __post_init__(self) -> None:
        super().__post_init__()
        ensure_positive_float("residual", self.residual)

    def apply(self, state: EnsembleState) -> None:
        self._check_miner(state)
        key = f"outage_{self.miner}"
        if key in state.extra:
            raise RuntimeError(f"miner {self.miner} is already offline")
        state.extra[key] = state.stakes[:, self.miner].copy()
        state.stakes[:, self.miner] = self.residual


@dataclass(frozen=True)
class MinerRecovery(GameEvent):
    """Miner comes back online, restoring the parked resource."""

    def apply(self, state: EnsembleState) -> None:
        self._check_miner(state)
        key = f"outage_{self.miner}"
        if key not in state.extra:
            raise RuntimeError(f"miner {self.miner} is not offline")
        state.stakes[:, self.miner] = state.extra.pop(key)
