"""DET: determinism-critical modules must not consume ambient entropy.

Retry jitter, chaos schedules and kernel batching are pure SHA-256
functions of task coordinates, and telemetry is bit-identity neutral —
ROADMAP's doctrine.  In the modules listed in
:data:`repro.lint.doctrine.DETERMINISM_MODULES` these rules ban the
stdlib ``random`` module, NumPy's legacy global-state RNG API and
unseeded ``default_rng()``, wall-clock reads (``time.time`` and the
``datetime`` now/today family — ``perf_counter``/``monotonic`` stay
legal: durations are telemetry, not entropy), and entropy-backed UUIDs.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterable, List

from .core import Finding, LintContext, Rule, dotted_name, register
from .doctrine import DETERMINISM_MODULES, NUMPY_RANDOM_ALLOWED

__all__ = [
    "BannedRandomModule",
    "UnseededGenerator",
    "WallClockRead",
    "EntropyUUID",
]

#: Wall-clock call targets (canonical dotted origins after alias
#: resolution).
_WALL_CLOCK = {
    "time.time",
    "time.time_ns",
    "datetime.datetime.now",
    "datetime.datetime.utcnow",
    "datetime.datetime.today",
    "datetime.date.today",
}

_ENTROPY_UUID = {"uuid.uuid1", "uuid.uuid4"}


class _OriginResolver(ast.NodeVisitor):
    """Track what dotted origin each local name is bound to by imports.

    ``import numpy as np`` binds ``np -> numpy``; ``from time import
    time as now`` binds ``now -> time.time``.  :meth:`origin_of`
    rewrites an expression's dotted chain through those bindings, so
    ``np.random.default_rng`` resolves to ``numpy.random.default_rng``
    however the module was imported.
    """

    def __init__(self) -> None:
        self.bindings: Dict[str, str] = {}
        self.import_nodes: List[ast.AST] = []

    def visit_Import(self, node: ast.Import) -> None:
        for alias in node.names:
            local = alias.asname or alias.name.split(".")[0]
            origin = alias.name if alias.asname else alias.name.split(".")[0]
            self.bindings[local] = origin
            self.import_nodes.append(node)

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        if node.module is None or node.level:
            return
        for alias in node.names:
            local = alias.asname or alias.name
            self.bindings[local] = f"{node.module}.{alias.name}"
            self.import_nodes.append(node)

    def origin_of(self, node: ast.AST) -> str:
        dotted = dotted_name(node)
        if dotted is None:
            return ""
        head, _, rest = dotted.partition(".")
        head = self.bindings.get(head, head)
        return f"{head}.{rest}" if rest else head


def _resolver(ctx: LintContext) -> _OriginResolver:
    resolver = _OriginResolver()
    resolver.visit(ctx.tree)
    return resolver


class _DetRule(Rule):
    scope = DETERMINISM_MODULES


@register
class BannedRandomModule(_DetRule):
    id = "DET001"
    summary = ("stdlib random and NumPy's legacy global-state RNG are "
               "banned in determinism-critical modules")

    def check(self, ctx: LintContext) -> Iterable[Finding]:
        resolver = _resolver(ctx)
        for node in ast.walk(ctx.tree):
            if isinstance(node, (ast.Import, ast.ImportFrom)):
                for alias in node.names:
                    module = (
                        alias.name if isinstance(node, ast.Import)
                        else (node.module or "")
                    )
                    if module == "random" or module.startswith("random."):
                        yield ctx.finding(
                            self, node,
                            "import of stdlib 'random': derive values from "
                            "hashlib.sha256 of task coordinates instead",
                        )
            elif isinstance(node, ast.Call):
                origin = resolver.origin_of(node.func)
                if (
                    origin.startswith("numpy.random.")
                    and origin.rsplit(".", 1)[1] not in NUMPY_RANDOM_ALLOWED
                ):
                    yield ctx.finding(
                        self, node,
                        f"legacy numpy.random global-state call "
                        f"'{origin}': use a seeded Generator",
                    )


@register
class UnseededGenerator(_DetRule):
    id = "DET002"
    summary = "np.random.default_rng() without a seed draws OS entropy"

    def check(self, ctx: LintContext) -> Iterable[Finding]:
        resolver = _resolver(ctx)
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            origin = resolver.origin_of(node.func)
            if origin == "numpy.random.default_rng" and not node.args:
                yield ctx.finding(
                    self, node,
                    "unseeded default_rng(): thread the spec's "
                    "SeedSequence through instead",
                )


@register
class WallClockRead(_DetRule):
    id = "DET003"
    summary = ("wall-clock reads (time.time, datetime.now) are banned in "
               "determinism-critical modules")

    def check(self, ctx: LintContext) -> Iterable[Finding]:
        resolver = _resolver(ctx)
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            origin = resolver.origin_of(node.func)
            if origin in _WALL_CLOCK:
                yield ctx.finding(
                    self, node,
                    f"wall-clock read '{origin}': schedules and jitter "
                    "must be pure functions of task coordinates",
                )


@register
class EntropyUUID(_DetRule):
    id = "DET004"
    summary = "uuid1/uuid4 consume ambient entropy"

    def check(self, ctx: LintContext) -> Iterable[Finding]:
        resolver = _resolver(ctx)
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            origin = resolver.origin_of(node.func)
            if origin in _ENTROPY_UUID:
                yield ctx.finding(
                    self, node,
                    f"entropy-backed '{origin}': name artifacts by "
                    "content hash or task coordinates instead",
                )
