"""FPR: execution knobs must never enter cache fingerprints.

The cache doctrine: physics knobs always fingerprint, execution knobs
(kernel, fast, backend, stream, workers, retry/timeout/resume) never
do — one cached artifact answers every setting of a bit-identical path
selector.  These rules check both directions statically against
:mod:`repro.runtime.spec`:

* the fingerprint payload builders may not reference an execution
  knob (FPR001);
* ``_fingerprint_exclude_`` declarations must be literal sets of
  strings so they remain statically checkable (FPR002);
* classes canonicalised through ``vars(obj)`` that assign an
  execution-knob attribute must list it there (FPR003), and must not
  list attributes they never assign (FPR004);
* physics knobs that merely *look* like mode switches (``reduce``)
  must never appear in ``_fingerprint_exclude_`` (FPR005) — they
  change the produced bytes, so excluding one would alias distinct
  artifacts under a single cache key.
"""

from __future__ import annotations

import ast
from typing import Iterable, List, Optional, Set, Tuple

from .core import Finding, LintContext, Rule, register
from .doctrine import (
    EXECUTION_KNOBS,
    FINGERPRINTED_CLASS_MODULES,
    PHYSICS_KNOBS,
)

__all__ = [
    "KnobInFingerprint",
    "ExcludeNotLiteral",
    "KnobNotExcluded",
    "StaleExclude",
    "PhysicsKnobExcluded",
]

#: The functions in repro/runtime/spec.py that build fingerprint
#: payloads.
_FINGERPRINT_FUNCTIONS = ("spec_fingerprint", "_canonical")


@register
class KnobInFingerprint(Rule):
    id = "FPR001"
    summary = ("fingerprint payload builders must not reference "
               "execution-knob attributes or keys")
    scope = ("repro/runtime/spec.py",)

    def check(self, ctx: LintContext) -> Iterable[Finding]:
        for node in ast.walk(ctx.tree):
            if not (
                isinstance(node, ast.FunctionDef)
                and node.name in _FINGERPRINT_FUNCTIONS
            ):
                continue
            for inner in ast.walk(node):
                if isinstance(inner, ast.Attribute) and inner.attr in EXECUTION_KNOBS:
                    yield ctx.finding(
                        self, inner,
                        f"execution knob '.{inner.attr}' read inside "
                        f"{node.name}(): knobs must stay outside the "
                        "content address",
                    )
                elif isinstance(inner, ast.Dict):
                    for key in inner.keys:
                        if (
                            isinstance(key, ast.Constant)
                            and isinstance(key.value, str)
                            and key.value in EXECUTION_KNOBS
                        ):
                            yield ctx.finding(
                                self, key,
                                f"execution knob {key.value!r} keyed into a "
                                f"fingerprint payload in {node.name}()",
                            )


def _exclude_assignment(stmt: ast.stmt) -> Optional[ast.expr]:
    """The value of a ``_fingerprint_exclude_ = ...`` class statement."""
    if isinstance(stmt, ast.Assign):
        for target in stmt.targets:
            if isinstance(target, ast.Name) and target.id == "_fingerprint_exclude_":
                return stmt.value
    if isinstance(stmt, ast.AnnAssign):
        target = stmt.target
        if isinstance(target, ast.Name) and target.id == "_fingerprint_exclude_":
            return stmt.value
    return None


def _literal_strings(value: ast.expr) -> Optional[Tuple[str, ...]]:
    """The string elements of a literal set/frozenset/tuple/list, or
    None when the expression is not statically evaluable."""
    if isinstance(value, ast.Call):
        func = value.func
        if not (
            isinstance(func, ast.Name)
            and func.id in ("frozenset", "set", "tuple")
            and not value.keywords
            and len(value.args) <= 1
        ):
            return None
        if not value.args:
            return ()
        value = value.args[0]
    if isinstance(value, (ast.Set, ast.Tuple, ast.List)):
        items: List[str] = []
        for element in value.elts:
            if not (
                isinstance(element, ast.Constant)
                and isinstance(element.value, str)
            ):
                return None
            items.append(element.value)
        return tuple(items)
    return None


def _self_assigned_attrs(cls: ast.ClassDef) -> Set[str]:
    """Attribute names assigned on ``self`` anywhere in the class (plus
    dataclass-style annotated class fields)."""
    attrs: Set[str] = set()
    for stmt in cls.body:
        if isinstance(stmt, ast.AnnAssign) and isinstance(stmt.target, ast.Name):
            attrs.add(stmt.target.id)
    for node in ast.walk(cls):
        targets: List[ast.expr] = []
        if isinstance(node, ast.Assign):
            targets = list(node.targets)
        elif isinstance(node, (ast.AnnAssign, ast.AugAssign)):
            targets = [node.target]
        elif isinstance(node, ast.Call):
            # object.__setattr__(self, "name", ...) — the frozen-
            # dataclass spelling of self.name = ...
            func = node.func
            if (
                isinstance(func, ast.Attribute)
                and func.attr == "__setattr__"
                and len(node.args) >= 2
                and isinstance(node.args[1], ast.Constant)
                and isinstance(node.args[1].value, str)
            ):
                attrs.add(node.args[1].value)
        for target in targets:
            if (
                isinstance(target, ast.Attribute)
                and isinstance(target.value, ast.Name)
                and target.value.id == "self"
            ):
                attrs.add(target.attr)
    return attrs


@register
class ExcludeNotLiteral(Rule):
    id = "FPR002"
    summary = ("_fingerprint_exclude_ must be a literal set of "
               "attribute-name strings")
    scope = ("repro/*",)

    def check(self, ctx: LintContext) -> Iterable[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.ClassDef):
                continue
            for stmt in node.body:
                value = _exclude_assignment(stmt)
                if value is not None and _literal_strings(value) is None:
                    yield ctx.finding(
                        self, stmt,
                        f"{node.name}._fingerprint_exclude_ is not a "
                        "literal set of strings; the linter (and the "
                        "reader) must be able to see exactly what stays "
                        "outside the content address",
                    )


class _FingerprintedClassRule(Rule):
    scope = FINGERPRINTED_CLASS_MODULES


@register
class KnobNotExcluded(_FingerprintedClassRule):
    id = "FPR003"
    summary = ("execution-knob attributes on fingerprinted classes must "
               "be listed in _fingerprint_exclude_")

    def check(self, ctx: LintContext) -> Iterable[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.ClassDef):
                continue
            excluded: Tuple[str, ...] = ()
            for stmt in node.body:
                value = _exclude_assignment(stmt)
                if value is not None:
                    excluded = _literal_strings(value) or ()
            knobs = _self_assigned_attrs(node) & EXECUTION_KNOBS
            for knob in sorted(knobs - set(excluded)):
                yield ctx.finding(
                    self, node,
                    f"{node.name}.{knob} is an execution knob but is "
                    "missing from _fingerprint_exclude_: it would be "
                    "hashed into the cache key and split bit-identical "
                    "artifacts",
                )


@register
class StaleExclude(_FingerprintedClassRule):
    id = "FPR004"
    summary = "_fingerprint_exclude_ lists an attribute the class never assigns"

    def check(self, ctx: LintContext) -> Iterable[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.ClassDef):
                continue
            for stmt in node.body:
                value = _exclude_assignment(stmt)
                if value is None:
                    continue
                names = _literal_strings(value) or ()
                assigned = _self_assigned_attrs(node)
                for name in names:
                    if name not in assigned:
                        yield ctx.finding(
                            self, stmt,
                            f"{node.name}._fingerprint_exclude_ lists "
                            f"{name!r} but the class never assigns it "
                            "(stale exclusion)",
                        )


@register
class PhysicsKnobExcluded(Rule):
    id = "FPR005"
    summary = ("physics knobs (reduce) must never be listed in "
               "_fingerprint_exclude_")
    scope = ("repro/*",)

    def check(self, ctx: LintContext) -> Iterable[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.ClassDef):
                continue
            for stmt in node.body:
                value = _exclude_assignment(stmt)
                if value is None:
                    continue
                for name in _literal_strings(value) or ():
                    if name in PHYSICS_KNOBS:
                        yield ctx.finding(
                            self, stmt,
                            f"{node.name}._fingerprint_exclude_ lists "
                            f"physics knob {name!r}: it changes the "
                            "produced bytes, so excluding it would "
                            "alias distinct artifacts under one cache "
                            "key",
                        )
