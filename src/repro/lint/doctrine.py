"""The machine-readable half of ROADMAP's "Doctrine to preserve".

Every rule family in :mod:`repro.lint` is parameterised from here, so
the doctrine lives in exactly one place: which attribute names are
*execution knobs* (bit-identical path selectors that must never enter
cache fingerprints), which modules are *determinism-critical* (jitter
and schedules there must be SHA-256-derived, never RNG- or wall-clock-
fed), which classes cross the *process boundary* (and therefore must
stay picklable), and which classes own a lock that guards designated
shared attributes.

Scope patterns are :mod:`fnmatch` patterns matched against the
``repro/``-relative posix path of each linted file (``*`` matches
``/`` under fnmatch, so ``repro/*`` means the whole tree).
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Tuple

__all__ = [
    "BOUNDARY_MODULES",
    "DETERMINISM_MODULES",
    "EXECUTION_KNOBS",
    "FINGERPRINTED_CLASS_MODULES",
    "LOCK_GUARDED",
    "METRIC_INSTRUMENT_ATTRS",
    "LOCK_MODULES",
    "MUTATOR_METHODS",
    "NUMPY_RANDOM_ALLOWED",
    "PHYSICS_KNOBS",
    "STORAGE_MODULES",
    "SWALLOW_MODULES",
]

#: Attribute names that select between bit-identical execution paths.
#: One cached artifact answers every setting of these, so they must
#: never be hashed into a spec fingerprint (FPR family).  Physics knobs
#: — anything that changes the produced bytes — always fingerprint.
EXECUTION_KNOBS: FrozenSet[str] = frozenset({
    "kernel",       # SimulationSpec: batched vs naive advance
    "fast",         # SystemExperiment: vectorized vs per-object loop
    "backend",      # executor selection (serial/threads/processes)
    "stream",       # streaming vs batch merge
    "workers",      # degree of parallelism
    "retry",        # fault-tolerance: retry policy
    "retries",      # fault-tolerance: CLI spelling of the same knob
    "timeout",      # fault-tolerance: per-shard deadline
    "resume",       # fault-tolerance: journal-driven resume
    "journal",      # fault-tolerance: journal sidecar
    "verify",       # integrity: digest verification on cache reads
    "compact_bytes",  # integrity: journal auto-compaction threshold
})

#: Attribute names that change the produced bytes (physics knobs)
#: despite looking like mode switches.  They must always enter the
#: fingerprint: listing one in ``_fingerprint_exclude_`` would alias
#: distinct artifacts under one cache key (FPR005).
PHYSICS_KNOBS: FrozenSet[str] = frozenset({
    "reduce",       # SimulationSpec/SystemSpec: full trajectory cube
                    # vs sufficient statistics — different artifact
                    # bytes, never one cache entry
})

#: Modules where no code path may consume ambient entropy: retry
#: jitter, chaos schedules and kernel batching must be pure functions
#: (SHA-256 of task coordinates), and telemetry must be bit-identity
#: neutral (DET family).
DETERMINISM_MODULES: Tuple[str, ...] = (
    "repro/runtime/faults.py",
    "repro/runtime/chaos.py",
    "repro/runtime/diskchaos.py",
    "repro/sim/kernels.py",
    "repro/obs/*",
)

#: ``numpy.random`` attributes that are deterministic-by-construction
#: (types and seedable constructors).  Everything else on
#: ``numpy.random`` is the legacy global-state API and is banned in
#: determinism-critical modules.
NUMPY_RANDOM_ALLOWED: FrozenSet[str] = frozenset({
    "default_rng",
    "Generator",
    "SeedSequence",
    "BitGenerator",
    "PCG64",
    "PCG64DXSM",
    "Philox",
    "SFC64",
    "MT19937",
})

#: Modules whose classes cross the worker process boundary (specs,
#: failure payloads, telemetry envelopes, chaos wrappers).  Instances
#: must survive pickling, so they may not hold lambdas, locks, open
#: files or generators (PKL family).
BOUNDARY_MODULES: Tuple[str, ...] = (
    "repro/runtime/spec.py",
    "repro/runtime/faults.py",
    "repro/runtime/chaos.py",
    "repro/obs/__init__.py",
)

#: Modules canonicalised through ``vars(obj)`` by
#: ``repro.runtime.spec._canonical`` — classes here that assign an
#: execution-knob attribute must list it in ``_fingerprint_exclude_``
#: (FPR family).
FINGERPRINTED_CLASS_MODULES: Tuple[str, ...] = (
    "repro/chainsim/harness.py",
    "repro/protocols/*",
)

#: Modules scanned for lock discipline (LCK family).  Executors are
#: listed even though they currently own no locks: the moment shared
#: state grows a lock there, the rule engages without a config change.
LOCK_MODULES: Tuple[str, ...] = (
    "repro/runtime/cache.py",
    "repro/runtime/journal.py",
    "repro/runtime/executor.py",
    "repro/runtime/runner.py",
    "repro/runtime/integrity.py",
    "repro/runtime/diskchaos.py",
    "repro/obs/metrics.py",
    "repro/obs/trace.py",
)

#: Designated shared state: class name -> (lock attribute, attribute
#: names that may only be written under ``with self.<lock>``).  Classes
#: not listed here are still covered by inference: any class whose
#: ``__init__`` stores a ``threading.Lock``/``RLock`` is lock-owning,
#: and every attribute it writes under that lock anywhere is guarded
#: everywhere.
LOCK_GUARDED: Dict[str, Tuple[str, FrozenSet[str]]] = {
    "ResultCache": ("_stats_lock", frozenset({
        "hits", "misses", "evictions", "quarantined", "io_errors",
        "degraded", "_approx_bytes",
    })),
    "RunJournal": ("_lock", frozenset({
        "_shards", "_specs", "_handle", "_lines_total", "degraded",
        "compactions",
    })),
    "DiskChaos": ("_lock", frozenset({"hits", "_counts", "_total"})),
    "MetricsRegistry": ("_lock", frozenset({
        "_counters", "_gauges", "_histograms",
    })),
    "Counter": ("_lock", frozenset({"value"})),
    "Gauge": ("_lock", frozenset({"value"})),
    "Histogram": ("_lock", frozenset({"buckets", "count", "sum"})),
    "Tracer": ("_lock", frozenset({"_records"})),
    "ParallelRunner": ("_retry_lock", frozenset({
        "shards_retried", "shards_resumed",
    })),
}

#: Instrument attributes that may be written on *other* objects (the
#: registry merge path folds worker snapshots into instruments it does
#: not own) — such writes must hold that instrument's ``_lock``.
METRIC_INSTRUMENT_ATTRS: FrozenSet[str] = frozenset({
    "value", "buckets", "count", "sum",
})

#: Method names that mutate their receiver in place; calling one on a
#: guarded attribute counts as a write.
MUTATOR_METHODS: FrozenSet[str] = frozenset({
    "append", "extend", "insert", "remove", "pop", "popitem", "clear",
    "add", "discard", "update", "setdefault", "sort", "reverse",
    "write", "writelines",
})

#: Retry/salvage modules where a broad exception handler that silently
#: swallows would erase shard failures (EXC family).
SWALLOW_MODULES: Tuple[str, ...] = (
    "repro/runtime/executor.py",
    "repro/runtime/runner.py",
)

#: Durable-layer modules where an ``except OSError`` that drops the
#: error on the floor hides disk trouble (a full disk that silently
#: stops caching, a write that never landed).  Handlers there must
#: count a metric (``note_storage_error``), warn, re-raise, or at
#: least bind a fallback value — never just ``pass`` (EXC004).  Narrow
#: expected-condition catches (``FileNotFoundError``/``FileExistsError``)
#: are exempt.
STORAGE_MODULES: Tuple[str, ...] = (
    "repro/runtime/cache.py",
    "repro/runtime/journal.py",
    "repro/runtime/integrity.py",
    "repro/runtime/diskchaos.py",
)
