"""PKL: everything that crosses a worker boundary must pickle.

Specs, :class:`~repro.runtime.faults.ShardFailure`,
:class:`~repro.obs.ShardEnvelope` and the chaos wrappers ship through
``multiprocessing``; an unpicklable attribute fails only at dispatch
time, on the processes backend, under load.  In the modules listed in
:data:`repro.lint.doctrine.BOUNDARY_MODULES` these rules ban storing
the classic poison values on instances or classes — lambdas, lock
primitives, open file handles, generators — and keep ``__reduce__``
overrides in the statically checkable ``(callable, args)`` shape that
is what makes round-tripping verifiable.
"""

from __future__ import annotations

import ast
from typing import Iterable, Iterator, List, Optional, Tuple

from .core import Finding, LintContext, Rule, dotted_name, register
from .doctrine import BOUNDARY_MODULES

__all__ = [
    "LambdaAttribute",
    "UnpicklableAttribute",
    "ReduceShape",
]

#: Constructors whose results never pickle (lock primitives and open
#: file handles), as dotted origins.
_UNPICKLABLE_CALLS = {
    "threading.Lock",
    "threading.RLock",
    "threading.Condition",
    "threading.Semaphore",
    "threading.BoundedSemaphore",
    "threading.Event",
    "threading.local",
    "multiprocessing.Lock",
    "multiprocessing.RLock",
    "open",
    "io.open",
}

#: Methods whose attribute assignments define instance state.
_INIT_METHODS = ("__init__", "__post_init__", "__new__")


def _attribute_stores(cls: ast.ClassDef) -> Iterator[Tuple[str, ast.expr]]:
    """Yield ``(attr_name, value_expr)`` for class-level fields and for
    ``self.attr = value`` / ``object.__setattr__(self, "attr", value)``
    assignments inside the init-family methods."""
    for stmt in cls.body:
        if isinstance(stmt, ast.Assign):
            for target in stmt.targets:
                if isinstance(target, ast.Name):
                    yield target.id, stmt.value
        elif isinstance(stmt, ast.AnnAssign):
            if isinstance(stmt.target, ast.Name) and stmt.value is not None:
                yield stmt.target.id, stmt.value
        elif (
            isinstance(stmt, ast.FunctionDef) and stmt.name in _INIT_METHODS
        ):
            for node in ast.walk(stmt):
                if isinstance(node, ast.Assign):
                    for target in node.targets:
                        if (
                            isinstance(target, ast.Attribute)
                            and isinstance(target.value, ast.Name)
                            and target.value.id in ("self", "cls")
                        ):
                            yield target.attr, node.value
                elif isinstance(node, ast.Call):
                    func = node.func
                    if (
                        isinstance(func, ast.Attribute)
                        and func.attr == "__setattr__"
                        and len(node.args) >= 3
                        and isinstance(node.args[1], ast.Constant)
                        and isinstance(node.args[1].value, str)
                    ):
                        yield node.args[1].value, node.args[2]


class _BoundaryRule(Rule):
    scope = BOUNDARY_MODULES


@register
class LambdaAttribute(_BoundaryRule):
    id = "PKL001"
    summary = "boundary-crossing classes may not store lambdas"

    def check(self, ctx: LintContext) -> Iterable[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.ClassDef):
                continue
            for attr, value in _attribute_stores(node):
                for inner in ast.walk(value):
                    if isinstance(inner, ast.Lambda):
                        yield ctx.finding(
                            self, inner,
                            f"{node.name}.{attr} holds a lambda: lambdas "
                            "do not pickle across the worker boundary; "
                            "use a module-level function or a picklable "
                            "callable class",
                        )


@register
class UnpicklableAttribute(_BoundaryRule):
    id = "PKL002"
    summary = ("boundary-crossing classes may not store locks, open "
               "files or generators")

    def check(self, ctx: LintContext) -> Iterable[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.ClassDef):
                continue
            for attr, value in _attribute_stores(node):
                # A genexp nested under tuple()/list()/... is
                # materialised before storage; only a directly stored
                # generator survives to dispatch time.
                if isinstance(value, ast.GeneratorExp):
                    yield ctx.finding(
                        self, value,
                        f"{node.name}.{attr} holds a generator: "
                        "generators do not pickle; materialise a "
                        "tuple instead",
                    )
                for inner in ast.walk(value):
                    if isinstance(inner, ast.Call):
                        origin = dotted_name(inner.func)
                        if origin in _UNPICKLABLE_CALLS:
                            yield ctx.finding(
                                self, inner,
                                f"{node.name}.{attr} holds "
                                f"'{origin}(...)': lock primitives and "
                                "open handles do not pickle across the "
                                "worker boundary",
                            )


def _return_shape_ok(value: Optional[ast.expr]) -> bool:
    """Whether a ``__reduce__`` return value is a literal
    ``(callable, (args...))`` tuple (optionally with a state third
    element)."""
    if not isinstance(value, ast.Tuple) or len(value.elts) < 2:
        return False
    rebuild, args = value.elts[0], value.elts[1]
    if not isinstance(rebuild, (ast.Name, ast.Attribute)):
        return False
    return isinstance(args, ast.Tuple)


@register
class ReduceShape(_BoundaryRule):
    id = "PKL003"
    summary = ("__reduce__ overrides must return a literal "
               "(callable, args-tuple) so the round-trip is checkable")

    def check(self, ctx: LintContext) -> Iterable[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.ClassDef):
                continue
            for stmt in node.body:
                if not (
                    isinstance(stmt, ast.FunctionDef)
                    and stmt.name in ("__reduce__", "__reduce_ex__")
                ):
                    continue
                returns: List[ast.Return] = [
                    inner for inner in ast.walk(stmt)
                    if isinstance(inner, ast.Return)
                ]
                if not returns:
                    yield ctx.finding(
                        self, stmt,
                        f"{node.name}.{stmt.name} never returns a "
                        "reconstruction tuple",
                    )
                for ret in returns:
                    if not _return_shape_ok(ret.value):
                        yield ctx.finding(
                            self, ret,
                            f"{node.name}.{stmt.name} must return a "
                            "literal (callable, (args, ...)) tuple; "
                            "anything else defeats the pickling "
                            "round-trip tests",
                        )
