"""repro-lint: AST-based static enforcement of the runtime doctrine.

ROADMAP's "Doctrine to preserve" is enforced here ahead of execution,
the way tabled-evaluation systems check program properties before a
query runs rather than discovering violations mid-run.  Five rule
families, each grounded in an invariant the test suite pins
dynamically:

========  ====================================================
Family    Invariant
========  ====================================================
``DET``   determinism-critical modules never consume ambient
          entropy (no ``random``, unseeded ``default_rng``,
          wall-clock reads, or entropy UUIDs)
``FPR``   execution knobs never enter cache fingerprints, and
          ``_fingerprint_exclude_`` stays literal and live
``PKL``   boundary-crossing classes stay picklable (no lambdas,
          locks, open files, generators; checkable ``__reduce__``)
``LCK``   designated shared attributes are written only under
          their owning lock
``EXC``   no bare or silently swallowed exceptions in retry and
          salvage paths
``LNT``   the linter's own hygiene: waivers need reasons and
          valid rule ids; files must parse
========  ====================================================

Run it as ``repro-lint src/`` (or ``python -m repro.lint``); waive a
false positive inline::

    value = time.time()  # repro-lint: disable=DET003  # trace metadata

See :mod:`repro.lint.doctrine` for the machine-readable doctrine and
:mod:`repro.lint.core` for the framework.
"""

from __future__ import annotations

from .core import (
    Finding,
    LintContext,
    LintReport,
    RULES,
    Rule,
    check_path,
    check_source,
    check_tree,
    register,
    select_rules,
)

# Importing the rule modules populates the registry.
from . import rules_det  # noqa: F401  (registration side effect)
from . import rules_exc  # noqa: F401
from . import rules_fpr  # noqa: F401
from . import rules_lck  # noqa: F401
from . import rules_pkl  # noqa: F401

__all__ = [
    "Finding",
    "LintContext",
    "LintReport",
    "RULES",
    "Rule",
    "check_path",
    "check_source",
    "check_tree",
    "register",
    "select_rules",
]
