"""EXC: no silently swallowed failures in retry/salvage paths.

The executors capture shard exceptions *as data* (``ShardFailure``)
and the runner salvages completed specs around failed ones — both
depend on every exception being either re-raised, recorded, or
deliberately classified.  A bare ``except:`` (which also catches
``KeyboardInterrupt``/``SystemExit``) or a broad handler whose body is
just ``pass`` erases failures the retry machinery needs to see.
"""

from __future__ import annotations

import ast
from typing import Iterable, List

from .core import Finding, LintContext, Rule, register
from .doctrine import STORAGE_MODULES, SWALLOW_MODULES

__all__ = [
    "BareExcept",
    "SwallowedBroadExcept",
    "BaseExceptionNoReraise",
    "SilentStorageSwallow",
]

_BROAD = ("Exception", "BaseException")

#: The broad OS-error spellings EXC004 cares about.  Narrow subclasses
#: (FileNotFoundError, FileExistsError, ...) name one *expected*
#: condition and may be dropped; catching the whole OSError family and
#: discarding it hides disk trouble.
_OS_BROAD = ("OSError", "IOError", "EnvironmentError")


def _caught_names(handler: ast.ExceptHandler) -> List[str]:
    kinds = []
    node = handler.type
    nodes = node.elts if isinstance(node, ast.Tuple) else [node]
    for entry in nodes:
        if isinstance(entry, ast.Name):
            kinds.append(entry.id)
        elif isinstance(entry, ast.Attribute):
            kinds.append(entry.attr)
    return kinds


def _body_is_trivial(handler: ast.ExceptHandler) -> bool:
    """Whether the handler only passes/continues (discarding the error)."""
    for stmt in handler.body:
        if isinstance(stmt, (ast.Pass, ast.Continue)):
            continue
        if (
            isinstance(stmt, ast.Expr)
            and isinstance(stmt.value, ast.Constant)
        ):
            continue  # docstring or Ellipsis
        return False
    return True


def _has_bare_raise(handler: ast.ExceptHandler) -> bool:
    return any(
        isinstance(node, ast.Raise)
        for node in ast.walk(handler)
    )


@register
class BareExcept(Rule):
    id = "EXC001"
    summary = "bare 'except:' catches KeyboardInterrupt and SystemExit"
    scope = ("repro/*",)

    def check(self, ctx: LintContext) -> Iterable[Finding]:
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.ExceptHandler) and node.type is None:
                yield ctx.finding(
                    self, node,
                    "bare 'except:': name the exceptions this path can "
                    "absorb (it currently also eats KeyboardInterrupt "
                    "and SystemExit)",
                )


@register
class SwallowedBroadExcept(Rule):
    id = "EXC002"
    summary = ("broad except with a pass-only body silently swallows "
               "shard failures in retry/salvage paths")
    scope = SWALLOW_MODULES

    def check(self, ctx: LintContext) -> Iterable[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.ExceptHandler) or node.type is None:
                continue
            if not any(name in _BROAD for name in _caught_names(node)):
                continue
            if _body_is_trivial(node):
                yield ctx.finding(
                    self, node,
                    "broad exception handler discards the error: the "
                    "retry machinery classifies failures by type, so "
                    "record it as a ShardFailure or re-raise",
                )


def _body_discards_error(handler: ast.ExceptHandler) -> bool:
    """Whether the handler drops the error without any trace: only
    pass/continue/constant expressions and value-free or constant
    ``return`` statements.  A handler that binds a fallback, counts a
    metric, warns, or re-raises is substantive."""
    for stmt in handler.body:
        if isinstance(stmt, (ast.Pass, ast.Continue)):
            continue
        if (
            isinstance(stmt, ast.Expr)
            and isinstance(stmt.value, ast.Constant)
        ):
            continue  # docstring or Ellipsis
        if isinstance(stmt, ast.Return) and (
            stmt.value is None or isinstance(stmt.value, ast.Constant)
        ):
            continue
        return False
    return True


@register
class SilentStorageSwallow(Rule):
    id = "EXC004"
    summary = ("'except OSError' in the durable layer must count, warn, "
               "or re-raise — never silently drop a disk error")
    scope = STORAGE_MODULES

    def check(self, ctx: LintContext) -> Iterable[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.ExceptHandler) or node.type is None:
                continue
            caught = _caught_names(node)
            if not any(name in _OS_BROAD or name in _BROAD for name in caught):
                continue
            if _body_discards_error(node):
                yield ctx.finding(
                    self, node,
                    "storage-path exception handler discards the error: "
                    "a full disk or failed write would vanish here — "
                    "count it (note_storage_error), warn, re-raise, or "
                    "narrow the catch to the expected condition",
                )


@register
class BaseExceptionNoReraise(Rule):
    id = "EXC003"
    summary = "'except BaseException' must re-raise"
    scope = ("repro/*",)

    def check(self, ctx: LintContext) -> Iterable[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.ExceptHandler) or node.type is None:
                continue
            if "BaseException" not in _caught_names(node):
                continue
            if not _has_bare_raise(node):
                yield ctx.finding(
                    self, node,
                    "'except BaseException' without a raise: interpreter "
                    "shutdown signals must propagate",
                )
