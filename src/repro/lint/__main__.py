"""``python -m repro.lint`` — same as the ``repro-lint`` entry point."""

import sys

from .cli import main

sys.exit(main())
