"""LCK: shared mutable state must be written under its owning lock.

The threads backend hits :class:`~repro.runtime.cache.ResultCache`
counters, the metrics registry and the run journal from every pool
thread at once; an unlocked read-modify-write there loses updates
silently.  Two rules enforce the discipline statically:

* **LCK001** — inside a lock-owning class, writes to guarded
  attributes of ``self`` must sit lexically inside ``with
  self.<lock>:``.  Guarded attributes come from the explicit doctrine
  table (:data:`repro.lint.doctrine.LOCK_GUARDED`) *plus* inference:
  any attribute the class writes under its lock somewhere is guarded
  everywhere (so new shared state is covered without a config edit).
  The init-family methods are exempt — construction happens before
  the object is shared.
* **LCK002** — in the metrics module, writes to instrument attributes
  (``value``/``buckets``/``count``/``sum``) on objects *other than
  self* (the snapshot-merge path) must hold that instrument's
  ``_lock``.
"""

from __future__ import annotations

import ast
from typing import Iterable, Iterator, List, Optional, Set, Tuple

from .core import Finding, LintContext, Rule, dotted_name, register
from .doctrine import (
    LOCK_GUARDED,
    LOCK_MODULES,
    METRIC_INSTRUMENT_ATTRS,
    MUTATOR_METHODS,
)

__all__ = ["UnlockedSharedWrite", "UnlockedForeignWrite"]

_INIT_METHODS = ("__init__", "__new__", "__post_init__")

_LOCK_CONSTRUCTORS = {"threading.Lock", "threading.RLock"}

_SCOPE_STMTS = (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)


def _detected_lock_attr(cls: ast.ClassDef) -> Optional[str]:
    """The attribute name ``__init__`` binds a threading lock to, if any."""
    for stmt in cls.body:
        if not (isinstance(stmt, ast.FunctionDef) and stmt.name in _INIT_METHODS):
            continue
        for node in ast.walk(stmt):
            if not isinstance(node, ast.Assign):
                continue
            if not (
                isinstance(node.value, ast.Call)
                and dotted_name(node.value.func) in _LOCK_CONSTRUCTORS
            ):
                continue
            for target in node.targets:
                if (
                    isinstance(target, ast.Attribute)
                    and isinstance(target.value, ast.Name)
                    and target.value.id == "self"
                ):
                    return target.attr
    return None


def _with_holds_lock(node: ast.With, lock_attr: str) -> bool:
    """Whether a ``with`` statement acquires ``<anything>.<lock_attr>``."""
    for item in node.items:
        expr = item.context_expr
        if isinstance(expr, ast.Attribute) and expr.attr == lock_attr:
            return True
    return False


def _child_bodies(stmt: ast.stmt) -> Iterator[List[ast.stmt]]:
    """The nested statement lists of a compound statement."""
    for field_name in ("body", "orelse", "finalbody"):
        body = getattr(stmt, field_name, None)
        if isinstance(body, list) and body and isinstance(body[0], ast.stmt):
            yield body
    for handler in getattr(stmt, "handlers", []) or []:
        yield handler.body
    for case in getattr(stmt, "cases", []) or []:
        yield case.body


def _own_nodes(stmt: ast.stmt) -> Iterator[ast.AST]:
    """Walk the parts of ``stmt`` that execute *at this nesting level*:
    for a simple statement, everything; for a compound statement, only
    its header expressions (test, iterable, context managers) — the
    nested bodies are traversed separately so lock state stays right
    and nothing is visited twice."""
    if not any(True for _ in _child_bodies(stmt)):
        yield from ast.walk(stmt)
        return
    for field_name, value in ast.iter_fields(stmt):
        if field_name in ("body", "orelse", "finalbody", "handlers", "cases"):
            continue
        values = value if isinstance(value, list) else [value]
        for entry in values:
            if isinstance(entry, ast.AST):
                yield from ast.walk(entry)


def _lexical_walk(
    body: Iterable[ast.stmt], lock_attr: str, in_lock: bool
) -> Iterator[Tuple[ast.AST, bool]]:
    """Yield ``(node, lock_held)`` over ``body``, tracking ``with
    <lock_attr>`` nesting lexically.  Nested function/class definitions
    are skipped (they execute later, under their own call discipline)."""
    for stmt in body:
        if isinstance(stmt, _SCOPE_STMTS):
            continue
        for node in _own_nodes(stmt):
            yield node, in_lock
        held = in_lock or (
            isinstance(stmt, ast.With) and _with_holds_lock(stmt, lock_attr)
        )
        for child in _child_bodies(stmt):
            yield from _lexical_walk(child, lock_attr, held)


def _self_writes(node: ast.AST) -> Iterator[Tuple[str, ast.AST]]:
    """Yield ``(attr, site)`` for every write ``node`` performs on an
    attribute of ``self``: plain/augmented/annotated assignment,
    subscript stores, in-place mutator calls, and ``setattr(self, ...)``
    (attr ``*`` — name unknown statically)."""

    def attr_of(target: ast.expr) -> Optional[str]:
        base = target
        if isinstance(base, ast.Subscript):
            base = base.value
        if (
            isinstance(base, ast.Attribute)
            and isinstance(base.value, ast.Name)
            and base.value.id == "self"
        ):
            return base.attr
        return None

    if isinstance(node, ast.Assign):
        flattened: List[ast.expr] = []
        for target in node.targets:
            flattened.extend(
                target.elts if isinstance(target, (ast.Tuple, ast.List))
                else [target]
            )
        for target in flattened:
            attr = attr_of(target)
            if attr is not None:
                yield attr, node
    elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
        attr = attr_of(node.target)
        if attr is not None:
            yield attr, node
    elif isinstance(node, ast.Call):
        func = node.func
        if (
            isinstance(func, ast.Attribute)
            and func.attr in MUTATOR_METHODS
            and isinstance(func.value, ast.Attribute)
            and isinstance(func.value.value, ast.Name)
            and func.value.value.id == "self"
        ):
            yield func.value.attr, node
        elif (
            isinstance(func, ast.Name)
            and func.id == "setattr"
            and node.args
            and isinstance(node.args[0], ast.Name)
            and node.args[0].id == "self"
        ):
            yield "*", node


class _LockRule(Rule):
    scope = LOCK_MODULES


@register
class UnlockedSharedWrite(_LockRule):
    id = "LCK001"
    summary = ("guarded shared attributes must be written under the "
               "owning class lock")

    def check(self, ctx: LintContext) -> Iterable[Finding]:
        for cls in ast.walk(ctx.tree):
            if not isinstance(cls, ast.ClassDef):
                continue
            configured = LOCK_GUARDED.get(cls.name)
            lock_attr = (
                configured[0] if configured else _detected_lock_attr(cls)
            )
            if lock_attr is None:
                continue
            guarded: Set[str] = set(configured[1]) if configured else set()
            methods = [
                stmt for stmt in cls.body
                if isinstance(stmt, ast.FunctionDef)
            ]
            # Inference: anything written under the lock anywhere in
            # the class is shared state, guarded everywhere.
            for method in methods:
                for node, held in _lexical_walk(method.body, lock_attr, False):
                    if not held:
                        continue
                    for attr, _site in _self_writes(node):
                        if attr != "*":
                            guarded.add(attr)
            for method in methods:
                if method.name in _INIT_METHODS:
                    continue
                for node, held in _lexical_walk(method.body, lock_attr, False):
                    if held:
                        continue
                    for attr, site in _self_writes(node):
                        if attr == "*":
                            yield ctx.finding(
                                self, site,
                                f"{cls.name}.{method.name} writes "
                                f"attributes via setattr() outside "
                                f"'with self.{lock_attr}'",
                            )
                        elif attr in guarded:
                            yield ctx.finding(
                                self, site,
                                f"{cls.name}.{method.name} writes shared "
                                f"attribute '{attr}' outside 'with "
                                f"self.{lock_attr}': concurrent shard "
                                "completions would lose updates",
                            )


@register
class UnlockedForeignWrite(Rule):
    id = "LCK002"
    summary = ("instrument state written on another object must hold "
               "that object's _lock")
    scope = ("repro/obs/metrics.py",)

    def check(self, ctx: LintContext) -> Iterable[Finding]:
        yield from self._scan(ctx, ctx.tree.body, frozenset())

    def _scan(
        self, ctx: LintContext, body: Iterable[ast.stmt], held: frozenset
    ) -> Iterator[Finding]:
        for stmt in body:
            if isinstance(stmt, _SCOPE_STMTS):
                yield from self._scan(ctx, stmt.body, frozenset())
                continue
            for node in _own_nodes(stmt):
                yield from self._flag_writes(ctx, node, held)
            now_held = held
            if isinstance(stmt, ast.With):
                for item in stmt.items:
                    expr = item.context_expr
                    if (
                        isinstance(expr, ast.Attribute)
                        and expr.attr == "_lock"
                        and isinstance(expr.value, ast.Name)
                    ):
                        now_held = now_held | {expr.value.id}
            for child in _child_bodies(stmt):
                yield from self._scan(ctx, child, now_held)

    def _flag_writes(
        self, ctx: LintContext, node: ast.AST, held: frozenset
    ) -> Iterator[Finding]:
        targets: List[ast.expr] = []
        if isinstance(node, ast.Assign):
            targets = list(node.targets)
        elif isinstance(node, ast.AugAssign):
            targets = [node.target]
        for target in targets:
            base = target
            if isinstance(base, ast.Subscript):
                base = base.value
            if not (
                isinstance(base, ast.Attribute)
                and base.attr in METRIC_INSTRUMENT_ATTRS
                and isinstance(base.value, ast.Name)
                and base.value.id != "self"
            ):
                continue
            receiver = base.value.id
            if receiver not in held:
                yield ctx.finding(
                    self, node,
                    f"write to {receiver}.{base.attr} without holding "
                    f"{receiver}._lock: merge folds from other threads "
                    "would race",
                )
