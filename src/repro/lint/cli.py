"""The ``repro-lint`` console entry point.

Usage::

    repro-lint [PATH ...] [--select DET,FPR001] [--ignore LCK]
               [--json] [--list-rules]

Exit status: 0 clean, 1 findings, 2 usage error.  ``--json`` emits a
machine-readable report for CI; the default text output is one
``path:line:col: RULE message`` line per finding, sorted.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys
from typing import List, Optional, Sequence

from . import RULES, check_tree, select_rules

__all__ = ["main"]


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-lint",
        description=(
            "AST-based static analysis enforcing the repro runtime "
            "doctrine: determinism, fingerprint purity, pickle and "
            "lock safety, exception hygiene."
        ),
    )
    parser.add_argument(
        "paths", nargs="*",
        help="files or directories to lint (default: ./src, else .)",
    )
    parser.add_argument(
        "--select", default=None, metavar="RULES",
        help="comma-separated rule ids or families to run (e.g. DET,FPR001)",
    )
    parser.add_argument(
        "--ignore", default=None, metavar="RULES",
        help="comma-separated rule ids or families to skip",
    )
    parser.add_argument(
        "--json", action="store_true", dest="as_json",
        help="emit a JSON report instead of text",
    )
    parser.add_argument(
        "--list-rules", action="store_true",
        help="print every registered rule and exit",
    )
    return parser


def _default_paths() -> List[str]:
    return ["src"] if pathlib.Path("src").is_dir() else ["."]


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = _build_parser()
    args = parser.parse_args(argv)

    if args.list_rules:
        for rule_id in sorted(RULES):
            print(f"{rule_id}  {RULES[rule_id].summary}")
        return 0

    try:
        rules = select_rules(
            args.select.split(",") if args.select else None,
            args.ignore.split(",") if args.ignore else None,
        )
    except ValueError as error:
        parser.error(str(error))  # exits 2

    paths = args.paths or _default_paths()
    for path in paths:
        if not pathlib.Path(path).exists():
            parser.error(f"no such path: {path}")

    report = check_tree(paths, rules=rules)

    if args.as_json:
        print(json.dumps({
            "version": 1,
            "files": report.files,
            "findings": [finding.as_dict() for finding in report.findings],
            "waived": [finding.as_dict() for finding in report.waived],
        }, indent=2, sort_keys=True))
    else:
        for finding in report.findings:
            print(finding.render())
        summary = (
            f"repro-lint: {len(report.findings)} finding"
            f"{'' if len(report.findings) == 1 else 's'} "
            f"({len(report.waived)} waived) in {report.files} files"
        )
        print(summary, file=sys.stderr)

    return 1 if report.findings else 0


if __name__ == "__main__":  # pragma: no cover - exercised via __main__.py
    sys.exit(main())
