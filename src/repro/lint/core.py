"""The repro-lint framework: rules, findings, waivers, and the engine.

The linter is a zero-dependency, AST-based static-analysis pass.  Each
rule is a small class registered under a stable id (``DET001``,
``LCK002``, ...); the engine parses each file once, hands every
applicable rule a :class:`LintContext`, and folds the produced
:class:`Finding`\\ s through the file's inline waivers.

Waivers
-------
A finding is waived by a comment on its own line, or on the line
immediately above::

    ts = time.time()  # repro-lint: disable=DET003  # trace metadata only

The trailing ``# reason`` is mandatory — a waiver without a
justification is itself reported (``LNT001``), and a waiver naming an
unknown rule id is reported too (``LNT003``), so waivers cannot rot
silently.  Files that fail to parse produce ``LNT002``.

Scoping
-------
Rules declare :mod:`fnmatch` scope patterns over the ``repro/``-
relative path of each file (see :mod:`repro.lint.doctrine`); a rule
only runs where its invariant applies.  Tests (and ``--select``) can
pin a fake relative path to exercise a rule against fixture snippets.
"""

from __future__ import annotations

import ast
import fnmatch
import pathlib
import re
from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple, Type, Union

__all__ = [
    "Finding",
    "LintContext",
    "LintReport",
    "RULES",
    "Rule",
    "check_source",
    "check_path",
    "check_tree",
    "dotted_name",
    "iter_python_files",
    "register",
    "select_rules",
]

PathLike = Union[str, pathlib.Path]


@dataclass(frozen=True, order=True)
class Finding:
    """One rule violation at one source location."""

    path: str
    line: int
    col: int
    rule: str
    message: str

    def render(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.rule} {self.message}"

    def as_dict(self) -> dict:
        return {
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "rule": self.rule,
            "message": self.message,
        }


class LintContext:
    """Everything a rule needs about one parsed file."""

    def __init__(self, path: str, relpath: str, tree: ast.Module,
                 lines: Sequence[str]) -> None:
        self.path = path
        self.relpath = relpath
        self.tree = tree
        self.lines = list(lines)

    def finding(self, rule: "Rule", node: ast.AST, message: str) -> Finding:
        return Finding(
            path=self.path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0) + 1,
            rule=rule.id,
            message=message,
        )


class Rule:
    """Base class for one lint rule.

    Subclasses set ``id`` (family prefix + 3 digits), ``summary`` and
    ``scope`` (fnmatch patterns over the repro-relative path) and
    implement :meth:`check`, yielding findings.  Most rules drive an
    :class:`ast.NodeVisitor` over ``ctx.tree``.
    """

    id: str = ""
    summary: str = ""
    scope: Tuple[str, ...] = ("repro/*",)

    @property
    def family(self) -> str:
        return re.sub(r"\d+$", "", self.id)

    def applies_to(self, relpath: str) -> bool:
        return any(fnmatch.fnmatch(relpath, pattern) for pattern in self.scope)

    def check(self, ctx: LintContext) -> Iterable[Finding]:
        raise NotImplementedError


#: The global registry: rule id -> rule instance.
RULES: Dict[str, Rule] = {}


def register(cls: Type[Rule]) -> Type[Rule]:
    """Class decorator adding one instance of ``cls`` to :data:`RULES`."""
    rule = cls()
    if not re.fullmatch(r"[A-Z]{3}\d{3}", rule.id):
        raise ValueError(f"rule id {rule.id!r} must be three letters + three digits")
    if rule.id in RULES:
        raise ValueError(f"duplicate rule id {rule.id!r}")
    RULES[rule.id] = rule
    return cls


def select_rules(
    select: Optional[Sequence[str]] = None,
    ignore: Optional[Sequence[str]] = None,
) -> List[Rule]:
    """Resolve ``--select`` / ``--ignore`` to a concrete rule list.

    Entries are exact ids (``DET003``) or family prefixes (``DET``);
    unknown entries raise so typos fail loudly rather than silently
    disabling nothing.
    """

    def expand(entries: Sequence[str]) -> List[str]:
        ids: List[str] = []
        for entry in entries:
            entry = entry.strip()
            if not entry:
                continue
            matched = [
                rule_id for rule_id in RULES
                if rule_id == entry or RULES[rule_id].family == entry
            ]
            if not matched:
                raise ValueError(f"unknown rule or family {entry!r}")
            ids.extend(matched)
        return ids

    chosen = expand(select) if select else list(RULES)
    dropped = set(expand(ignore)) if ignore else set()
    return [RULES[rule_id] for rule_id in sorted(chosen) if rule_id not in dropped]


# -- waivers ------------------------------------------------------------------

#: Waiver syntax: a comment of `repro-lint: disable=<ids>` followed by
#: a second comment holding the reason (spelled out in the module
#: docstring; not repeated literally here so the linter's own waiver
#: scan does not match this line).
_WAIVER_RE = re.compile(
    r"#\s*repro-lint:\s*disable=([A-Za-z0-9_, ]+?)\s*(?:#\s*(\S.*))?$"
)


@dataclass
class _Waiver:
    line: int
    rules: Tuple[str, ...]
    reason: str
    used: List[str] = field(default_factory=list)

    def covers(self, finding: Finding) -> bool:
        # A waiver suppresses findings on its own line and on the line
        # below (so a comment-only waiver line can sit above a long
        # statement).
        return finding.rule in self.rules and finding.line in (
            self.line, self.line + 1
        )


def _parse_waivers(lines: Sequence[str]) -> List[_Waiver]:
    waivers = []
    for lineno, text in enumerate(lines, start=1):
        match = _WAIVER_RE.search(text)
        if match is None:
            continue
        rules = tuple(
            entry.strip() for entry in match.group(1).split(",") if entry.strip()
        )
        waivers.append(_Waiver(lineno, rules, (match.group(2) or "").strip()))
    return waivers


class _MetaRule(Rule):
    """Parent for the linter's own housekeeping findings (LNT family).

    LNT rules are synthesised by the engine rather than run over the
    AST, but registering them keeps ``--select``/``--ignore`` and
    ``--list-rules`` uniform.
    """

    scope = ("*",)

    def check(self, ctx: LintContext) -> Iterable[Finding]:
        return ()


@register
class WaiverNeedsReason(_MetaRule):
    id = "LNT001"
    summary = "a repro-lint waiver must carry a one-line justification"


@register
class UnparsableFile(_MetaRule):
    id = "LNT002"
    summary = "file could not be parsed as Python"


@register
class WaiverUnknownRule(_MetaRule):
    id = "LNT003"
    summary = "a repro-lint waiver names an unknown rule id"


# -- engine -------------------------------------------------------------------


@dataclass
class LintReport:
    """The outcome of linting one or more files."""

    findings: List[Finding] = field(default_factory=list)
    waived: List[Finding] = field(default_factory=list)
    files: int = 0

    def extend(self, other: "LintReport") -> None:
        self.findings.extend(other.findings)
        self.waived.extend(other.waived)
        self.files += other.files

    def sorted(self) -> "LintReport":
        self.findings.sort()
        self.waived.sort()
        return self


def repo_relative(path: PathLike) -> str:
    """The ``repro/``-rooted posix path of ``path`` (rule scopes match
    against this).  Paths outside a ``repro`` package fall back to
    their file name, so fixture snippets scope by whatever relpath the
    caller pins instead."""
    parts = pathlib.Path(path).as_posix().split("/")
    if "repro" in parts:
        return "/".join(parts[parts.index("repro"):])
    return parts[-1]


def check_source(
    source: str,
    path: str = "<string>",
    *,
    relpath: Optional[str] = None,
    rules: Optional[Sequence[Rule]] = None,
) -> LintReport:
    """Lint one source string; the heart of the engine.

    ``relpath`` overrides the repro-relative path used for rule
    scoping (tests pin e.g. ``repro/obs/trace.py`` to point a fixture
    at a scoped rule).
    """
    rules = list(RULES.values()) if rules is None else list(rules)
    relpath = repo_relative(path) if relpath is None else relpath
    lines = source.splitlines()
    report = LintReport(files=1)
    enabled = {rule.id for rule in rules}
    try:
        tree = ast.parse(source, filename=path)
    except (SyntaxError, ValueError) as error:
        if "LNT002" in enabled:
            line = getattr(error, "lineno", 1) or 1
            report.findings.append(Finding(
                path=path, line=line, col=1, rule="LNT002",
                message=f"could not parse file: {error.msg if isinstance(error, SyntaxError) else error}",
            ))
        return report

    ctx = LintContext(path, relpath, tree, lines)
    raw: List[Finding] = []
    for rule in rules:
        if isinstance(rule, _MetaRule) or not rule.applies_to(relpath):
            continue
        raw.extend(rule.check(ctx))

    waivers = _parse_waivers(lines)
    for finding in raw:
        waiver = next((w for w in waivers if w.covers(finding)), None)
        if waiver is None:
            report.findings.append(finding)
        else:
            waiver.used.append(finding.rule)
            report.waived.append(finding)

    for waiver in waivers:
        if not waiver.reason and "LNT001" in enabled:
            report.findings.append(Finding(
                path=path, line=waiver.line, col=1, rule="LNT001",
                message="waiver has no justification; append "
                        "'# <reason>' after the rule list",
            ))
        for rule_id in waiver.rules:
            if rule_id not in RULES and "LNT003" in enabled:
                report.findings.append(Finding(
                    path=path, line=waiver.line, col=1, rule="LNT003",
                    message=f"waiver names unknown rule {rule_id!r}",
                ))
    return report


def check_path(
    path: PathLike, *, rules: Optional[Sequence[Rule]] = None
) -> LintReport:
    """Lint one file on disk."""
    text = pathlib.Path(path).read_text(encoding="utf-8")
    return check_source(text, str(path), rules=rules)


def iter_python_files(root: PathLike) -> Iterator[pathlib.Path]:
    """Yield ``.py`` files under ``root`` (or ``root`` itself), sorted,
    skipping hidden directories and ``__pycache__``."""
    root = pathlib.Path(root)
    if root.is_file():
        if root.suffix == ".py":
            yield root
        return
    for path in sorted(root.rglob("*.py")):
        if any(
            part.startswith(".") or part == "__pycache__"
            for part in path.parts
        ):
            continue
        yield path


def check_tree(
    paths: Sequence[PathLike], *, rules: Optional[Sequence[Rule]] = None
) -> LintReport:
    """Lint every Python file under each of ``paths``."""
    report = LintReport()
    for root in paths:
        for path in iter_python_files(root):
            report.extend(check_path(path, rules=rules))
    return report.sorted()


# -- shared AST helpers -------------------------------------------------------


def dotted_name(node: ast.AST) -> Optional[str]:
    """``a.b.c`` for a Name/Attribute chain, else None."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None
