"""Polya-urn analysis of ML-PoS and exact PoW block-count laws.

Section 4.3 of the paper observes that ML-PoS mining is a classical
Polya urn: a block won by miner ``A`` adds ``w`` stakes to ``A``'s
side, exactly like drawing a ball and returning it with ``w`` extra
copies.  Consequently the reward fraction ``lambda_A`` converges almost
surely to a ``Beta(a/w, b/w)`` random variable — it *converges*, but to
a random limit, which is why ML-PoS fails robust fairness for large
``w``.

This module provides:

* :class:`PolyaUrn` — the exact urn process with arbitrary reinforcement,
  usable both as an analytic object and as a simulator.
* :func:`ml_pos_limit_distribution` — the Beta(a/w, b/w) limit law.
* :func:`ml_pos_fair_probability` — the limiting probability mass in
  the fair area, ``I_{(1+e)a}(a/w, b/w) - I_{(1-e)a}(a/w, b/w)``.
* :func:`pow_fair_probability` — the exact finite-``n`` binomial mass
  ``Delta(eps; n, a)`` from Section 4.2.
* :func:`ml_pos_block_count_pmf` — the exact Polya-Eggenberger
  distribution of the number of blocks ``A`` wins in ``n`` rounds.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional

import numpy as np
from scipy import stats
from scipy.special import betaln, gammaln

from .._validation import (
    ensure_fraction,
    ensure_non_negative_float,
    ensure_positive_float,
    ensure_positive_int,
)

__all__ = [
    "PolyaUrn",
    "ml_pos_limit_distribution",
    "ml_pos_fair_probability",
    "ml_pos_limit_std",
    "pow_fair_probability",
    "ml_pos_block_count_pmf",
]


@dataclass
class PolyaUrn:
    """A two-colour Polya urn with reinforcement ``w``.

    The urn starts with ``a`` white mass and ``b`` black mass (real
    valued, matching normalised stakes).  Each draw picks white with
    probability ``white / (white + black)`` and adds ``w`` mass of the
    drawn colour.  With ``a + b = 1`` this is exactly the two-miner
    ML-PoS stake process of Theorem 3.3.

    Parameters
    ----------
    white, black:
        Initial masses (initial stakes of miners A and B).
    reinforcement:
        Mass added per draw (the block reward ``w``).
    """

    white: float
    black: float
    reinforcement: float
    draws: int = 0
    white_draws: int = 0

    def __post_init__(self) -> None:
        self.white = ensure_positive_float("white", self.white)
        self.black = ensure_positive_float("black", self.black)
        self.reinforcement = ensure_positive_float("reinforcement", self.reinforcement)

    @property
    def total(self) -> float:
        """Total mass currently in the urn."""
        return self.white + self.black

    @property
    def white_fraction(self) -> float:
        """Current fraction of white mass (miner A's stake share)."""
        return self.white / self.total

    def draw(self, rng: np.random.Generator) -> bool:
        """Perform one reinforced draw; returns True if white was drawn."""
        is_white = rng.random() < self.white_fraction
        if is_white:
            self.white += self.reinforcement
            self.white_draws += 1
        else:
            self.black += self.reinforcement
        self.draws += 1
        return is_white

    def run(self, n: int, rng: np.random.Generator) -> int:
        """Perform ``n`` draws; returns the number of white draws."""
        n = ensure_positive_int("n", n)
        start = self.white_draws
        for _ in range(n):
            self.draw(rng)
        return self.white_draws - start

    def limit_distribution(self) -> stats.rv_continuous:
        """The almost-sure Beta limit of the white draw fraction."""
        return stats.beta(
            self.white / self.reinforcement, self.black / self.reinforcement
        )


def ml_pos_limit_distribution(share: float, reward: float):
    """Beta(a/w, (1-a)/w) limit law of the ML-PoS reward fraction.

    By the classical Polya-urn limit theorem (Mahmoud 2008, Thm 3.2,
    cited in Section 4.3), ``lambda_A -> Beta(a/w, b/w)`` almost surely.

    Parameters
    ----------
    share:
        Miner A's initial stake share ``a`` in (0, 1).
    reward:
        Block reward ``w`` normalised against the initial circulation.

    Returns
    -------
    scipy.stats frozen distribution.
    """
    share = ensure_fraction("share", share)
    reward = ensure_positive_float("reward", reward)
    return stats.beta(share / reward, (1.0 - share) / reward)


def ml_pos_limit_std(share: float, reward: float) -> float:
    """Standard deviation of the ML-PoS limiting Beta law.

    ``sqrt(a (1-a) w / (1 + w))`` — vanishes as ``w -> 0``, which is the
    analytic statement behind the "small block reward improves
    fairness" observation in Section 5.4.2.
    """
    share = ensure_fraction("share", share)
    reward = ensure_positive_float("reward", reward)
    return math.sqrt(share * (1.0 - share) * reward / (1.0 + reward))


def ml_pos_fair_probability(share: float, reward: float, epsilon: float) -> float:
    """Limiting probability that ML-PoS lands in the fair area.

    ``Pr[(1-e)a <= lambda <= (1+e)a]`` under the Beta(a/w, b/w) limit,
    evaluated via the regularised incomplete beta function (the
    expression ``I_{(1+e)a} - I_{(1-e)a}`` from Section 4.3).
    """
    share = ensure_fraction("share", share)
    epsilon = ensure_non_negative_float("epsilon", epsilon)
    distribution = ml_pos_limit_distribution(share, reward)
    upper = min(1.0, (1.0 + epsilon) * share)
    lower = max(0.0, (1.0 - epsilon) * share)
    return float(distribution.cdf(upper) - distribution.cdf(lower))


def pow_fair_probability(share: float, n: int, epsilon: float) -> float:
    """Exact finite-``n`` fair-area mass for PoW (Section 4.2).

    ``Delta(eps; n, a) = F(floor(n(1+e)a); n, a) - F(ceil(n(1-e)a) - 1; n, a)``
    where ``F`` is the Binomial(n, a) CDF.  The subtraction uses
    ``ceil(...) - 1`` so that the lower endpoint itself is *included*,
    i.e. we compute ``Pr[(1-e)a <= lambda_A <= (1+e)a]`` exactly.
    """
    share = ensure_fraction("share", share)
    n = ensure_positive_int("n", n)
    epsilon = ensure_non_negative_float("epsilon", epsilon)
    upper = math.floor(n * (1.0 + epsilon) * share)
    lower = math.ceil(n * (1.0 - epsilon) * share)
    if upper < lower:
        return 0.0
    distribution = stats.binom(n, share)
    return float(distribution.cdf(upper) - distribution.cdf(lower - 1))


def ml_pos_block_count_pmf(
    share: float, reward: float, n: int, k: Optional[np.ndarray] = None
) -> np.ndarray:
    """Exact Polya-Eggenberger PMF of A's block count after ``n`` rounds.

    The probability that miner ``A`` proposes exactly ``k`` of the
    first ``n`` ML-PoS blocks is the beta-binomial law

    ``Pr[K = k] = C(n, k) * B(a/w + k, b/w + n - k) / B(a/w, b/w)``

    with ``B`` the beta function.  Evaluated in log space for
    stability.

    Parameters
    ----------
    share, reward:
        Initial share ``a`` and block reward ``w``.
    n:
        Number of blocks.
    k:
        Block counts at which to evaluate; defaults to ``0..n``.

    Returns
    -------
    numpy.ndarray of probabilities (same shape as ``k``).
    """
    share = ensure_fraction("share", share)
    reward = ensure_positive_float("reward", reward)
    n = ensure_positive_int("n", n)
    if k is None:
        k = np.arange(n + 1)
    k = np.asarray(k, dtype=int)
    if np.any(k < 0) or np.any(k > n):
        raise ValueError("k must lie in [0, n]")
    alpha = share / reward
    beta = (1.0 - share) / reward
    log_choose = gammaln(n + 1) - gammaln(k + 1) - gammaln(n - k + 1)
    log_pmf = log_choose + betaln(alpha + k, beta + n - k) - betaln(alpha, beta)
    return np.exp(log_pmf)
