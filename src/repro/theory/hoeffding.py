"""Hoeffding's inequality and its inverses (used in Theorem 4.2).

For the PoW protocol, the per-block proposer indicators are i.i.d.
Bernoulli(``a``), so Hoeffding's inequality bounds the deviation of the
reward fraction ``lambda_A`` from ``a``:

``Pr[|lambda_A - a| >= t] <= 2 exp(-2 n t^2)``.

Setting ``t = epsilon * a`` gives the sufficient sample size of
Theorem 4.2, ``n >= ln(2 / delta) / (2 a^2 epsilon^2)``.
"""

from __future__ import annotations

import math

from .._validation import (
    ensure_non_negative_float,
    ensure_positive_float,
    ensure_positive_int,
    ensure_probability,
)

__all__ = [
    "hoeffding_tail",
    "hoeffding_two_sided",
    "required_samples",
    "achievable_epsilon",
    "achievable_delta",
]


def hoeffding_tail(n: int, t: float, *, low: float = 0.0, high: float = 1.0) -> float:
    """One-sided Hoeffding tail for the mean of ``n`` bounded variables.

    ``Pr[mean - E[mean] >= t] <= exp(-2 n t^2 / (high - low)^2)``.

    Parameters
    ----------
    n:
        Number of independent samples.
    t:
        Deviation threshold (non-negative).
    low, high:
        Almost-sure bounds on each variable.
    """
    n = ensure_positive_int("n", n)
    t = ensure_non_negative_float("t", t)
    width = ensure_positive_float("high - low", high - low)
    return min(1.0, math.exp(-2.0 * n * t * t / (width * width)))


def hoeffding_two_sided(n: int, t: float, *, low: float = 0.0, high: float = 1.0) -> float:
    """Two-sided Hoeffding bound ``Pr[|mean - E[mean]| >= t]``."""
    return min(1.0, 2.0 * hoeffding_tail(n, t, low=low, high=high))


def required_samples(epsilon: float, delta: float, share: float) -> int:
    """Sufficient PoW block count from Theorem 4.2.

    Returns the smallest integer ``n`` with
    ``n >= ln(2/delta) / (2 a^2 epsilon^2)`` so that PoW preserves
    ``(epsilon, delta)``-fairness for a miner holding hash-power share
    ``a``.

    Parameters
    ----------
    epsilon:
        Relative accuracy of Definition 4.1 (must be positive here; a
        zero epsilon requires infinitely many blocks).
    delta:
        Failure probability in (0, 1).
    share:
        The miner's resource share ``a`` in (0, 1).
    """
    epsilon = ensure_positive_float("epsilon", epsilon)
    delta = ensure_probability("delta", delta)
    if delta == 0.0:
        raise ValueError("delta must be positive for a finite sample bound")
    share = ensure_positive_float("share", share)
    if share >= 1.0:
        raise ValueError("share must be below 1")
    bound = math.log(2.0 / delta) / (2.0 * share * share * epsilon * epsilon)
    return int(math.ceil(bound))


def achievable_epsilon(n: int, delta: float, share: float) -> float:
    """Smallest ``epsilon`` that Theorem 4.2 certifies after ``n`` blocks.

    Inverts ``n >= ln(2/delta) / (2 a^2 eps^2)`` for ``epsilon``.
    """
    n = ensure_positive_int("n", n)
    delta = ensure_probability("delta", delta)
    if delta == 0.0:
        raise ValueError("delta must be positive")
    share = ensure_positive_float("share", share)
    return math.sqrt(math.log(2.0 / delta) / (2.0 * n * share * share))


def achievable_delta(n: int, epsilon: float, share: float) -> float:
    """Smallest ``delta`` that Theorem 4.2 certifies after ``n`` blocks.

    Directly evaluates the two-sided Hoeffding bound at
    ``t = epsilon * a``.
    """
    n = ensure_positive_int("n", n)
    epsilon = ensure_non_negative_float("epsilon", epsilon)
    share = ensure_positive_float("share", share)
    return min(1.0, 2.0 * math.exp(-2.0 * n * (epsilon * share) ** 2))
