"""Sufficient conditions for (epsilon, delta)-fairness (Theorems 4.2/4.3/4.10).

Each theorem in Section 4 of the paper gives a *sufficient* (not
necessary) condition under which a protocol preserves
``(epsilon, delta)``-fairness for a miner with resource share ``a``:

* **PoW** (Thm 4.2):      ``n >= ln(2/delta) / (2 a^2 eps^2)``
* **ML-PoS** (Thm 4.3):   ``1/n + w <= 2 a^2 eps^2 / ln(2/delta)``
* **C-PoS** (Thm 4.10):   ``w^2 (1/n + w + v) / ((w + v)^2 P)
                              <= 2 a^2 eps^2 / ln(2/delta)``

The C-PoS condition degenerates to the ML-PoS condition at ``v = 0,
P = 1``, and the ML-PoS condition degenerates to the PoW condition as
``w -> 0`` — both degenerations are verified in the test suite.

This module exposes each condition as a small calculator object with a
uniform interface (``is_sufficient``, ``required_blocks``, budgets for
the free parameters), plus module-level convenience functions.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from .._validation import (
    ensure_fraction,
    ensure_non_negative_float,
    ensure_positive_float,
    ensure_positive_int,
    ensure_epsilon_delta,
)

__all__ = [
    "fairness_budget",
    "PoWFairnessBound",
    "MLPoSFairnessBound",
    "CPoSFairnessBound",
    "pow_required_blocks",
    "ml_pos_is_sufficient",
    "ml_pos_max_reward",
    "c_pos_is_sufficient",
    "c_pos_required_shards",
]

_INFINITE = float("inf")


def fairness_budget(epsilon: float, delta: float, share: float) -> float:
    """The right-hand side ``2 a^2 eps^2 / ln(2/delta)`` shared by all bounds.

    Larger budgets are easier to satisfy: they grow with the miner's
    share ``a``, with the tolerance ``epsilon``, and with the failure
    probability ``delta``.
    """
    epsilon, delta = ensure_epsilon_delta(epsilon, delta)
    if epsilon == 0.0:
        return 0.0
    if delta == 0.0:
        return 0.0
    if delta >= 1.0:
        return _INFINITE
    share = ensure_fraction("share", share)
    return 2.0 * share * share * epsilon * epsilon / math.log(2.0 / delta)


@dataclass(frozen=True)
class PoWFairnessBound:
    """Theorem 4.2 calculator for PoW.

    Attributes
    ----------
    epsilon, delta:
        Target fairness level of Definition 4.1.
    share:
        The miner's hash-power share ``a``.
    """

    epsilon: float
    delta: float
    share: float

    def __post_init__(self) -> None:
        eps, dlt = ensure_epsilon_delta(self.epsilon, self.delta)
        object.__setattr__(self, "epsilon", eps)
        object.__setattr__(self, "delta", dlt)
        object.__setattr__(self, "share", ensure_fraction("share", self.share))

    def required_blocks(self) -> float:
        """Smallest sufficient block count (``inf`` if unattainable)."""
        budget = fairness_budget(self.epsilon, self.delta, self.share)
        if budget == 0.0:
            return _INFINITE
        return math.ceil(1.0 / budget)

    def is_sufficient(self, n: int) -> bool:
        """Whether ``n`` blocks satisfy the Theorem 4.2 condition."""
        n = ensure_positive_int("n", n)
        return n >= self.required_blocks()


@dataclass(frozen=True)
class MLPoSFairnessBound:
    """Theorem 4.3 calculator for ML-PoS.

    The condition couples the horizon ``n`` and the per-block reward
    ``w`` (normalised against the initial stake circulation):
    ``1/n + w <= budget``.  Notably, no horizon fixes an oversized
    reward — if ``w > budget`` the condition fails for every ``n``,
    matching the empirical plateaus in Figure 3(b)/5(a).
    """

    epsilon: float
    delta: float
    share: float

    def __post_init__(self) -> None:
        eps, dlt = ensure_epsilon_delta(self.epsilon, self.delta)
        object.__setattr__(self, "epsilon", eps)
        object.__setattr__(self, "delta", dlt)
        object.__setattr__(self, "share", ensure_fraction("share", self.share))

    @property
    def budget(self) -> float:
        return fairness_budget(self.epsilon, self.delta, self.share)

    def is_sufficient(self, n: int, reward: float) -> bool:
        """Whether ``(n, w)`` satisfy ``1/n + w <= budget``."""
        n = ensure_positive_int("n", n)
        reward = ensure_positive_float("reward", reward)
        return 1.0 / n + reward <= self.budget

    def required_blocks(self, reward: float) -> float:
        """Smallest sufficient ``n`` for block reward ``w``.

        Returns ``inf`` when ``w`` alone exceeds the budget, i.e. no
        amount of patience certifies fairness.
        """
        reward = ensure_positive_float("reward", reward)
        slack = self.budget - reward
        if slack <= 0.0:
            return _INFINITE
        return math.ceil(1.0 / slack)

    def max_reward(self, n: int) -> float:
        """Largest block reward certified fair at horizon ``n`` (may be <= 0)."""
        n = ensure_positive_int("n", n)
        return self.budget - 1.0 / n


@dataclass(frozen=True)
class CPoSFairnessBound:
    """Theorem 4.10 calculator for C-PoS.

    The condition is
    ``w^2 (1/n + w + v) / ((w + v)^2 P) <= budget``.
    Increasing the inflation reward ``v`` or the shard count ``P``
    relaxes it; at ``v = 0, P = 1`` it reduces exactly to Theorem 4.3.
    """

    epsilon: float
    delta: float
    share: float

    def __post_init__(self) -> None:
        eps, dlt = ensure_epsilon_delta(self.epsilon, self.delta)
        object.__setattr__(self, "epsilon", eps)
        object.__setattr__(self, "delta", dlt)
        object.__setattr__(self, "share", ensure_fraction("share", self.share))

    @property
    def budget(self) -> float:
        return fairness_budget(self.epsilon, self.delta, self.share)

    @staticmethod
    def lhs(n: int, shards: int, proposer_reward: float, inflation_reward: float) -> float:
        """Left-hand side ``w^2 (1/n + w + v) / ((w + v)^2 P)``."""
        n = ensure_positive_int("n", n)
        shards = ensure_positive_int("shards", shards)
        w = ensure_positive_float("proposer_reward", proposer_reward)
        v = ensure_non_negative_float("inflation_reward", inflation_reward)
        return w * w * (1.0 / n + w + v) / ((w + v) ** 2 * shards)

    def is_sufficient(
        self, n: int, shards: int, proposer_reward: float, inflation_reward: float
    ) -> bool:
        """Whether ``(n, P, w, v)`` satisfy the Theorem 4.10 condition."""
        return self.lhs(n, shards, proposer_reward, inflation_reward) <= self.budget

    def required_blocks(
        self, shards: int, proposer_reward: float, inflation_reward: float
    ) -> float:
        """Smallest sufficient epoch count (``inf`` if unattainable)."""
        shards = ensure_positive_int("shards", shards)
        w = ensure_positive_float("proposer_reward", proposer_reward)
        v = ensure_non_negative_float("inflation_reward", inflation_reward)
        # Solve w^2 (1/n + w + v) / ((w+v)^2 P) <= budget for 1/n.
        cap = self.budget * (w + v) ** 2 * shards / (w * w)
        slack = cap - (w + v)
        if slack <= 0.0:
            return _INFINITE
        return math.ceil(1.0 / slack)

    def required_shards(
        self, n: int, proposer_reward: float, inflation_reward: float
    ) -> float:
        """Smallest sufficient shard count ``P`` (``inf`` never occurs
        since the LHS scales as ``1/P``)."""
        n = ensure_positive_int("n", n)
        w = ensure_positive_float("proposer_reward", proposer_reward)
        v = ensure_non_negative_float("inflation_reward", inflation_reward)
        if self.budget == 0.0:
            return _INFINITE
        numerator = w * w * (1.0 / n + w + v) / ((w + v) ** 2)
        return max(1, math.ceil(numerator / self.budget))


def pow_required_blocks(epsilon: float, delta: float, share: float) -> float:
    """Convenience wrapper over :meth:`PoWFairnessBound.required_blocks`."""
    return PoWFairnessBound(epsilon, delta, share).required_blocks()


def ml_pos_is_sufficient(
    epsilon: float, delta: float, share: float, n: int, reward: float
) -> bool:
    """Convenience wrapper over :meth:`MLPoSFairnessBound.is_sufficient`."""
    return MLPoSFairnessBound(epsilon, delta, share).is_sufficient(n, reward)


def ml_pos_max_reward(epsilon: float, delta: float, share: float, n: int) -> float:
    """Convenience wrapper over :meth:`MLPoSFairnessBound.max_reward`."""
    return MLPoSFairnessBound(epsilon, delta, share).max_reward(n)


def c_pos_is_sufficient(
    epsilon: float,
    delta: float,
    share: float,
    n: int,
    shards: int,
    proposer_reward: float,
    inflation_reward: float,
) -> bool:
    """Convenience wrapper over :meth:`CPoSFairnessBound.is_sufficient`."""
    return CPoSFairnessBound(epsilon, delta, share).is_sufficient(
        n, shards, proposer_reward, inflation_reward
    )


def c_pos_required_shards(
    epsilon: float,
    delta: float,
    share: float,
    n: int,
    proposer_reward: float,
    inflation_reward: float,
) -> float:
    """Convenience wrapper over :meth:`CPoSFairnessBound.required_shards`."""
    return CPoSFairnessBound(epsilon, delta, share).required_shards(
        n, proposer_reward, inflation_reward
    )
