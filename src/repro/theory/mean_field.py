"""Mean-field (fluid-limit) trajectories of the SL-PoS share process.

The stochastic approximation of Theorem 4.9,

``Z_{n+1} - Z_n = gamma_{n+1} (f(Z_n) + U_{n+1})``,  ``gamma_n = w / (1 + n w)``,

has the associated ODE ``dz/dn = gamma_n f(z)``.  Substituting the
log-time ``u = ln(1 + n w)`` (so ``du = gamma_n dn``) turns it into
the autonomous flow ``dz/du = f(z)``, whose solution describes the
*typical* (mean-field) trajectory of a miner's stake share — the
deterministic skeleton around which the random trajectories of
Figure 2(c)/Figure 4 fluctuate.

For the two-miner drift (Eq. 2) the flow integrates in closed form on
``z < 1/2``:

``u(z1) - u(z0) = [-2 ln z + ln(1 - 2 z)]_{z0}^{z1}``

— the basis of :func:`sl_pos_log_time`.  Because small-share events
are amplified by the urn feedback, the *ensemble mean* decays slower
than this typical path (lucky trials dominate the mean); the module
therefore describes medians/modes, not means, and the tests check
exactly that relationship.
"""

from __future__ import annotations

import math
from typing import Callable

import numpy as np

from .._validation import ensure_fraction, ensure_positive_float
from .stochastic_approximation import sl_pos_drift

__all__ = [
    "log_time",
    "blocks_from_log_time",
    "log_time_from_blocks",
    "sl_pos_log_time",
    "mean_field_trajectory",
    "sl_pos_mean_field_share",
]


def log_time_from_blocks(blocks: float, reward: float) -> float:
    """The SA log-time ``u(n) = sum_{i<=n} gamma_i ~= ln(1 + n w)``.

    This is the accumulated step size after ``n`` blocks — the natural
    clock of the flow ``dz/du = f(z)``.  Note it grows only
    logarithmically in ``n``: stake dilution slows the game down, which
    is why SL-PoS monopolisation takes so long in wall-clock blocks
    (Figure 4's 10^5-block axes).
    """
    if blocks < 0:
        raise ValueError("blocks must be non-negative")
    reward = ensure_positive_float("reward", reward)
    return math.log1p(blocks * reward)


def blocks_from_log_time(u: float, reward: float) -> float:
    """Invert :func:`log_time_from_blocks`: ``n = (e^u - 1) / w``.

    Exponential in ``u`` — each unit of drift progress costs
    geometrically more blocks.
    """
    if u < 0:
        raise ValueError("log-time must be non-negative")
    reward = ensure_positive_float("reward", reward)
    return math.expm1(u) / reward


#: Back-compat alias used in doc examples.
log_time = log_time_from_blocks


def sl_pos_log_time(share_from: float, share_to: float) -> float:
    """Log-time for the SL-PoS mean-field flow to fall from one share
    to a lower one (both below one half).

    Closed form from ``dz/du = z (2z - 1) / (2 (1 - z))``:

    ``u = [-2 ln z + ln(1 - 2 z)]`` evaluated between the endpoints.

    Diverges as ``share_to -> 0`` — absorption takes infinite log-time
    (and doubly-exponentially many blocks), matching the long tails of
    Figure 4.
    """
    share_from = ensure_fraction("share_from", share_from)
    share_to = ensure_fraction("share_to", share_to)
    if not share_to < share_from < 0.5:
        raise ValueError(
            "expected share_to < share_from < 0.5 (the decaying branch)"
        )

    def antiderivative(z: float) -> float:
        return -2.0 * math.log(z) + math.log(1.0 - 2.0 * z)

    return antiderivative(share_to) - antiderivative(share_from)


def mean_field_trajectory(
    drift: Callable[[float], float],
    initial: float,
    log_times: np.ndarray,
    *,
    max_step: float = 0.01,
) -> np.ndarray:
    """Integrate ``dz/du = f(z)`` from ``initial`` over ``log_times``.

    Plain RK4 with a capped step; adequate because the drift is smooth
    and bounded on [0, 1].

    Parameters
    ----------
    drift:
        The drift field ``f``.
    initial:
        Starting share ``z(0)``.
    log_times:
        Increasing, non-negative log-time grid (``u`` values).
    max_step:
        Upper bound on the RK4 step size.

    Returns
    -------
    numpy.ndarray of shares at each requested log-time.
    """
    initial = ensure_fraction("initial", initial)
    max_step = ensure_positive_float("max_step", max_step)
    grid = np.asarray(log_times, dtype=float)
    if grid.ndim != 1 or grid.size == 0:
        raise ValueError("log_times must be a non-empty 1-D array")
    if grid[0] < 0 or np.any(np.diff(grid) <= 0):
        raise ValueError("log_times must be non-negative and increasing")

    def rk4_step(z: float, h: float) -> float:
        k1 = drift(z)
        k2 = drift(min(1.0, max(0.0, z + 0.5 * h * k1)))
        k3 = drift(min(1.0, max(0.0, z + 0.5 * h * k2)))
        k4 = drift(min(1.0, max(0.0, z + h * k3)))
        return min(1.0, max(0.0, z + h / 6.0 * (k1 + 2 * k2 + 2 * k3 + k4)))

    results = np.empty_like(grid)
    z = initial
    u = 0.0
    for index, target in enumerate(grid):
        remaining = target - u
        while remaining > 1e-12:
            h = min(max_step, remaining)
            z = rk4_step(z, h)
            remaining -= h
        u = target
        results[index] = z
    return results


def sl_pos_mean_field_share(share: float, reward: float, blocks) -> np.ndarray:
    """Typical SL-PoS stake share of miner A after ``blocks`` blocks.

    Integrates the two-miner drift along the mean-field flow.  This is
    the deterministic skeleton of Figure 2(c): shares below one half
    slide towards zero, above one half towards one.
    """
    share = ensure_fraction("share", share)
    reward = ensure_positive_float("reward", reward)
    blocks_arr = np.atleast_1d(np.asarray(blocks, dtype=float))
    if np.any(blocks_arr < 0):
        raise ValueError("blocks must be non-negative")
    order = np.argsort(blocks_arr)
    sorted_u = np.array(
        [log_time_from_blocks(b, reward) for b in blocks_arr[order]]
    )
    # Integrate once over the sorted grid, then unsort.
    positive = sorted_u > 0
    values = np.full_like(sorted_u, share)
    if np.any(positive):
        values[positive] = mean_field_trajectory(
            lambda z: float(sl_pos_drift(z)), share, sorted_u[positive]
        )
    unsorted = np.empty_like(values)
    unsorted[order] = values
    if np.isscalar(blocks) or np.asarray(blocks).ndim == 0:
        return float(unsorted[0])
    return unsorted
