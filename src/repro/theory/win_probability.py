"""Closed-form next-block win probabilities from Section 2 of the paper.

Each incentive protocol induces a lottery over miners for every block
(or epoch).  This module provides the exact laws derived in the paper:

* :func:`pow_win_probabilities` — the Poisson/exponential race of
  Section 2.1, ``Pr[i wins] = H_i / sum(H)``.
* :func:`ml_pos_win_probability_exact` — the geometric race with
  tie-break of Section 2.2 for two miners, and its proportional
  approximation :func:`ml_pos_win_probabilities`.
* :func:`sl_pos_win_probability_two_miners` — Equation (1),
  ``Pr[A wins] ~= S_A / (2 S_B)`` for ``S_A <= S_B``.
* :func:`sl_pos_win_probabilities` — the multi-miner law of Lemma 6.1,
  evaluated exactly through polynomial expansion of the integrand.
* :func:`c_pos_expected_reward_fractions` — the expected split of one
  C-PoS epoch reward between proposer and inflation components.

These closed forms serve three purposes: they parameterise the fast
Monte Carlo dynamics, they provide ground truth for statistical tests
of the simulators, and they define the drift fields studied with
stochastic approximation in Section 4.4.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from .._validation import (
    as_sequence_of_floats,
    ensure_positive_float,
    ensure_positive_int,
)

__all__ = [
    "pow_win_probabilities",
    "ml_pos_win_probability_exact",
    "ml_pos_tie_probability",
    "ml_pos_win_probabilities",
    "sl_pos_win_probability_two_miners",
    "sl_pos_win_probabilities",
    "sl_pos_win_probabilities_quadrature",
    "fsl_pos_win_probabilities",
    "c_pos_expected_reward_fractions",
]


def _positive_resources(name: str, resources: Sequence[float]) -> np.ndarray:
    array = as_sequence_of_floats(name, resources)
    if array.ndim != 1:
        raise ValueError(f"{name} must be one-dimensional, got shape {array.shape}")
    if array.size < 2:
        raise ValueError(f"{name} needs at least two miners, got {array.size}")
    if np.any(array <= 0.0):
        raise ValueError(f"{name} must contain strictly positive values")
    return array


def pow_win_probabilities(hash_powers: Sequence[float]) -> np.ndarray:
    """Win probabilities of the PoW exponential race (Section 2.1).

    Miner ``i`` finds blocks as a Poisson process with rate proportional
    to her hash power ``H_i``; the first arrival wins, so

    ``Pr[i wins] = H_i / (H_1 + ... + H_m)``.

    Parameters
    ----------
    hash_powers:
        Positive per-miner hash powers (any scale; only ratios matter).

    Returns
    -------
    numpy.ndarray
        Probabilities summing to one.
    """
    powers = _positive_resources("hash_powers", hash_powers)
    return powers / powers.sum()


def ml_pos_win_probability_exact(p_a: float, p_b: float) -> float:
    """Exact two-miner ML-PoS win probability (Section 2.2).

    Miners ``A`` and ``B`` test one timestamp per tick; each trial
    succeeds with probability ``p_a`` (resp. ``p_b``).  The miner with
    the earlier first success wins; simultaneous successes are broken
    by a fair coin.  The paper derives

    ``Pr[A wins] = (p_a - p_a p_b / 2) / (p_a + p_b - p_a p_b)``.
    """
    p_a = ensure_positive_float("p_a", p_a)
    p_b = ensure_positive_float("p_b", p_b)
    if p_a > 1.0 or p_b > 1.0:
        raise ValueError("per-timestamp success probabilities must be <= 1")
    return (p_a - p_a * p_b / 2.0) / (p_a + p_b - p_a * p_b)


def ml_pos_tie_probability(p_a: float, p_b: float) -> float:
    """Probability that both ML-PoS miners succeed at the same timestamp.

    ``Pr[T_A = T_B] = p_a p_b / (p_a + p_b - p_a p_b)`` (Section 2.2).
    """
    p_a = ensure_positive_float("p_a", p_a)
    p_b = ensure_positive_float("p_b", p_b)
    if p_a > 1.0 or p_b > 1.0:
        raise ValueError("per-timestamp success probabilities must be <= 1")
    return (p_a * p_b) / (p_a + p_b - p_a * p_b)


def ml_pos_win_probabilities(stakes: Sequence[float]) -> np.ndarray:
    """Proportional ML-PoS win law (Section 2.2, small-``p`` limit).

    With per-timestamp success probabilities far below one (block
    intervals of 5-10 minutes imply ``p ~ 1/1200``), the geometric race
    converges to the proportional lottery

    ``Pr[i wins] = S_i / sum(S)``.
    """
    stakes = _positive_resources("stakes", stakes)
    return stakes / stakes.sum()


def sl_pos_win_probability_two_miners(stake_a: float, stake_b: float) -> float:
    """Exact two-miner SL-PoS win probability for miner ``A`` (Eq. 1).

    Under the single-lottery deadline ``T = basetime * Hash / stake``
    with a uniform hash, the paper shows (continuous limit)

    ``Pr[A wins] = S_A / (2 S_B)``        when ``S_A <= S_B``,
    ``Pr[A wins] = 1 - S_B / (2 S_A)``    when ``S_A >  S_B``.

    The two branches agree at ``S_A = S_B`` where the probability is
    one half.  The discrete 2^256 correction in Eq. (1) is below 1e-77
    and is ignored.
    """
    stake_a = ensure_positive_float("stake_a", stake_a)
    stake_b = ensure_positive_float("stake_b", stake_b)
    if stake_a <= stake_b:
        return stake_a / (2.0 * stake_b)
    return 1.0 - stake_b / (2.0 * stake_a)


def _product_polynomial(roots_scale: np.ndarray) -> np.ndarray:
    """Coefficients (ascending) of ``prod_j (1 - s_j z)``.

    Computed by iterated convolution; exact up to float rounding for
    the miner counts considered here (tens of miners).
    """
    coeffs = np.array([1.0])
    for s in roots_scale:
        coeffs = np.convolve(coeffs, np.array([1.0, -s]))
    return coeffs


def sl_pos_win_probabilities(stakes: Sequence[float]) -> np.ndarray:
    """Exact multi-miner SL-PoS win law (Lemma 6.1).

    Miner ``i`` draws deadline ``Z_i ~ U(0, 1/S_i)`` (uniform hash
    divided by stake); the smallest deadline wins.  Conditioning on
    ``Z_i = z`` yields

    ``Pr[i wins] = integral_0^{1/S_max} S_i * prod_{j != i} (1 - S_j z) dz``

    where ``S_max`` is the largest stake overall (the integrand
    vanishes beyond ``1/S_max``).  The integrand is a polynomial in
    ``z``, so the integral is evaluated exactly via term-wise
    antiderivatives rather than numeric quadrature.

    Notes
    -----
    Unlike PoW/ML-PoS, these probabilities are *not* proportional to
    stakes: every miner below the maximum stake is under-rewarded
    (Lemma 6.1), which is the root cause of SL-PoS unfairness.

    Returns
    -------
    numpy.ndarray
        Win probabilities summing to one.
    """
    stakes = _positive_resources("stakes", stakes)
    # Only stake ratios matter; normalise for numeric stability.
    shares = stakes / stakes.sum()
    upper = 1.0 / shares.max()
    probabilities = np.empty_like(shares)
    for i, share in enumerate(shares):
        others = np.delete(shares, i)
        coeffs = _product_polynomial(others)
        # integral_0^upper share * sum_k c_k z^k dz
        powers = np.arange(coeffs.size, dtype=float) + 1.0
        integral = float(np.sum(coeffs * upper**powers / powers))
        probabilities[i] = share * integral
    # Ties happen with probability zero in the continuous limit, so the
    # total mass must be one; renormalise away float rounding only.
    total = probabilities.sum()
    if not 0.999 <= total <= 1.001:  # pragma: no cover - numeric guard
        raise ArithmeticError(f"SL-PoS win law lost mass: total={total!r}")
    return probabilities / total


def sl_pos_win_probabilities_quadrature(
    stakes: Sequence[float], *, points: int = 20001
) -> np.ndarray:
    """Lemma 6.1 win law via composite Simpson quadrature.

    A slower, independent evaluation of
    :func:`sl_pos_win_probabilities`; used to cross-check the exact
    polynomial expansion in tests.
    """
    from scipy.integrate import simpson

    stakes = _positive_resources("stakes", stakes)
    points = ensure_positive_int("points", points)
    shares = stakes / stakes.sum()
    upper = 1.0 / shares.max()
    grid = np.linspace(0.0, upper, points)
    probabilities = np.empty_like(shares)
    for i, share in enumerate(shares):
        others = np.delete(shares, i)
        integrand = share * np.prod(
            np.clip(1.0 - np.outer(others, grid), 0.0, None), axis=0
        )
        probabilities[i] = float(simpson(integrand, x=grid))
    return probabilities / probabilities.sum()


def fsl_pos_win_probabilities(stakes: Sequence[float]) -> np.ndarray:
    """Win law of the FSL-PoS treatment (Section 6.2).

    The corrected deadline ``T_i = -ln(1 - U_i) / S_i`` is exponential
    with rate ``S_i``; the minimum of independent exponentials makes
    the win probability exactly proportional,

    ``Pr[i wins] = S_i / sum(S)``.
    """
    stakes = _positive_resources("stakes", stakes)
    return stakes / stakes.sum()


def c_pos_expected_reward_fractions(
    stakes: Sequence[float], proposer_reward: float, inflation_reward: float
) -> np.ndarray:
    """Expected fraction of one C-PoS epoch reward per miner (Sec. 2.4).

    In an epoch, miner ``i`` with share ``s_i`` expects
    ``v * s_i`` inflation (attester) reward plus ``w * s_i`` proposer
    reward (``X ~ Bin(P, s_i)`` blocks, each worth ``w/P``); the total
    epoch issuance is ``w + v``, so the expected fraction is ``s_i``
    regardless of the reward split — the content of Theorem 3.5.

    Returns the expected per-miner fractions of the epoch reward.
    """
    stakes = _positive_resources("stakes", stakes)
    ensure_positive_float("proposer_reward + inflation_reward",
                          proposer_reward + inflation_reward)
    if proposer_reward < 0 or inflation_reward < 0:
        raise ValueError("rewards must be non-negative")
    shares = stakes / stakes.sum()
    return shares.copy()
