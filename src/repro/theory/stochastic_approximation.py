"""Stochastic-approximation analysis of SL-PoS (Section 4.4).

The paper proves Theorem 4.9 — SL-PoS monopolises almost surely — by
casting the stake-share process ``Z_n`` as a stochastic approximation
(SA) algorithm (Definition 4.4):

``Z_{n+1} - Z_n = gamma_{n+1} (f(Z_n) + U_{n+1})``

with step sizes ``gamma_n = w / (1 + n w)`` and drift

``f(z) = winprob(z) - z``.

For the two-miner SL-PoS win law (Eq. 2 of the paper)::

    f(z) = z / (2 (1 - z)) - z            if z <= 1/2
    f(z) = 1 - (1 - z) / (2 z) - z        otherwise

whose zeros are {0, 1/2, 1}: the interior zero is *unstable*
(``f(x)(x - 1/2) >= 0`` locally) and the boundary zeros are stable, so
``Z_n -> {0, 1}`` almost surely (Lemmas 4.5/4.7/4.8).

This module provides the drift fields, zero finding, stability
classification, and a generic SA iterator used both for Figure 1 and
for numerical verification of the theorem.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from enum import Enum
from typing import Callable, List, Optional, Sequence

import numpy as np

from .._validation import (
    ensure_fraction,
    ensure_positive_float,
    ensure_positive_int,
    ensure_probability,
)
from .win_probability import sl_pos_win_probabilities

__all__ = [
    "sl_pos_win_probability_from_share",
    "sl_pos_drift",
    "ml_pos_drift",
    "find_drift_zeros",
    "Stability",
    "classify_zero",
    "sl_pos_zero_report",
    "StochasticApproximation",
    "sl_pos_stochastic_approximation",
    "sl_pos_multi_miner_drift",
]


def sl_pos_win_probability_from_share(z) -> np.ndarray:
    """Two-miner SL-PoS win probability as a function of A's share ``z``.

    Piecewise law plotted in Figure 1 of the paper::

        p(z) = z / (2 (1 - z))       if z <= 1/2
        p(z) = 1 - (1 - z) / (2 z)   otherwise

    Accepts scalars or arrays; the boundary values are ``p(0) = 0`` and
    ``p(1) = 1``.
    """
    z = np.asarray(z, dtype=float)
    if np.any(z < 0.0) or np.any(z > 1.0):
        raise ValueError("share must lie in [0, 1]")
    with np.errstate(divide="ignore", invalid="ignore", over="ignore"):
        lower = np.divide(
            z, 2.0 * (1.0 - z), out=np.zeros_like(z), where=z < 1.0
        )
        upper = 1.0 - np.divide(
            1.0 - z, 2.0 * z, out=np.zeros_like(z), where=z > 0.0
        )
    result = np.where(z <= 0.5, lower, upper)
    if result.ndim == 0:
        return float(result)
    return result


def sl_pos_drift(z) -> np.ndarray:
    """SA drift ``f(z) = p(z) - z`` of two-miner SL-PoS (Eq. 2)."""
    z_arr = np.asarray(z, dtype=float)
    result = np.asarray(sl_pos_win_probability_from_share(z_arr)) - z_arr
    if result.ndim == 0:
        return float(result)
    return result


def ml_pos_drift(z) -> np.ndarray:
    """SA drift of ML-PoS, identically zero.

    ML-PoS wins proportionally, ``p(z) = z``, so the drift vanishes
    everywhere — every share is a rest point, which is exactly why the
    process converges to a *random* (Beta-distributed) limit instead of
    a deterministic one.
    """
    z_arr = np.asarray(z, dtype=float)
    result = np.zeros_like(z_arr)
    if result.ndim == 0:
        return 0.0
    return result


def find_drift_zeros(
    drift: Callable[[float], float],
    *,
    grid_points: int = 2001,
    tolerance: float = 1e-12,
) -> List[float]:
    """Locate zeros of a drift function on [0, 1] by sign scanning + bisection.

    Boundary zeros are detected directly; interior zeros are bracketed
    on a uniform grid and refined by bisection.  Intervals where the
    drift is identically ~0 are reported by their midpoints only when
    isolated sign changes exist; a fully-degenerate drift (ML-PoS)
    returns the endpoints ``[0.0, 1.0]`` as representative rest points.
    """
    grid_points = ensure_positive_int("grid_points", grid_points)
    grid = np.linspace(0.0, 1.0, grid_points)
    values = np.array([drift(float(x)) for x in grid])
    zeros: List[float] = []
    if abs(values[0]) <= tolerance:
        zeros.append(0.0)
    if np.all(np.abs(values) <= tolerance):
        # Degenerate (everywhere-zero) drift.
        if 1.0 not in zeros:
            zeros.append(1.0)
        return zeros
    for left, right, f_left, f_right in zip(
        grid[:-1], grid[1:], values[:-1], values[1:]
    ):
        if abs(f_right) <= tolerance:
            candidate = float(right)
            if not zeros or abs(candidate - zeros[-1]) > 1e-9:
                zeros.append(candidate)
            continue
        if abs(f_left) <= tolerance:
            continue
        if f_left * f_right < 0.0:
            lo, hi = float(left), float(right)
            f_lo = drift(lo)
            for _ in range(200):
                mid = 0.5 * (lo + hi)
                f_mid = drift(mid)
                if abs(f_mid) <= tolerance or hi - lo < tolerance:
                    break
                if f_lo * f_mid < 0.0:
                    hi = mid
                else:
                    lo, f_lo = mid, f_mid
            candidate = 0.5 * (lo + hi)
            if not zeros or abs(candidate - zeros[-1]) > 1e-9:
                zeros.append(candidate)
    return zeros


class Stability(Enum):
    """Stability classification of an SA rest point (Lemmas 4.7/4.8)."""

    STABLE = "stable"
    UNSTABLE = "unstable"
    DEGENERATE = "degenerate"


def classify_zero(
    drift: Callable[[float], float], zero: float, *, step: float = 1e-4
) -> Stability:
    """Classify a drift zero by the local sign structure of ``f``.

    ``q`` is stable when ``f(x)(x - q) < 0`` near ``q`` (the drift
    pushes back towards ``q``) and unstable when ``f(x)(x - q) >= 0``
    with strict inequality on at least one side (the drift pushes
    away).  Boundary zeros are classified using the available side.
    """
    zero = ensure_probability("zero", zero)
    step = ensure_positive_float("step", step)
    left = zero - step
    right = zero + step
    signs: List[float] = []
    if left >= 0.0:
        signs.append(drift(left) * (left - zero))
    if right <= 1.0:
        signs.append(drift(right) * (right - zero))
    if not signs:  # pragma: no cover - impossible for step < 1
        return Stability.DEGENERATE
    if all(s < 0.0 for s in signs):
        return Stability.STABLE
    if any(s > 0.0 for s in signs) and all(s >= 0.0 for s in signs):
        return Stability.UNSTABLE
    if all(s == 0.0 for s in signs):
        return Stability.DEGENERATE
    return Stability.UNSTABLE


def sl_pos_zero_report() -> List[tuple]:
    """The (zero, stability) pairs proving Theorem 4.9.

    Returns ``[(0.0, STABLE), (0.5, UNSTABLE), (1.0, STABLE)]`` computed
    numerically from the drift — the test suite checks this matches the
    analytic statement in the paper.
    """
    zeros = find_drift_zeros(sl_pos_drift)
    return [(z, classify_zero(sl_pos_drift, z)) for z in zeros]


@dataclass
class StochasticApproximation:
    """A generic SA recursion ``Z_{n+1} = Z_n + gamma_{n+1} (f(Z_n) + U_{n+1})``.

    Matches Definition 4.4 of the paper with the SL-PoS
    specialisation as defaults: ``gamma_n = w / (1 + n w)`` and noise
    ``U_{n+1} = X_{n+1} - E[X_{n+1} | Z_n]`` generated by the Bernoulli
    block lottery ``X_{n+1} ~ Bernoulli(p(Z_n))``.

    Parameters
    ----------
    win_probability:
        The lottery success law ``p(z)`` (drift is ``p(z) - z``).
    reward:
        Block reward ``w`` controlling the step sizes.
    initial:
        Starting share ``Z_0``.
    """

    win_probability: Callable[[float], float]
    reward: float
    initial: float
    share: float = field(init=False)
    step: int = field(init=False, default=0)

    def __post_init__(self) -> None:
        self.reward = ensure_positive_float("reward", self.reward)
        self.initial = ensure_probability("initial", self.initial)
        self.share = self.initial

    def step_size(self, n: int) -> float:
        """``gamma_n = w / (1 + n w)`` (satisfies ``c_l/n <= gamma_n <= c_u/n``)."""
        n = ensure_positive_int("n", n)
        return self.reward / (1.0 + n * self.reward)

    def drift(self, z: float) -> float:
        """``f(z) = p(z) - z``."""
        return float(self.win_probability(z)) - z

    def advance(self, rng: np.random.Generator) -> float:
        """Run one SA step; returns the new share."""
        p = float(self.win_probability(self.share))
        won = 1.0 if rng.random() < p else 0.0
        self.step += 1
        gamma = self.step_size(self.step)
        self.share += gamma * (won - self.share)
        # Guard against float drift outside [0, 1].
        self.share = min(1.0, max(0.0, self.share))
        return self.share

    def run(self, n: int, rng: np.random.Generator) -> np.ndarray:
        """Run ``n`` steps; returns the share trajectory (length ``n``)."""
        n = ensure_positive_int("n", n)
        trajectory = np.empty(n)
        for i in range(n):
            trajectory[i] = self.advance(rng)
        return trajectory


def sl_pos_stochastic_approximation(
    share: float, reward: float
) -> StochasticApproximation:
    """The SA process of Theorem 4.9 for two-miner SL-PoS."""
    share = ensure_fraction("share", share)
    return StochasticApproximation(
        win_probability=sl_pos_win_probability_from_share,
        reward=reward,
        initial=share,
    )


def sl_pos_multi_miner_drift(shares: Sequence[float]) -> np.ndarray:
    """Multi-miner SA drift vector ``f_i(s) = p_i(s) - s_i``.

    Uses the exact Lemma 6.1 win law.  The drift of the largest miner
    is non-negative and the drift of every strictly-smaller miner is
    negative (rich get richer), which generalises Theorem 4.9 to the
    multi-miner games of Table 1.
    """
    shares = np.asarray(list(shares), dtype=float)
    probabilities = sl_pos_win_probabilities(shares)
    return probabilities - shares / shares.sum()
