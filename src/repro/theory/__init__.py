"""Analytical machinery of the paper: win laws, bounds, urns, SA.

Submodules
----------
win_probability
    Closed-form per-block win laws of Section 2 and Lemma 6.1.
hoeffding
    Hoeffding's inequality and the Theorem 4.2 sample bound.
azuma
    Azuma's inequality and the Doob-martingale bounds of
    Theorems 4.3 / 4.10.
bounds
    Sufficient (epsilon, delta)-fairness conditions as calculators.
polya
    Polya-urn limit laws for ML-PoS and exact finite-``n`` PoW masses.
stochastic_approximation
    The SA framework proving SL-PoS monopolisation (Theorem 4.9).
expectation
    Closed-form expected-stake recursions (Theorems 3.3 / 3.5).
"""

from .azuma import (
    azuma_tail,
    azuma_two_sided,
    c_pos_deviation_bound,
    ml_pos_deviation_bound,
    ml_pos_difference_bounds,
)
from .bounds import (
    CPoSFairnessBound,
    MLPoSFairnessBound,
    PoWFairnessBound,
    c_pos_is_sufficient,
    c_pos_required_shards,
    fairness_budget,
    ml_pos_is_sufficient,
    ml_pos_max_reward,
    pow_required_blocks,
)
from .expectation import (
    c_pos_expected_reward_fraction,
    c_pos_expected_stake,
    ml_pos_expected_reward_fraction,
    ml_pos_expected_stake,
    pow_expected_reward_fraction,
    sl_pos_first_block_win_probability,
    sl_pos_two_block_expected_share,
)
from .hoeffding import (
    achievable_delta,
    achievable_epsilon,
    hoeffding_tail,
    hoeffding_two_sided,
    required_samples,
)
from .mean_field import (
    blocks_from_log_time,
    log_time_from_blocks,
    mean_field_trajectory,
    sl_pos_log_time,
    sl_pos_mean_field_share,
)
from .polya import (
    PolyaUrn,
    ml_pos_block_count_pmf,
    ml_pos_fair_probability,
    ml_pos_limit_distribution,
    ml_pos_limit_std,
    pow_fair_probability,
)
from .stochastic_approximation import (
    Stability,
    StochasticApproximation,
    classify_zero,
    find_drift_zeros,
    ml_pos_drift,
    sl_pos_drift,
    sl_pos_multi_miner_drift,
    sl_pos_stochastic_approximation,
    sl_pos_win_probability_from_share,
    sl_pos_zero_report,
)
from .win_probability import (
    c_pos_expected_reward_fractions,
    fsl_pos_win_probabilities,
    ml_pos_tie_probability,
    ml_pos_win_probabilities,
    ml_pos_win_probability_exact,
    pow_win_probabilities,
    sl_pos_win_probabilities,
    sl_pos_win_probabilities_quadrature,
    sl_pos_win_probability_two_miners,
)

__all__ = [
    # win_probability
    "pow_win_probabilities",
    "ml_pos_win_probability_exact",
    "ml_pos_tie_probability",
    "ml_pos_win_probabilities",
    "sl_pos_win_probability_two_miners",
    "sl_pos_win_probabilities",
    "sl_pos_win_probabilities_quadrature",
    "fsl_pos_win_probabilities",
    "c_pos_expected_reward_fractions",
    # hoeffding
    "hoeffding_tail",
    "hoeffding_two_sided",
    "required_samples",
    "achievable_epsilon",
    "achievable_delta",
    # azuma
    "azuma_tail",
    "azuma_two_sided",
    "ml_pos_difference_bounds",
    "ml_pos_deviation_bound",
    "c_pos_deviation_bound",
    # bounds
    "fairness_budget",
    "PoWFairnessBound",
    "MLPoSFairnessBound",
    "CPoSFairnessBound",
    "pow_required_blocks",
    "ml_pos_is_sufficient",
    "ml_pos_max_reward",
    "c_pos_is_sufficient",
    "c_pos_required_shards",
    # mean field
    "blocks_from_log_time",
    "log_time_from_blocks",
    "mean_field_trajectory",
    "sl_pos_log_time",
    "sl_pos_mean_field_share",
    # polya
    "PolyaUrn",
    "ml_pos_limit_distribution",
    "ml_pos_fair_probability",
    "ml_pos_limit_std",
    "pow_fair_probability",
    "ml_pos_block_count_pmf",
    # stochastic approximation
    "Stability",
    "StochasticApproximation",
    "classify_zero",
    "find_drift_zeros",
    "ml_pos_drift",
    "sl_pos_drift",
    "sl_pos_multi_miner_drift",
    "sl_pos_stochastic_approximation",
    "sl_pos_win_probability_from_share",
    "sl_pos_zero_report",
    # expectation
    "ml_pos_expected_stake",
    "ml_pos_expected_reward_fraction",
    "c_pos_expected_stake",
    "c_pos_expected_reward_fraction",
    "pow_expected_reward_fraction",
    "sl_pos_first_block_win_probability",
    "sl_pos_two_block_expected_share",
]
