"""Azuma-Hoeffding inequality for martingales (Theorems 4.3 / 4.10).

ML-PoS and C-PoS mining are Markov chains, not i.i.d. sequences, so the
paper controls them through Doob martingales: with
``M_i = E[S_n | X_1..X_i]`` the conditional expectation of the final
stake, the martingale differences are bounded within per-step ranges
``r_i = Delta_max,i - Delta_min,i`` and the range form of
Azuma-Hoeffding

``Pr[|M_n - M_0| >= gamma] <= 2 exp(-2 gamma^2 / sum_i r_i^2)``

yields the concentration statements (this is the form the paper's
appendix applies; it degenerates to Hoeffding's inequality for i.i.d.
summands).  This module provides the generic inequality plus the
specific difference ranges derived in the appendix proofs.
"""

from __future__ import annotations

import math
from typing import Sequence

import numpy as np

from .._validation import (
    as_sequence_of_floats,
    ensure_non_negative_float,
    ensure_positive_float,
    ensure_positive_int,
)

__all__ = [
    "azuma_tail",
    "azuma_two_sided",
    "ml_pos_difference_bounds",
    "ml_pos_deviation_bound",
    "c_pos_deviation_bound",
]


def azuma_tail(gamma: float, difference_ranges: Sequence[float]) -> float:
    """One-sided Azuma tail ``Pr[M_n - M_0 >= gamma]`` (range form).

    Parameters
    ----------
    gamma:
        Deviation threshold (non-negative).
    difference_ranges:
        Per-step ranges ``r_i`` with
        ``max(M_i - M_{i-1}) - min(M_i - M_{i-1}) <= r_i``.

    Returns
    -------
    ``exp(-2 gamma^2 / sum_i r_i^2)`` capped at one.
    """
    gamma = ensure_non_negative_float("gamma", gamma)
    ranges = as_sequence_of_floats("difference_ranges", difference_ranges)
    if np.any(ranges < 0.0):
        raise ValueError("difference_ranges must be non-negative")
    denominator = float(np.sum(ranges * ranges))
    if denominator == 0.0:
        return 0.0 if gamma > 0.0 else 1.0
    return min(1.0, math.exp(-2.0 * gamma * gamma / denominator))


def azuma_two_sided(gamma: float, difference_ranges: Sequence[float]) -> float:
    """Two-sided Azuma bound ``Pr[|M_n - M_0| >= gamma]``."""
    return min(1.0, 2.0 * azuma_tail(gamma, difference_ranges))


def ml_pos_difference_bounds(n: int, reward: float) -> np.ndarray:
    """Martingale difference ranges for the ML-PoS Doob martingale.

    From the proof of Theorem 4.3, conditioning on the first ``i``
    outcomes gives ``M_i = (1 + n w) / (1 + i w) * S_i`` and the range
    of ``M_i - M_{i-1}`` is

    ``Delta_max - Delta_min = (1 + n w) w / (1 + i w)``.

    Azuma's inequality with one-sided bound ``c_i`` equal to the full
    range (a conservative but standard reduction, matching the paper's
    ``sum (range_i)^2`` denominator up to the factor the paper also
    uses) produces Theorem 4.3.  We return the ranges for
    ``i = 1..n``.
    """
    n = ensure_positive_int("n", n)
    reward = ensure_positive_float("reward", reward)
    i = np.arange(1, n + 1, dtype=float)
    return (1.0 + n * reward) * reward / (1.0 + i * reward)


def ml_pos_deviation_bound(n: int, reward: float, gamma: float) -> float:
    """Closed-form Azuma bound used in Theorem 4.3.

    The paper telescopes ``sum_i ((1 + n w)/(1 + i w))^2 * w^2`` into
    ``w (1 + n w)^2 * sum_i (1/(1+(i-1)w) - 1/(1+iw))
      <= w^2 (1 + n w) n`` and obtains

    ``Pr[|M_n - M_0| >= gamma] <= 2 exp(-2 gamma^2 / (w^2 (1 + n w) n))``.

    Setting ``gamma = n w a epsilon`` yields the sufficient condition
    ``1/n + w <= 2 a^2 eps^2 / ln(2/delta)``.
    """
    n = ensure_positive_int("n", n)
    reward = ensure_positive_float("reward", reward)
    gamma = ensure_non_negative_float("gamma", gamma)
    denominator = reward * reward * (1.0 + n * reward) * n
    return min(1.0, 2.0 * math.exp(-2.0 * gamma * gamma / denominator))


def c_pos_deviation_bound(
    n: int,
    shards: int,
    proposer_reward: float,
    inflation_reward: float,
    gamma: float,
) -> float:
    """Closed-form Azuma bound used in Theorem 4.10.

    With ``P`` shards per epoch the Doob martingale over per-shard
    proposer outcomes has differences bounded by
    ``(1 + (w+v) n) / (1 + (w+v) i) * w / P``, and the telescoped bound
    becomes

    ``Pr[|M_{n,P} - M_0| >= gamma]
        <= 2 exp(-2 gamma^2 P / (w^2 (1 + (w+v) n) n))``.

    Setting ``gamma = n a (w + v) epsilon`` yields Theorem 4.10.
    """
    n = ensure_positive_int("n", n)
    shards = ensure_positive_int("shards", shards)
    proposer_reward = ensure_positive_float("proposer_reward", proposer_reward)
    inflation_reward = ensure_non_negative_float("inflation_reward", inflation_reward)
    gamma = ensure_non_negative_float("gamma", gamma)
    total = proposer_reward + inflation_reward
    denominator = proposer_reward * proposer_reward * (1.0 + total * n) * n
    return min(1.0, 2.0 * math.exp(-2.0 * gamma * gamma * shards / denominator))
