"""Closed-form expected-stake recursions (Theorems 3.3 / 3.5).

The expectational-fairness proofs for ML-PoS and C-PoS both rest on a
telescoping recursion for the expected stake of miner ``A``:

* **ML-PoS** (Thm 3.3):  ``E[S_{i+1}] = (1 + w(i+1)) / (1 + w i) E[S_i]``
  giving ``E[S_i] = a (1 + w i)`` and hence ``E[lambda_A] = a``.
* **C-PoS** (Thm 3.5):   the same with ``w + v`` in place of ``w``.

These closed forms are exported so the test suite and the examples can
compare simulated means against exact expectations at every horizon,
not only in the limit.

The module also provides the *unfair* SL-PoS first-block expectation
``E[X_1] = a / (2b)`` and the finite-horizon contradiction identity
from the proof of Theorem 3.4.
"""

from __future__ import annotations

import numpy as np

from .._validation import (
    ensure_fraction,
    ensure_non_negative_float,
    ensure_non_negative_int,
    ensure_positive_float,
    ensure_positive_int,
)

__all__ = [
    "ml_pos_expected_stake",
    "ml_pos_expected_reward_fraction",
    "c_pos_expected_stake",
    "c_pos_expected_reward_fraction",
    "pow_expected_reward_fraction",
    "sl_pos_first_block_win_probability",
    "sl_pos_two_block_expected_share",
]


def ml_pos_expected_stake(share: float, reward: float, blocks) -> np.ndarray:
    """``E[S_i] = a (1 + w i)`` for ML-PoS (proof of Theorem 3.3).

    Parameters
    ----------
    share:
        Initial share ``a``.
    reward:
        Block reward ``w``.
    blocks:
        Block index (or array of indices) ``i >= 0``.
    """
    share = ensure_fraction("share", share)
    reward = ensure_positive_float("reward", reward)
    blocks_arr = np.asarray(blocks, dtype=float)
    if np.any(blocks_arr < 0):
        raise ValueError("blocks must be non-negative")
    result = share * (1.0 + reward * blocks_arr)
    if result.ndim == 0:
        return float(result)
    return result


def ml_pos_expected_reward_fraction(share: float, reward: float, blocks: int) -> float:
    """``E[lambda_A] = (E[S_n] - a) / (w n) = a`` for ML-PoS."""
    share = ensure_fraction("share", share)
    reward = ensure_positive_float("reward", reward)
    blocks = ensure_positive_int("blocks", blocks)
    expected_stake = ml_pos_expected_stake(share, reward, blocks)
    return (expected_stake - share) / (reward * blocks)


def c_pos_expected_stake(
    share: float, proposer_reward: float, inflation_reward: float, epochs
) -> np.ndarray:
    """``E[S_i] = a (1 + (w + v) i)`` for C-PoS (proof of Theorem 3.5)."""
    share = ensure_fraction("share", share)
    proposer_reward = ensure_positive_float("proposer_reward", proposer_reward)
    inflation_reward = ensure_non_negative_float("inflation_reward", inflation_reward)
    epochs_arr = np.asarray(epochs, dtype=float)
    if np.any(epochs_arr < 0):
        raise ValueError("epochs must be non-negative")
    total = proposer_reward + inflation_reward
    result = share * (1.0 + total * epochs_arr)
    if result.ndim == 0:
        return float(result)
    return result


def c_pos_expected_reward_fraction(
    share: float, proposer_reward: float, inflation_reward: float, epochs: int
) -> float:
    """``E[lambda_A] = (E[S_n] - a) / ((w + v) n) = a`` for C-PoS."""
    share = ensure_fraction("share", share)
    epochs = ensure_positive_int("epochs", epochs)
    total = proposer_reward + inflation_reward
    expected_stake = c_pos_expected_stake(
        share, proposer_reward, inflation_reward, epochs
    )
    return (expected_stake - share) / (total * epochs)


def pow_expected_reward_fraction(share: float, blocks: int) -> float:
    """``E[lambda_A] = a`` for PoW (Theorem 3.2): Binomial(n, a) mean over n."""
    share = ensure_fraction("share", share)
    ensure_positive_int("blocks", blocks)
    return share


def sl_pos_first_block_win_probability(share: float) -> float:
    """``E[X_1] = a / (2 (1 - a))`` for SL-PoS when ``a <= 1/2`` (Thm 3.4).

    Strictly below ``a`` unless ``a = 1/2`` — the first block is already
    unfair in expectation.
    """
    share = ensure_fraction("share", share)
    if share <= 0.5:
        return share / (2.0 * (1.0 - share))
    return 1.0 - (1.0 - share) / (2.0 * share)


def sl_pos_two_block_expected_share(share: float, reward: float) -> float:
    """Exact expected share of A after one SL-PoS block.

    ``E[Z_1] = (a + w p) / (1 + w)`` with ``p`` the unfair first-block
    win probability; used by tests to check the simulator's first-step
    distribution and to demonstrate the Theorem 3.4 contradiction
    (``E[Z_1] < a`` whenever ``a < 1/2``).
    """
    share = ensure_fraction("share", share)
    reward = ensure_positive_float("reward", reward)
    p = sl_pos_first_block_win_probability(share)
    return (share + reward * p) / (1.0 + reward)
