"""Deterministic storage-fault injection for the durable layer.

Where :mod:`repro.runtime.chaos` sabotages *compute* (task failures,
hangs, worker crashes), this module sabotages *storage*: the cache and
journal announce every write/fsync/rename boundary through
:func:`crashpoint`, and an active :class:`DiskChaos` controller can
turn any of those announcements into a torn write, a failed fsync, a
full disk, or a hard crash.

The same doctrine as :class:`~repro.runtime.chaos.ChaosSchedule`
applies:

* **Determinism without randomness.**  Whether a boundary faults is a
  pure SHA-256 function of ``(seed, point, hit, kind)`` — no RNG, no
  wall clock — so a failing sweep iteration replays exactly.
* **Zero cost when off.**  ``crashpoint`` is a no-op attribute check
  when no controller is installed, so production code pays one global
  load per boundary.

:class:`SimulatedCrash` derives from ``BaseException`` (like
``KeyboardInterrupt``) so it tears through the storage layer's
``except OSError`` / ``except Exception`` recovery paths exactly as a
``kill -9`` would: nothing may catch and "handle" a crash, and any
debris it leaves (torn staging files, half-appended journal lines) is
what recovery must cope with.

The controller is deliberately process-global rather than thread-local:
a threads-backend run writes the cache from every pool thread, and all
of them must see the same fault schedule.
"""

from __future__ import annotations

import errno
import hashlib
import os
import pathlib
import threading
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Iterator, List, Optional, Tuple, Union

__all__ = [
    "DiskChaos",
    "DiskFaultSchedule",
    "SimulatedCrash",
    "crashpoint",
    "using_disk_chaos",
]

PathLike = Union[str, pathlib.Path]

#: Boundary kinds a crash-point may declare.  ``write`` and ``replace``
#: boundaries are eligible for ENOSPC and torn-write injection; ``fsync``
#: boundaries for injected fsync failures.
_POINT_KINDS = ("write", "fsync", "replace")


class SimulatedCrash(BaseException):
    """A hard crash injected at a storage crash-point.

    A ``BaseException`` so it escapes every ``except OSError`` and
    ``except Exception`` in the storage layer — a simulated ``kill -9``
    must not trigger graceful-degradation handlers, and whatever state
    is on disk at that instant is what recovery gets.
    """


def _tear_file(path: PathLike, seed: int, point: str) -> None:
    """Truncate ``path`` to a deterministic prefix, simulating the torn
    tail of a write the kernel never finished."""
    target = pathlib.Path(path)
    try:
        size = target.stat().st_size
    except FileNotFoundError:
        # A crash-point announced before its file exists: nothing to tear.
        return
    if size <= 1:
        return
    digest = hashlib.sha256(
        f"repro-diskchaos-tear:{seed}:{point}:{size}".encode()
    ).digest()
    keep = 1 + int.from_bytes(digest[:8], "big") % (size - 1)
    with open(target, "r+b") as handle:
        handle.truncate(keep)


@dataclass(frozen=True)
class DiskFaultSchedule:
    """A seeded, deterministic schedule of storage faults.

    Parameters
    ----------
    seed:
        Schedule seed; equal parameters inject the exact same faults.
    enospc_rate:
        Per-hit probability (evaluated deterministically) that a
        ``write``/``replace`` boundary raises ``OSError(ENOSPC)`` — a
        full disk.
    fsync_error_rate:
        Per-hit probability that an ``fsync`` boundary raises
        ``OSError(EIO)`` — a storage stack that refused to flush.
    """

    seed: int
    enospc_rate: float = 0.0
    fsync_error_rate: float = 0.0

    def __post_init__(self) -> None:
        for name in ("enospc_rate", "fsync_error_rate"):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {value}")

    def draw(self, point: str, hit: int, kind: str) -> float:
        """A uniform-[0,1) value, pure in ``(seed, point, hit, kind)``."""
        digest = hashlib.sha256(
            f"repro-diskchaos:{self.seed}:{point}:{hit}:{kind}".encode()
        ).digest()
        return int.from_bytes(digest[:8], "big") / float(1 << 64)


class DiskChaos:
    """Controller for the storage crash-points (install with
    :func:`using_disk_chaos`).

    Three modes, combinable:

    ``record=True``
        Every crash-point hit is appended to :attr:`hits` as
        ``(name, kind, has_path)`` and nothing faults — the sweep
        harness uses one recording pass to enumerate the boundaries a
        workload crosses, then replays it ``len(hits)`` times crashing
        at each.
    ``crash_at=k``
        The ``k``-th crash-point hit (0-based, in :attr:`hits` order)
        raises :class:`SimulatedCrash`.  With ``tear=True``, a
        ``write`` boundary that carries a path first truncates that
        file to a deterministic prefix — a crash mid-write rather than
        between writes.
    ``schedule=DiskFaultSchedule(...)``
        Boundaries fault per the schedule: deterministic
        ``OSError(ENOSPC)`` at write/replace boundaries and
        ``OSError(EIO)`` at fsync boundaries.
    """

    def __init__(
        self,
        *,
        record: bool = False,
        crash_at: Optional[int] = None,
        tear: bool = False,
        schedule: Optional[DiskFaultSchedule] = None,
    ) -> None:
        if crash_at is not None and crash_at < 0:
            raise ValueError(f"crash_at must be non-negative, got {crash_at}")
        self.record = record
        self.crash_at = crash_at
        self.tear = tear
        self.schedule = schedule
        self.hits: List[Tuple[str, str, bool]] = []
        self._counts: dict = {}
        self._total = 0
        self._lock = threading.Lock()

    @property
    def total_hits(self) -> int:
        with self._lock:
            return self._total

    def visit(self, name: str, kind: Optional[str], path: Optional[PathLike]) -> None:
        """One boundary crossing: record it, then fault it if scheduled."""
        if kind is not None and kind not in _POINT_KINDS:
            raise ValueError(f"unknown crash-point kind {kind!r} at {name!r}")
        with self._lock:
            index = self._total
            self._total += 1
            hit = self._counts.get(name, 0)
            self._counts[name] = hit + 1
            self.hits.append((name, kind or "", path is not None))
        if self.record:
            return
        if self.crash_at is not None and index == self.crash_at:
            if self.tear and path is not None and kind == "write":
                seed = self.schedule.seed if self.schedule is not None else 0
                _tear_file(path, seed, name)
            raise SimulatedCrash(f"injected crash at point #{index}: {name}")
        schedule = self.schedule
        if schedule is None:
            return
        location = str(path) if path is not None else name
        if kind in ("write", "replace") and schedule.enospc_rate > 0.0:
            if schedule.draw(name, hit, "enospc") < schedule.enospc_rate:
                raise OSError(
                    errno.ENOSPC, "injected: no space left on device", location
                )
        if kind == "fsync" and schedule.fsync_error_rate > 0.0:
            if schedule.draw(name, hit, "fsync") < schedule.fsync_error_rate:
                raise OSError(
                    errno.EIO, "injected: fsync input/output error", location
                )

    def __repr__(self) -> str:
        mode = []
        if self.record:
            mode.append("record")
        if self.crash_at is not None:
            mode.append(f"crash_at={self.crash_at}" + ("+tear" if self.tear else ""))
        if self.schedule is not None:
            mode.append(f"schedule(seed={self.schedule.seed})")
        return f"DiskChaos({', '.join(mode) or 'inert'}, hits={self.total_hits})"


#: The installed controller; module-global (not thread-local) on purpose
#: — every pool thread of a run must share one fault schedule.
_ACTIVE: Optional[DiskChaos] = None


def crashpoint(
    name: str, kind: Optional[str] = None, path: Optional[PathLike] = None
) -> None:
    """Announce a storage boundary to the active controller, if any.

    ``name`` identifies the boundary (``cache.put.replace``), ``kind``
    classifies it for schedule-driven faults, and ``path`` — when the
    boundary has a file already on disk — enables torn-write injection.
    A no-op when no controller is installed.
    """
    chaos = _ACTIVE
    if chaos is None:
        return
    chaos.visit(name, kind, path)


@contextmanager
def using_disk_chaos(chaos: DiskChaos) -> Iterator[DiskChaos]:
    """Install ``chaos`` as the process-wide storage-fault controller."""
    global _ACTIVE
    previous = _ACTIVE
    _ACTIVE = chaos
    try:
        yield chaos
    finally:
        _ACTIVE = previous
