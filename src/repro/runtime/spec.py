"""Immutable run descriptions and their canonical fingerprints.

A *spec* is everything needed to reproduce one ensemble: the protocol
and its parameters, the allocation, the sampling effort, the recording
schedule, scheduled events, and the root seed.  Specs serve two roles:

* they are the unit the sharding layer splits and the executor ships
  to workers (so they must be picklable), and
* their canonical JSON form is hashed into the content address under
  which the merged result is cached (so the serialisation must be
  deterministic — sorted keys, plain types, no object identities).

Seeds are normalised to :class:`numpy.random.SeedSequence` at
construction.  A ``None`` seed draws fresh OS entropy which is then
*recorded* in the sequence, so such specs still fingerprint cleanly —
they simply never collide across invocations, which is exactly the
safe behaviour for a cache.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
from dataclasses import dataclass
from typing import Any, Optional, Sequence, Tuple

import numpy as np

from .._validation import ensure_positive_int
from ..core.miners import Allocation
from ..protocols.base import IncentiveProtocol
from ..sim.events import GameEvent
from ..sim.rng import RandomSource, SeedLike

__all__ = [
    "SimulationSpec",
    "SystemSpec",
    "as_seed_sequence",
    "spec_fingerprint",
]

#: Bump when the canonical form (and hence every cache key) changes.
_FINGERPRINT_VERSION = 1


def as_seed_sequence(seed: SeedLike) -> np.random.SeedSequence:
    """Normalise any seed-like value to a :class:`~numpy.random.SeedSequence`.

    Delegates to :class:`RandomSource` so the runtime and the engine
    share one normalisation (ints, sequences, generators, sources).
    """
    if isinstance(seed, np.random.SeedSequence):
        return seed
    return RandomSource(seed).sequence


@dataclass(frozen=True)
class SimulationSpec:
    """A complete, picklable description of one Monte Carlo ensemble.

    Parameters mirror :meth:`repro.sim.engine.MonteCarloEngine.run`;
    ``seed`` is normalised to a :class:`~numpy.random.SeedSequence` so
    the spec fingerprints and shards deterministically.
    """

    protocol: IncentiveProtocol
    allocation: Allocation
    trials: int
    horizon: int
    checkpoints: Optional[Tuple[int, ...]] = None
    events: Tuple[GameEvent, ...] = ()
    seed: SeedLike = None
    record_terminal_stakes: bool = True
    #: Advance path: "batched" (fused kernels) or "naive" (per-round
    #: loop).  The two are bit-identical, so the kernel deliberately
    #: does NOT enter the fingerprint — a cached result answers both.
    kernel: str = "batched"
    #: Artifact shape: "full" keeps every trial's trajectory
    #: (EnsembleResult), "stats" keeps mergeable sufficient statistics
    #: (StatsSummary) in O(1) memory per shard.  A *physics* knob — the
    #: two modes produce different bytes, so unlike ``kernel`` it DOES
    #: enter the fingerprint (with the sketch parameters it bakes in).
    reduce: str = "full"

    def __post_init__(self) -> None:
        if not isinstance(self.protocol, IncentiveProtocol):
            raise TypeError(
                f"protocol must be an IncentiveProtocol, got "
                f"{type(self.protocol).__name__}"
            )
        if not isinstance(self.allocation, Allocation):
            raise TypeError(
                f"allocation must be an Allocation, got "
                f"{type(self.allocation).__name__}"
            )
        object.__setattr__(self, "trials", ensure_positive_int("trials", self.trials))
        object.__setattr__(
            self, "horizon", ensure_positive_int("horizon", self.horizon)
        )
        if self.checkpoints is not None:
            from ..sim.checkpoints import validate_checkpoints

            object.__setattr__(
                self,
                "checkpoints",
                tuple(validate_checkpoints(self.checkpoints, self.horizon)),
            )
        object.__setattr__(self, "events", tuple(self.events))
        for event in self.events:
            if event.round_index > self.horizon:
                raise ValueError(
                    f"event at round {event.round_index} exceeds horizon "
                    f"{self.horizon}"
                )
        object.__setattr__(self, "seed", as_seed_sequence(self.seed))
        from ..core.stats import ensure_reduce_mode
        from ..sim.kernels import ensure_kernel_mode

        ensure_kernel_mode(self.kernel)
        ensure_reduce_mode(self.reduce)

    @property
    def seed_sequence(self) -> np.random.SeedSequence:
        """The normalised root seed of this spec."""
        return self.seed


@dataclass(frozen=True)
class SystemSpec:
    """A complete description of one node-level system ensemble.

    ``experiment`` is a :class:`repro.chainsim.harness.SystemExperiment`
    (duck-typed here to keep :mod:`repro.runtime` independent of
    :mod:`repro.chainsim`); ``repeats`` plays the role ``trials`` plays
    for simulations.
    """

    experiment: Any
    rounds: int
    repeats: int
    checkpoints: Optional[Tuple[int, ...]] = None
    seed: SeedLike = None
    #: Artifact shape, as on :class:`SimulationSpec`: fingerprinted.
    reduce: str = "full"

    def __post_init__(self) -> None:
        object.__setattr__(self, "rounds", ensure_positive_int("rounds", self.rounds))
        object.__setattr__(
            self, "repeats", ensure_positive_int("repeats", self.repeats)
        )
        from ..core.stats import ensure_reduce_mode

        ensure_reduce_mode(self.reduce)
        if self.checkpoints is not None:
            from ..sim.checkpoints import validate_checkpoints

            object.__setattr__(
                self,
                "checkpoints",
                tuple(validate_checkpoints(self.checkpoints, self.rounds)),
            )
        object.__setattr__(self, "seed", as_seed_sequence(self.seed))

    @property
    def seed_sequence(self) -> np.random.SeedSequence:
        """The normalised root seed of this spec."""
        return self.seed


# -- canonicalisation ---------------------------------------------------------


def _canonical(value: Any) -> Any:
    """Recursively convert ``value`` to a JSON-serialisable canonical form."""
    if value is None or isinstance(value, (bool, int, str)):
        return value
    if isinstance(value, float):
        return repr(value)
    if isinstance(value, np.integer):
        return int(value)
    if isinstance(value, np.floating):
        return repr(float(value))
    if isinstance(value, np.ndarray):
        return [_canonical(v) for v in value.tolist()]
    if isinstance(value, np.random.SeedSequence):
        return {
            "entropy": _canonical(value.entropy),
            "spawn_key": [int(k) for k in value.spawn_key],
            "pool_size": int(value.pool_size),
        }
    if isinstance(value, Allocation):
        return {
            "shares": _canonical(value.shares),
            "names": [m.name for m in value.miners],
        }
    if isinstance(value, GameEvent):
        return {
            "type": type(value).__name__,
            "fields": {
                k: _canonical(v)
                for k, v in sorted(dataclasses.asdict(value).items())
            },
        }
    if isinstance(value, (list, tuple)):
        return [_canonical(v) for v in value]
    if isinstance(value, dict):
        return {str(k): _canonical(v) for k, v in sorted(value.items())}
    if hasattr(value, "__dict__"):
        # Protocols, SystemExperiments, and other parameter objects:
        # type name plus their constructor-set attributes.  A class may
        # name attributes that must stay outside the content address in
        # ``_fingerprint_exclude_`` — knobs like SystemExperiment.fast
        # that select between bit-identical execution paths, so one
        # cached artifact correctly answers every setting (the exact
        # role SimulationSpec.kernel plays for Monte Carlo specs).
        exclude = getattr(type(value), "_fingerprint_exclude_", frozenset())
        return {
            "type": type(value).__name__,
            "params": {
                k: _canonical(v)
                for k, v in sorted(vars(value).items())
                if k not in exclude
            },
        }
    raise TypeError(f"cannot canonicalise {type(value).__name__} for fingerprinting")


def _reduce_payload(reduce_mode: str) -> Any:
    """Canonical fingerprint payload of the ``reduce`` physics knob.

    ``reduce`` changes the produced bytes, so it must enter the content
    address.  Stats mode additionally bakes the sketch parameters into
    the artifact (grid resolution, recorded epsilon/margin), so they
    are folded in too: changing the defaults in :mod:`repro.core.stats`
    invalidates stats-mode cache entries instead of corrupting them.
    """
    if reduce_mode == "full":
        return "full"
    from ..core.fairness import DEFAULT_EPSILON
    from ..core.stats import DEFAULT_BINS, DEFAULT_MARGIN

    return {
        "mode": "stats",
        "bins": DEFAULT_BINS,
        "epsilon": _canonical(DEFAULT_EPSILON),
        "margin": _canonical(DEFAULT_MARGIN),
    }


def spec_fingerprint(spec: Any, *, shards: Optional[int] = None) -> str:
    """The content address of a spec (hex SHA-256 of its canonical JSON).

    ``shards`` is the effective shard count of the plan the result was
    (or would be) produced under; it is part of the address because the
    merged arrays are bit-wise functions of the shard plan.

    ``SimulationSpec.kernel`` is deliberately absent from the payload:
    batched and naive advances produce bit-identical arrays, so one
    cached artifact correctly answers both.  ``reduce`` is deliberately
    *present*: full and stats artifacts hold different bytes, so the
    two modes must never share a cache entry.
    """
    if isinstance(spec, SimulationSpec):
        payload = {
            "kind": "simulation",
            "protocol": _canonical(spec.protocol),
            "allocation": _canonical(spec.allocation),
            "trials": spec.trials,
            "horizon": spec.horizon,
            "checkpoints": _canonical(spec.checkpoints),
            "events": _canonical(spec.events),
            "seed": _canonical(spec.seed_sequence),
            "record_terminal_stakes": spec.record_terminal_stakes,
            "reduce": _reduce_payload(spec.reduce),
        }
    elif isinstance(spec, SystemSpec):
        payload = {
            "kind": "system",
            "experiment": _canonical(spec.experiment),
            "rounds": spec.rounds,
            "repeats": spec.repeats,
            "checkpoints": _canonical(spec.checkpoints),
            "seed": _canonical(spec.seed_sequence),
            "reduce": _reduce_payload(spec.reduce),
        }
    else:
        raise TypeError(
            f"expected SimulationSpec or SystemSpec, got {type(spec).__name__}"
        )
    payload["version"] = _FINGERPRINT_VERSION
    payload["shards"] = shards
    encoded = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(encoded.encode("utf-8")).hexdigest()
