"""Sharded parallel execution and result caching.

The paper's evaluation is dominated by embarrassingly parallel work:
10,000-repeat Monte Carlo ensembles (:mod:`repro.sim`) and
hundreds-of-repeats node-level system runs (:mod:`repro.chainsim`).
This package provides the execution substrate that fans that work out
across processes and memoises finished results:

spec
    :class:`SimulationSpec` / :class:`SystemSpec` — immutable,
    picklable descriptions of one ensemble run, plus the canonical
    fingerprint used as the cache key.
sharding
    Deterministic splitting of a spec into per-worker shards whose
    seeds derive from :meth:`RandomSource.spawn`, so the merged result
    is bit-identical for any worker count given a fixed shard plan.
executor
    The :class:`Executor` protocol with serial, :mod:`multiprocessing`
    and thread-pool backends (threads suit the GIL-releasing batched
    kernels), including progress and error aggregation.
cache
    :class:`ResultCache` — content-addressed ``.npz`` storage layered
    on :mod:`repro.sim.persistence`.
runner
    :class:`ParallelRunner` — plan, fan out, merge, cache.  Merging
    streams by default: shard results fold into a
    :class:`~repro.core.results.MergeAccumulator` in plan order as
    they complete (out-of-order completions staged in a bounded
    :class:`ReorderBuffer`), capping in-flight shard results at
    ``O(workers)`` while staying bit-identical to the batch merge.
context
    An ambient default runtime consulted by the experiment layer so
    ``--workers``/``--cache`` flags reach every figure without
    threading arguments through each config.
faults
    :class:`RetryPolicy` and the fault vocabulary: shards are
    idempotent pure functions of the plan, so transient failures are
    retried with deterministic backoff, hung workers are abandoned or
    killed under a per-shard ``timeout``, dead pools respawn, and
    unrecoverable pools degrade to serial with a loud warning — all
    with bit-identical results.
journal
    :class:`RunJournal` — the JSONL sidecar that checkpoints per-spec
    shard completion (artifacts live in the cache), so an interrupted
    grid resumes (CLI ``--resume``) recomputing only unjournaled
    shards.
chaos
    :class:`ChaosExecutor` — seeded, deterministic fault injection
    (failures, delays, hangs, corrupt payloads, worker crashes) for
    the differential suites proving all of the above changes no bits.
integrity
    End-to-end SHA-256 checksums over every cached artifact (sidecar
    digests verified on read, mismatches quarantined and recomputed),
    ENOSPC degradation to pass-through behind
    :class:`CacheDegradedWarning`, and :func:`fsck` — the scan/repair
    engine behind the ``repro-fsck`` doctor CLI.
diskchaos
    :class:`DiskChaos` — seeded, deterministic *storage* fault
    injection (torn writes, failed fsyncs, full disks, hard crashes at
    every write/fsync/rename boundary) for the crash-point sweep
    suites proving recovery never serves torn bytes.
"""

from .cache import ResultCache
from .chaos import ChaosExecutor, ChaosSchedule
from .diskchaos import (
    DiskChaos,
    DiskFaultSchedule,
    SimulatedCrash,
    crashpoint,
    using_disk_chaos,
)
from .integrity import CacheDegradedWarning, FsckReport, fsck
from .context import get_default_runtime, set_default_runtime, using_runtime
from .executor import (
    EXECUTOR_BACKENDS,
    Executor,
    MultiprocessingExecutor,
    SerialExecutor,
    ShardExecutionError,
    ThreadExecutor,
    make_executor,
)
from .faults import (
    PoolDegradedWarning,
    RetryPolicy,
    ShardFailure,
    TransientShardError,
    WorkerCrashError,
    WorkerTimeoutError,
)
from .journal import RunJournal, shard_fingerprint
from ..core.results import MergeAccumulator
from .runner import ParallelRunner, ReorderBuffer
from .sharding import DEFAULT_SHARD_COUNT, Shard, ShardPlan, plan_shards, split_evenly
from .spec import SimulationSpec, SystemSpec, spec_fingerprint

__all__ = [
    "ResultCache",
    "CacheDegradedWarning",
    "ChaosExecutor",
    "ChaosSchedule",
    "DiskChaos",
    "DiskFaultSchedule",
    "FsckReport",
    "SimulatedCrash",
    "crashpoint",
    "fsck",
    "using_disk_chaos",
    "PoolDegradedWarning",
    "RetryPolicy",
    "RunJournal",
    "ShardFailure",
    "TransientShardError",
    "WorkerCrashError",
    "WorkerTimeoutError",
    "shard_fingerprint",
    "get_default_runtime",
    "set_default_runtime",
    "using_runtime",
    "EXECUTOR_BACKENDS",
    "Executor",
    "MergeAccumulator",
    "MultiprocessingExecutor",
    "SerialExecutor",
    "ShardExecutionError",
    "ThreadExecutor",
    "make_executor",
    "ParallelRunner",
    "ReorderBuffer",
    "DEFAULT_SHARD_COUNT",
    "Shard",
    "ShardPlan",
    "plan_shards",
    "split_evenly",
    "SimulationSpec",
    "SystemSpec",
    "spec_fingerprint",
]
