"""Storage integrity: checksummed artifacts, quarantine, and ``repro-fsck``.

The content-addressed cache is only sound as a memoization layer if
what it serves is verifiably what was written.  This module is the
detect-verify-repair side of that contract:

digests
    Every :meth:`ResultCache.put` records the artifact's SHA-256 in a
    sidecar under ``<cache>/.sums/<key>.sha256`` (written atomically
    through the same ``.tmp`` staging directory as the artifacts).
    :meth:`ResultCache.get` re-hashes on read and refuses to serve a
    mismatch.  Verification is an execution knob — it never enters
    cache fingerprints (doctrine): a verified and an unverified run
    share their artifacts.
quarantine
    Mismatched artifacts move (atomic rename) into
    ``<cache>/quarantine/`` with their sidecar — preserved as evidence
    rather than silently deleted, invisible to the byte budget and the
    read path, counted and traced.
fsck
    :func:`fsck` scans a cache directory (and optionally its journal
    sidecar) for corrupt, unrecorded and orphaned entries;
    ``repro-fsck`` is the console doctor around it, with ``--repair``
    to quarantine, adopt digests, evict orphans and compact the
    journal.

:class:`CacheDegradedWarning` is the loud signal for the graceful-
degradation path: a full disk (``ENOSPC``) turns caching off for the
rest of the run instead of failing it — results still compute, the
warning and :meth:`ResultCache.stats` say so.
"""

from __future__ import annotations

import argparse
import hashlib
import json
import os
import pathlib
import sys
import threading
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple, Union

from ..obs.metrics import get_metrics
from ..sim.persistence import load_result
from .diskchaos import crashpoint

__all__ = [
    "CacheDegradedWarning",
    "FsckReport",
    "artifact_digest",
    "clear_digest",
    "digest_path",
    "fsck",
    "main",
    "quarantine_artifact",
    "read_digest",
    "write_digest",
]

PathLike = Union[str, pathlib.Path]

#: Digest sidecars live here, one ``<key>.sha256`` per artifact.
SUMS_DIR = ".sums"

#: Mismatched artifacts are moved here (with their sidecar) on detection.
QUARANTINE_DIR = "quarantine"

#: Staging files older than this are leftovers of killed writers.
#: Generous on purpose: a *live* writer's staging file is seconds old,
#: so an hour can only catch the dead.
_STALE_STAGING_SECONDS = 3600.0

_HEX = set("0123456789abcdef")


class CacheDegradedWarning(RuntimeWarning):
    """The durable layer degraded (full disk) instead of failing the run.

    Raised-as-warning exactly once per degraded component: results keep
    computing, but nothing further is stored, and ``stats()`` reports
    ``degraded`` rather than pretending the cache is healthy.
    """


def note_storage_error(component: str, op: str) -> None:
    """Count a swallowed storage error so "best effort" is never silent.

    Every ``except OSError`` in the storage layer that chooses to carry
    on must at least leave this breadcrumb — the EXC004 lint rule
    rejects handlers that drop the error without it.
    """
    metrics = get_metrics()
    if metrics.enabled:
        metrics.counter(f"{component}.os_errors.{op}").inc()


# -- digest sidecars -----------------------------------------------------------


def artifact_digest(path: PathLike) -> str:
    """The SHA-256 hex digest of a file's content, read in chunks."""
    sha = hashlib.sha256()
    with open(path, "rb") as handle:
        for chunk in iter(lambda: handle.read(1 << 20), b""):
            sha.update(chunk)
    return sha.hexdigest()


def digest_path(cache_dir: PathLike, key: str) -> pathlib.Path:
    """Where the digest sidecar for ``key`` lives."""
    return pathlib.Path(cache_dir) / SUMS_DIR / f"{key}.sha256"


def read_digest(cache_dir: PathLike, key: str) -> Optional[str]:
    """The recorded digest for ``key``, or None when absent/unreadable.

    A torn or garbled sidecar reads as None — the artifact is then
    treated like an unrecorded (legacy) entry and its digest re-adopted
    from content, never trusted blindly.
    """
    try:
        text = digest_path(cache_dir, key).read_text().strip()
    except FileNotFoundError:
        return None
    except OSError:
        note_storage_error("cache", "sum_read")
        return None
    if len(text) == 64 and set(text) <= _HEX:
        return text
    return None


def write_digest(cache_dir: PathLike, key: str, digest: str) -> pathlib.Path:
    """Record ``digest`` for ``key``, atomically; returns the sidecar path.

    Staged through ``<cache>/.tmp`` (the same staging directory as the
    artifacts, so the stale-staging sweep covers torn sidecar writes
    too) and published with an atomic rename.  Sidecars are advisory —
    a lost one only costs re-adoption — so they are not fsync'd.
    """
    root = pathlib.Path(cache_dir)
    staging = root / ".tmp"
    staging.mkdir(parents=True, exist_ok=True)
    (root / SUMS_DIR).mkdir(parents=True, exist_ok=True)
    temporary = staging / (
        f"{key}-{os.getpid()}-{threading.get_ident()}.sha256"
    )
    crashpoint("cache.sum.write", kind="write", path=temporary)
    temporary.write_text(digest + "\n")
    crashpoint("cache.sum.staged", kind="write", path=temporary)
    target = digest_path(root, key)
    crashpoint("cache.sum.replace", kind="replace", path=temporary)
    os.replace(temporary, target)
    return target


def clear_digest(cache_dir: PathLike, key: str) -> None:
    """Drop the digest sidecar for ``key`` (evicted/discarded artifact)."""
    try:
        digest_path(cache_dir, key).unlink()
    except FileNotFoundError:
        pass
    except OSError:
        note_storage_error("cache", "sum_unlink")


# -- quarantine ----------------------------------------------------------------


def quarantine_artifact(cache_dir: PathLike, key: str) -> bool:
    """Move ``key``'s artifact (and sidecar) into ``quarantine/``.

    Returns True iff *this call* removed the artifact from the cache
    root — the caller that sees True owns the byte-budget deduction and
    the quarantine counter, so concurrent detectors of the same corrupt
    entry can never double-subtract.  The atomic rename guarantees at
    most one caller wins.

    If the move itself fails, deletion is the fallback: a corrupt
    artifact must never stay servable.
    """
    root = pathlib.Path(cache_dir)
    source = root / f"{key}.npz"
    quarantine = root / QUARANTINE_DIR
    moved = False
    try:
        quarantine.mkdir(parents=True, exist_ok=True)
        os.replace(source, quarantine / f"{key}.npz")
        moved = True
    except FileNotFoundError:
        return False
    except OSError:
        note_storage_error("cache", "quarantine_move")
        try:
            source.unlink()
        except FileNotFoundError:
            return False
        except OSError:
            note_storage_error("cache", "quarantine_unlink")
            return False
    # The sidecar records what the artifact *should* have hashed to —
    # keep it next to the evidence (or drop it with a deleted artifact).
    sidecar = digest_path(root, key)
    try:
        if moved:
            os.replace(sidecar, quarantine / f"{key}.sha256")
        else:
            sidecar.unlink()
    except FileNotFoundError:
        pass
    except OSError:
        note_storage_error("cache", "quarantine_sum")
    return True


# -- fsck ----------------------------------------------------------------------


@dataclass
class FsckReport:
    """What :func:`fsck` found (and, under ``repair``, did)."""

    cache_dir: str
    journal_path: Optional[str] = None
    repaired: bool = False
    artifacts: int = 0
    verified: int = 0
    corrupt: List[str] = field(default_factory=list)
    missing_sums: List[str] = field(default_factory=list)
    orphaned_sums: List[str] = field(default_factory=list)
    stale_staging: int = 0
    quarantine_entries: int = 0
    journal_records: int = 0
    journal_skipped: int = 0
    journal_specs: int = 0
    orphaned_checkpoints: List[str] = field(default_factory=list)
    journal_missing: List[str] = field(default_factory=list)
    actions: List[str] = field(default_factory=list)

    @property
    def clean(self) -> bool:
        """No repair-worthy findings.

        ``journal_missing`` (journaled artifacts the cache no longer
        holds) is deliberately *not* an issue: the journal is advisory
        and a resume simply recomputes.  ``quarantine_entries`` is
        evidence of past repairs, not a present problem.
        """
        return not (
            self.corrupt
            or self.missing_sums
            or self.orphaned_sums
            or self.orphaned_checkpoints
            or self.stale_staging
            or self.journal_skipped
        )

    def as_dict(self) -> dict:
        return {
            "cache_dir": self.cache_dir,
            "journal_path": self.journal_path,
            "repaired": self.repaired,
            "artifacts": self.artifacts,
            "verified": self.verified,
            "corrupt": list(self.corrupt),
            "missing_sums": list(self.missing_sums),
            "orphaned_sums": list(self.orphaned_sums),
            "stale_staging": self.stale_staging,
            "quarantine_entries": self.quarantine_entries,
            "journal_records": self.journal_records,
            "journal_skipped": self.journal_skipped,
            "journal_specs": self.journal_specs,
            "orphaned_checkpoints": list(self.orphaned_checkpoints),
            "journal_missing": list(self.journal_missing),
            "actions": list(self.actions),
            "clean": self.clean,
        }

    def render(self) -> str:
        lines = [f"repro-fsck: {self.cache_dir}"]
        lines.append(
            f"  artifacts: {self.artifacts} "
            f"(verified {self.verified}, corrupt {len(self.corrupt)}, "
            f"unrecorded {len(self.missing_sums)})"
        )
        lines.append(
            f"  sums: orphaned {len(self.orphaned_sums)}; "
            f"staging: stale {self.stale_staging}; "
            f"quarantine: {self.quarantine_entries} entr"
            f"{'y' if self.quarantine_entries == 1 else 'ies'}"
        )
        if self.journal_path is not None:
            lines.append(
                f"  journal: {self.journal_records} records "
                f"(skipped {self.journal_skipped}, "
                f"specs {self.journal_specs}, "
                f"orphaned checkpoints {len(self.orphaned_checkpoints)}, "
                f"missing artifacts {len(self.journal_missing)})"
            )
        for key in self.corrupt:
            lines.append(f"  corrupt: {key}")
        for key in self.orphaned_sums:
            lines.append(f"  orphaned sum: {key}")
        for action in self.actions:
            lines.append(f"  repaired: {action}")
        lines.append(
            "  status: " + ("clean" if self.clean else "ISSUES FOUND"
                            + ("" if self.repaired else " (rerun with --repair)"))
        )
        return "\n".join(lines)


def _scan_journal(
    path: pathlib.Path,
) -> Tuple[Set[str], Dict[str, Dict[int, str]], int, int]:
    """Raw journal scan: ``(completed specs, spec -> shard records,
    record count, skipped lines)``.

    Unlike :class:`~repro.runtime.journal.RunJournal` replay — which
    drops a finished spec's shard records as dead weight — fsck needs
    those records to find the orphaned checkpoint artifacts they pin.
    """
    specs: Set[str] = set()
    shards: Dict[str, Dict[int, str]] = {}
    records = 0
    skipped = 0
    try:
        with open(path, "r") as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                try:
                    record = json.loads(line)
                except json.JSONDecodeError:
                    skipped += 1
                    continue
                if not isinstance(record, dict):
                    skipped += 1
                    continue
                kind = record.get("e")
                if kind == "header":
                    continue
                if kind == "spec" and isinstance(record.get("spec"), str):
                    specs.add(record["spec"])
                    records += 1
                elif (
                    kind == "shard"
                    and isinstance(record.get("spec"), str)
                    and isinstance(record.get("shard"), int)
                    and isinstance(record.get("key"), str)
                ):
                    shards.setdefault(record["spec"], {})[record["shard"]] = (
                        record["key"]
                    )
                    records += 1
                else:
                    skipped += 1
    except OSError:
        note_storage_error("fsck", "journal_read")
    return specs, shards, records, skipped


def fsck(
    cache_dir: PathLike,
    journal: Optional[PathLike] = None,
    *,
    repair: bool = False,
) -> FsckReport:
    """Scan a cache directory (and journal) for integrity problems.

    With ``repair=True``: corrupt artifacts are quarantined, unrecorded
    digests adopted from content, orphaned sidecars and checkpoint
    artifacts removed, stale staging swept, and the journal compacted.
    Without it, the scan is strictly read-only.
    """
    root = pathlib.Path(cache_dir)
    report = FsckReport(
        cache_dir=str(root),
        journal_path=None if journal is None else str(journal),
        repaired=repair,
    )

    # -- artifacts vs digest sidecars ------------------------------------
    known_keys: Set[str] = set()
    for path in sorted(root.glob("*.npz")):
        key = path.stem
        known_keys.add(key)
        report.artifacts += 1
        try:
            actual = artifact_digest(path)
        except OSError:
            note_storage_error("fsck", "digest")
            report.corrupt.append(key)
            continue
        expected = read_digest(root, key)
        if expected is None:
            # No recorded digest (pre-integrity cache, or a torn
            # sidecar): trust content only if it still loads.
            try:
                load_result(path)
            except Exception:
                report.corrupt.append(key)
            else:
                report.missing_sums.append(key)
                if repair:
                    write_digest(root, key, actual)
                    report.actions.append(f"adopted digest for {key[:12]}")
        elif actual == expected:
            report.verified += 1
        else:
            report.corrupt.append(key)
    if repair:
        for key in report.corrupt:
            if quarantine_artifact(root, key):
                known_keys.discard(key)
                report.actions.append(f"quarantined {key[:12]}")

    # -- orphaned sidecars ------------------------------------------------
    sums = root / SUMS_DIR
    if sums.is_dir():
        for path in sorted(sums.glob("*.sha256")):
            if path.stem in known_keys:
                continue
            report.orphaned_sums.append(path.stem)
            if repair:
                clear_digest(root, path.stem)
                report.actions.append(f"removed orphaned sum {path.stem[:12]}")

    # -- stale staging ----------------------------------------------------
    staging = root / ".tmp"
    if staging.is_dir():
        cutoff = time.time() - _STALE_STAGING_SECONDS
        for path in sorted(staging.iterdir()):
            try:
                stale = path.stat().st_mtime <= cutoff
            except OSError:
                note_storage_error("fsck", "staging_stat")
                continue
            if not stale:
                continue
            report.stale_staging += 1
            if repair:
                try:
                    path.unlink()
                    report.actions.append(f"swept stale staging {path.name}")
                except OSError:
                    note_storage_error("fsck", "staging_unlink")

    # -- quarantine (informational) ---------------------------------------
    quarantine = root / QUARANTINE_DIR
    if quarantine.is_dir():
        report.quarantine_entries = sum(
            1 for _ in quarantine.glob("*.npz")
        )

    # -- journal ----------------------------------------------------------
    if journal is not None and pathlib.Path(journal).exists():
        jpath = pathlib.Path(journal)
        specs, shards, records, skipped = _scan_journal(jpath)
        report.journal_records = records
        report.journal_skipped = skipped
        report.journal_specs = len(specs)
        for spec in sorted(shards):
            for ordinal in sorted(shards[spec]):
                key = shards[spec][ordinal]
                if spec in specs and key in known_keys:
                    # The spec's merged artifact landed; its per-shard
                    # checkpoints are dead weight the runner normally
                    # discards — a crash mid-discard leaves them pinned.
                    report.orphaned_checkpoints.append(key)
                elif spec not in specs and key not in known_keys:
                    report.journal_missing.append(key)
        for spec in sorted(specs):
            if spec not in known_keys:
                report.journal_missing.append(spec)
        if repair:
            for key in report.orphaned_checkpoints:
                try:
                    (root / f"{key}.npz").unlink()
                except FileNotFoundError:
                    continue
                except OSError:
                    note_storage_error("fsck", "checkpoint_unlink")
                    continue
                clear_digest(root, key)
                report.actions.append(f"evicted orphaned checkpoint {key[:12]}")
            from .journal import RunJournal

            with RunJournal(jpath) as live:
                reclaimed = live.compact()
            report.actions.append(f"compacted journal (-{reclaimed} bytes)")

    return report


# -- CLI -----------------------------------------------------------------------


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-fsck",
        description=(
            "Check (and repair) a repro result cache: verify artifact "
            "digests, find orphaned sidecars and stale staging, and "
            "cross-check the resume journal."
        ),
    )
    parser.add_argument("cache", help="cache directory to check")
    parser.add_argument(
        "--journal",
        default=None,
        metavar="PATH",
        help="journal sidecar to cross-check "
        "(default: <cache>/journal.jsonl when present)",
    )
    parser.add_argument(
        "--json",
        action="store_true",
        help="emit the report as JSON instead of text",
    )
    parser.add_argument(
        "--repair",
        action="store_true",
        help="quarantine corrupt artifacts, adopt missing digests, "
        "remove orphans, sweep stale staging, compact the journal",
    )
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; exit 0 when (post-repair) clean, 1 otherwise."""
    args = build_parser().parse_args(argv)
    root = pathlib.Path(args.cache)
    if not root.is_dir():
        print(f"repro-fsck: {args.cache}: not a directory", file=sys.stderr)
        return 2
    journal: Optional[pathlib.Path] = None
    if args.journal is not None:
        journal = pathlib.Path(args.journal)
    elif (root / "journal.jsonl").exists():
        journal = root / "journal.jsonl"
    report = fsck(root, journal=journal, repair=args.repair)
    # After a repair, the exit code reflects a fresh read-only re-scan:
    # "did the repair actually leave the cache clean", not "did we try".
    verdict = fsck(root, journal=journal) if args.repair else report
    if args.json:
        payload = report.as_dict()
        payload["clean"] = verdict.clean
        print(json.dumps(payload, indent=2, sort_keys=True))
    else:
        print(report.render())
        if args.repair:
            print(
                "post-repair: "
                + ("clean" if verdict.clean else "issues remain")
            )
    return 0 if verdict.clean else 1


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
