"""Content-addressed storage of merged ensemble results.

The cache is a directory of ``<sha256>.npz`` artifacts written through
:mod:`repro.sim.persistence`, keyed by the canonical fingerprint of
the producing spec (:func:`repro.runtime.spec.spec_fingerprint`).
Because the key covers every run parameter *and* the shard plan, a hit
is guaranteed to be byte-equal to what re-running the spec would
produce — repeated experiment invocations become a single ``.npz``
load.

Corrupt or truncated entries (e.g. a previous run killed mid-write)
are treated as misses and evicted; writes go through a temp file and
an atomic rename so readers never observe partial artifacts.  An
optional ``max_bytes`` budget bounds the directory: once a write
pushes the stored artifacts over it, least-recently-used entries are
evicted (and counted in :meth:`ResultCache.stats`).

Integrity (:mod:`repro.runtime.integrity`) closes the end-to-end loop:
every put records the artifact's SHA-256 in a sidecar and every get
re-hashes before serving (``verify=False`` opts out; the knob never
enters fingerprints).  A mismatch — bit rot, torn write that still
parses, a tampered file — is moved to ``<cache>/quarantine/`` and read
as a miss, so what the cache serves is always verifiably what was
written.  A full disk (``ENOSPC``) degrades the cache to pass-through
behind a :class:`~repro.runtime.integrity.CacheDegradedWarning`
instead of failing the run, and every write/fsync/rename boundary is
announced via :func:`repro.runtime.diskchaos.crashpoint` so the chaos
sweep can prove recovery at each one.

Every operation is safe under concurrent readers and writers — the
streaming merge path stores each spec's artifact *mid-dispatch* as its
last shard folds, so on the threads backend puts, gets, and budget
evictions may interleave freely.
"""

from __future__ import annotations

import errno
import os
import pathlib
import threading
import time
import uuid
import warnings
from typing import Optional, Union

from ..core.results import EnsembleResult
from ..core.stats import StatsSummary
from ..obs.metrics import get_metrics
from ..obs.trace import get_tracer
from ..sim.persistence import load_result, save_result
from .diskchaos import crashpoint
from .integrity import (
    _STALE_STAGING_SECONDS,
    SUMS_DIR,
    CacheDegradedWarning,
    artifact_digest,
    clear_digest,
    note_storage_error,
    quarantine_artifact,
    read_digest,
    write_digest,
)

__all__ = ["ResultCache"]

PathLike = Union[str, pathlib.Path]


def _fsync_path(path: PathLike, point: str = "cache.fsync") -> None:
    """Best-effort fsync of a file or directory (directory fsync is what
    makes an atomic rename durable on POSIX; both are advisory on
    platforms that refuse — but a refusal is counted, never silent)."""
    try:
        fd = os.open(str(path), os.O_RDONLY)
    except OSError:
        note_storage_error("cache", "fsync_open")
        return
    try:
        crashpoint(point, kind="fsync", path=path)
        os.fsync(fd)
    except OSError:
        note_storage_error("cache", "fsync")
    finally:
        os.close(fd)


class ResultCache:
    """A directory of content-addressed result artifacts.

    Artifacts are :class:`EnsembleResult` trajectories or
    ``reduce="stats"`` :class:`StatsSummary` sketches — the fingerprint
    carries the ``reduce`` knob, so one key only ever maps to one kind.

    Parameters
    ----------
    directory:
        Cache root; created on first use.
    max_bytes:
        Optional size budget for the stored artifacts.  When a
        :meth:`put` pushes the total artifact size above the budget,
        the least-recently-used entries (hits refresh recency) are
        evicted until the cache fits again — the entry just written is
        never evicted, so a single oversized result still lands and
        simply has the cache to itself.  ``None`` (default) means
        unbounded.
    verify:
        Whether :meth:`get` re-hashes artifacts against their recorded
        SHA-256 before serving (default True).  A mismatch is
        quarantined and read as a miss; artifacts without a recorded
        digest (pre-integrity caches) are adopted on first read.  An
        execution knob: it never enters cache fingerprints, so
        verified and unverified runs share their artifacts.

    Examples
    --------
    >>> import tempfile
    >>> from repro.protocols import ProofOfWork
    >>> from repro.core.miners import Allocation
    >>> from repro.runtime import ParallelRunner, SimulationSpec
    >>> spec = SimulationSpec(ProofOfWork(0.01), Allocation.two_miners(0.2),
    ...                       trials=50, horizon=100, seed=7)
    >>> with tempfile.TemporaryDirectory() as root:
    ...     runner = ParallelRunner(cache=root)
    ...     cold = runner.run(spec)   # simulates, stores
    ...     warm = runner.run(spec)   # loads
    ...     runner.cache.hits
    1
    """

    def __init__(
        self,
        directory: PathLike,
        *,
        max_bytes: Optional[int] = None,
        verify: bool = True,
    ) -> None:
        self.directory = pathlib.Path(directory)
        if self.directory.exists() and not self.directory.is_dir():
            raise ValueError(
                f"cache path {str(self.directory)!r} exists and is not a directory"
            )
        if max_bytes is not None and max_bytes <= 0:
            raise ValueError(f"max_bytes must be positive, got {max_bytes!r}")
        self.max_bytes = max_bytes
        self.verify = verify
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.quarantined = 0
        self.io_errors = 0
        # Set once ENOSPC proves the disk full: the cache turns into a
        # pass-through (gets still serve, puts stop) behind one loud
        # CacheDegradedWarning, and stats() reports it.
        self.degraded = False
        # Approximate occupancy for budgeted caches: initialized by one
        # directory scan, then advanced by put sizes so the common
        # under-budget put stays O(1).  Every over-budget rescan (and
        # any concurrent writer's evictions it observes) re-syncs it.
        self._approx_bytes: Optional[int] = None
        # Counter updates must be atomic: a thread-backend run hits
        # get/put from every pool thread at once.
        self._stats_lock = threading.Lock()
        # Writers killed mid-put leave files in .tmp that no rename will
        # ever claim; sweep the clearly-dead ones (by age, so a live
        # concurrent writer's staging is untouched).  Staging files are
        # never served and never counted by the byte budget either way
        # — _scan_bytes only globs the cache root.
        self._sweep_stale_staging()

    def _sweep_stale_staging(self) -> int:
        """Delete staging leftovers older than the staleness horizon."""
        staging = self.directory / ".tmp"
        if not staging.is_dir():
            return 0
        removed = 0
        cutoff = time.time() - _STALE_STAGING_SECONDS
        for path in staging.iterdir():
            try:
                if path.stat().st_mtime <= cutoff:
                    path.unlink()
                    removed += 1
            except OSError:
                note_storage_error("cache", "staging_sweep")
                continue
        return removed

    def path_for(self, key: str) -> pathlib.Path:
        """The artifact path a fingerprint maps to."""
        if not key or any(c in key for c in "/\\"):
            raise ValueError(f"invalid cache key {key!r}")
        return self.directory / f"{key}.npz"

    def __contains__(self, key: str) -> bool:
        return self.path_for(key).exists()

    def get(self, key: str) -> Union[EnsembleResult, StatsSummary, None]:
        """Load the result stored under ``key``, or None on a miss.

        Artifacts whose bytes no longer match their recorded SHA-256
        are quarantined and count as misses (unless ``verify=False``);
        unreadable artifacts count as misses and are evicted so the
        slot can be rewritten.
        """
        tracer = get_tracer()
        if tracer.enabled:
            # Truncated key only: enough to correlate spans with
            # artifacts, without bloating every trace record.
            with tracer.span("cache.get", key=key[:12]) as span:
                result = self._get(key)
                span.set("hit", result is not None)
            return result
        return self._get(key)

    def _get(self, key: str) -> Union[EnsembleResult, StatsSummary, None]:
        path = self.path_for(key)
        if not path.exists():
            self._count("misses")
            return None
        if self.verify and not self._verify_artifact(key, path):
            self._count("misses")
            return None
        try:
            result = load_result(path)
        except Exception:
            removed = 0
            if self.max_bytes is not None:
                try:
                    removed = path.stat().st_size
                except OSError:
                    removed = 0
            try:
                path.unlink()
            except FileNotFoundError:
                # Another reader evicted it between stat and unlink and
                # already deducted the bytes; deducting again would
                # undercount occupancy.
                removed = 0
            except OSError:
                removed = 0
            clear_digest(self.directory, key)
            if removed:
                # Keep the running occupancy estimate honest: a corrupt
                # artifact evicted here would otherwise stay counted
                # until the next over-budget rescan and trigger
                # premature LRU evictions of live entries.
                with self._stats_lock:
                    if self._approx_bytes is not None:
                        self._approx_bytes = max(0, self._approx_bytes - removed)
            self._count("misses")
            return None
        if self.max_bytes is not None:
            try:
                # Refresh recency so the LRU eviction order tracks use,
                # not just creation.  Unbounded caches never consult
                # recency, so their artifact mtimes are left alone.
                os.utime(path, None)
            except OSError:
                note_storage_error("cache", "utime")
        self._count("hits")
        return result

    def _verify_artifact(self, key: str, path: pathlib.Path) -> bool:
        """Whether the artifact's bytes match its recorded digest.

        Artifacts without a recorded digest (written before the
        integrity layer, or whose sidecar write was torn) are
        *adopted*: their content digest is recorded so the next read
        verifies end-to-end.  A mismatch quarantines the artifact and
        reads as a miss — never served, never silently deleted.
        """
        try:
            actual = artifact_digest(path)
        except OSError:
            # Vanished between exists() and open (concurrent eviction)
            # or unreadable: let the load path classify it.
            note_storage_error("cache", "digest")
            return True
        expected = read_digest(self.directory, key)
        if expected is None:
            try:
                write_digest(self.directory, key, actual)
            except OSError:
                note_storage_error("cache", "sum_write")
            metrics = get_metrics()
            if metrics.enabled:
                metrics.counter("cache.sums_adopted").inc()
            return True
        if actual == expected:
            return True
        self._quarantine(key, path)
        return False

    def _quarantine(self, key: str, path: pathlib.Path) -> None:
        """Move a digest-mismatched artifact out of the serving path.

        Only the caller whose rename wins counts the quarantine and
        deducts the bytes — concurrent detectors of the same corrupt
        entry can never double-subtract from the budget.
        """
        size = 0
        if self.max_bytes is not None:
            try:
                size = path.stat().st_size
            except OSError:
                size = 0
        if not quarantine_artifact(self.directory, key):
            return
        with self._stats_lock:
            self.quarantined += 1
            if size and self._approx_bytes is not None:
                self._approx_bytes = max(0, self._approx_bytes - size)
        metrics = get_metrics()
        if metrics.enabled:
            metrics.counter("cache.quarantined").inc()
            if size:
                metrics.counter("cache.quarantined_bytes").inc(size)
        tracer = get_tracer()
        if tracer.enabled:
            tracer.event("cache.quarantine", key=key[:12], bytes=size)

    def _count(self, counter: str) -> None:
        with self._stats_lock:
            setattr(self, counter, getattr(self, counter) + 1)
        metrics = get_metrics()
        if metrics.enabled:
            metrics.counter(f"cache.{counter}").inc()

    def put(
        self, key: str, result: Union[EnsembleResult, StatsSummary]
    ) -> pathlib.Path:
        """Store ``result`` under ``key``, atomically; returns the path.

        Writes land in a ``.tmp`` subdirectory first so a killed run
        can never leave a partial (or phantom) entry among the
        artifacts, then move into place with an atomic rename.  The
        staging name is unique per writer — pid, thread id and a
        random component — so concurrent threads (or processes) racing
        to store the same key each write their own file and the last
        atomic rename wins intact.

        A full disk (``ENOSPC``) degrades the cache to pass-through
        behind a :class:`CacheDegradedWarning`: this and every further
        put returns the would-be path without storing anything.
        """
        tracer = get_tracer()
        if tracer.enabled:
            with tracer.span("cache.put", key=key[:12]) as span:
                path = self._put(key, result)
                try:
                    span.set("bytes", path.stat().st_size)
                except OSError:
                    note_storage_error("cache", "stat")
            return path
        return self._put(key, result)

    def _put(
        self, key: str, result: Union[EnsembleResult, StatsSummary]
    ) -> pathlib.Path:
        path = self.path_for(key)
        if self.degraded:
            metrics = get_metrics()
            if metrics.enabled:
                metrics.counter("cache.puts_skipped_degraded").inc()
            return path
        try:
            return self._write(key, result, path)
        except OSError as error:
            if error.errno == errno.ENOSPC:
                self._degrade(error)
                return path
            with self._stats_lock:
                self.io_errors += 1
            metrics = get_metrics()
            if metrics.enabled:
                metrics.counter("cache.io_errors").inc()
            raise

    def _write(
        self,
        key: str,
        result: Union[EnsembleResult, StatsSummary],
        path: pathlib.Path,
    ) -> pathlib.Path:
        staging = self.directory / ".tmp"
        staging.mkdir(parents=True, exist_ok=True)
        temporary = staging / (
            f"{key}-{os.getpid()}-{threading.get_ident()}"
            f"-{uuid.uuid4().hex[:8]}.npz"
        )
        try:
            crashpoint("cache.put.save", kind="write", path=temporary)
            written = save_result(result, temporary)
            crashpoint("cache.put.staged", kind="write", path=written)
            # Durability before visibility: the staging bytes are
            # fsync'd before the rename publishes them, and the
            # directory after, so a crash (or power cut) can never
            # leave a *visible* artifact with unwritten tails — a
            # half-staged file just stays in .tmp, invisible to readers
            # and the byte budget, until swept.
            _fsync_path(written, point="cache.put.fsync")
            # The digest is recorded before the artifact is published,
            # so no reader ever sees an artifact whose sidecar write is
            # still pending.  A crash between the two is safe either
            # way: same-key artifacts are byte-identical by doctrine,
            # so an early sidecar matches whatever artifact it meets,
            # and a sidecar without any artifact is just an orphan for
            # fsck to sweep.
            write_digest(self.directory, key, artifact_digest(written))
            replaced = 0
            if self.max_bytes is not None:
                try:
                    # Same-key overwrite: the bytes being replaced
                    # leave the directory with the rename and must not
                    # stay counted.
                    replaced = path.stat().st_size
                except OSError:
                    replaced = 0
            crashpoint("cache.put.replace", kind="replace", path=written)
            os.replace(written, path)
        except OSError:
            # A *failed* (not crashed) put cleans up after itself
            # rather than pinning the staging file until the age sweep.
            try:
                temporary.unlink()
            except FileNotFoundError:
                pass
            except OSError:
                note_storage_error("cache", "staging_cleanup")
            raise
        _fsync_path(self.directory, point="cache.put.dirsync")
        metrics = get_metrics()
        if metrics.enabled:
            metrics.counter("cache.puts").inc()
            try:
                metrics.counter("cache.put_bytes").inc(path.stat().st_size)
            except OSError:
                note_storage_error("cache", "stat")
        if self.max_bytes is not None:
            try:
                added = path.stat().st_size - replaced
            except OSError:
                added = 0
            with self._stats_lock:
                if self._approx_bytes is None:
                    self._approx_bytes = self._scan_bytes()
                else:
                    self._approx_bytes += added
                over_budget = self._approx_bytes > self.max_bytes
            if over_budget:
                self._evict_over_budget(keep=path)
        return path

    def _degrade(self, error: OSError) -> None:
        """Flip to pass-through after ENOSPC — loudly, exactly once."""
        with self._stats_lock:
            already = self.degraded
            self.degraded = True
        if already:
            return
        warnings.warn(
            f"result cache at {str(self.directory)!r} degraded to "
            f"pass-through after ENOSPC ({error}); results keep "
            "computing but are no longer stored",
            CacheDegradedWarning,
            stacklevel=4,
        )
        metrics = get_metrics()
        if metrics.enabled:
            metrics.counter("cache.degraded").inc()
        tracer = get_tracer()
        if tracer.enabled:
            tracer.event("cache.degraded")

    def _scan_bytes(self) -> int:
        total = 0
        for path in self.directory.glob("*.npz"):
            try:
                total += path.stat().st_size
            except OSError:
                note_storage_error("cache", "stat")
                continue
        return total

    def _evict_over_budget(self, keep: pathlib.Path) -> None:
        """Delete least-recently-used artifacts until the budget fits.

        ``keep`` (the entry just written) is exempt so a put can never
        evict its own result.  Concurrent writers may race over the
        same entries; every stat/unlink tolerates a file that another
        writer already removed.
        """
        entries = []
        for path in self.directory.glob("*.npz"):
            try:
                stat = path.stat()
            except OSError:
                note_storage_error("cache", "stat")
                continue
            entries.append((stat.st_mtime, stat.st_size, path))
        total = sum(size for _, size, _ in entries)
        if total > self.max_bytes:
            tracer = get_tracer()
            entries.sort(key=lambda entry: entry[0])
            for _, size, path in entries:
                if total <= self.max_bytes:
                    break
                if path == keep:
                    continue
                try:
                    path.unlink()
                except FileNotFoundError:
                    # A concurrent writer already evicted it; the bytes
                    # are gone either way, so count them as freed or
                    # this writer would over-evict live entries.
                    total -= size
                    continue
                except OSError:
                    note_storage_error("cache", "evict")
                    continue
                clear_digest(self.directory, path.stem)
                total -= size
                self._count("evictions")
                metrics = get_metrics()
                if metrics.enabled:
                    metrics.counter("cache.evicted_bytes").inc(size)
                if tracer.enabled:
                    tracer.event(
                        "cache.evict", key=path.stem[:12], bytes=size
                    )
        with self._stats_lock:
            # The scan is ground truth; re-sync the running estimate.
            self._approx_bytes = total

    def discard(self, key: str) -> bool:
        """Remove the artifact stored under ``key``; True if one existed.

        Not counted as an eviction — this is deliberate removal (the
        runner drops per-shard resume checkpoints once their spec's
        merged artifact lands), not budget pressure.
        """
        path = self.path_for(key)
        size = 0
        if self.max_bytes is not None:
            try:
                size = path.stat().st_size
            except OSError:
                size = 0
        try:
            path.unlink()
        except FileNotFoundError:
            return False
        except OSError:
            note_storage_error("cache", "discard")
            return False
        clear_digest(self.directory, key)
        if size:
            with self._stats_lock:
                if self._approx_bytes is not None:
                    self._approx_bytes = max(0, self._approx_bytes - size)
        return True

    def stats(self) -> dict:
        """Counters and occupancy: hits, misses, evictions, quarantined,
        io_errors, degraded, entries, bytes."""
        with self._stats_lock:
            hits, misses, evictions = self.hits, self.misses, self.evictions
            quarantined = self.quarantined
            io_errors = self.io_errors
            degraded = self.degraded
        entries = 0
        total = 0
        if self.directory.exists():
            for path in self.directory.glob("*.npz"):
                try:
                    total += path.stat().st_size
                except OSError:
                    note_storage_error("cache", "stat")
                    continue
                entries += 1
        return {
            "hits": hits,
            "misses": misses,
            "evictions": evictions,
            "quarantined": quarantined,
            "io_errors": io_errors,
            "degraded": degraded,
            "entries": entries,
            "bytes": total,
            "max_bytes": self.max_bytes,
        }

    def clear(self) -> int:
        """Delete every artifact (and staging leftovers, and digest
        sidecars); returns the number of entries removed, staging
        leftovers included (sidecars are not counted — they shadow
        their artifacts)."""
        removed = 0
        if self.directory.exists():
            for path in self.directory.glob("*.npz"):
                path.unlink()
                removed += 1
            for path in self.directory.glob(".tmp/*.npz"):
                path.unlink()
                removed += 1
            for path in self.directory.glob(f"{SUMS_DIR}/*.sha256"):
                path.unlink()
        with self._stats_lock:
            self._approx_bytes = 0
        return removed

    def __len__(self) -> int:
        if not self.directory.exists():
            return 0
        return sum(1 for _ in self.directory.glob("*.npz"))

    def __repr__(self) -> str:
        budget = "" if self.max_bytes is None else f", max_bytes={self.max_bytes}"
        degraded = ", degraded" if self.degraded else ""
        return (
            f"ResultCache({str(self.directory)!r}, entries={len(self)}, "
            f"hits={self.hits}, misses={self.misses}, "
            f"evictions={self.evictions}{budget}{degraded})"
        )
