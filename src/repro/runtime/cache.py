"""Content-addressed storage of merged ensemble results.

The cache is a directory of ``<sha256>.npz`` artifacts written through
:mod:`repro.sim.persistence`, keyed by the canonical fingerprint of
the producing spec (:func:`repro.runtime.spec.spec_fingerprint`).
Because the key covers every run parameter *and* the shard plan, a hit
is guaranteed to be byte-equal to what re-running the spec would
produce — repeated experiment invocations become a single ``.npz``
load.

Corrupt or truncated entries (e.g. a previous run killed mid-write)
are treated as misses and evicted; writes go through a temp file and
an atomic rename so readers never observe partial artifacts.
"""

from __future__ import annotations

import os
import pathlib
import threading
import uuid
from typing import Optional, Union

from ..core.results import EnsembleResult
from ..sim.persistence import load_result, save_result

__all__ = ["ResultCache"]

PathLike = Union[str, pathlib.Path]


class ResultCache:
    """A directory of content-addressed :class:`EnsembleResult` artifacts.

    Parameters
    ----------
    directory:
        Cache root; created on first use.

    Examples
    --------
    >>> import tempfile
    >>> from repro.protocols import ProofOfWork
    >>> from repro.core.miners import Allocation
    >>> from repro.runtime import ParallelRunner, SimulationSpec
    >>> spec = SimulationSpec(ProofOfWork(0.01), Allocation.two_miners(0.2),
    ...                       trials=50, horizon=100, seed=7)
    >>> with tempfile.TemporaryDirectory() as root:
    ...     runner = ParallelRunner(cache=root)
    ...     cold = runner.run(spec)   # simulates, stores
    ...     warm = runner.run(spec)   # loads
    ...     runner.cache.hits
    1
    """

    def __init__(self, directory: PathLike) -> None:
        self.directory = pathlib.Path(directory)
        if self.directory.exists() and not self.directory.is_dir():
            raise ValueError(
                f"cache path {str(self.directory)!r} exists and is not a directory"
            )
        self.hits = 0
        self.misses = 0
        # Counter updates must be atomic: a thread-backend run hits
        # get/put from every pool thread at once.
        self._stats_lock = threading.Lock()

    def path_for(self, key: str) -> pathlib.Path:
        """The artifact path a fingerprint maps to."""
        if not key or any(c in key for c in "/\\"):
            raise ValueError(f"invalid cache key {key!r}")
        return self.directory / f"{key}.npz"

    def __contains__(self, key: str) -> bool:
        return self.path_for(key).exists()

    def get(self, key: str) -> Optional[EnsembleResult]:
        """Load the result stored under ``key``, or None on a miss.

        Unreadable artifacts count as misses and are evicted so the
        slot can be rewritten.
        """
        path = self.path_for(key)
        if not path.exists():
            self._count("misses")
            return None
        try:
            result = load_result(path)
        except Exception:
            path.unlink(missing_ok=True)
            self._count("misses")
            return None
        self._count("hits")
        return result

    def _count(self, counter: str) -> None:
        with self._stats_lock:
            setattr(self, counter, getattr(self, counter) + 1)

    def put(self, key: str, result: EnsembleResult) -> pathlib.Path:
        """Store ``result`` under ``key``, atomically; returns the path.

        Writes land in a ``.tmp`` subdirectory first so a killed run
        can never leave a partial (or phantom) entry among the
        artifacts, then move into place with an atomic rename.  The
        staging name is unique per writer — pid, thread id and a
        random component — so concurrent threads (or processes) racing
        to store the same key each write their own file and the last
        atomic rename wins intact.
        """
        path = self.path_for(key)
        staging = self.directory / ".tmp"
        staging.mkdir(parents=True, exist_ok=True)
        temporary = staging / (
            f"{key}-{os.getpid()}-{threading.get_ident()}"
            f"-{uuid.uuid4().hex[:8]}.npz"
        )
        written = save_result(result, temporary)
        os.replace(written, path)
        return path

    def clear(self) -> int:
        """Delete every artifact (and staging leftovers); returns the
        number of entries removed, staging leftovers included."""
        removed = 0
        if self.directory.exists():
            for path in self.directory.glob("*.npz"):
                path.unlink()
                removed += 1
            for path in self.directory.glob(".tmp/*.npz"):
                path.unlink()
                removed += 1
        return removed

    def __len__(self) -> int:
        if not self.directory.exists():
            return 0
        return sum(1 for _ in self.directory.glob("*.npz"))

    def __repr__(self) -> str:
        return (
            f"ResultCache({str(self.directory)!r}, entries={len(self)}, "
            f"hits={self.hits}, misses={self.misses})"
        )
