"""The parallel runner: plan shards, fan out, merge, cache.

:class:`ParallelRunner` is the façade of :mod:`repro.runtime`.  Given
a :class:`~repro.runtime.spec.SimulationSpec` (Monte Carlo ensemble)
or a system experiment (node-level repeats) it

1. checks the content-addressed cache for a previous merged result,
2. splits the work into a worker-count-independent shard plan,
3. executes the shards on the configured backend, and
4. merges shard results in plan order via
   :meth:`~repro.core.results.EnsembleResult.merge`.

Because the plan and the merge order are independent of the executor,
``workers=1`` and ``workers=8`` produce bit-identical merged arrays
for the same spec and shard count.

Grids of specs (the per-``(a, w, v)`` cells of the paper's figure
sweeps) go through :meth:`ParallelRunner.run_many` /
:meth:`ParallelRunner.run_system_many`: per-spec cache checks and
plans, but one pool dispatch for every uncached shard of every spec —
bit-identical to running the specs one at a time, without the per-cell
dispatch latency or the worker idling between cells.

The shard task functions are module-level so they pickle by reference
under every multiprocessing start method.
"""

from __future__ import annotations

import pathlib
from typing import Any, List, Optional, Sequence, Tuple, Union

from .._validation import ensure_positive_int
from ..core.results import EnsembleResult
from ..sim.rng import RandomSource, SeedLike
from .cache import ResultCache
from .executor import (
    Executor,
    ProgressCallback,
    ShardExecutionError,
    make_executor,
)
from .sharding import DEFAULT_SHARD_COUNT, Shard, plan_shards
from .spec import SimulationSpec, SystemSpec, spec_fingerprint

__all__ = ["ParallelRunner"]


def _run_simulation_shard(task: Tuple[SimulationSpec, Shard]) -> EnsembleResult:
    """Worker entry point: run one chunk of a Monte Carlo ensemble."""
    from ..sim.engine import MonteCarloEngine

    spec, shard = task
    engine = MonteCarloEngine(
        spec.protocol,
        spec.allocation,
        trials=shard.trials,
        seed=RandomSource(shard.seed),
        kernel=spec.kernel,
    )
    return engine.run(
        spec.horizon,
        spec.checkpoints,
        events=spec.events,
        record_terminal_stakes=spec.record_terminal_stakes,
    )


def _run_system_shard(task: Tuple[SystemSpec, Shard]) -> EnsembleResult:
    """Worker entry point: run one chunk of node-level system repeats.

    Calls the experiment's serial path directly — never its public
    ``run`` — so a forked worker that inherited an ambient runtime
    cannot recurse into the pool.
    """
    spec, shard = task
    return spec.experiment._run_serial(
        spec.rounds,
        shard.trials,
        checkpoints=spec.checkpoints,
        seed=RandomSource(shard.seed),
    )


class ParallelRunner:
    """Sharded, cached execution of ensemble workloads.

    Parameters
    ----------
    workers:
        Worker count; 1 runs in-process.
    backend:
        ``"processes"`` (default) or ``"threads"`` — how workers > 1
        fan out.  Threads suit the GIL-releasing batched kernels and
        small specs; processes suit Python-bound work.  Either way the
        merged bits depend only on the shard plan.
    cache:
        A :class:`ResultCache`, a directory path to create one in, or
        None to disable caching.
    shards:
        Default shard count per run; None uses
        ``max(DEFAULT_SHARD_COUNT, workers)`` clamped to the trial
        count, so plans are identical for any worker count up to
        :data:`~repro.runtime.sharding.DEFAULT_SHARD_COUNT` while
        larger pools still get one shard per worker.  The shard count
        — not the worker count — determines the merged bits, so pin it
        when comparing runs.
    progress:
        Optional ``callback(completed, total_shards)`` fired as shard
        results arrive, in plan order.  ``total_shards`` covers the
        whole dispatch — for :meth:`run_many` that is every uncached
        shard of every spec in the grid.

    Examples
    --------
    >>> from repro.protocols import MultiLotteryPoS
    >>> from repro.core.miners import Allocation
    >>> from repro.runtime import ParallelRunner, SimulationSpec
    >>> spec = SimulationSpec(MultiLotteryPoS(0.01),
    ...                       Allocation.two_miners(0.2),
    ...                       trials=100, horizon=200, seed=11)
    >>> ParallelRunner(workers=1).run(spec).trials
    100
    """

    def __init__(
        self,
        workers: int = 1,
        cache: Union[ResultCache, str, pathlib.Path, None] = None,
        *,
        shards: Optional[int] = None,
        progress: Optional[ProgressCallback] = None,
        executor: Optional[Executor] = None,
        backend: str = "processes",
    ) -> None:
        self.executor = (
            executor
            if executor is not None
            else make_executor(workers, backend=backend)
        )
        if cache is None or isinstance(cache, ResultCache):
            self.cache = cache
        else:
            self.cache = ResultCache(cache)
        self.default_shards = shards
        self.progress = progress

    @property
    def workers(self) -> int:
        """Degree of parallelism of the configured executor."""
        return self.executor.workers

    @property
    def is_parallel(self) -> bool:
        """Whether this runner fans work out across processes."""
        return self.executor.workers > 1

    # -- execution -------------------------------------------------------

    def run(
        self, spec: SimulationSpec, *, shards: Optional[int] = None
    ) -> EnsembleResult:
        """Run (or load) the Monte Carlo ensemble described by ``spec``."""
        return self.run_many([spec], shards=shards)[0]

    def run_many(
        self,
        specs: Sequence[SimulationSpec],
        *,
        shards: Optional[int] = None,
    ) -> List[EnsembleResult]:
        """Run (or load) a whole grid of Monte Carlo ensembles at once.

        Equivalent to ``[self.run(s) for s in specs]`` — bit-identical
        results, same cache reads and writes — but every uncached shard
        of every spec goes to the pool in a *single* dispatch, so
        workers never idle between grid cells and pool latency is paid
        once per grid instead of once per cell.  Progress callbacks see
        ``(completed, total)`` across the whole grid.
        """
        specs = list(specs)
        for spec in specs:
            if not isinstance(spec, SimulationSpec):
                raise TypeError(
                    f"specs must be SimulationSpecs, got {type(spec).__name__}"
                )
        return self._execute_many(
            [(spec, spec.trials) for spec in specs],
            _run_simulation_shard,
            shards,
        )

    def run_system(
        self,
        experiment: Any,
        rounds: int,
        repeats: int,
        *,
        checkpoints: Optional[Sequence[int]] = None,
        seed: SeedLike = None,
        shards: Optional[int] = None,
    ) -> EnsembleResult:
        """Run (or load) ``repeats`` node-level deployments of ``experiment``.

        ``experiment`` is a
        :class:`~repro.chainsim.harness.SystemExperiment`; arguments
        mirror its ``run`` method.
        """
        spec = SystemSpec(
            experiment=experiment,
            rounds=rounds,
            repeats=repeats,
            checkpoints=None if checkpoints is None else tuple(checkpoints),
            seed=seed,
        )
        return self.run_system_many([spec], shards=shards)[0]

    def run_system_many(
        self,
        specs: Sequence[SystemSpec],
        *,
        shards: Optional[int] = None,
    ) -> List[EnsembleResult]:
        """Run (or load) many node-level system ensembles at once.

        The :class:`~repro.runtime.spec.SystemSpec` counterpart of
        :meth:`run_many`: bit-identical to calling :meth:`run_system`
        per spec, but all uncached shards share one pool dispatch.
        """
        specs = list(specs)
        for spec in specs:
            if not isinstance(spec, SystemSpec):
                raise TypeError(
                    f"specs must be SystemSpecs, got {type(spec).__name__}"
                )
        return self._execute_many(
            [(spec, spec.repeats) for spec in specs], _run_system_shard, shards
        )

    def _resolve_shards(self, total: int, shards: Optional[int]) -> int:
        """The effective shard count for ``total`` trials.

        Explicit counts (argument or ``default_shards``) are clamped to
        the trial count like the default plan — 16 shards of a 4-trial
        spec is 4 shards, not an error.
        """
        if shards is None:
            shards = self.default_shards
        if shards is None:
            # Workers above the default shard count would otherwise sit
            # idle; give big pools one shard each (cache keys carry the
            # shard count, so plans never silently collide).
            shards = max(DEFAULT_SHARD_COUNT, self.workers)
        return min(total, ensure_positive_int("shards", shards))

    def _execute_many(self, entries, shard_fn, shards: Optional[int]):
        merged: List[Optional[EnsembleResult]] = [None] * len(entries)
        tasks: List[Tuple[Any, Shard]] = []
        pending: List[Tuple[int, Optional[str], int, int]] = []
        first_pending: dict = {}
        duplicates: List[Tuple[int, int, str]] = []
        for position, (spec, total) in enumerate(entries):
            plan = plan_shards(
                total, spec.seed_sequence, self._resolve_shards(total, shards)
            )
            key = None
            if self.cache is not None:
                key = spec_fingerprint(spec, shards=len(plan))
                if key in first_pending:
                    # A duplicate of a spec already in this dispatch:
                    # the per-cell loop would have loaded it as a hit
                    # once the first copy landed, so compute it once
                    # and load it back the same way (no planning-time
                    # get — the loop never saw a miss for it either).
                    duplicates.append((position, first_pending[key], key))
                    continue
                cached = self.cache.get(key)
                if cached is not None:
                    merged[position] = cached
                    continue
                first_pending[key] = position
            pending.append((position, key, len(tasks), len(plan)))
            tasks.extend((spec, shard) for shard in plan)
        try:
            results = self.executor.map(shard_fn, tasks, progress=self.progress)
        except ShardExecutionError as error:
            self._salvage_completed(pending, error)
            raise
        for position, key, start, count in pending:
            result = EnsembleResult.merge(results[start:start + count])
            if key is not None:
                self.cache.put(key, result)
            merged[position] = result
        for position, original, key in duplicates:
            loaded = self.cache.get(key)
            merged[position] = loaded if loaded is not None else merged[original]
        return merged

    def _salvage_completed(self, pending, error: ShardExecutionError) -> None:
        """Cache the specs whose shards all completed despite the failure.

        The per-spec loop this batches would have cached every cell
        finished before the failing one; the single dispatch drains
        every shard, so we can do one better and store every spec
        untouched by the failure before the error propagates.
        """
        results = error.results
        if results is None or self.cache is None:
            return
        failed = {index for index, _, _ in error.failures}
        for _, key, start, count in pending:
            if key is None or any(i in failed for i in range(start, start + count)):
                continue
            self.cache.put(key, EnsembleResult.merge(results[start:start + count]))

    def __repr__(self) -> str:
        return (
            f"ParallelRunner(workers={self.workers}, "
            f"cache={self.cache!r}, shards={self.default_shards})"
        )
