"""The parallel runner: plan shards, fan out, merge, cache.

:class:`ParallelRunner` is the façade of :mod:`repro.runtime`.  Given
a :class:`~repro.runtime.spec.SimulationSpec` (Monte Carlo ensemble)
or a system experiment (node-level repeats) it

1. checks the content-addressed cache for a previous merged result,
2. splits the work into a worker-count-independent shard plan,
3. executes the shards on the configured backend, and
4. merges shard results in plan order via
   :meth:`~repro.core.results.EnsembleResult.merge`.

Because the plan and the merge order are independent of the executor,
``workers=1`` and ``workers=8`` produce bit-identical merged arrays
for the same spec and shard count.

The shard task functions are module-level so they pickle by reference
under every multiprocessing start method.
"""

from __future__ import annotations

import pathlib
from typing import Any, Optional, Sequence, Tuple, Union

from ..core.results import EnsembleResult
from ..sim.rng import RandomSource, SeedLike
from .cache import ResultCache
from .executor import Executor, ProgressCallback, make_executor
from .sharding import DEFAULT_SHARD_COUNT, Shard, plan_shards
from .spec import SimulationSpec, SystemSpec, spec_fingerprint

__all__ = ["ParallelRunner"]


def _run_simulation_shard(task: Tuple[SimulationSpec, Shard]) -> EnsembleResult:
    """Worker entry point: run one chunk of a Monte Carlo ensemble."""
    from ..sim.engine import MonteCarloEngine

    spec, shard = task
    engine = MonteCarloEngine(
        spec.protocol,
        spec.allocation,
        trials=shard.trials,
        seed=RandomSource(shard.seed),
        kernel=spec.kernel,
    )
    return engine.run(
        spec.horizon,
        spec.checkpoints,
        events=spec.events,
        record_terminal_stakes=spec.record_terminal_stakes,
    )


def _run_system_shard(task: Tuple[SystemSpec, Shard]) -> EnsembleResult:
    """Worker entry point: run one chunk of node-level system repeats.

    Calls the experiment's serial path directly — never its public
    ``run`` — so a forked worker that inherited an ambient runtime
    cannot recurse into the pool.
    """
    spec, shard = task
    return spec.experiment._run_serial(
        spec.rounds,
        shard.trials,
        checkpoints=spec.checkpoints,
        seed=RandomSource(shard.seed),
    )


class ParallelRunner:
    """Sharded, cached execution of ensemble workloads.

    Parameters
    ----------
    workers:
        Worker count; 1 runs in-process.
    backend:
        ``"processes"`` (default) or ``"threads"`` — how workers > 1
        fan out.  Threads suit the GIL-releasing batched kernels and
        small specs; processes suit Python-bound work.  Either way the
        merged bits depend only on the shard plan.
    cache:
        A :class:`ResultCache`, a directory path to create one in, or
        None to disable caching.
    shards:
        Default shard count per run; None uses
        ``max(DEFAULT_SHARD_COUNT, workers)`` clamped to the trial
        count, so plans are identical for any worker count up to
        :data:`~repro.runtime.sharding.DEFAULT_SHARD_COUNT` while
        larger pools still get one shard per worker.  The shard count
        — not the worker count — determines the merged bits, so pin it
        when comparing runs.
    progress:
        Optional ``callback(completed, total_shards)`` fired as shard
        results arrive, in plan order.

    Examples
    --------
    >>> from repro.protocols import MultiLotteryPoS
    >>> from repro.core.miners import Allocation
    >>> from repro.runtime import ParallelRunner, SimulationSpec
    >>> spec = SimulationSpec(MultiLotteryPoS(0.01),
    ...                       Allocation.two_miners(0.2),
    ...                       trials=100, horizon=200, seed=11)
    >>> ParallelRunner(workers=1).run(spec).trials
    100
    """

    def __init__(
        self,
        workers: int = 1,
        cache: Union[ResultCache, str, pathlib.Path, None] = None,
        *,
        shards: Optional[int] = None,
        progress: Optional[ProgressCallback] = None,
        executor: Optional[Executor] = None,
        backend: str = "processes",
    ) -> None:
        self.executor = (
            executor
            if executor is not None
            else make_executor(workers, backend=backend)
        )
        if cache is None or isinstance(cache, ResultCache):
            self.cache = cache
        else:
            self.cache = ResultCache(cache)
        self.default_shards = shards
        self.progress = progress

    @property
    def workers(self) -> int:
        """Degree of parallelism of the configured executor."""
        return self.executor.workers

    @property
    def is_parallel(self) -> bool:
        """Whether this runner fans work out across processes."""
        return self.executor.workers > 1

    # -- execution -------------------------------------------------------

    def run(
        self, spec: SimulationSpec, *, shards: Optional[int] = None
    ) -> EnsembleResult:
        """Run (or load) the Monte Carlo ensemble described by ``spec``."""
        if not isinstance(spec, SimulationSpec):
            raise TypeError(
                f"spec must be a SimulationSpec, got {type(spec).__name__}"
            )
        return self._execute(spec, spec.trials, _run_simulation_shard, shards)

    def run_system(
        self,
        experiment: Any,
        rounds: int,
        repeats: int,
        *,
        checkpoints: Optional[Sequence[int]] = None,
        seed: SeedLike = None,
        shards: Optional[int] = None,
    ) -> EnsembleResult:
        """Run (or load) ``repeats`` node-level deployments of ``experiment``.

        ``experiment`` is a
        :class:`~repro.chainsim.harness.SystemExperiment`; arguments
        mirror its ``run`` method.
        """
        spec = SystemSpec(
            experiment=experiment,
            rounds=rounds,
            repeats=repeats,
            checkpoints=None if checkpoints is None else tuple(checkpoints),
            seed=seed,
        )
        return self._execute(spec, spec.repeats, _run_system_shard, shards)

    def _execute(self, spec, total: int, shard_fn, shards: Optional[int]):
        if shards is None:
            shards = self.default_shards
        if shards is None:
            # Workers above the default shard count would otherwise sit
            # idle; give big pools one shard each (cache keys carry the
            # shard count, so plans never silently collide).
            shards = min(total, max(DEFAULT_SHARD_COUNT, self.workers))
        plan = plan_shards(total, spec.seed_sequence, shards)
        key = None
        if self.cache is not None:
            key = spec_fingerprint(spec, shards=len(plan))
            cached = self.cache.get(key)
            if cached is not None:
                return cached
        results = self.executor.map(
            shard_fn, [(spec, shard) for shard in plan], progress=self.progress
        )
        merged = EnsembleResult.merge(results)
        if key is not None:
            self.cache.put(key, merged)
        return merged

    def __repr__(self) -> str:
        return (
            f"ParallelRunner(workers={self.workers}, "
            f"cache={self.cache!r}, shards={self.default_shards})"
        )
