"""The parallel runner: plan shards, fan out, merge, cache.

:class:`ParallelRunner` is the façade of :mod:`repro.runtime`.  Given
a :class:`~repro.runtime.spec.SimulationSpec` (Monte Carlo ensemble)
or a system experiment (node-level repeats) it

1. checks the content-addressed cache for a previous merged result,
2. splits the work into a worker-count-independent shard plan,
3. executes the shards on the configured backend, and
4. merges shard results in plan order — by default *streaming*: each
   shard folds into a
   :class:`~repro.core.results.MergeAccumulator` the moment it clears
   the :class:`ReorderBuffer`, so at most ``O(workers)`` shard results
   are in flight instead of ``O(shards)``; ``stream=False`` restores
   the collect-then-:meth:`~repro.core.results.EnsembleResult.merge`
   batch path.  Both paths produce byte-identical ensembles and cache
   artifacts.

Because the plan and the merge order are independent of the executor,
``workers=1`` and ``workers=8`` produce bit-identical merged arrays
for the same spec and shard count.

Grids of specs (the per-``(a, w, v)`` cells of the paper's figure
sweeps) go through :meth:`ParallelRunner.run_many` /
:meth:`ParallelRunner.run_system_many`: per-spec cache checks and
plans, but one pool dispatch for every uncached shard of every spec —
bit-identical to running the specs one at a time, without the per-cell
dispatch latency or the worker idling between cells.

The shard task functions are module-level so they pickle by reference
under every multiprocessing start method.
"""

from __future__ import annotations

import pathlib
import threading
from typing import (
    Any,
    Dict,
    List,
    NamedTuple,
    Optional,
    Sequence,
    Tuple,
    Union,
)

from .._validation import ensure_positive_int
from ..core.results import EnsembleResult, MergeAccumulator, merge_parts
from ..core.stats import ensure_reduce_mode
from ..obs import ShardEnvelope, ingest_envelope
from ..obs.metrics import MetricsRegistry, get_metrics, using_worker_metrics
from ..obs.trace import Tracer, get_tracer, using_worker_tracer
from ..sim.rng import RandomSource, SeedLike
from .cache import ResultCache
from .executor import (
    Executor,
    ProgressCallback,
    ShardExecutionError,
    _failure_triple,
    _format_exception,
    make_executor,
)
from .faults import RetryPolicy
from .journal import RunJournal, shard_fingerprint
from .sharding import DEFAULT_SHARD_COUNT, Shard, plan_shards
from .spec import SimulationSpec, SystemSpec, spec_fingerprint

__all__ = ["ParallelRunner", "ReorderBuffer"]


class ReorderBuffer:
    """Stage out-of-order completions, releasing them in index order.

    The streaming merge must fold shard results in *plan* order (the
    order that makes merged bits worker-count-independent), but a pool
    completes shards in whatever order they finish.  The buffer holds
    the completions that arrived early; :meth:`push` returns every item
    that just became consumable, in index order.

    Occupancy is bounded by the executor's submission window, not the
    task count: at most ``window`` tasks are in flight, so at most
    ``window - 1`` completions can be staged ahead of the next index.

    Parameters
    ----------
    total:
        Number of indices the buffer will see (0..total-1, each exactly
        once).
    """

    def __init__(self, total: int) -> None:
        if total < 0:
            raise ValueError(f"total must be non-negative, got {total}")
        self.total = total
        self._next = 0
        self._staged: Dict[int, Any] = {}

    @property
    def staged(self) -> int:
        """Completions held waiting for an earlier index."""
        return len(self._staged)

    @property
    def released(self) -> int:
        """Completions already handed out in index order."""
        return self._next

    @property
    def complete(self) -> bool:
        """Whether every index has been pushed and released."""
        return self._next == self.total and not self._staged

    def push(self, index: int, item: Any) -> List[Tuple[int, Any]]:
        """Stage one completion; return the items now consumable, in order."""
        if not 0 <= index < self.total:
            raise IndexError(
                f"index {index} out of range for a {self.total}-item buffer"
            )
        if index < self._next or index in self._staged:
            raise ValueError(f"index {index} was already pushed")
        self._staged[index] = item
        released: List[Tuple[int, Any]] = []
        while self._next in self._staged:
            released.append((self._next, self._staged.pop(self._next)))
            self._next += 1
        return released

    def __repr__(self) -> str:
        return (
            f"ReorderBuffer(next={self._next}, total={self.total}, "
            f"staged={self.staged})"
        )


class _Pending(NamedTuple):
    """One uncached spec of a dispatch: where its dispatched shards live
    in the task list, which plan ordinals they map to, and where its
    merged result goes.  With a journal, shards recovered from a prior
    (interrupted) run ride along as ``preloaded`` and are *not*
    dispatched — ``ordinals`` maps each dispatched task offset back to
    its plan ordinal so the merge interleaves both sources in plan
    order."""

    position: int  # slot in the caller's result list
    key: Optional[str]  # cache fingerprint, None when caching is off
    start: int  # first task index of this spec's dispatched shards
    count: int  # number of dispatched shards
    trials: int  # total trials across the shards (the plan total)
    shards: int  # total shards in the plan (count + preloaded)
    ordinals: Tuple[int, ...]  # dispatched offset -> plan ordinal
    preloaded: Tuple[Tuple[int, Any], ...]  # (ordinal, result) recovered


def _traced_shard(body, spec, shard, index: int, kind: str) -> ShardEnvelope:
    """Run one shard under a fresh worker-local tracer and registry.

    The worker must not record into a forked copy of the parent's
    tracer (its buffer dies with the child) nor — on the threads
    backend — into the parent's live tracer (the shipped spans would
    then be ingested twice).  A private pair, installed as thread-local
    overrides so nested kernel/cache/chainsim instrumentation lands in
    it, sidesteps both; the envelope carries everything home.
    """
    tracer = Tracer()
    metrics = MetricsRegistry()
    with using_worker_tracer(tracer), using_worker_metrics(metrics):
        with tracer.span(
            "shard.run",
            task=index,
            shard=shard.index,
            trials=shard.trials,
            kind=kind,
        ):
            payload = body(spec, shard)
    return ShardEnvelope(payload, tracer.drain(), metrics.snapshot())


def _simulation_shard_body(spec: SimulationSpec, shard: Shard):
    from ..sim.engine import MonteCarloEngine

    engine = MonteCarloEngine(
        spec.protocol,
        spec.allocation,
        trials=shard.trials,
        seed=RandomSource(shard.seed),
        kernel=spec.kernel,
    )
    # Under reduce="stats" the engine folds checkpoints straight into a
    # StatsSummary — the shard's trajectory cube is never allocated.
    return engine.run(
        spec.horizon,
        spec.checkpoints,
        events=spec.events,
        record_terminal_stakes=spec.record_terminal_stakes,
        reduce=spec.reduce,
    )


def _run_simulation_shard(task) -> Any:
    """Worker entry point: run one chunk of a Monte Carlo ensemble.

    ``task`` is ``(spec, shard)`` on an untraced dispatch (identical
    pickle profile to every prior release) or ``(spec, shard,
    task_index)`` when telemetry is on, in which case the return value
    is a :class:`~repro.obs.ShardEnvelope` carrying the worker's spans
    and metrics alongside the result.
    """
    if len(task) == 2:
        spec, shard = task
        return _simulation_shard_body(spec, shard)
    spec, shard, index = task
    return _traced_shard(_simulation_shard_body, spec, shard, index, "sim")


def _system_shard_body(spec: SystemSpec, shard: Shard):
    # Calls the experiment's serial path directly — never its public
    # ``run`` — so a forked worker that inherited an ambient runtime
    # cannot recurse into the pool.
    result = spec.experiment._run_serial(
        spec.rounds,
        shard.trials,
        checkpoints=spec.checkpoints,
        seed=RandomSource(shard.seed),
    )
    if spec.reduce == "stats":
        # The node-level harness produces full per-repeat results; the
        # shard reduces them before they cross the process boundary, so
        # only sketch state is pickled and merged.
        from ..core.stats import StatsSummary

        return StatsSummary.from_ensemble(result)
    return result


def _run_system_shard(task) -> Any:
    """Worker entry point: run one chunk of node-level system repeats.

    Task shapes and envelope semantics mirror
    :func:`_run_simulation_shard`.
    """
    if len(task) == 2:
        spec, shard = task
        return _system_shard_body(spec, shard)
    spec, shard, index = task
    return _traced_shard(_system_shard_body, spec, shard, index, "system")


class ParallelRunner:
    """Sharded, cached execution of ensemble workloads.

    Parameters
    ----------
    workers:
        Worker count; 1 runs in-process.
    backend:
        ``"processes"`` (default) or ``"threads"`` — how workers > 1
        fan out.  Threads suit the GIL-releasing batched kernels and
        small specs; processes suit Python-bound work.  Either way the
        merged bits depend only on the shard plan.
    cache:
        A :class:`ResultCache`, a directory path to create one in, or
        None to disable caching.
    shards:
        Default shard count per run; None uses
        ``max(DEFAULT_SHARD_COUNT, workers)`` clamped to the trial
        count, so plans are identical for any worker count up to
        :data:`~repro.runtime.sharding.DEFAULT_SHARD_COUNT` while
        larger pools still get one shard per worker.  The shard count
        — not the worker count — determines the merged bits, so pin it
        when comparing runs.
    progress:
        Optional ``callback(completed, total_shards)`` fired as shard
        results are *merged*, in plan order.  ``total_shards`` covers
        the whole dispatch — for :meth:`run_many` that is every
        uncached shard of every spec in the grid.  Counting merged
        (not dispatched) shards means the count can never overshoot
        the total, even when a shard fails mid-grid and the completed
        specs are salvaged.
    stream:
        Whether to fold shard results incrementally as they complete
        (default True).  The streaming path holds ``O(workers)`` shard
        results in flight instead of ``O(shards)`` — out-of-order
        completions stage in a bounded :class:`ReorderBuffer` so the
        fold happens in plan order and the merged ensemble is
        **bit-identical** to the batch ``EnsembleResult.merge`` (and
        hits the same cache entries).  ``stream=False`` keeps the
        original collect-then-merge path.
    retry:
        Optional :class:`~repro.runtime.faults.RetryPolicy` (or an int
        shorthand for ``RetryPolicy(max_attempts=n)``): transiently
        failing shards are re-run with deterministic backoff before a
        failure is reported.  Shards are pure functions of the plan, so
        retried runs stay bit-identical.  Only valid when the runner
        builds its own executor; configure a custom executor directly.
    timeout:
        Optional per-shard deadline in seconds (pool backends only):
        hung workers are abandoned or killed, the failure classifies as
        a retryable :class:`~repro.runtime.faults.WorkerTimeoutError`,
        and an unrecoverable pool degrades to serial with a warning.
    journal:
        A :class:`~repro.runtime.journal.RunJournal` (or a path to
        one); requires a cache.  Completed shards are checkpointed as
        cache artifacts and journaled as they fold, so an interrupted
        grid resumes — recomputing only unjournaled shards — by
        re-running with the same journal.  None of ``retry``,
        ``timeout`` or ``journal`` enters cache fingerprints: a
        fault-tolerant run shares its artifacts with a plain one.
    reduce:
        Ambient default for the specs this runner *builds* (grid
        helpers, :meth:`run_system`): ``"full"`` keeps whole
        trajectories, ``"stats"`` keeps mergeable sufficient
        statistics in O(1) memory per shard.  Unlike every knob above
        this one is *physics* — it lands on the specs and enters their
        fingerprints, so stats and full runs never share artifacts.
        :meth:`run`/:meth:`run_many` honour each spec's own ``reduce``
        field and ignore this default.

    Examples
    --------
    >>> from repro.protocols import MultiLotteryPoS
    >>> from repro.core.miners import Allocation
    >>> from repro.runtime import ParallelRunner, SimulationSpec
    >>> spec = SimulationSpec(MultiLotteryPoS(0.01),
    ...                       Allocation.two_miners(0.2),
    ...                       trials=100, horizon=200, seed=11)
    >>> ParallelRunner(workers=1).run(spec).trials
    100
    """

    def __init__(
        self,
        workers: int = 1,
        cache: Union[ResultCache, str, pathlib.Path, None] = None,
        *,
        shards: Optional[int] = None,
        progress: Optional[ProgressCallback] = None,
        executor: Optional[Executor] = None,
        backend: str = "processes",
        stream: bool = True,
        retry: Union[RetryPolicy, int, None] = None,
        timeout: Optional[float] = None,
        journal: Union[RunJournal, str, pathlib.Path, None] = None,
        reduce: str = "full",
    ) -> None:
        if executor is not None and (retry is not None or timeout is not None):
            raise ValueError(
                "retry/timeout configure the runner-built executor; with "
                "a custom executor, set them on the executor itself "
                "(e.g. via make_executor)"
            )
        self.executor = (
            executor
            if executor is not None
            else make_executor(workers, backend=backend, retry=retry,
                               timeout=timeout)
        )
        if cache is None or isinstance(cache, ResultCache):
            self.cache = cache
        else:
            self.cache = ResultCache(cache)
        if journal is None or isinstance(journal, RunJournal):
            self.journal = journal
        else:
            self.journal = RunJournal(journal)
        if self.journal is not None and self.cache is None:
            raise ValueError(
                "journal requires a cache: resume checkpoints are stored "
                "as cache artifacts"
            )
        self.default_shards = shards
        self.progress = progress
        self.stream = bool(stream)
        # Ambient default for spec builders (the experiments grid
        # helpers, run_system).  A *physics* knob: it lands on the
        # specs themselves and enters their fingerprints — run()/
        # run_many() honour each spec's own ``reduce`` field.
        self.reduce = ensure_reduce_mode(reduce)
        # Tally counters are shared state: the threads backend fires
        # retry callbacks from pool threads, so updates must hold this
        # lock or concurrent completions lose increments.
        self._retry_lock = threading.Lock()
        #: Retry attempts consumed across this runner's dispatches.
        self.shards_retried = 0
        #: Shards recovered from journal checkpoints instead of dispatched.
        self.shards_resumed = 0
        try:
            # Tally retries (and forward them to progress callbacks that
            # care) without ever touching the per-shard completion
            # counts — retried shards must not double-count.
            self.executor.retry_listener = self._on_retry
        except AttributeError:
            pass  # duck-typed executor without the knob: no tally

    def _on_retry(self, index: int, attempt: int) -> None:
        with self._retry_lock:
            self.shards_retried += 1
        metrics = get_metrics()
        if metrics.enabled:
            metrics.counter("runner.shards_retried").inc()
        note = getattr(self.progress, "retry", None)
        if note is not None:
            note(index, attempt)

    @property
    def workers(self) -> int:
        """Degree of parallelism of the configured executor."""
        return self.executor.workers

    @property
    def is_parallel(self) -> bool:
        """Whether this runner fans work out across processes."""
        return self.executor.workers > 1

    # -- execution -------------------------------------------------------

    def run(
        self,
        spec: SimulationSpec,
        *,
        shards: Optional[int] = None,
        stream: Optional[bool] = None,
    ) -> EnsembleResult:
        """Run (or load) the Monte Carlo ensemble described by ``spec``."""
        return self.run_many([spec], shards=shards, stream=stream)[0]

    def run_many(
        self,
        specs: Sequence[SimulationSpec],
        *,
        shards: Optional[int] = None,
        stream: Optional[bool] = None,
    ) -> List[EnsembleResult]:
        """Run (or load) a whole grid of Monte Carlo ensembles at once.

        Equivalent to ``[self.run(s) for s in specs]`` — bit-identical
        results, same cache reads and writes — but every uncached shard
        of every spec goes to the pool in a *single* dispatch, so
        workers never idle between grid cells and pool latency is paid
        once per grid instead of once per cell.  Progress callbacks see
        ``(completed, total)`` across the whole grid.

        ``stream`` overrides the runner's streaming default for this
        call; both settings produce bit-identical results and cache
        entries.
        """
        specs = list(specs)
        for spec in specs:
            if not isinstance(spec, SimulationSpec):
                raise TypeError(
                    f"specs must be SimulationSpecs, got {type(spec).__name__}"
                )
        return self._execute_many(
            [(spec, spec.trials) for spec in specs],
            _run_simulation_shard,
            shards,
            stream,
            span_name="runner.run_many",
        )

    def run_system(
        self,
        experiment: Any,
        rounds: int,
        repeats: int,
        *,
        checkpoints: Optional[Sequence[int]] = None,
        seed: SeedLike = None,
        shards: Optional[int] = None,
        stream: Optional[bool] = None,
    ) -> EnsembleResult:
        """Run (or load) ``repeats`` node-level deployments of ``experiment``.

        ``experiment`` is a
        :class:`~repro.chainsim.harness.SystemExperiment`; arguments
        mirror its ``run`` method.
        """
        spec = SystemSpec(
            experiment=experiment,
            rounds=rounds,
            repeats=repeats,
            checkpoints=None if checkpoints is None else tuple(checkpoints),
            seed=seed,
            reduce=self.reduce,
        )
        return self.run_system_many([spec], shards=shards, stream=stream)[0]

    def run_system_many(
        self,
        specs: Sequence[SystemSpec],
        *,
        shards: Optional[int] = None,
        stream: Optional[bool] = None,
    ) -> List[EnsembleResult]:
        """Run (or load) many node-level system ensembles at once.

        The :class:`~repro.runtime.spec.SystemSpec` counterpart of
        :meth:`run_many`: bit-identical to calling :meth:`run_system`
        per spec, but all uncached shards share one pool dispatch.
        """
        specs = list(specs)
        for spec in specs:
            if not isinstance(spec, SystemSpec):
                raise TypeError(
                    f"specs must be SystemSpecs, got {type(spec).__name__}"
                )
        return self._execute_many(
            [(spec, spec.repeats) for spec in specs],
            _run_system_shard,
            shards,
            stream,
            span_name="runner.run_system_many",
        )

    def _resolve_shards(self, total: int, shards: Optional[int]) -> int:
        """The effective shard count for ``total`` trials.

        Explicit counts (argument or ``default_shards``) are clamped to
        the trial count like the default plan — 16 shards of a 4-trial
        spec is 4 shards, not an error.
        """
        if shards is None:
            shards = self.default_shards
        if shards is None:
            # Workers above the default shard count would otherwise sit
            # idle; give big pools one shard each (cache keys carry the
            # shard count, so plans never silently collide).
            shards = max(DEFAULT_SHARD_COUNT, self.workers)
        return min(total, ensure_positive_int("shards", shards))

    def _execute_many(
        self,
        entries,
        shard_fn,
        shards: Optional[int],
        stream: Optional[bool],
        span_name: str,
    ):
        tracer = get_tracer()
        if tracer.enabled:
            with tracer.span(
                span_name, specs=len(entries), workers=self.workers
            ) as root:
                return self._dispatch(entries, shard_fn, shards, stream, root)
        return self._dispatch(entries, shard_fn, shards, stream, None)

    def _dispatch(
        self,
        entries,
        shard_fn,
        shards: Optional[int],
        stream: Optional[bool],
        root,
    ):
        merged: List[Optional[EnsembleResult]] = [None] * len(entries)
        tasks: List[Tuple[Any, Shard]] = []
        pending: List[_Pending] = []
        first_pending: dict = {}
        duplicates: List[Tuple[int, int, str]] = []
        metrics = get_metrics()
        for position, (spec, total) in enumerate(entries):
            plan = plan_shards(
                total, spec.seed_sequence, self._resolve_shards(total, shards)
            )
            key = None
            preloaded: Tuple[Tuple[int, Any], ...] = ()
            ordinals: Tuple[int, ...] = tuple(range(len(plan)))
            if self.cache is not None:
                key = spec_fingerprint(spec, shards=len(plan))
                if key in first_pending:
                    # A duplicate of a spec already in this dispatch:
                    # the per-cell loop would have loaded it as a hit
                    # once the first copy landed, so compute it once
                    # and load it back the same way (no planning-time
                    # get — the loop never saw a miss for it either).
                    duplicates.append((position, first_pending[key], key))
                    continue
                cached = self.cache.get(key)
                if cached is not None:
                    merged[position] = cached
                    continue
                if self.journal is not None:
                    # Resume: shards an interrupted run journaled load
                    # from their checkpoint artifacts instead of
                    # dispatching.  The journal is advisory — a
                    # journaled shard whose artifact was evicted (the
                    # get counts a miss) simply recomputes.
                    recovered: Dict[int, Any] = {}
                    journaled = self.journal.completed_shards(key)
                    for ordinal, shard_key in journaled.items():
                        if not 0 <= ordinal < len(plan):
                            continue
                        part = self.cache.get(shard_key)
                        if part is not None:
                            recovered[ordinal] = part
                    if recovered:
                        preloaded = tuple(sorted(recovered.items()))
                        ordinals = tuple(
                            o for o in range(len(plan)) if o not in recovered
                        )
                        with self._retry_lock:
                            self.shards_resumed += len(recovered)
                        if metrics.enabled:
                            metrics.counter("runner.shards_resumed").inc(
                                len(recovered)
                            )
                    if not ordinals:
                        # Every shard was journaled: finalize without
                        # dispatching anything.
                        result = merge_parts(
                            [part for _, part in preloaded]
                        )
                        self.cache.put(key, result)
                        self.journal.record_spec(key)
                        for ordinal in range(len(plan)):
                            self.cache.discard(shard_fingerprint(key, ordinal))
                        merged[position] = result
                        continue
                first_pending[key] = position
            shard_list = list(plan)
            pending.append(
                _Pending(
                    position, key, len(tasks), len(ordinals), plan.total,
                    len(plan), ordinals, preloaded,
                )
            )
            tasks.extend((spec, shard_list[ordinal]) for ordinal in ordinals)
        if root is not None:
            # Traced dispatches widen tasks to (spec, shard, task_index)
            # so workers can stamp shard.run spans with the index the
            # executor's submit/complete events carry; untraced
            # dispatches keep the bare 2-tuples (identical pickle
            # payloads and worker code path to the untraced runtime).
            tasks = [
                (spec, shard, index)
                for index, (spec, shard) in enumerate(tasks)
            ]
            root.set("tasks", len(tasks))
            root.set("cached_specs", len(entries) - len(pending) - len(duplicates))
        use_stream = self.stream if stream is None else bool(stream)
        # Duck-typed executors predating the streaming protocol only
        # implement map(); fall back to the batch path for them.
        use_stream = use_stream and hasattr(self.executor, "stream")
        if root is not None:
            root.set("stream", use_stream)
        if metrics.enabled:
            metrics.counter("runner.specs").inc(len(entries))
            metrics.counter("runner.shards_dispatched").inc(len(tasks))
        try:
            if use_stream and tasks:
                self._fold_streamed(tasks, pending, shard_fn, merged)
            else:
                self._merge_batch(tasks, pending, shard_fn, merged)
        finally:
            # Give line-oriented progress callbacks (e.g. the CLI's
            # carriage-return shard ticker) a chance to terminate their
            # output even when a shard failure propagates out.
            close = getattr(self.progress, "close", None)
            if close is not None:
                close()
        for position, original, key in duplicates:
            loaded = self.cache.get(key)
            merged[position] = loaded if loaded is not None else merged[original]
        return merged

    def _merge_batch(self, tasks, pending, shard_fn, merged) -> None:
        """The original path: collect every shard result, then merge."""
        try:
            results = self.executor.map(shard_fn, tasks, progress=self.progress)
        except ShardExecutionError as error:
            self._salvage_completed(pending, error)
            raise
        # Traced workers wrap payloads in ShardEnvelopes; unwrapping
        # folds their spans/metrics into the ambient telemetry (a bare
        # payload passes through untouched).
        results = [ingest_envelope(result) for result in results]
        tracer = get_tracer()
        for entry in pending:
            parts = dict(entry.preloaded)
            for offset in range(entry.count):
                parts[entry.ordinals[offset]] = results[entry.start + offset]
            result = merge_parts(
                [parts[ordinal] for ordinal in range(entry.shards)]
            )
            if tracer.enabled:
                for index in range(entry.start, entry.start + entry.count):
                    tracer.event("shard.merge", task=index)
            if entry.key is not None:
                self.cache.put(entry.key, result)
                self._journal_spec_done(entry)
            merged[entry.position] = result

    def _journal_shard(self, entry: _Pending, ordinal: int, part) -> None:
        """Checkpoint one completed shard for resume: artifact + record."""
        if self.journal is None or entry.key is None:
            return
        shard_key = shard_fingerprint(entry.key, ordinal)
        self.cache.put(shard_key, part)
        self.journal.record_shard(entry.key, ordinal, shard_key)

    def _journal_spec_done(self, entry: _Pending) -> None:
        """Journal a finalized spec and drop its shard checkpoints (the
        merged artifact supersedes them)."""
        if self.journal is None or entry.key is None:
            return
        self.journal.record_spec(entry.key)
        for ordinal in range(entry.shards):
            self.cache.discard(shard_fingerprint(entry.key, ordinal))

    def _fold_streamed(self, tasks, pending, shard_fn, merged) -> None:
        """Fold shard results in plan order as they complete.

        Completions arrive from :meth:`Executor.stream` in whatever
        order the pool finishes them; a :class:`ReorderBuffer` (bounded
        by the executor's submission window) restores plan order, and
        each released shard folds straight into its spec's
        :class:`~repro.core.results.MergeAccumulator` and is dropped —
        at most ``O(workers)`` shard results are ever held, against
        ``O(shards)`` on the batch path, while the folded ensemble
        stays bit-identical to ``EnsembleResult.merge``.

        A spec whose shards all folded is finalized — and cached —
        immediately, so a later shard failure in another spec never
        discards completed work (the same salvage guarantee the batch
        path implements after the fact).  Progress fires once per
        *merged* shard, in plan order, and therefore cannot overshoot
        the dispatch total when shards fail — and counts each shard's
        final outcome exactly once, however many retry attempts it
        took.

        With a journal, shards recovered from a prior run (``entry
        .preloaded``) interleave with dispatched completions at their
        plan ordinals, and every fresh shard is checkpointed (artifact
        + journal record) the moment it arrives — including shards of
        specs already poisoned by a failure, so an aborted grid leaves
        the maximum behind for ``--resume``.
        """
        owner: Dict[int, int] = {}
        for slot, entry in enumerate(pending):
            for index in range(entry.start, entry.start + entry.count):
                owner[index] = slot
        accumulators: List[Optional[MergeAccumulator]] = [None] * len(pending)
        # Per-slot plan-order fold state: `cursors` is the next ordinal
        # to fold, `staged` maps ordinal -> result for parts that cannot
        # fold yet (journal preloads ahead of the dispatched cursor).
        cursors = [0] * len(pending)
        staged: List[Dict[int, Any]] = [
            dict(entry.preloaded) for entry in pending
        ]
        poisoned = [False] * len(pending)
        failures: List[Tuple[int, str, str]] = []
        buffer = ReorderBuffer(len(tasks))
        tracer = get_tracer()
        metrics = get_metrics()
        folded = 0

        def poison(slot: int, task_index: int, error: Exception) -> None:
            failures.append((
                task_index,
                repr(error),
                _format_exception(error),
            ))
            poisoned[slot] = True
            accumulators[slot] = None
            staged[slot].clear()

        def advance(slot: int, task_index: int) -> None:
            """Fold every consumable staged part; finalize when done."""
            entry = pending[slot]
            while not poisoned[slot] and cursors[slot] in staged[slot]:
                part = staged[slot].pop(cursors[slot])
                accumulator = accumulators[slot]
                if accumulator is None:
                    accumulator = MergeAccumulator(
                        expected_trials=entry.trials
                    )
                    accumulators[slot] = accumulator
                try:
                    accumulator.add(part)
                except Exception as error:  # noqa: BLE001 - poisoned, re-raised
                    # A malformed payload (e.g. from a duck-typed
                    # executor) must fail its spec, not crash the whole
                    # fold loop mid-grid.
                    poison(slot, task_index, error)
                    return
                cursors[slot] += 1
            if cursors[slot] == entry.shards and not poisoned[slot]:
                result = accumulators[slot].result()
                accumulators[slot] = None
                if entry.key is not None:
                    self.cache.put(entry.key, result)
                    self._journal_spec_done(entry)
                merged[entry.position] = result

        for slot in range(len(pending)):
            # A resumed spec may already be able to fold its leading
            # preloaded shards; folding them up front keeps the staging
            # dict (and peak memory) bounded by the reorder window.
            if staged[slot]:
                advance(slot, pending[slot].start)
        for index, ok, payload in self.executor.stream(shard_fn, tasks):
            for task_index, (item_ok, item) in buffer.push(index, (ok, payload)):
                slot = owner[task_index]
                entry = pending[slot]
                ordinal = entry.ordinals[task_index - entry.start]
                if item_ok:
                    # Traced workers ship telemetry with the payload;
                    # unwrap (a bare payload passes through) before it
                    # reaches the accumulator.
                    item = ingest_envelope(item)
                if not item_ok:
                    failures.append(_failure_triple(task_index, item))
                    poisoned[slot] = True
                    accumulators[slot] = None  # free the partial fold
                    staged[slot].clear()
                    if metrics.enabled:
                        metrics.counter("runner.shards_failed").inc()
                else:
                    # Checkpoint before folding: even shards of a spec
                    # that already failed are worth journaling — resume
                    # will not recompute them.
                    self._journal_shard(entry, ordinal, item)
                    if not poisoned[slot]:
                        staged[slot][ordinal] = item
                        advance(slot, task_index)
                folded += 1
                if tracer.enabled:
                    tracer.event("shard.merge", task=task_index, ok=item_ok)
                if self.progress is not None:
                    self.progress(folded, len(tasks))
        if not buffer.complete:
            # A custom stream() that drops tasks instead of yielding
            # them as failures would otherwise surface as silent None
            # results far downstream.
            raise RuntimeError(
                f"executor stream yielded {buffer.released + buffer.staged} "
                f"of {buffer.total} tasks — every task must be yielded "
                "exactly once (as a failure if it did not run)"
            )
        if failures:
            # Completed specs were already cached as they finalized, so
            # parity with the batch path's salvage is built in; the
            # drained per-task results are deliberately not retained
            # (retaining them is exactly what streaming avoids).
            raise ShardExecutionError(failures)

    def _salvage_completed(self, pending, error: ShardExecutionError) -> None:
        """Cache the specs whose shards all completed despite the failure.

        The per-spec loop this batches would have cached every cell
        finished before the failing one; the single dispatch drains
        every shard, so we can do one better and store every spec
        untouched by the failure before the error propagates.
        """
        results = error.results
        if results is None:
            return
        # Unwrap (and ingest) any telemetry envelopes among the drained
        # results — the completed shards' spans survive the failure and
        # callers catching the error see bare payloads.
        results = [ingest_envelope(result) for result in results]
        error.results = results
        if self.cache is None:
            return
        failed = {index for index, _, _ in error.failures}
        for entry in pending:
            if entry.key is None:
                continue
            indices = range(entry.start, entry.start + entry.count)
            if any(i in failed for i in indices):
                # The spec itself failed, but its completed shards are
                # still resume currency: checkpoint them so --resume
                # recomputes only what actually failed.
                if self.journal is not None:
                    for offset, task_index in enumerate(indices):
                        part = results[task_index]
                        if task_index in failed or part is None:
                            continue
                        self._journal_shard(
                            entry, entry.ordinals[offset], part
                        )
                continue
            parts = dict(entry.preloaded)
            for offset, task_index in enumerate(indices):
                parts[entry.ordinals[offset]] = results[task_index]
            self.cache.put(
                entry.key,
                merge_parts(
                    [parts[ordinal] for ordinal in range(entry.shards)]
                ),
            )
            self._journal_spec_done(entry)

    def __repr__(self) -> str:
        return (
            f"ParallelRunner(workers={self.workers}, "
            f"cache={self.cache!r}, shards={self.default_shards})"
        )
