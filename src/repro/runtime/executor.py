"""Executor backends: serial, multiprocessing and thread-pool engines.

An executor maps a picklable task function over a list of tasks and
returns the results *in task order* — the property the sharding layer
relies on for bit-identical merges.  Failures are aggregated rather
than raised at first error: every shard runs (or is drained), then a
single :class:`ShardExecutionError` reports all failing shards with
their tracebacks.

Each backend also offers :meth:`Executor.stream`: completions yielded
as ``(task_index, ok, payload)`` the moment futures resolve, with a
bounded submission window so at most ``O(workers)`` results exist
between the pool and the consumer.  The runner's streaming merge folds
these through a reorder buffer in plan order, which is how 100k-trial
ensembles merge without ever materializing every shard result at once
while staying bit-identical to the batch path.

Fault tolerance is opt-in via :func:`make_executor`'s ``retry`` and
``timeout`` knobs (see :mod:`repro.runtime.faults`).  With either set,
each shard gets up to ``RetryPolicy.max_attempts`` attempts with
deterministic exponential backoff, a per-shard deadline abandons hung
workers, dead worker processes are detected and the pool respawned,
and an unrecoverable pool degrades the remaining shards to serial
in-process execution behind a loud :class:`PoolDegradedWarning`.
Because shards are idempotent pure functions of their plan, a retried
run is **bit-identical** to a clean one.  Every index is still yielded
exactly once — with its *final* outcome — so plan-order consumers are
oblivious to the attempts underneath.  With both knobs at their
``None`` defaults, the original code paths run unchanged.

The multiprocessing backend prefers the ``fork`` start method where
available (cheap on Linux, and shard tasks are read-only after fork)
and falls back to ``spawn`` elsewhere, which is why task functions
must be module-level (picklable by reference).

The thread backend (``backend="threads"``) skips pickling and process
spawn entirely.  It pays off when the shard work releases the GIL —
which the batched NumPy kernels of :mod:`repro.sim.kernels` do for
their array dispatches — and for small specs where process start-up
would dominate; pure-Python-bound shards should stay on processes.
"""

from __future__ import annotations

import heapq
import multiprocessing
import queue
import time
import traceback
import warnings
from concurrent.futures import FIRST_COMPLETED, ThreadPoolExecutor, wait
from typing import Any, Callable, Iterator, List, Optional, Sequence, Tuple

from .._validation import ensure_positive_int
from ..obs.metrics import get_metrics
from ..obs.trace import get_tracer
from .faults import (
    PoolDegradedWarning,
    RetryPolicy,
    ShardFailure,
    WorkerCrashError,
    WorkerTimeoutError,
    exception_lineage,
)

__all__ = [
    "EXECUTOR_BACKENDS",
    "Executor",
    "SerialExecutor",
    "MultiprocessingExecutor",
    "ThreadExecutor",
    "ShardExecutionError",
    "StreamItem",
    "make_executor",
]

#: Valid values of the ``backend`` knob.
EXECUTOR_BACKENDS = ("processes", "threads")

#: Progress callback signature: ``callback(completed, total)``.
ProgressCallback = Callable[[int, int], None]

#: One streamed completion: ``(task_index, ok, payload)`` where
#: ``payload`` is the task's return value when ``ok`` and an
#: ``(error_repr, traceback_text)`` pair otherwise.
StreamItem = Tuple[int, bool, Any]

#: How often (seconds) the process backend checks worker liveness while
#: waiting on completions in fault-tolerant mode — a crashed worker
#: never delivers a callback, so liveness must be polled.
_LIVENESS_TICK = 0.25


class ShardExecutionError(RuntimeError):
    """One or more shards failed; carries every failure, not just the first.

    Attributes
    ----------
    failures:
        List of ``(task_index, error_repr, traceback_text)`` tuples.
        When retries were enabled, the ``error_repr`` of a shard that
        exhausted its attempts is suffixed with the attempt count.
    results:
        The drained per-task results, in task order, with None at the
        failed indices — so callers batching independent workloads can
        salvage the tasks that did complete (e.g. cache them) before
        re-raising.  **May be None**: the streaming merge (the
        runner's default) deliberately does not retain per-task
        results — that retention is what streaming eliminates — and
        instead salvages completed specs straight into the cache
        before raising.  Callers must guard for both shapes.
    """

    def __init__(
        self,
        failures: Sequence[Tuple[int, str, str]],
        results: Optional[Sequence[Any]] = None,
    ) -> None:
        self.failures = list(failures)
        self.results = None if results is None else list(results)
        summary = "; ".join(
            f"shard {index}: {error}" for index, error, _ in self.failures
        )
        details = "\n\n".join(tb for _, _, tb in self.failures)
        super().__init__(
            f"{len(self.failures)} shard(s) failed — {summary}\n{details}"
        )


def _format_exception(error: BaseException) -> str:
    """Full traceback text for an exception object (transport failures
    arrive as objects, not active exceptions, so format_exc() is out)."""
    return "".join(
        traceback.format_exception(type(error), error, error.__traceback__)
    )


def _guarded_call(payload: Tuple[Callable[[Any], Any], Any]) -> Tuple[bool, Any]:
    """Run one task, capturing any exception as data (workers can't raise
    rich tracebacks across process boundaries).  The failure payload is
    a :class:`ShardFailure` — it unpacks as ``(error_repr, traceback)``
    and additionally carries the exception's class lineage so the
    parent can classify it for retry without the exception object."""
    fn, task = payload
    try:
        return True, fn(task)
    except Exception as error:  # noqa: BLE001 - aggregated and re-raised
        return False, ShardFailure.from_exception(error, traceback.format_exc())


def _failure_triple(index: int, payload) -> Tuple[int, str, str]:
    """Normalize a failure payload into the ``failures`` triple shape,
    annotating the error with the attempt count when retries ran."""
    error, tb = payload
    attempts = getattr(payload, "attempts", 1)
    if attempts > 1:
        error = f"{error} (after {attempts} attempts)"
    return index, error, tb


def _resolve_window(window: Optional[int], pool_size: int) -> int:
    """The in-flight cap for a streaming dispatch.

    Defaults to twice the pool so workers never starve while the
    consumer folds, and is clamped to at least the pool size — a
    smaller window would leave workers permanently idle.
    """
    if window is None:
        return pool_size * 2
    return max(ensure_positive_int("window", window), pool_size)


def _collect(
    outcomes,
    total: int,
    progress: Optional[ProgressCallback],
) -> List[Any]:
    """Drain ordered outcomes, firing progress and aggregating failures."""
    results: List[Any] = []
    failures: List[Tuple[int, str, str]] = []
    tracer = get_tracer()
    for index, (ok, value) in enumerate(outcomes):
        if tracer.enabled:
            tracer.event("shard.complete", task=index, ok=ok)
        if ok:
            results.append(value)
        else:
            failures.append(_failure_triple(index, value))
            results.append(None)
        if progress is not None:
            progress(index + 1, total)
    if failures:
        raise ShardExecutionError(failures, results)
    return results


class Executor:
    """Protocol for executor backends.

    Subclasses implement :meth:`map`; ``workers`` reports the degree of
    parallelism (1 for serial).  :meth:`stream` has a default built on
    :meth:`map` so duck-typed executors keep working; the built-in
    backends override it to yield completions as futures resolve with a
    bounded submission window.

    Fault-tolerance knobs (all optional, all ``None`` by default —
    leaving them off preserves the historical code paths exactly):

    ``retry``
        A :class:`~repro.runtime.faults.RetryPolicy`; failed shards
        whose exception classifies as transient are re-run with
        deterministic backoff before being reported.
    ``timeout``
        Per-shard deadline in seconds.  Enforced by the pool backends
        (an expired shard is abandoned/killed and counts as a
        :class:`WorkerTimeoutError` failure, retryable under the
        policy); the serial backend cannot preempt in-process work and
        ignores it.
    ``retry_listener``
        Optional ``callback(task_index, attempt)`` fired once per
        retry — the runner uses it to keep its retry tally without
        double-counting shards.
    """

    workers: int = 1
    retry: Optional[RetryPolicy] = None
    timeout: Optional[float] = None
    retry_listener: Optional[Callable[[int, int], None]] = None
    #: Pool rebuilds allowed per dispatch before degrading to serial.
    max_respawns: int = 3

    def map(
        self,
        fn: Callable[[Any], Any],
        tasks: Sequence[Any],
        *,
        progress: Optional[ProgressCallback] = None,
    ) -> List[Any]:
        """Apply ``fn`` to every task, returning results in task order."""
        raise NotImplementedError

    def stream(
        self,
        fn: Callable[[Any], Any],
        tasks: Sequence[Any],
        *,
        window: Optional[int] = None,
    ) -> Iterator[StreamItem]:
        """Yield ``(task_index, ok, payload)`` as tasks complete.

        Every task runs (failures are yielded as data, never raised),
        and each index appears exactly once — with its *final* outcome
        when retries are configured.  The built-in backends keep at
        most ``window`` tasks in flight (default ``2 * workers``), so
        the number of completed-but-unconsumed results — and hence the
        reorder buffer a plan-order consumer needs — is bounded by the
        window, not the task count.

        This default implementation runs :meth:`map` to completion and
        replays it in order: correct for any executor that only
        implements :meth:`map`, but without the memory bound.
        """
        tasks = list(tasks)
        try:
            results = self.map(fn, tasks)
        except ShardExecutionError as error:
            failed = {index: (err, tb) for index, err, tb in error.failures}
            drained = error.results
            for index in range(len(tasks)):
                if index in failed:
                    yield index, False, failed[index]
                elif drained is None:
                    # The executor raised without drained results, so
                    # this task's outcome is unknown — report it as a
                    # failure rather than fabricating a None success.
                    yield index, False, (
                        "result unavailable: the dispatch aborted before "
                        "this task's result was drained",
                        str(error),
                    )
                else:
                    yield index, True, drained[index]
            return
        for index, value in enumerate(results):
            yield index, True, value

    # -- fault-tolerance plumbing (shared by the backends) ---------------

    def _fault_tolerant(self) -> bool:
        return self.retry is not None or self.timeout is not None

    def _note_retry(self, index: int, attempt: int, delay: float) -> None:
        """Record one retry in telemetry and toward the caller's tally."""
        tracer = get_tracer()
        if tracer.enabled:
            tracer.event(
                "shard.retry", task=index, attempt=attempt, delay=delay
            )
        metrics = get_metrics()
        if metrics.enabled:
            metrics.counter("executor.retries").inc()
        listener = self.retry_listener
        if listener is not None:
            listener(index, attempt)

    def _decide_failure(
        self, index: int, attempt: int, payload, scheduled: list
    ) -> Optional[StreamItem]:
        """Route one failed attempt: schedule a retry (returns None) or
        finalize the failure (returns the stream item)."""
        policy = self.retry
        if (
            policy is not None
            and policy.allows(attempt)
            and policy.is_retryable(payload)
        ):
            delay = policy.delay(index, attempt)
            self._note_retry(index, attempt, delay)
            heapq.heappush(
                scheduled, (time.monotonic() + delay, index, attempt + 1)
            )
            return None
        if isinstance(payload, ShardFailure):
            payload = payload.with_attempts(attempt)
        return index, False, payload

    def _synthetic_failure(self, error: Exception) -> ShardFailure:
        """A failure payload for a shard that never reported back (the
        worker was abandoned or killed, so no traceback exists)."""
        return ShardFailure(
            repr(error),
            f"{type(error).__name__}: {error}\n"
            "  (no worker traceback: the worker was abandoned or "
            "terminated before the shard reported back)",
            exception_lineage(error),
        )

    def _run_with_retries(
        self,
        fn: Callable[[Any], Any],
        task: Any,
        index: int,
        first_attempt: int = 1,
    ) -> StreamItem:
        """Run one task in-process under the retry policy (the serial
        execution path, also used for pool degradation)."""
        tracer = get_tracer()
        attempt = first_attempt
        while True:
            if tracer.enabled:
                tracer.event("shard.submit", task=index, attempt=attempt)
            ok, value = _guarded_call((fn, task))
            if tracer.enabled:
                tracer.event("shard.complete", task=index, ok=ok)
            if ok:
                return index, True, value
            policy = self.retry
            if (
                policy is None
                or not policy.allows(attempt)
                or not policy.is_retryable(value)
            ):
                if isinstance(value, ShardFailure):
                    value = value.with_attempts(attempt)
                return index, False, value
            delay = policy.delay(index, attempt)
            self._note_retry(index, attempt, delay)
            if delay > 0:
                time.sleep(delay)
            attempt += 1

    def _degrade_remaining(
        self,
        fn: Callable[[Any], Any],
        tasks: Sequence[Any],
        remaining: Sequence[Tuple[int, int]],
        reason: str,
    ) -> Iterator[StreamItem]:
        """Run ``remaining`` ``(index, attempt)`` pairs serially after the
        pool became unrecoverable.  Loud by design: losing parallelism
        mid-run is worth a warning even though the results (being pure
        functions of the plan) are unaffected."""
        remaining = sorted(set(remaining))
        warnings.warn(
            f"{type(self).__name__} pool is unrecoverable ({reason}); "
            f"running the remaining {len(remaining)} shard task(s) "
            "serially in-process.  Results are unaffected — shards are "
            "deterministic — but parallelism is lost for the rest of "
            "this dispatch.",
            PoolDegradedWarning,
            stacklevel=3,
        )
        tracer = get_tracer()
        if tracer.enabled:
            tracer.event(
                "pool.degraded", reason=reason, remaining=len(remaining)
            )
        metrics = get_metrics()
        if metrics.enabled:
            metrics.counter("executor.degraded").inc()
        for index, attempt in remaining:
            yield self._run_with_retries(
                fn, tasks[index], index, first_attempt=attempt
            )

    def _map_via_stream(
        self,
        fn: Callable[[Any], Any],
        tasks: Sequence[Any],
        progress: Optional[ProgressCallback],
    ) -> List[Any]:
        """Batch collection built on the fault-tolerant stream.

        Progress fires once per task on its *final* outcome (never per
        attempt, so retried shards are not double-counted), in
        completion order.  Results return in task order regardless.
        """
        tasks = list(tasks)
        results: List[Any] = [None] * len(tasks)
        failures: List[Tuple[int, str, str]] = []
        done = 0
        for index, ok, payload in self.stream(fn, tasks):
            done += 1
            if ok:
                results[index] = payload
            else:
                failures.append(_failure_triple(index, payload))
            if progress is not None:
                progress(done, len(tasks))
        if failures:
            failures.sort(key=lambda item: item[0])
            raise ShardExecutionError(failures, results)
        return results


class SerialExecutor(Executor):
    """In-process execution: the reference backend and the 1-worker case.

    With a retry policy configured, each task gets its attempts inline
    (same deterministic backoff as the pools).  ``timeout`` is ignored:
    in-process work cannot be preempted, and serial execution has no
    worker to lose.
    """

    workers = 1

    def map(
        self,
        fn: Callable[[Any], Any],
        tasks: Sequence[Any],
        *,
        progress: Optional[ProgressCallback] = None,
    ) -> List[Any]:
        tasks = list(tasks)
        if self.retry is not None:
            return self._map_via_stream(fn, tasks, progress)
        tracer = get_tracer()
        if tracer.enabled:
            # Serial "submission" is just starting the task; the event
            # keeps the submit→complete join uniform across backends.
            outcomes = (
                (tracer.event("shard.submit", task=index),
                 _guarded_call((fn, task)))[1]
                for index, task in enumerate(tasks)
            )
        else:
            outcomes = (_guarded_call((fn, task)) for task in tasks)
        return _collect(outcomes, len(tasks), progress)

    def stream(
        self,
        fn: Callable[[Any], Any],
        tasks: Sequence[Any],
        *,
        window: Optional[int] = None,
    ) -> Iterator[StreamItem]:
        """Serial streaming: tasks complete (and yield) in index order,
        so exactly one result is ever in flight."""
        tasks = list(tasks)
        if self.retry is not None:
            for index, task in enumerate(tasks):
                yield self._run_with_retries(fn, task, index)
            return
        tracer = get_tracer()
        for index, task in enumerate(tasks):
            if tracer.enabled:
                tracer.event("shard.submit", task=index)
            ok, value = _guarded_call((fn, task))
            if tracer.enabled:
                tracer.event("shard.complete", task=index, ok=ok)
            yield index, ok, value

    def __repr__(self) -> str:
        return "SerialExecutor()"


def _serial_clone(executor: Executor) -> SerialExecutor:
    """A serial executor inheriting ``executor``'s fault-tolerance knobs
    (for the 1-task delegation paths, so retries still apply)."""
    clone = SerialExecutor()
    clone.retry = executor.retry
    clone.timeout = executor.timeout
    clone.retry_listener = executor.retry_listener
    return clone


class MultiprocessingExecutor(Executor):
    """Process-pool execution via :mod:`multiprocessing`.

    Parameters
    ----------
    workers:
        Pool size.  The pool never exceeds the task count.
    start_method:
        ``multiprocessing`` start method; defaults to ``fork`` when the
        platform offers it, else the platform default.  Task functions
        must be module-level either way so ``spawn`` keeps working.

    In fault-tolerant mode (``retry``/``timeout`` set) the streaming
    path additionally enforces per-shard deadlines and polls worker
    liveness: an expired or crashed shard terminates the pool (a single
    hung worker cannot be killed individually), salvages every
    completion already delivered, respawns the pool, resubmits the
    innocent in-flight shards at no attempt cost, and charges only the
    suspects (the expired shard, or every in-flight shard on a crash —
    the victim is unknowable) a retry attempt.  After
    :attr:`Executor.max_respawns` rebuilds the remaining shards degrade
    to serial in-process execution with a
    :class:`~repro.runtime.faults.PoolDegradedWarning`.
    """

    def __init__(self, workers: int, start_method: Optional[str] = None) -> None:
        self.workers = ensure_positive_int("workers", workers)
        if start_method is None:
            available = multiprocessing.get_all_start_methods()
            start_method = "fork" if "fork" in available else None
        self.start_method = start_method

    def map(
        self,
        fn: Callable[[Any], Any],
        tasks: Sequence[Any],
        *,
        progress: Optional[ProgressCallback] = None,
    ) -> List[Any]:
        tasks = list(tasks)
        if not tasks:
            return []
        if self._fault_tolerant():
            # One engine for both entry points: map rides the
            # fault-tolerant stream, so retries/timeouts/respawns are
            # implemented (and tested) once per backend.
            return self._map_via_stream(fn, tasks, progress)
        pool_size = min(self.workers, len(tasks))
        if pool_size == 1:
            return SerialExecutor().map(fn, tasks, progress=progress)
        context = multiprocessing.get_context(self.start_method)
        payloads = [(fn, task) for task in tasks]
        tracer = get_tracer()
        if tracer.enabled:
            # imap hands the whole batch to the pool at once, so every
            # task is submitted up front.
            for index in range(len(tasks)):
                tracer.event("shard.submit", task=index)
        with context.Pool(pool_size) as pool:
            # imap (not imap_unordered): order preservation is what
            # makes merged results independent of the worker count.
            outcomes = pool.imap(_guarded_call, payloads)
            return _collect(outcomes, len(tasks), progress)

    def stream(
        self,
        fn: Callable[[Any], Any],
        tasks: Sequence[Any],
        *,
        window: Optional[int] = None,
    ) -> Iterator[StreamItem]:
        """Yield completions as worker processes finish, out of order.

        Windowed ``apply_async`` submission: a new task ships only when
        a result is consumed, so at most ``window`` results ever exist
        between the pool and the consumer.
        """
        tasks = list(tasks)
        if not tasks:
            return
        pool_size = min(self.workers, len(tasks))
        if pool_size == 1:
            yield from _serial_clone(self).stream(fn, tasks)
            return
        window = _resolve_window(window, pool_size)
        if self._fault_tolerant():
            yield from self._stream_fault_tolerant(
                fn, tasks, window, pool_size
            )
            return
        completions: "queue.SimpleQueue" = queue.SimpleQueue()
        context = multiprocessing.get_context(self.start_method)
        tracer = get_tracer()
        with context.Pool(pool_size) as pool:

            def submit(index: int) -> None:
                if tracer.enabled:
                    tracer.event("shard.submit", task=index)
                pool.apply_async(
                    _guarded_call,
                    ((fn, tasks[index]),),
                    callback=lambda outcome, index=index: completions.put(
                        (index, outcome)
                    ),
                    # _guarded_call captures task exceptions as data, so
                    # this only fires on transport failures (e.g. an
                    # unpicklable result); surface those as shard
                    # failures too rather than hanging the drain.
                    error_callback=lambda error, index=index: completions.put(
                        (index, (False, ShardFailure.from_exception(
                            error, _format_exception(error)
                        )))
                    ),
                )

            # Submission is gated on the lowest *unyielded* index — the
            # plan-order cursor a reorder-buffer consumer is waiting on
            # — not on raw completion count.  If one early shard is
            # slow, submission stalls at its index + window, so no
            # more than `window` completions can ever pile up ahead of
            # the cursor, even under extreme shard-time skew.
            unyielded: set = set()
            submitted = 0

            def fill() -> None:
                nonlocal submitted
                low = min(unyielded, default=submitted)
                while submitted < len(tasks) and submitted < low + window:
                    submit(submitted)
                    unyielded.add(submitted)
                    submitted += 1

            fill()
            for _ in range(len(tasks)):
                index, (ok, value) = completions.get()
                if tracer.enabled:
                    tracer.event("shard.complete", task=index, ok=ok)
                unyielded.discard(index)
                fill()
                yield index, ok, value

    def _stream_fault_tolerant(
        self,
        fn: Callable[[Any], Any],
        tasks: List[Any],
        window: int,
        pool_size: int,
    ) -> Iterator[StreamItem]:
        """The retry/timeout/crash-aware streaming engine."""
        policy, timeout = self.retry, self.timeout
        tracer = get_tracer()
        metrics = get_metrics()
        context = multiprocessing.get_context(self.start_method)
        completions: "queue.SimpleQueue" = queue.SimpleQueue()
        total = len(tasks)
        in_flight: dict = {}  # index -> (attempt, deadline or None)
        scheduled: list = []  # heap of (ready_time, index, next_attempt)
        unfinal: set = set()
        submitted = 0
        finalized = 0
        respawns = 0
        pool = None
        procs: list = []

        def spawn_pool() -> None:
            nonlocal pool, procs
            pool = context.Pool(pool_size)
            # Snapshot the worker Process objects for liveness checks;
            # guard the private attribute so an exotic Pool subclass
            # merely loses crash detection, not correctness.
            procs = list(getattr(pool, "_pool", []))

        def submit(index: int, attempt: int) -> None:
            if tracer.enabled:
                tracer.event("shard.submit", task=index, attempt=attempt)
            deadline = None if timeout is None else time.monotonic() + timeout
            in_flight[index] = (attempt, deadline)
            pool.apply_async(
                _guarded_call,
                ((fn, tasks[index]),),
                callback=lambda outcome, index=index: completions.put(
                    (index, outcome)
                ),
                error_callback=lambda error, index=index: completions.put(
                    (index, (False, ShardFailure.from_exception(
                        error, _format_exception(error)
                    )))
                ),
            )

        def fill() -> None:
            nonlocal submitted
            low = min(unfinal, default=submitted)
            while submitted < total and submitted < low + window:
                unfinal.add(submitted)
                submit(submitted, 1)
                submitted += 1

        def absorb(index: int, ok: bool, value) -> Optional[StreamItem]:
            """Handle one delivered completion; final item or None."""
            attempt, _ = in_flight.pop(index)
            if tracer.enabled:
                tracer.event("shard.complete", task=index, ok=ok)
            if ok:
                return index, True, value
            return self._decide_failure(index, attempt, value, scheduled)

        def recover(expired: set, crashed: bool):
            """Tear down the pool, salvage delivered completions, charge
            the suspects an attempt, and respawn (or signal degrade).

            Returns ``(final_outcomes, degrade)``.
            """
            nonlocal respawns
            pool.terminate()
            pool.join()
            outcomes: List[StreamItem] = []
            # Completions delivered before the teardown are real results
            # — honor them before deciding who was at fault.
            while True:
                try:
                    index, (ok, value) = completions.get_nowait()
                except queue.Empty:
                    break
                if index not in in_flight:
                    continue
                outcome = absorb(index, ok, value)
                if outcome is not None:
                    outcomes.append(outcome)
            # Whatever is still in flight died with the pool.  Expired
            # shards (and, on a crash, every survivor — the victim is
            # unknowable) are suspects and pay an attempt; the rest are
            # innocent and resubmit free.
            innocents: List[Tuple[int, int]] = []
            for index in list(in_flight):
                attempt, _ = in_flight.pop(index)
                if index in expired:
                    if metrics.enabled:
                        metrics.counter("executor.timeouts").inc()
                    if tracer.enabled:
                        tracer.event(
                            "shard.complete", task=index, ok=False,
                            timeout=True,
                        )
                    failure = self._synthetic_failure(WorkerTimeoutError(
                        f"shard task {index} exceeded the {timeout:.4g}s "
                        f"deadline on attempt {attempt}"
                    ))
                    outcome = self._decide_failure(
                        index, attempt, failure, scheduled
                    )
                    if outcome is not None:
                        outcomes.append(outcome)
                elif crashed:
                    if tracer.enabled:
                        tracer.event(
                            "shard.complete", task=index, ok=False,
                            crashed=True,
                        )
                    failure = self._synthetic_failure(WorkerCrashError(
                        f"a worker process died while shard task {index} "
                        f"was in flight (attempt {attempt})"
                    ))
                    outcome = self._decide_failure(
                        index, attempt, failure, scheduled
                    )
                    if outcome is not None:
                        outcomes.append(outcome)
                else:
                    innocents.append((index, attempt))
            respawns += 1
            if respawns > self.max_respawns:
                # Put the innocents back so the degrade sweep sees them.
                for index, attempt in innocents:
                    in_flight[index] = (attempt, None)
                return outcomes, True
            spawn_pool()
            if tracer.enabled:
                tracer.event(
                    "pool.respawn", crashed=crashed, expired=len(expired),
                    resubmitted=len(innocents),
                )
            if metrics.enabled:
                metrics.counter("executor.respawns").inc()
            # Innocent resubmissions bypass the window gate: their
            # indices are already counted in `submitted`/`unfinal`.
            for index, attempt in innocents:
                submit(index, attempt)
            return outcomes, False

        try:
            spawn_pool()
            fill()
            while finalized < total:
                now = time.monotonic()
                while scheduled and scheduled[0][0] <= now:
                    _, index, attempt = heapq.heappop(scheduled)
                    submit(index, attempt)
                marks = [
                    deadline
                    for _, deadline in in_flight.values()
                    if deadline is not None
                ]
                if scheduled:
                    marks.append(scheduled[0][0])
                if in_flight and procs:
                    marks.append(now + _LIVENESS_TICK)
                block = None if not marks else max(0.0, min(marks) - now)
                try:
                    if block is None:
                        index, (ok, value) = completions.get()
                    else:
                        index, (ok, value) = completions.get(timeout=block)
                except queue.Empty:
                    now = time.monotonic()
                    expired = {
                        index
                        for index, (_, deadline) in in_flight.items()
                        if deadline is not None and deadline <= now
                    }
                    crashed = any(
                        proc.exitcode is not None for proc in procs
                    )
                    if expired or crashed:
                        outcomes, degrade = recover(expired, crashed)
                        for outcome in outcomes:
                            unfinal.discard(outcome[0])
                            finalized += 1
                            yield outcome
                        if degrade:
                            remaining = [
                                (index, attempt)
                                for index, (attempt, _) in in_flight.items()
                            ]
                            remaining += [
                                (index, attempt)
                                for _, index, attempt in scheduled
                            ]
                            remaining += [
                                (index, 1)
                                for index in range(submitted, total)
                            ]
                            in_flight.clear()
                            scheduled.clear()
                            reason = (
                                "worker crash" if crashed else "hung worker"
                            ) + f" after {self.max_respawns} pool respawns"
                            pool.terminate()
                            yield from self._degrade_remaining(
                                fn, tasks, remaining, reason
                            )
                            return
                        fill()
                    continue
                if index not in in_flight:
                    continue  # stale delivery from a recycled pool
                outcome = absorb(index, ok, value)
                if outcome is not None:
                    unfinal.discard(index)
                    finalized += 1
                    fill()
                    yield outcome
        finally:
            if pool is not None:
                pool.terminate()
                pool.join()

    def __repr__(self) -> str:
        return f"MultiprocessingExecutor(workers={self.workers})"


class ThreadExecutor(Executor):
    """Thread-pool execution via :class:`concurrent.futures.ThreadPoolExecutor`.

    No pickling, no process spawn: tasks run in-process and share
    memory.  Worth it exactly when the task body releases the GIL —
    the fused NumPy kernels do — or when the spec is small enough that
    process start-up would swamp the work.

    Parameters
    ----------
    workers:
        Pool size.  The pool never exceeds the task count.

    Fault-tolerant mode retries per the policy and enforces per-shard
    deadlines by *abandoning* expired futures — threads cannot be
    killed, so a hung thread keeps its pool slot until it returns (its
    late result is discarded).  If every slot ends up hung, the
    remaining shards degrade to serial in-process execution with a
    :class:`~repro.runtime.faults.PoolDegradedWarning`.
    """

    def __init__(self, workers: int) -> None:
        self.workers = ensure_positive_int("workers", workers)

    def map(
        self,
        fn: Callable[[Any], Any],
        tasks: Sequence[Any],
        *,
        progress: Optional[ProgressCallback] = None,
    ) -> List[Any]:
        tasks = list(tasks)
        if not tasks:
            return []
        if self._fault_tolerant():
            return self._map_via_stream(fn, tasks, progress)
        pool_size = min(self.workers, len(tasks))
        if pool_size == 1:
            return SerialExecutor().map(fn, tasks, progress=progress)
        payloads = [(fn, task) for task in tasks]
        tracer = get_tracer()
        if tracer.enabled:
            for index in range(len(tasks)):
                tracer.event("shard.submit", task=index)
        with ThreadPoolExecutor(max_workers=pool_size) as pool:
            # Executor.map preserves submission order — the property
            # that makes merged results independent of the pool size.
            outcomes = pool.map(_guarded_call, payloads)
            return _collect(outcomes, len(tasks), progress)

    def stream(
        self,
        fn: Callable[[Any], Any],
        tasks: Sequence[Any],
        *,
        window: Optional[int] = None,
    ) -> Iterator[StreamItem]:
        """Yield completions as pool threads finish, out of order.

        At most ``window`` futures are outstanding at a time — each
        consumed completion releases the next submission — which bounds
        completed-but-unconsumed results by the window.
        """
        tasks = list(tasks)
        if not tasks:
            return
        pool_size = min(self.workers, len(tasks))
        if pool_size == 1:
            yield from _serial_clone(self).stream(fn, tasks)
            return
        window = _resolve_window(window, pool_size)
        if self._fault_tolerant():
            yield from self._stream_fault_tolerant(
                fn, tasks, window, pool_size
            )
            return
        tracer = get_tracer()
        with ThreadPoolExecutor(max_workers=pool_size) as pool:
            pending = {}
            submitted = 0

            # Same gate as the process backend: new submissions stop at
            # (lowest unyielded index) + window, so completions can
            # never outrun a plan-order consumer by more than the
            # window, no matter how skewed the shard durations are.
            def fill() -> None:
                nonlocal submitted
                low = min(pending.values(), default=submitted)
                while submitted < len(tasks) and submitted < low + window:
                    if tracer.enabled:
                        tracer.event("shard.submit", task=submitted)
                    future = pool.submit(_guarded_call, (fn, tasks[submitted]))
                    pending[future] = submitted
                    submitted += 1

            try:
                fill()
                while pending:
                    done, _ = wait(pending, return_when=FIRST_COMPLETED)
                    for future in done:
                        index = pending.pop(future)
                        ok, value = future.result()
                        if tracer.enabled:
                            tracer.event("shard.complete", task=index, ok=ok)
                        fill()
                        yield index, ok, value
            finally:
                # An abandoned generator (the consumer raised
                # mid-stream) must not sit through the whole submission
                # window: cancel everything still queued so the pool's
                # shutdown only waits for the tasks actually running.
                for future in pending:
                    future.cancel()

    def _stream_fault_tolerant(
        self,
        fn: Callable[[Any], Any],
        tasks: List[Any],
        window: int,
        pool_size: int,
    ) -> Iterator[StreamItem]:
        """The retry/timeout-aware streaming engine (threads)."""
        timeout = self.timeout
        tracer = get_tracer()
        metrics = get_metrics()
        total = len(tasks)
        pool = ThreadPoolExecutor(max_workers=pool_size)
        pending: dict = {}  # future -> (index, attempt, deadline or None)
        scheduled: list = []  # heap of (ready_time, index, next_attempt)
        abandoned: list = []  # expired futures that may still be running
        unfinal: set = set()
        submitted = 0
        finalized = 0

        def submit(index: int, attempt: int) -> None:
            if tracer.enabled:
                tracer.event("shard.submit", task=index, attempt=attempt)
            future = pool.submit(_guarded_call, (fn, tasks[index]))
            deadline = None if timeout is None else time.monotonic() + timeout
            pending[future] = (index, attempt, deadline)

        def fill() -> None:
            nonlocal submitted
            low = min(unfinal, default=submitted)
            while submitted < total and submitted < low + window:
                unfinal.add(submitted)
                submit(submitted, 1)
                submitted += 1

        try:
            fill()
            while finalized < total:
                now = time.monotonic()
                while scheduled and scheduled[0][0] <= now:
                    _, index, attempt = heapq.heappop(scheduled)
                    submit(index, attempt)
                # A thread cannot be killed: if every pool slot is held
                # by an abandoned (timed-out) task, nothing queued can
                # start — degrade the rest to serial.
                abandoned[:] = [f for f in abandoned if not f.done()]
                if len(abandoned) >= pool_size and finalized < total:
                    remaining = [
                        (index, attempt)
                        for index, attempt, _ in pending.values()
                    ]
                    remaining += [
                        (index, attempt) for _, index, attempt in scheduled
                    ]
                    remaining += [
                        (index, 1) for index in range(submitted, total)
                    ]
                    for future in pending:
                        future.cancel()
                    pending.clear()
                    scheduled.clear()
                    yield from self._degrade_remaining(
                        fn, tasks, remaining,
                        f"all {pool_size} pool threads hung past the "
                        f"{timeout:.4g}s deadline",
                    )
                    return
                marks = [
                    deadline
                    for _, _, deadline in pending.values()
                    if deadline is not None
                ]
                if scheduled:
                    marks.append(scheduled[0][0])
                wait_for = None if not marks else max(0.0, min(marks) - now)
                if pending:
                    done, _ = wait(
                        pending, timeout=wait_for,
                        return_when=FIRST_COMPLETED,
                    )
                elif wait_for is not None:
                    time.sleep(wait_for)
                    done = ()
                else:
                    break  # defensive: nothing pending, nothing scheduled
                for future in done:
                    index, attempt, _ = pending.pop(future)
                    ok, value = future.result()
                    if tracer.enabled:
                        tracer.event("shard.complete", task=index, ok=ok)
                    if ok:
                        outcome: Optional[StreamItem] = (index, True, value)
                    else:
                        outcome = self._decide_failure(
                            index, attempt, value, scheduled
                        )
                    if outcome is not None:
                        unfinal.discard(index)
                        finalized += 1
                        fill()
                        yield outcome
                if timeout is not None:
                    now = time.monotonic()
                    expired = [
                        future
                        for future, (_, _, deadline) in pending.items()
                        if deadline is not None and deadline <= now
                    ]
                    for future in expired:
                        index, attempt, _ = pending.pop(future)
                        if not future.cancel():
                            # Already running: the thread is lost to us
                            # until it returns; its late result will be
                            # discarded because the future left
                            # `pending`.
                            abandoned.append(future)
                        if metrics.enabled:
                            metrics.counter("executor.timeouts").inc()
                        if tracer.enabled:
                            tracer.event(
                                "shard.complete", task=index, ok=False,
                                timeout=True,
                            )
                        failure = self._synthetic_failure(WorkerTimeoutError(
                            f"shard task {index} exceeded the "
                            f"{timeout:.4g}s deadline on attempt {attempt}"
                        ))
                        outcome = self._decide_failure(
                            index, attempt, failure, scheduled
                        )
                        if outcome is not None:
                            unfinal.discard(index)
                            finalized += 1
                            fill()
                            yield outcome
        finally:
            for future in pending:
                future.cancel()
            # wait=False: hung (abandoned) threads must not block the
            # consumer's exit; they die with the interpreter.
            pool.shutdown(wait=False)

    def __repr__(self) -> str:
        return f"ThreadExecutor(workers={self.workers})"


def make_executor(
    workers: int,
    start_method: Optional[str] = None,
    backend: str = "processes",
    *,
    retry: Optional[RetryPolicy] = None,
    timeout: Optional[float] = None,
) -> Executor:
    """The executor for a worker count and backend.

    One worker is always the serial reference backend; above that,
    ``backend="processes"`` builds a :class:`MultiprocessingExecutor`
    and ``backend="threads"`` a :class:`ThreadExecutor`.

    ``retry`` (a :class:`~repro.runtime.faults.RetryPolicy`, or an int
    shorthand for ``RetryPolicy(max_attempts=n)``) and ``timeout``
    (per-shard deadline, seconds) opt the executor into fault-tolerant
    execution; both default to off, which preserves the historical
    behavior exactly.
    """
    workers = ensure_positive_int("workers", workers)
    if backend not in EXECUTOR_BACKENDS:
        raise ValueError(
            f"backend must be one of {EXECUTOR_BACKENDS}, got {backend!r}"
        )
    if workers == 1:
        executor: Executor = SerialExecutor()
    elif backend == "threads":
        executor = ThreadExecutor(workers)
    else:
        executor = MultiprocessingExecutor(workers, start_method)
    if retry is not None:
        if isinstance(retry, int):
            retry = RetryPolicy(max_attempts=retry)
        if not isinstance(retry, RetryPolicy):
            raise TypeError(
                f"retry must be a RetryPolicy or int, got {type(retry).__name__}"
            )
        executor.retry = retry
    if timeout is not None:
        timeout = float(timeout)
        if timeout <= 0:
            raise ValueError(f"timeout must be positive, got {timeout}")
        executor.timeout = timeout
    return executor
