"""Executor backends: serial, multiprocessing and thread-pool engines.

An executor maps a picklable task function over a list of tasks and
returns the results *in task order* — the property the sharding layer
relies on for bit-identical merges.  Failures are aggregated rather
than raised at first error: every shard runs (or is drained), then a
single :class:`ShardExecutionError` reports all failing shards with
their tracebacks.

The multiprocessing backend prefers the ``fork`` start method where
available (cheap on Linux, and shard tasks are read-only after fork)
and falls back to ``spawn`` elsewhere, which is why task functions
must be module-level (picklable by reference).

The thread backend (``backend="threads"``) skips pickling and process
spawn entirely.  It pays off when the shard work releases the GIL —
which the batched NumPy kernels of :mod:`repro.sim.kernels` do for
their array dispatches — and for small specs where process start-up
would dominate; pure-Python-bound shards should stay on processes.
"""

from __future__ import annotations

import multiprocessing
import traceback
from concurrent.futures import ThreadPoolExecutor
from typing import Any, Callable, List, Optional, Sequence, Tuple

from .._validation import ensure_positive_int

__all__ = [
    "EXECUTOR_BACKENDS",
    "Executor",
    "SerialExecutor",
    "MultiprocessingExecutor",
    "ThreadExecutor",
    "ShardExecutionError",
    "make_executor",
]

#: Valid values of the ``backend`` knob.
EXECUTOR_BACKENDS = ("processes", "threads")

#: Progress callback signature: ``callback(completed, total)``.
ProgressCallback = Callable[[int, int], None]


class ShardExecutionError(RuntimeError):
    """One or more shards failed; carries every failure, not just the first.

    Attributes
    ----------
    failures:
        List of ``(task_index, error_repr, traceback_text)`` tuples.
    results:
        The drained per-task results, in task order, with None at the
        failed indices — so callers batching independent workloads can
        salvage the tasks that did complete (e.g. cache them) before
        re-raising.
    """

    def __init__(
        self,
        failures: Sequence[Tuple[int, str, str]],
        results: Optional[Sequence[Any]] = None,
    ) -> None:
        self.failures = list(failures)
        self.results = None if results is None else list(results)
        summary = "; ".join(
            f"shard {index}: {error}" for index, error, _ in self.failures
        )
        details = "\n\n".join(tb for _, _, tb in self.failures)
        super().__init__(
            f"{len(self.failures)} shard(s) failed — {summary}\n{details}"
        )


def _guarded_call(payload: Tuple[Callable[[Any], Any], Any]) -> Tuple[bool, Any]:
    """Run one task, capturing any exception as data (workers can't raise
    rich tracebacks across process boundaries)."""
    fn, task = payload
    try:
        return True, fn(task)
    except Exception as error:  # noqa: BLE001 - aggregated and re-raised
        return False, (repr(error), traceback.format_exc())


def _collect(
    outcomes,
    total: int,
    progress: Optional[ProgressCallback],
) -> List[Any]:
    """Drain ordered outcomes, firing progress and aggregating failures."""
    results: List[Any] = []
    failures: List[Tuple[int, str, str]] = []
    for index, (ok, value) in enumerate(outcomes):
        if ok:
            results.append(value)
        else:
            error, tb = value
            failures.append((index, error, tb))
            results.append(None)
        if progress is not None:
            progress(index + 1, total)
    if failures:
        raise ShardExecutionError(failures, results)
    return results


class Executor:
    """Protocol for executor backends.

    Subclasses implement :meth:`map`; ``workers`` reports the degree of
    parallelism (1 for serial).
    """

    workers: int = 1

    def map(
        self,
        fn: Callable[[Any], Any],
        tasks: Sequence[Any],
        *,
        progress: Optional[ProgressCallback] = None,
    ) -> List[Any]:
        """Apply ``fn`` to every task, returning results in task order."""
        raise NotImplementedError


class SerialExecutor(Executor):
    """In-process execution: the reference backend and the 1-worker case."""

    workers = 1

    def map(
        self,
        fn: Callable[[Any], Any],
        tasks: Sequence[Any],
        *,
        progress: Optional[ProgressCallback] = None,
    ) -> List[Any]:
        tasks = list(tasks)
        outcomes = (_guarded_call((fn, task)) for task in tasks)
        return _collect(outcomes, len(tasks), progress)

    def __repr__(self) -> str:
        return "SerialExecutor()"


class MultiprocessingExecutor(Executor):
    """Process-pool execution via :mod:`multiprocessing`.

    Parameters
    ----------
    workers:
        Pool size.  The pool never exceeds the task count.
    start_method:
        ``multiprocessing`` start method; defaults to ``fork`` when the
        platform offers it, else the platform default.  Task functions
        must be module-level either way so ``spawn`` keeps working.
    """

    def __init__(self, workers: int, start_method: Optional[str] = None) -> None:
        self.workers = ensure_positive_int("workers", workers)
        if start_method is None:
            available = multiprocessing.get_all_start_methods()
            start_method = "fork" if "fork" in available else None
        self.start_method = start_method

    def map(
        self,
        fn: Callable[[Any], Any],
        tasks: Sequence[Any],
        *,
        progress: Optional[ProgressCallback] = None,
    ) -> List[Any]:
        tasks = list(tasks)
        if not tasks:
            return []
        pool_size = min(self.workers, len(tasks))
        if pool_size == 1:
            return SerialExecutor().map(fn, tasks, progress=progress)
        context = multiprocessing.get_context(self.start_method)
        payloads = [(fn, task) for task in tasks]
        with context.Pool(pool_size) as pool:
            # imap (not imap_unordered): order preservation is what
            # makes merged results independent of the worker count.
            outcomes = pool.imap(_guarded_call, payloads)
            return _collect(outcomes, len(tasks), progress)

    def __repr__(self) -> str:
        return f"MultiprocessingExecutor(workers={self.workers})"


class ThreadExecutor(Executor):
    """Thread-pool execution via :class:`concurrent.futures.ThreadPoolExecutor`.

    No pickling, no process spawn: tasks run in-process and share
    memory.  Worth it exactly when the task body releases the GIL —
    the fused NumPy kernels do — or when the spec is small enough that
    process start-up would swamp the work.

    Parameters
    ----------
    workers:
        Pool size.  The pool never exceeds the task count.
    """

    def __init__(self, workers: int) -> None:
        self.workers = ensure_positive_int("workers", workers)

    def map(
        self,
        fn: Callable[[Any], Any],
        tasks: Sequence[Any],
        *,
        progress: Optional[ProgressCallback] = None,
    ) -> List[Any]:
        tasks = list(tasks)
        if not tasks:
            return []
        pool_size = min(self.workers, len(tasks))
        if pool_size == 1:
            return SerialExecutor().map(fn, tasks, progress=progress)
        payloads = [(fn, task) for task in tasks]
        with ThreadPoolExecutor(max_workers=pool_size) as pool:
            # Executor.map preserves submission order — the property
            # that makes merged results independent of the pool size.
            outcomes = pool.map(_guarded_call, payloads)
            return _collect(outcomes, len(tasks), progress)

    def __repr__(self) -> str:
        return f"ThreadExecutor(workers={self.workers})"


def make_executor(
    workers: int,
    start_method: Optional[str] = None,
    backend: str = "processes",
) -> Executor:
    """The executor for a worker count and backend.

    One worker is always the serial reference backend; above that,
    ``backend="processes"`` builds a :class:`MultiprocessingExecutor`
    and ``backend="threads"`` a :class:`ThreadExecutor`.
    """
    workers = ensure_positive_int("workers", workers)
    if backend not in EXECUTOR_BACKENDS:
        raise ValueError(
            f"backend must be one of {EXECUTOR_BACKENDS}, got {backend!r}"
        )
    if workers == 1:
        return SerialExecutor()
    if backend == "threads":
        return ThreadExecutor(workers)
    return MultiprocessingExecutor(workers, start_method)
