"""Executor backends: serial, multiprocessing and thread-pool engines.

An executor maps a picklable task function over a list of tasks and
returns the results *in task order* — the property the sharding layer
relies on for bit-identical merges.  Failures are aggregated rather
than raised at first error: every shard runs (or is drained), then a
single :class:`ShardExecutionError` reports all failing shards with
their tracebacks.

Each backend also offers :meth:`Executor.stream`: completions yielded
as ``(task_index, ok, payload)`` the moment futures resolve, with a
bounded submission window so at most ``O(workers)`` results exist
between the pool and the consumer.  The runner's streaming merge folds
these through a reorder buffer in plan order, which is how 100k-trial
ensembles merge without ever materializing every shard result at once
while staying bit-identical to the batch path.

The multiprocessing backend prefers the ``fork`` start method where
available (cheap on Linux, and shard tasks are read-only after fork)
and falls back to ``spawn`` elsewhere, which is why task functions
must be module-level (picklable by reference).

The thread backend (``backend="threads"``) skips pickling and process
spawn entirely.  It pays off when the shard work releases the GIL —
which the batched NumPy kernels of :mod:`repro.sim.kernels` do for
their array dispatches — and for small specs where process start-up
would dominate; pure-Python-bound shards should stay on processes.
"""

from __future__ import annotations

import multiprocessing
import queue
import traceback
from concurrent.futures import FIRST_COMPLETED, ThreadPoolExecutor, wait
from typing import Any, Callable, Iterator, List, Optional, Sequence, Tuple

from .._validation import ensure_positive_int
from ..obs.trace import get_tracer

__all__ = [
    "EXECUTOR_BACKENDS",
    "Executor",
    "SerialExecutor",
    "MultiprocessingExecutor",
    "ThreadExecutor",
    "ShardExecutionError",
    "StreamItem",
    "make_executor",
]

#: Valid values of the ``backend`` knob.
EXECUTOR_BACKENDS = ("processes", "threads")

#: Progress callback signature: ``callback(completed, total)``.
ProgressCallback = Callable[[int, int], None]

#: One streamed completion: ``(task_index, ok, payload)`` where
#: ``payload`` is the task's return value when ``ok`` and an
#: ``(error_repr, traceback_text)`` pair otherwise.
StreamItem = Tuple[int, bool, Any]


class ShardExecutionError(RuntimeError):
    """One or more shards failed; carries every failure, not just the first.

    Attributes
    ----------
    failures:
        List of ``(task_index, error_repr, traceback_text)`` tuples.
    results:
        The drained per-task results, in task order, with None at the
        failed indices — so callers batching independent workloads can
        salvage the tasks that did complete (e.g. cache them) before
        re-raising.  **May be None**: the streaming merge (the
        runner's default) deliberately does not retain per-task
        results — that retention is what streaming eliminates — and
        instead salvages completed specs straight into the cache
        before raising.  Callers must guard for both shapes.
    """

    def __init__(
        self,
        failures: Sequence[Tuple[int, str, str]],
        results: Optional[Sequence[Any]] = None,
    ) -> None:
        self.failures = list(failures)
        self.results = None if results is None else list(results)
        summary = "; ".join(
            f"shard {index}: {error}" for index, error, _ in self.failures
        )
        details = "\n\n".join(tb for _, _, tb in self.failures)
        super().__init__(
            f"{len(self.failures)} shard(s) failed — {summary}\n{details}"
        )


def _format_exception(error: BaseException) -> str:
    """Full traceback text for an exception object (transport failures
    arrive as objects, not active exceptions, so format_exc() is out)."""
    return "".join(
        traceback.format_exception(type(error), error, error.__traceback__)
    )


def _guarded_call(payload: Tuple[Callable[[Any], Any], Any]) -> Tuple[bool, Any]:
    """Run one task, capturing any exception as data (workers can't raise
    rich tracebacks across process boundaries)."""
    fn, task = payload
    try:
        return True, fn(task)
    except Exception as error:  # noqa: BLE001 - aggregated and re-raised
        return False, (repr(error), traceback.format_exc())


def _resolve_window(window: Optional[int], pool_size: int) -> int:
    """The in-flight cap for a streaming dispatch.

    Defaults to twice the pool so workers never starve while the
    consumer folds, and is clamped to at least the pool size — a
    smaller window would leave workers permanently idle.
    """
    if window is None:
        return pool_size * 2
    return max(ensure_positive_int("window", window), pool_size)


def _collect(
    outcomes,
    total: int,
    progress: Optional[ProgressCallback],
) -> List[Any]:
    """Drain ordered outcomes, firing progress and aggregating failures."""
    results: List[Any] = []
    failures: List[Tuple[int, str, str]] = []
    tracer = get_tracer()
    for index, (ok, value) in enumerate(outcomes):
        if tracer.enabled:
            tracer.event("shard.complete", task=index, ok=ok)
        if ok:
            results.append(value)
        else:
            error, tb = value
            failures.append((index, error, tb))
            results.append(None)
        if progress is not None:
            progress(index + 1, total)
    if failures:
        raise ShardExecutionError(failures, results)
    return results


class Executor:
    """Protocol for executor backends.

    Subclasses implement :meth:`map`; ``workers`` reports the degree of
    parallelism (1 for serial).  :meth:`stream` has a default built on
    :meth:`map` so duck-typed executors keep working; the built-in
    backends override it to yield completions as futures resolve with a
    bounded submission window.
    """

    workers: int = 1

    def map(
        self,
        fn: Callable[[Any], Any],
        tasks: Sequence[Any],
        *,
        progress: Optional[ProgressCallback] = None,
    ) -> List[Any]:
        """Apply ``fn`` to every task, returning results in task order."""
        raise NotImplementedError

    def stream(
        self,
        fn: Callable[[Any], Any],
        tasks: Sequence[Any],
        *,
        window: Optional[int] = None,
    ) -> Iterator[StreamItem]:
        """Yield ``(task_index, ok, payload)`` as tasks complete.

        Every task runs (failures are yielded as data, never raised),
        and each index appears exactly once.  The built-in backends
        keep at most ``window`` tasks in flight (default
        ``2 * workers``), so the number of completed-but-unconsumed
        results — and hence the reorder buffer a plan-order consumer
        needs — is bounded by the window, not the task count.

        This default implementation runs :meth:`map` to completion and
        replays it in order: correct for any executor that only
        implements :meth:`map`, but without the memory bound.
        """
        tasks = list(tasks)
        try:
            results = self.map(fn, tasks)
        except ShardExecutionError as error:
            failed = {index: (err, tb) for index, err, tb in error.failures}
            drained = error.results
            for index in range(len(tasks)):
                if index in failed:
                    yield index, False, failed[index]
                elif drained is None:
                    # The executor raised without drained results, so
                    # this task's outcome is unknown — report it as a
                    # failure rather than fabricating a None success.
                    yield index, False, (
                        "result unavailable: the dispatch aborted before "
                        "this task's result was drained",
                        str(error),
                    )
                else:
                    yield index, True, drained[index]
            return
        for index, value in enumerate(results):
            yield index, True, value


class SerialExecutor(Executor):
    """In-process execution: the reference backend and the 1-worker case."""

    workers = 1

    def map(
        self,
        fn: Callable[[Any], Any],
        tasks: Sequence[Any],
        *,
        progress: Optional[ProgressCallback] = None,
    ) -> List[Any]:
        tasks = list(tasks)
        tracer = get_tracer()
        if tracer.enabled:
            # Serial "submission" is just starting the task; the event
            # keeps the submit→complete join uniform across backends.
            outcomes = (
                (tracer.event("shard.submit", task=index),
                 _guarded_call((fn, task)))[1]
                for index, task in enumerate(tasks)
            )
        else:
            outcomes = (_guarded_call((fn, task)) for task in tasks)
        return _collect(outcomes, len(tasks), progress)

    def stream(
        self,
        fn: Callable[[Any], Any],
        tasks: Sequence[Any],
        *,
        window: Optional[int] = None,
    ) -> Iterator[StreamItem]:
        """Serial streaming: tasks complete (and yield) in index order,
        so exactly one result is ever in flight."""
        tracer = get_tracer()
        for index, task in enumerate(list(tasks)):
            if tracer.enabled:
                tracer.event("shard.submit", task=index)
            ok, value = _guarded_call((fn, task))
            if tracer.enabled:
                tracer.event("shard.complete", task=index, ok=ok)
            yield index, ok, value

    def __repr__(self) -> str:
        return "SerialExecutor()"


class MultiprocessingExecutor(Executor):
    """Process-pool execution via :mod:`multiprocessing`.

    Parameters
    ----------
    workers:
        Pool size.  The pool never exceeds the task count.
    start_method:
        ``multiprocessing`` start method; defaults to ``fork`` when the
        platform offers it, else the platform default.  Task functions
        must be module-level either way so ``spawn`` keeps working.
    """

    def __init__(self, workers: int, start_method: Optional[str] = None) -> None:
        self.workers = ensure_positive_int("workers", workers)
        if start_method is None:
            available = multiprocessing.get_all_start_methods()
            start_method = "fork" if "fork" in available else None
        self.start_method = start_method

    def map(
        self,
        fn: Callable[[Any], Any],
        tasks: Sequence[Any],
        *,
        progress: Optional[ProgressCallback] = None,
    ) -> List[Any]:
        tasks = list(tasks)
        if not tasks:
            return []
        pool_size = min(self.workers, len(tasks))
        if pool_size == 1:
            return SerialExecutor().map(fn, tasks, progress=progress)
        context = multiprocessing.get_context(self.start_method)
        payloads = [(fn, task) for task in tasks]
        tracer = get_tracer()
        if tracer.enabled:
            # imap hands the whole batch to the pool at once, so every
            # task is submitted up front.
            for index in range(len(tasks)):
                tracer.event("shard.submit", task=index)
        with context.Pool(pool_size) as pool:
            # imap (not imap_unordered): order preservation is what
            # makes merged results independent of the worker count.
            outcomes = pool.imap(_guarded_call, payloads)
            return _collect(outcomes, len(tasks), progress)

    def stream(
        self,
        fn: Callable[[Any], Any],
        tasks: Sequence[Any],
        *,
        window: Optional[int] = None,
    ) -> Iterator[StreamItem]:
        """Yield completions as worker processes finish, out of order.

        Windowed ``apply_async`` submission: a new task ships only when
        a result is consumed, so at most ``window`` results ever exist
        between the pool and the consumer.
        """
        tasks = list(tasks)
        if not tasks:
            return
        pool_size = min(self.workers, len(tasks))
        if pool_size == 1:
            yield from SerialExecutor().stream(fn, tasks)
            return
        window = _resolve_window(window, pool_size)
        completions: "queue.SimpleQueue" = queue.SimpleQueue()
        context = multiprocessing.get_context(self.start_method)
        tracer = get_tracer()
        with context.Pool(pool_size) as pool:

            def submit(index: int) -> None:
                if tracer.enabled:
                    tracer.event("shard.submit", task=index)
                pool.apply_async(
                    _guarded_call,
                    ((fn, tasks[index]),),
                    callback=lambda outcome, index=index: completions.put(
                        (index, outcome)
                    ),
                    # _guarded_call captures task exceptions as data, so
                    # this only fires on transport failures (e.g. an
                    # unpicklable result); surface those as shard
                    # failures too rather than hanging the drain.
                    error_callback=lambda error, index=index: completions.put(
                        (index, (False, (repr(error), _format_exception(error))))
                    ),
                )

            # Submission is gated on the lowest *unyielded* index — the
            # plan-order cursor a reorder-buffer consumer is waiting on
            # — not on raw completion count.  If one early shard is
            # slow, submission stalls at its index + window, so no
            # more than `window` completions can ever pile up ahead of
            # the cursor, even under extreme shard-time skew.
            unyielded: set = set()
            submitted = 0

            def fill() -> None:
                nonlocal submitted
                low = min(unyielded, default=submitted)
                while submitted < len(tasks) and submitted < low + window:
                    submit(submitted)
                    unyielded.add(submitted)
                    submitted += 1

            fill()
            for _ in range(len(tasks)):
                index, (ok, value) = completions.get()
                if tracer.enabled:
                    tracer.event("shard.complete", task=index, ok=ok)
                unyielded.discard(index)
                fill()
                yield index, ok, value

    def __repr__(self) -> str:
        return f"MultiprocessingExecutor(workers={self.workers})"


class ThreadExecutor(Executor):
    """Thread-pool execution via :class:`concurrent.futures.ThreadPoolExecutor`.

    No pickling, no process spawn: tasks run in-process and share
    memory.  Worth it exactly when the task body releases the GIL —
    the fused NumPy kernels do — or when the spec is small enough that
    process start-up would swamp the work.

    Parameters
    ----------
    workers:
        Pool size.  The pool never exceeds the task count.
    """

    def __init__(self, workers: int) -> None:
        self.workers = ensure_positive_int("workers", workers)

    def map(
        self,
        fn: Callable[[Any], Any],
        tasks: Sequence[Any],
        *,
        progress: Optional[ProgressCallback] = None,
    ) -> List[Any]:
        tasks = list(tasks)
        if not tasks:
            return []
        pool_size = min(self.workers, len(tasks))
        if pool_size == 1:
            return SerialExecutor().map(fn, tasks, progress=progress)
        payloads = [(fn, task) for task in tasks]
        tracer = get_tracer()
        if tracer.enabled:
            for index in range(len(tasks)):
                tracer.event("shard.submit", task=index)
        with ThreadPoolExecutor(max_workers=pool_size) as pool:
            # Executor.map preserves submission order — the property
            # that makes merged results independent of the pool size.
            outcomes = pool.map(_guarded_call, payloads)
            return _collect(outcomes, len(tasks), progress)

    def stream(
        self,
        fn: Callable[[Any], Any],
        tasks: Sequence[Any],
        *,
        window: Optional[int] = None,
    ) -> Iterator[StreamItem]:
        """Yield completions as pool threads finish, out of order.

        At most ``window`` futures are outstanding at a time — each
        consumed completion releases the next submission — which bounds
        completed-but-unconsumed results by the window.
        """
        tasks = list(tasks)
        if not tasks:
            return
        pool_size = min(self.workers, len(tasks))
        if pool_size == 1:
            yield from SerialExecutor().stream(fn, tasks)
            return
        window = _resolve_window(window, pool_size)
        tracer = get_tracer()
        with ThreadPoolExecutor(max_workers=pool_size) as pool:
            pending = {}
            submitted = 0

            # Same gate as the process backend: new submissions stop at
            # (lowest unyielded index) + window, so completions can
            # never outrun a plan-order consumer by more than the
            # window, no matter how skewed the shard durations are.
            def fill() -> None:
                nonlocal submitted
                low = min(pending.values(), default=submitted)
                while submitted < len(tasks) and submitted < low + window:
                    if tracer.enabled:
                        tracer.event("shard.submit", task=submitted)
                    future = pool.submit(_guarded_call, (fn, tasks[submitted]))
                    pending[future] = submitted
                    submitted += 1

            try:
                fill()
                while pending:
                    done, _ = wait(pending, return_when=FIRST_COMPLETED)
                    for future in done:
                        index = pending.pop(future)
                        ok, value = future.result()
                        if tracer.enabled:
                            tracer.event("shard.complete", task=index, ok=ok)
                        fill()
                        yield index, ok, value
            finally:
                # An abandoned generator (the consumer raised
                # mid-stream) must not sit through the whole submission
                # window: cancel everything still queued so the pool's
                # shutdown only waits for the tasks actually running.
                for future in pending:
                    future.cancel()

    def __repr__(self) -> str:
        return f"ThreadExecutor(workers={self.workers})"


def make_executor(
    workers: int,
    start_method: Optional[str] = None,
    backend: str = "processes",
) -> Executor:
    """The executor for a worker count and backend.

    One worker is always the serial reference backend; above that,
    ``backend="processes"`` builds a :class:`MultiprocessingExecutor`
    and ``backend="threads"`` a :class:`ThreadExecutor`.
    """
    workers = ensure_positive_int("workers", workers)
    if backend not in EXECUTOR_BACKENDS:
        raise ValueError(
            f"backend must be one of {EXECUTOR_BACKENDS}, got {backend!r}"
        )
    if workers == 1:
        return SerialExecutor()
    if backend == "threads":
        return ThreadExecutor(workers)
    return MultiprocessingExecutor(workers, start_method)
