"""Deterministic fault injection for testing the fault-tolerance layer.

:class:`ChaosExecutor` wraps any :class:`~repro.runtime.executor.Executor`
and injects failures, delays, hangs, corrupt-payload errors and worker
crashes into the tasks it runs, per a seeded :class:`ChaosSchedule`.
Two properties make it usable in differential tests:

* **Determinism without randomness.**  Whether attempt ``a`` of task
  ``i`` is sabotaged — and how — is a pure SHA-256 function of
  ``(seed, i, a, kind)``.  No RNG is consumed, so a chaos run's shard
  *results* are bit-identical to a fault-free run's (the doctrine the
  whole runtime rests on), and the schedule replays exactly.
* **Bounded malice.**  After ``max_faults_per_task`` faulty attempts, a
  task always runs clean — so any retry policy with
  ``max_attempts > max_faults_per_task`` is *guaranteed* to converge,
  which is what lets the differential suite assert bit-identity rather
  than mere eventual success.

Attempt numbering must survive process boundaries and pool respawns
(the wrapped function runs in workers that share no memory), so
attempts are claimed via ``O_CREAT | O_EXCL`` marker files in a state
directory — atomic on every platform, and shared by threads, forked
and respawned workers alike.
"""

from __future__ import annotations

import hashlib
import os
import pathlib
import time
from dataclasses import dataclass
from typing import Any, Callable, Iterator, List, Optional, Sequence, Tuple, Union

from .executor import Executor, ProgressCallback, StreamItem
from .faults import RetryPolicy, TransientShardError

__all__ = [
    "ChaosCorruption",
    "ChaosExecutor",
    "ChaosFault",
    "ChaosSchedule",
]

PathLike = Union[str, pathlib.Path]


class ChaosFault(TransientShardError):
    """An injected transient failure (retryable under the default policy)."""


class ChaosCorruption(TransientShardError):
    """An injected corrupt-payload detection.

    Models a worker that *noticed* its result bytes were damaged in
    transit (checksum mismatch) — the recoverable flavor of corruption.
    Silent on-disk corruption is covered separately by the cache's
    crash-consistency handling, which treats unreadable artifacts as
    misses and evicts them.
    """


#: Fault kinds in priority order: at most one fires per attempt.
_FAULT_KINDS = ("crash", "hang", "fail", "corrupt", "delay")


@dataclass(frozen=True)
class ChaosSchedule:
    """A seeded, deterministic schedule of which attempts get sabotaged.

    Parameters
    ----------
    seed:
        Schedule seed; two schedules with equal parameters inject the
        exact same faults.
    state_dir:
        Directory for the attempt-claim marker files.  Must be shared
        by every worker of the run (a temp dir is fine); it is created
        on first use.
    fail_rate / corrupt_rate / delay_rate / hang_rate / crash_rate:
        Per-attempt probabilities (evaluated deterministically) of each
        fault kind.  At most one kind fires per attempt, checked in the
        order crash, hang, fail, corrupt, delay.
    delay / hang:
        Sleep durations (seconds) for the delay and hang kinds.  A hang
        models a stalled worker: long enough to trip a configured
        ``timeout``, but finite so schedules without timeouts still
        terminate.
    crash_exit_code:
        ``os._exit`` code for the crash kind.  Crashes only fire in
        worker *processes* (never in the parent pid — an in-process
        backend downgrades a scheduled crash to a :class:`ChaosFault`).
    max_faults_per_task:
        After this many attempts of a task, no further faults are
        injected — the convergence guarantee.
    """

    seed: int
    state_dir: PathLike
    fail_rate: float = 0.0
    corrupt_rate: float = 0.0
    delay_rate: float = 0.0
    hang_rate: float = 0.0
    crash_rate: float = 0.0
    delay: float = 0.01
    hang: float = 2.0
    crash_exit_code: int = 23
    max_faults_per_task: int = 2

    def __post_init__(self) -> None:
        for name in ("fail_rate", "corrupt_rate", "delay_rate",
                     "hang_rate", "crash_rate"):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {value}")
        if self.delay < 0 or self.hang < 0:
            raise ValueError("delay and hang must be non-negative")
        if self.max_faults_per_task < 0:
            raise ValueError(
                f"max_faults_per_task must be non-negative, "
                f"got {self.max_faults_per_task}"
            )
        object.__setattr__(self, "state_dir", str(self.state_dir))

    def draw(self, task: int, attempt: int, kind: str) -> float:
        """A uniform-[0,1) value, pure in ``(seed, task, attempt, kind)``."""
        digest = hashlib.sha256(
            f"repro-chaos:{self.seed}:{task}:{attempt}:{kind}".encode()
        ).digest()
        return int.from_bytes(digest[:8], "big") / float(1 << 64)

    def fault_for(self, task: int, attempt: int) -> Optional[str]:
        """The fault kind injected into this attempt, or None for clean."""
        if attempt > self.max_faults_per_task:
            return None
        rates = {
            "crash": self.crash_rate,
            "hang": self.hang_rate,
            "fail": self.fail_rate,
            "corrupt": self.corrupt_rate,
            "delay": self.delay_rate,
        }
        for kind in _FAULT_KINDS:
            rate = rates[kind]
            if rate > 0.0 and self.draw(task, attempt, kind) < rate:
                return kind
        return None

    def claim_attempt(self, task: int) -> int:
        """Atomically claim (and return) this execution's attempt number.

        Marker files under ``state_dir`` make the claim visible to
        every worker of the run, whatever backend or respawn history:
        the n-th process/thread to run task ``i`` sees attempt ``n``.
        """
        root = pathlib.Path(self.state_dir)
        root.mkdir(parents=True, exist_ok=True)
        attempt = 1
        while True:
            marker = root / f"task{task:06d}.attempt{attempt:03d}"
            try:
                fd = os.open(str(marker), os.O_CREAT | os.O_EXCL | os.O_WRONLY)
            except FileExistsError:
                attempt += 1
                continue
            os.close(fd)
            return attempt


class _ChaosCall:
    """The picklable worker-side wrapper: sabotage, then run the task.

    Tasks arrive pre-tagged as ``(task_index, original_task)`` so the
    wrapper knows which schedule row applies without relying on any
    shared state beyond the marker directory.
    """

    def __init__(self, fn: Callable[[Any], Any], schedule: ChaosSchedule,
                 parent_pid: int) -> None:
        self.fn = fn
        self.schedule = schedule
        self.parent_pid = parent_pid

    def __call__(self, tagged: Tuple[int, Any]) -> Any:
        index, task = tagged
        attempt = self.schedule.claim_attempt(index)
        kind = self.schedule.fault_for(index, attempt)
        if kind == "crash":
            if os.getpid() != self.parent_pid:
                os._exit(self.schedule.crash_exit_code)
            # In-process backends cannot survive a real crash of
            # themselves; downgrade to a loud transient failure.
            raise ChaosFault(
                f"injected crash (in-process downgrade) "
                f"task={index} attempt={attempt}"
            )
        if kind == "hang":
            # A stall, not a death: sleep past any sane deadline, then
            # proceed.  Under a timeout the parent abandons/kills us
            # first; without one the run is merely slow.
            time.sleep(self.schedule.hang)
        elif kind == "fail":
            raise ChaosFault(
                f"injected failure task={index} attempt={attempt}"
            )
        elif kind == "corrupt":
            raise ChaosCorruption(
                f"injected payload corruption (checksum mismatch) "
                f"task={index} attempt={attempt}"
            )
        elif kind == "delay":
            time.sleep(self.schedule.delay)
        return self.fn(task)


class ChaosExecutor(Executor):
    """Wrap an executor so its tasks run under a fault schedule.

    Forwards ``map``/``stream`` to the inner executor with every task
    tagged by index and the task function wrapped in the sabotaging
    :class:`_ChaosCall`.  Fault-tolerance knobs live on the *inner*
    executor (chaos wraps it, it does not replace it); the properties
    here delegate so callers — the runner's retry tally in particular
    — see one coherent executor.

    Examples
    --------
    >>> import tempfile
    >>> from repro.runtime import make_executor
    >>> from repro.runtime.chaos import ChaosExecutor, ChaosSchedule
    >>> with tempfile.TemporaryDirectory() as state:
    ...     schedule = ChaosSchedule(seed=7, state_dir=state, fail_rate=1.0,
    ...                              max_faults_per_task=1)
    ...     inner = make_executor(1, retry=3)
    ...     chaos = ChaosExecutor(inner, schedule)
    ...     chaos.map(lambda x: x * 2, [1, 2, 3])
    [2, 4, 6]
    """

    def __init__(self, inner: Executor, schedule: ChaosSchedule) -> None:
        self.inner = inner
        self.schedule = schedule
        pathlib.Path(schedule.state_dir).mkdir(parents=True, exist_ok=True)

    @property
    def workers(self) -> int:
        return self.inner.workers

    @property
    def retry(self) -> Optional[RetryPolicy]:
        return self.inner.retry

    @property
    def timeout(self) -> Optional[float]:
        return self.inner.timeout

    @property
    def retry_listener(self):
        return self.inner.retry_listener

    @retry_listener.setter
    def retry_listener(self, listener) -> None:
        self.inner.retry_listener = listener

    def _wrap(
        self, fn: Callable[[Any], Any], tasks: Sequence[Any]
    ) -> Tuple[_ChaosCall, List[Tuple[int, Any]]]:
        tagged = [(index, task) for index, task in enumerate(list(tasks))]
        return _ChaosCall(fn, self.schedule, os.getpid()), tagged

    def map(
        self,
        fn: Callable[[Any], Any],
        tasks: Sequence[Any],
        *,
        progress: Optional[ProgressCallback] = None,
    ) -> List[Any]:
        wrapped, tagged = self._wrap(fn, tasks)
        return self.inner.map(wrapped, tagged, progress=progress)

    def stream(
        self,
        fn: Callable[[Any], Any],
        tasks: Sequence[Any],
        *,
        window: Optional[int] = None,
    ) -> Iterator[StreamItem]:
        wrapped, tagged = self._wrap(fn, tasks)
        return self.inner.stream(wrapped, tagged, window=window)

    def __repr__(self) -> str:
        return f"ChaosExecutor({self.inner!r}, seed={self.schedule.seed})"
