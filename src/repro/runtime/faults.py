"""Fault-tolerance primitives: retry policies and failure payloads.

Every shard is an idempotent pure function of ``(spec, shard)`` — the
shard plan is deterministic and the merge is plan-ordered — so a shard
that failed transiently can simply run again and produce the *same
bytes* it would have produced the first time.  This module supplies
the vocabulary the executors use to exploit that:

:class:`RetryPolicy`
    How many attempts a shard gets, how long to back off between them
    (exponential with *deterministic* jitter — the backoff schedule is
    a pure function of the task index and attempt number, never of
    random state), and which exception types count as transient.
:class:`ShardFailure`
    The payload a failed shard travels home as.  It unpacks as the
    historical ``(error_repr, traceback_text)`` pair, but additionally
    carries the exception's class lineage (so retry classification
    survives the process boundary, where the exception object itself
    cannot) and the number of attempts consumed.
:class:`TransientShardError`
    A marker base class task code (and the chaos harness) can raise to
    say "this failure is safe to retry".

Doctrine: retry, timeout and resume knobs are *execution* knobs — they
never enter cache fingerprints, and the backoff jitter never touches
NumPy or :mod:`random` state, so a retried run is bit-identical to a
clean one and shares its cache artifacts.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Tuple

__all__ = [
    "DEFAULT_RETRYABLE",
    "PoolDegradedWarning",
    "RetryPolicy",
    "ShardFailure",
    "TransientShardError",
    "WorkerCrashError",
    "WorkerTimeoutError",
    "exception_lineage",
]


class TransientShardError(RuntimeError):
    """A shard failure that is safe to retry.

    Raise this (or a subclass) from task code to mark a failure as
    transient; the default :class:`RetryPolicy` classifies it as
    retryable by name, so the classification survives pickling across
    the process boundary.
    """


class WorkerTimeoutError(TransientShardError):
    """A shard exceeded its per-shard deadline and was abandoned."""


class WorkerCrashError(TransientShardError):
    """A worker process died (crash, kill, OOM) while shards were in
    flight; the shards it may have held are retried."""


class PoolDegradedWarning(RuntimeWarning):
    """An executor pool became unrecoverable and the remaining shards
    are running serially in-process.  Results stay bit-identical; only
    the parallelism is lost."""


def exception_lineage(error: BaseException) -> Tuple[str, ...]:
    """The class names of ``error``'s MRO, most-derived first.

    Exception *objects* do not reliably cross process boundaries, but
    their class names do — the lineage rides in the
    :class:`ShardFailure` payload so the parent can classify a child's
    failure without importing (or even having) the raising class.
    """
    return tuple(
        cls.__name__ for cls in type(error).__mro__ if cls is not object
    )


class ShardFailure(tuple):
    """A failed shard's payload: ``(error_repr, traceback_text)`` plus
    retry metadata.

    Subclasses ``tuple`` so every existing consumer that unpacks
    ``error, tb = payload`` keeps working unchanged; the extra
    attributes carry what retry classification needs:

    ``exc_types``
        Class-name lineage of the raising exception (see
        :func:`exception_lineage`); empty for synthetic failures whose
        type is unknown.
    ``attempts``
        Attempts consumed when this became the final outcome (1 when
        retries were off or the failure was not retryable).
    """

    exc_types: Tuple[str, ...]
    attempts: int

    def __new__(
        cls,
        error: str,
        traceback_text: str,
        exc_types: Tuple[str, ...] = (),
        attempts: int = 1,
    ) -> "ShardFailure":
        self = super().__new__(cls, (error, traceback_text))
        self.exc_types = tuple(exc_types)
        self.attempts = int(attempts)
        return self

    @classmethod
    def from_exception(cls, error: BaseException, traceback_text: str) -> "ShardFailure":
        return cls(repr(error), traceback_text, exception_lineage(error))

    @property
    def error(self) -> str:
        return self[0]

    @property
    def traceback(self) -> str:
        return self[1]

    def with_attempts(self, attempts: int) -> "ShardFailure":
        """A copy stamped with the number of attempts consumed."""
        return ShardFailure(self[0], self[1], self.exc_types, attempts)

    def __reduce__(self):
        # tuple.__reduce__ would rebuild a plain 2-tuple and drop the
        # metadata; rebuild through the constructor instead so the
        # lineage survives pickling back from worker processes.
        return (ShardFailure, (self[0], self[1], self.exc_types, self.attempts))

    def __repr__(self) -> str:
        return (
            f"ShardFailure({self[0]!r}, exc_types={self.exc_types!r}, "
            f"attempts={self.attempts})"
        )


#: Exception class names the default policy treats as transient: the
#: explicit markers of this module plus the I/O failures a worker pool
#: can hit (broken pipes to dead workers, truncated result streams).
DEFAULT_RETRYABLE = (
    "TransientShardError",
    "WorkerTimeoutError",
    "WorkerCrashError",
    "BrokenProcessPool",
    "ConnectionError",
    "BrokenPipeError",
    "EOFError",
    "OSError",
    "TimeoutError",
)


@dataclass(frozen=True)
class RetryPolicy:
    """How failed shards are retried.

    Parameters
    ----------
    max_attempts:
        Total attempts a shard gets (1 = no retries).
    base_delay:
        Backoff before the second attempt, in seconds.
    backoff:
        Multiplier applied per further attempt (exponential backoff).
    max_delay:
        Ceiling on any single backoff sleep.
    jitter:
        Fractional jitter amplitude: each delay is scaled by a factor
        in ``[1 - jitter, 1 + jitter]`` derived *deterministically*
        from the task index and attempt number (SHA-256, not a RNG —
        retrying never perturbs random state, which is what keeps
        retried runs bit-identical).
    retryable:
        Exception class names (matched against the failure's carried
        lineage, so base classes match subclasses) that count as
        transient.  ``("Exception",)`` retries everything.

    Examples
    --------
    >>> policy = RetryPolicy(max_attempts=3, base_delay=0.1, jitter=0.0)
    >>> policy.delay(task=0, attempt=1)
    0.1
    >>> policy.delay(task=0, attempt=2)
    0.2
    """

    max_attempts: int = 3
    base_delay: float = 0.05
    backoff: float = 2.0
    max_delay: float = 5.0
    jitter: float = 0.1
    retryable: Tuple[str, ...] = DEFAULT_RETRYABLE

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError(
                f"max_attempts must be >= 1, got {self.max_attempts}"
            )
        if self.base_delay < 0 or self.max_delay < 0:
            raise ValueError("delays must be non-negative")
        if self.backoff < 1.0:
            raise ValueError(f"backoff must be >= 1, got {self.backoff}")
        if not 0.0 <= self.jitter < 1.0:
            raise ValueError(f"jitter must be in [0, 1), got {self.jitter}")
        object.__setattr__(self, "retryable", tuple(self.retryable))

    def allows(self, attempt: int) -> bool:
        """Whether another attempt is available after ``attempt`` failed."""
        return attempt < self.max_attempts

    def is_retryable(self, failure) -> bool:
        """Classify a failure payload (or exception) as transient.

        Prefers the carried class lineage; failing that, falls back to
        the leading class name of the repr, so even plain
        ``(error_repr, tb)`` tuples from duck-typed executors classify.
        """
        if isinstance(failure, BaseException):
            lineage = exception_lineage(failure)
        else:
            lineage = getattr(failure, "exc_types", ())
            if not lineage:
                text = ""
                if isinstance(failure, tuple) and failure:
                    text = str(failure[0])
                lineage = (text.split("(", 1)[0].strip(),)
        wanted = set(self.retryable)
        return any(name in wanted for name in lineage)

    def delay(self, task: int, attempt: int) -> float:
        """Backoff before retrying ``task`` after failed ``attempt`` (1-based).

        A pure function of ``(task, attempt)``: exponential growth with
        SHA-256-derived jitter, so concurrent retries decorrelate
        without consuming randomness anywhere.
        """
        raw = min(
            self.max_delay, self.base_delay * self.backoff ** (attempt - 1)
        )
        if self.jitter <= 0.0 or raw <= 0.0:
            return raw
        digest = hashlib.sha256(
            f"repro-retry:{task}:{attempt}".encode()
        ).digest()
        fraction = int.from_bytes(digest[:8], "big") / float(1 << 64)
        return raw * (1.0 + self.jitter * (2.0 * fraction - 1.0))
