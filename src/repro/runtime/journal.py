"""Run journal: the sidecar that makes interrupted grids resumable.

A :class:`RunJournal` is an append-only JSONL file (living next to the
cache directory by convention — ``<cache>/journal.jsonl`` for the CLI's
``--resume``) recording, per spec fingerprint, which plan shards have
completed and which specs have fully merged.  Combined with the
content-addressed :class:`~repro.runtime.cache.ResultCache` — where the
streaming runner stores each completed shard's artifact under a
:func:`shard_fingerprint` key until the spec finalizes — a killed
``repro-experiments`` invocation resumes by loading the journaled
shards from the cache and dispatching only the rest.

Design points:

* **Append-only, fsync'd per record.**  A ``kill -9`` can at worst
  leave one torn trailing line, which :meth:`RunJournal.load` skips —
  the corresponding shard simply recomputes.  Nothing ever rewrites
  earlier records mid-run, so the journal can not be "half updated".
* **Advisory, never authoritative.**  Every journal entry is checked
  against the cache at load time: a journaled shard whose artifact was
  evicted (or corrupted) is recomputed.  Deleting the journal is always
  safe — it only costs recomputation.  The same stance covers a full
  disk: an ``ENOSPC`` on append degrades journaling to a no-op behind
  a loud :class:`~repro.runtime.integrity.CacheDegradedWarning` rather
  than failing the run.
* **Keyed by fingerprints.**  Spec fingerprints cover every physics
  knob and the shard count, so a journal can never resume the wrong
  work; retry/timeout/resume knobs never enter fingerprints (doctrine),
  so a resumed run shares its artifacts with an uninterrupted one.
* **Bounded by compaction.**  Shard records of finished specs (and
  skipped garbage) are dead weight; once the file passes
  ``compact_bytes`` *and* at least half its records are dead,
  :meth:`compact` rewrites just the live state through a temp file, an
  fsync and an atomic rename — crash-safe at every step (the chaos
  sweep proves it), and a stale compaction temp is swept on open.
"""

from __future__ import annotations

import errno
import hashlib
import io
import json
import os
import pathlib
import threading
import warnings
from typing import Dict, List, Optional, Set, Union

from .diskchaos import crashpoint
from .integrity import CacheDegradedWarning, note_storage_error

__all__ = ["RunJournal", "shard_fingerprint"]

JOURNAL_SCHEMA = "repro-journal/v1"

PathLike = Union[str, pathlib.Path]

#: Default auto-compaction threshold: below this file size the journal
#: is never rewritten (compaction is pure overhead for short runs).
_DEFAULT_COMPACT_BYTES = 1 << 20


def shard_fingerprint(spec_key: str, ordinal: int) -> str:
    """The cache key a spec's ``ordinal``-th plan shard is stored under.

    Derived from the spec fingerprint (which covers the shard count),
    so shard artifacts can never collide across specs or across plans
    of different granularity.
    """
    if ordinal < 0:
        raise ValueError(f"ordinal must be non-negative, got {ordinal}")
    digest = hashlib.sha256(
        f"{spec_key}:shard:{ordinal}".encode()
    ).hexdigest()
    return digest


class RunJournal:
    """Append-only JSONL record of shard and spec completions.

    Parameters
    ----------
    path:
        Journal file; created (with a schema header line) on first
        append.  An existing file is loaded leniently — torn or
        malformed trailing lines are ignored, not fatal.
    compact_bytes:
        Auto-compaction threshold: once the file reaches this size and
        at least half its records are dead (shards of finished specs,
        skipped garbage), the journal is rewritten to just the live
        records via temp+fsync+rename.  ``None`` disables
        auto-compaction (:meth:`compact` still works).  An execution
        knob — never part of any fingerprint.

    Examples
    --------
    >>> import tempfile, os
    >>> with tempfile.TemporaryDirectory() as root:
    ...     journal = RunJournal(os.path.join(root, "journal.jsonl"))
    ...     journal.record_shard("abc", 0, "shard-key-0")
    ...     journal.record_spec("def")
    ...     reloaded = RunJournal(os.path.join(root, "journal.jsonl"))
    ...     (reloaded.completed_shards("abc"), reloaded.is_complete("def"))
    ({0: 'shard-key-0'}, True)
    """

    def __init__(
        self,
        path: PathLike,
        *,
        compact_bytes: Optional[int] = _DEFAULT_COMPACT_BYTES,
    ) -> None:
        if compact_bytes is not None and compact_bytes <= 0:
            raise ValueError(
                f"compact_bytes must be positive, got {compact_bytes!r}"
            )
        self.path = pathlib.Path(path)
        self.compact_bytes = compact_bytes
        self._lock = threading.Lock()
        self._handle: Optional[io.TextIOWrapper] = None
        self._shards: Dict[str, Dict[int, str]] = {}
        self._specs: Set[str] = set()
        self.recovered_records = 0
        self.skipped_lines = 0
        self.compactions = 0
        self.degraded = False
        #: Record lines on disk (header excluded), live or dead — the
        #: denominator of the auto-compaction dead ratio.
        self._lines_total = 0
        self._sweep_compaction_temps()
        if self.path.exists():
            self._load()

    # -- reading ---------------------------------------------------------

    def _sweep_compaction_temps(self) -> None:
        """Remove temps a compaction crashed before renaming."""
        parent = self.path.parent
        if not parent.is_dir():
            return
        for stale in parent.glob(self.path.name + ".compact-*"):
            try:
                stale.unlink()
            except OSError:
                note_storage_error("journal", "temp_sweep")

    def _load(self) -> None:
        """Replay an existing journal, tolerating torn trailing lines."""
        try:
            with open(self.path, "r") as handle:
                for line in handle:
                    line = line.strip()
                    if not line:
                        continue
                    try:
                        record = json.loads(line)
                    except json.JSONDecodeError:
                        # A writer killed mid-append leaves at most one
                        # torn line; skipping it only costs recomputing
                        # that shard.
                        self.skipped_lines += 1
                        self._lines_total += 1  # repro-lint: disable=LCK001  # replay runs inside __init__, before the journal is shared with any thread
                        continue
                    self._replay(record)
        except OSError:
            note_storage_error("journal", "load")
            return

    def _replay(self, record) -> None:
        if not isinstance(record, dict):
            self.skipped_lines += 1
            self._lines_total += 1  # repro-lint: disable=LCK001  # replay runs inside __init__, before the journal is shared with any thread
            return
        kind = record.get("e")
        if kind == "header":
            return
        self._lines_total += 1  # repro-lint: disable=LCK001  # replay runs inside __init__, before the journal is shared with any thread
        if kind == "shard":
            spec = record.get("spec")
            ordinal = record.get("shard")
            key = record.get("key")
            if (
                isinstance(spec, str)
                and isinstance(ordinal, int)
                and ordinal >= 0
                and isinstance(key, str)
            ):
                # repro-lint: disable=LCK001  # replay runs inside __init__, before the journal is shared with any thread
                self._shards.setdefault(spec, {})[ordinal] = key
                self.recovered_records += 1
            else:
                self.skipped_lines += 1
        elif kind == "spec":
            spec = record.get("spec")
            if isinstance(spec, str):
                # repro-lint: disable=LCK001  # replay runs inside __init__, before the journal is shared with any thread
                self._specs.add(spec)
                # Mirror record_spec: a finished spec's shard records
                # are dead weight — drop them so replayed journals do
                # not pin every historical shard key (and so the
                # live-record census compaction relies on is exact).
                # repro-lint: disable=LCK001  # replay runs inside __init__, before the journal is shared with any thread
                self._shards.pop(spec, None)
                self.recovered_records += 1
            else:
                self.skipped_lines += 1
        else:
            self.skipped_lines += 1

    def completed_shards(self, spec_key: str) -> Dict[int, str]:
        """``{plan_ordinal: shard_cache_key}`` journaled for a spec."""
        with self._lock:
            return dict(self._shards.get(spec_key, {}))

    def is_complete(self, spec_key: str) -> bool:
        """Whether the spec's merged artifact was journaled as stored."""
        with self._lock:
            return spec_key in self._specs

    # -- writing ---------------------------------------------------------

    def _append(self, record: dict) -> None:
        """Append one record, flushed and fsync'd so it survives a kill.

        ``ENOSPC`` degrades the journal to a no-op (advisory data is
        not worth failing the run for); any other write error is
        counted and raised.
        """
        with self._lock:
            if self.degraded:
                return
            try:
                if self._handle is None or self._handle.closed:
                    self.path.parent.mkdir(parents=True, exist_ok=True)
                    fresh = (
                        not self.path.exists()
                        or self.path.stat().st_size == 0
                    )
                    self._handle = open(self.path, "a")
                    if fresh:
                        header = json.dumps(
                            {"e": "header", "schema": JOURNAL_SCHEMA}
                        )
                        self._handle.write(header + "\n")
                crashpoint("journal.append.write", kind="write", path=self.path)
                self._handle.write(json.dumps(record) + "\n")
                self._handle.flush()
            except OSError as error:
                if error.errno == errno.ENOSPC:
                    self._degrade_locked(error)
                    return
                note_storage_error("journal", "append")
                raise
            self._lines_total += 1
            # The flushed line is on disk (durability pending): this is
            # where a crash leaves a torn trailing line for _load to skip.
            crashpoint("journal.append.written", kind="write", path=self.path)
            try:
                crashpoint("journal.append.fsync", kind="fsync", path=self.path)
                os.fsync(self._handle.fileno())
            except OSError:
                note_storage_error("journal", "fsync")

    def _degrade_locked(self, error: OSError) -> None:
        """Stop journaling after ENOSPC — loudly (caller holds the lock)."""
        self.degraded = True  # repro-lint: disable=LCK001  # only called from _append, which holds self._lock
        if self._handle is not None and not self._handle.closed:
            self._handle.close()
        self._handle = None  # repro-lint: disable=LCK001  # only called from _append, which holds self._lock
        warnings.warn(
            f"run journal at {str(self.path)!r} degraded to no-op after "
            f"ENOSPC ({error}); the run continues but will not resume "
            "from this point",
            CacheDegradedWarning,
            stacklevel=5,
        )

    def record_shard(self, spec_key: str, ordinal: int, shard_key: str) -> None:
        """Journal one completed shard (its artifact is in the cache)."""
        self._append(
            {"e": "shard", "spec": spec_key, "shard": ordinal, "key": shard_key}
        )
        with self._lock:
            self._shards.setdefault(spec_key, {})[ordinal] = shard_key
        self._maybe_compact()

    def record_spec(self, spec_key: str) -> None:
        """Journal a fully merged spec (its artifact is in the cache)."""
        self._append({"e": "spec", "spec": spec_key})
        with self._lock:
            self._specs.add(spec_key)
            # Shard records for a finished spec are dead weight for
            # resume purposes; dropping the in-memory copy keeps
            # long-lived journals from pinning every shard key.
            self._shards.pop(spec_key, None)
        self._maybe_compact()

    # -- compaction ------------------------------------------------------

    def _live_count_locked(self) -> int:
        return len(self._specs) + sum(
            len(per_spec) for per_spec in self._shards.values()
        )

    def _rewrite_locked(self) -> None:
        """Rewrite the file to header + live records, atomically.

        Caller holds ``self._lock`` and has already detached
        ``self._handle``.  Spec records come first so a replay drops
        dead shard records the moment it sees them; everything is
        sorted so two compactions of the same state are byte-identical.
        """
        records = [json.dumps({"e": "header", "schema": JOURNAL_SCHEMA})]
        for spec in sorted(self._specs):
            records.append(json.dumps({"e": "spec", "spec": spec}))
        for spec in sorted(self._shards):
            for ordinal in sorted(self._shards[spec]):
                records.append(json.dumps({
                    "e": "shard",
                    "spec": spec,
                    "shard": ordinal,
                    "key": self._shards[spec][ordinal],
                }))
        temporary = self.path.with_name(
            f"{self.path.name}.compact-{os.getpid()}-{threading.get_ident()}"
        )
        try:
            crashpoint("journal.compact.write", kind="write", path=temporary)
            with open(temporary, "w") as handle:
                handle.write("\n".join(records) + "\n")
                handle.flush()
                crashpoint(
                    "journal.compact.staged", kind="write", path=temporary
                )
                try:
                    crashpoint(
                        "journal.compact.fsync", kind="fsync", path=temporary
                    )
                    os.fsync(handle.fileno())
                except OSError:
                    note_storage_error("journal", "fsync")
            crashpoint("journal.compact.replace", kind="replace", path=temporary)
            os.replace(temporary, self.path)
        except OSError:
            try:
                temporary.unlink()
            except FileNotFoundError:
                pass
            except OSError:
                note_storage_error("journal", "temp_cleanup")
            raise

    def _compact_locked(self) -> None:
        """Compact now (caller holds the lock); raises OSError on failure."""
        if self._handle is not None and not self._handle.closed:
            self._handle.close()
        self._handle = None  # repro-lint: disable=LCK001  # callers (compact, _maybe_compact) hold self._lock
        self._rewrite_locked()
        self._lines_total = self._live_count_locked()  # repro-lint: disable=LCK001  # callers (compact, _maybe_compact) hold self._lock
        self.compactions += 1  # repro-lint: disable=LCK001  # callers (compact, _maybe_compact) hold self._lock

    def _maybe_compact(self) -> None:
        """Auto-compact once the file is big *and* mostly dead records.

        Failures are swallowed (counted): auto-compaction is an
        optimization, and the append-only journal underneath is intact
        whether or not the rewrite lands.
        """
        if self.compact_bytes is None:
            return
        with self._lock:
            if self.degraded:
                return
            try:
                size = self.path.stat().st_size
            except OSError:
                note_storage_error("journal", "stat")
                return
            if size < self.compact_bytes:
                return
            live = self._live_count_locked()
            dead = self._lines_total - live
            if self._lines_total <= 0 or dead * 2 < self._lines_total:
                return
            try:
                self._compact_locked()
            except OSError:
                note_storage_error("journal", "compact")

    def compact(self) -> int:
        """Rewrite the journal down to its live records, atomically.

        Drops shard records of finished specs, duplicate records and
        skipped garbage; the resulting file replays to exactly the
        current in-memory state.  Returns the number of bytes
        reclaimed.  Raises ``OSError`` if the rewrite fails (the
        original journal is intact either way).
        """
        with self._lock:
            if not self.path.exists():
                return 0
            try:
                before = self.path.stat().st_size
            except OSError:
                note_storage_error("journal", "stat")
                before = 0
            self._compact_locked()
            try:
                after = self.path.stat().st_size
            except OSError:
                note_storage_error("journal", "stat")
                after = 0
        return max(0, before - after)

    def close(self) -> None:
        with self._lock:
            if self._handle is not None and not self._handle.closed:
                self._handle.close()
            self._handle = None

    def __enter__(self) -> "RunJournal":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __repr__(self) -> str:
        with self._lock:
            shards = sum(len(v) for v in self._shards.values())
            specs = len(self._specs)
        return (
            f"RunJournal({str(self.path)!r}, shards={shards}, "
            f"specs={specs})"
        )
