"""Run journal: the sidecar that makes interrupted grids resumable.

A :class:`RunJournal` is an append-only JSONL file (living next to the
cache directory by convention — ``<cache>/journal.jsonl`` for the CLI's
``--resume``) recording, per spec fingerprint, which plan shards have
completed and which specs have fully merged.  Combined with the
content-addressed :class:`~repro.runtime.cache.ResultCache` — where the
streaming runner stores each completed shard's artifact under a
:func:`shard_fingerprint` key until the spec finalizes — a killed
``repro-experiments`` invocation resumes by loading the journaled
shards from the cache and dispatching only the rest.

Design points:

* **Append-only, fsync'd per record.**  A ``kill -9`` can at worst
  leave one torn trailing line, which :meth:`RunJournal.load` skips —
  the corresponding shard simply recomputes.  Nothing ever rewrites
  earlier records, so the journal can not be "half updated".
* **Advisory, never authoritative.**  Every journal entry is checked
  against the cache at load time: a journaled shard whose artifact was
  evicted (or corrupted) is recomputed.  Deleting the journal is always
  safe — it only costs recomputation.
* **Keyed by fingerprints.**  Spec fingerprints cover every physics
  knob and the shard count, so a journal can never resume the wrong
  work; retry/timeout/resume knobs never enter fingerprints (doctrine),
  so a resumed run shares its artifacts with an uninterrupted one.
"""

from __future__ import annotations

import hashlib
import io
import json
import os
import pathlib
import threading
from typing import Dict, Optional, Set, Union

__all__ = ["RunJournal", "shard_fingerprint"]

JOURNAL_SCHEMA = "repro-journal/v1"

PathLike = Union[str, pathlib.Path]


def shard_fingerprint(spec_key: str, ordinal: int) -> str:
    """The cache key a spec's ``ordinal``-th plan shard is stored under.

    Derived from the spec fingerprint (which covers the shard count),
    so shard artifacts can never collide across specs or across plans
    of different granularity.
    """
    if ordinal < 0:
        raise ValueError(f"ordinal must be non-negative, got {ordinal}")
    digest = hashlib.sha256(
        f"{spec_key}:shard:{ordinal}".encode()
    ).hexdigest()
    return digest


class RunJournal:
    """Append-only JSONL record of shard and spec completions.

    Parameters
    ----------
    path:
        Journal file; created (with a schema header line) on first
        append.  An existing file is loaded leniently — torn or
        malformed trailing lines are ignored, not fatal.

    Examples
    --------
    >>> import tempfile, os
    >>> with tempfile.TemporaryDirectory() as root:
    ...     journal = RunJournal(os.path.join(root, "journal.jsonl"))
    ...     journal.record_shard("abc", 0, "shard-key-0")
    ...     journal.record_spec("def")
    ...     reloaded = RunJournal(os.path.join(root, "journal.jsonl"))
    ...     (reloaded.completed_shards("abc"), reloaded.is_complete("def"))
    ({0: 'shard-key-0'}, True)
    """

    def __init__(self, path: PathLike) -> None:
        self.path = pathlib.Path(path)
        self._lock = threading.Lock()
        self._handle: Optional[io.TextIOWrapper] = None
        self._shards: Dict[str, Dict[int, str]] = {}
        self._specs: Set[str] = set()
        self.recovered_records = 0
        self.skipped_lines = 0
        if self.path.exists():
            self._load()

    # -- reading ---------------------------------------------------------

    def _load(self) -> None:
        """Replay an existing journal, tolerating torn trailing lines."""
        try:
            with open(self.path, "r") as handle:
                for line in handle:
                    line = line.strip()
                    if not line:
                        continue
                    try:
                        record = json.loads(line)
                    except json.JSONDecodeError:
                        # A writer killed mid-append leaves at most one
                        # torn line; skipping it only costs recomputing
                        # that shard.
                        self.skipped_lines += 1
                        continue
                    self._replay(record)
        except OSError:
            return

    def _replay(self, record) -> None:
        if not isinstance(record, dict):
            self.skipped_lines += 1
            return
        kind = record.get("e")
        if kind == "shard":
            spec = record.get("spec")
            ordinal = record.get("shard")
            key = record.get("key")
            if (
                isinstance(spec, str)
                and isinstance(ordinal, int)
                and ordinal >= 0
                and isinstance(key, str)
            ):
                # repro-lint: disable=LCK001  # replay runs inside __init__, before the journal is shared with any thread
                self._shards.setdefault(spec, {})[ordinal] = key
                self.recovered_records += 1
            else:
                self.skipped_lines += 1
        elif kind == "spec":
            spec = record.get("spec")
            if isinstance(spec, str):
                # repro-lint: disable=LCK001  # replay runs inside __init__, before the journal is shared with any thread
                self._specs.add(spec)
                self.recovered_records += 1
            else:
                self.skipped_lines += 1
        elif kind != "header":
            self.skipped_lines += 1

    def completed_shards(self, spec_key: str) -> Dict[int, str]:
        """``{plan_ordinal: shard_cache_key}`` journaled for a spec."""
        with self._lock:
            return dict(self._shards.get(spec_key, {}))

    def is_complete(self, spec_key: str) -> bool:
        """Whether the spec's merged artifact was journaled as stored."""
        with self._lock:
            return spec_key in self._specs

    # -- writing ---------------------------------------------------------

    def _append(self, record: dict) -> None:
        """Append one record, flushed and fsync'd so it survives a kill."""
        with self._lock:
            if self._handle is None or self._handle.closed:
                self.path.parent.mkdir(parents=True, exist_ok=True)
                fresh = not self.path.exists() or self.path.stat().st_size == 0
                self._handle = open(self.path, "a")
                if fresh:
                    header = json.dumps(
                        {"e": "header", "schema": JOURNAL_SCHEMA}
                    )
                    self._handle.write(header + "\n")
            self._handle.write(json.dumps(record) + "\n")
            self._handle.flush()
            try:
                os.fsync(self._handle.fileno())
            except OSError:
                pass

    def record_shard(self, spec_key: str, ordinal: int, shard_key: str) -> None:
        """Journal one completed shard (its artifact is in the cache)."""
        self._append(
            {"e": "shard", "spec": spec_key, "shard": ordinal, "key": shard_key}
        )
        with self._lock:
            self._shards.setdefault(spec_key, {})[ordinal] = shard_key

    def record_spec(self, spec_key: str) -> None:
        """Journal a fully merged spec (its artifact is in the cache)."""
        self._append({"e": "spec", "spec": spec_key})
        with self._lock:
            self._specs.add(spec_key)
            # Shard records for a finished spec are dead weight for
            # resume purposes; dropping the in-memory copy keeps
            # long-lived journals from pinning every shard key.
            self._shards.pop(spec_key, None)

    def close(self) -> None:
        with self._lock:
            if self._handle is not None and not self._handle.closed:
                self._handle.close()
            self._handle = None

    def __enter__(self) -> "RunJournal":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __repr__(self) -> str:
        with self._lock:
            shards = sum(len(v) for v in self._shards.values())
            specs = len(self._specs)
        return (
            f"RunJournal({str(self.path)!r}, shards={shards}, "
            f"specs={specs})"
        )
