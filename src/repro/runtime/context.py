"""The ambient default runtime.

Experiment configs are frozen dataclasses created in many places; the
CLI's ``--workers``/``--cache`` flags would otherwise have to thread
through every one of them.  Instead the CLI installs a process-wide
default :class:`~repro.runtime.runner.ParallelRunner`, and the two
execution chokepoints — :func:`repro.experiments._common.run_simulation`
and :meth:`repro.chainsim.harness.SystemExperiment.run` — consult it.

The default is deliberately *not* consulted by shard workers: worker
entry points call the serial engine paths directly, so a forked child
that inherited a configured runtime cannot recurse into a new pool.
"""

from __future__ import annotations

import contextlib
from typing import Iterator, Optional

__all__ = ["get_default_runtime", "set_default_runtime", "using_runtime"]

_default_runtime = None


def get_default_runtime():
    """The ambient :class:`ParallelRunner`, or None when unconfigured."""
    return _default_runtime


def set_default_runtime(runner):
    """Install ``runner`` (or None) as the ambient runtime.

    Returns the previous runtime so callers can restore it.
    """
    global _default_runtime
    previous = _default_runtime
    _default_runtime = runner
    return previous


@contextlib.contextmanager
def using_runtime(runner) -> Iterator[None]:
    """Scope ``runner`` as the ambient runtime for a ``with`` block."""
    previous = set_default_runtime(runner)
    try:
        yield
    finally:
        set_default_runtime(previous)
