"""Deterministic splitting of ensemble work into shards.

A *shard plan* divides a spec's ``trials`` (or a system experiment's
``repeats``) into contiguous chunks, each with its own root seed
spawned from the spec's :class:`~numpy.random.SeedSequence`.  Two
invariants make parallelism safe:

* the plan is a pure function of ``(total, seed, count)`` — it never
  depends on the worker count, so the same plan executed serially or
  on eight processes yields bit-identical shard results;
* shard seeds come from :meth:`SeedSequence.spawn`, so the shards'
  random streams are provably non-overlapping and the merged ensemble
  is statistically indistinguishable from a single-stream run.

Merging shard results in index order (``EnsembleResult.merge``) then
gives bit-identical merged arrays for any executor.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from .._validation import ensure_positive_int

__all__ = ["DEFAULT_SHARD_COUNT", "Shard", "ShardPlan", "plan_shards", "split_evenly"]

#: Default number of shards for a parallel run.  Deliberately a fixed
#: constant rather than the worker count, so default plans (and hence
#: merged results) are identical across machines with different
#: parallelism.
DEFAULT_SHARD_COUNT = 8


def split_evenly(total: int, parts: int) -> List[int]:
    """Split ``total`` items into ``parts`` balanced, deterministic chunks.

    The first ``total % parts`` chunks receive one extra item, so chunk
    sizes differ by at most one and the split is reproducible.
    """
    total = ensure_positive_int("total", total)
    parts = ensure_positive_int("parts", parts)
    if parts > total:
        raise ValueError(f"cannot split {total} items into {parts} shards")
    base, remainder = divmod(total, parts)
    return [base + (1 if i < remainder else 0) for i in range(parts)]


@dataclass(frozen=True)
class Shard:
    """One unit of ensemble work: a chunk of trials with its own seed."""

    index: int
    trials: int
    seed: np.random.SeedSequence

    def __repr__(self) -> str:
        return f"Shard(index={self.index}, trials={self.trials})"


@dataclass(frozen=True)
class ShardPlan:
    """An ordered, seeded division of ``total`` trials into shards."""

    shards: Tuple[Shard, ...]
    total: int

    def __post_init__(self) -> None:
        if sum(s.trials for s in self.shards) != self.total:
            raise ValueError("shard trials must sum to the plan total")

    def __len__(self) -> int:
        return len(self.shards)

    def __iter__(self):
        return iter(self.shards)

    def __repr__(self) -> str:
        sizes = [s.trials for s in self.shards]
        return f"ShardPlan(total={self.total}, sizes={sizes})"


def plan_shards(
    total: int,
    seed: np.random.SeedSequence,
    count: Optional[int] = None,
) -> ShardPlan:
    """Build the shard plan for ``total`` trials under ``seed``.

    ``count`` defaults to :data:`DEFAULT_SHARD_COUNT` clamped to
    ``total``.  Shard seeds are the first ``count`` spawned children of
    ``seed``, assigned in order.
    """
    total = ensure_positive_int("total", total)
    if not isinstance(seed, np.random.SeedSequence):
        raise TypeError(
            f"seed must be a numpy SeedSequence, got {type(seed).__name__}"
        )
    if count is None:
        count = min(total, DEFAULT_SHARD_COUNT)
    else:
        count = ensure_positive_int("count", count)
    sizes = split_evenly(total, count)
    # Spawn from a pristine copy: SeedSequence.spawn is stateful
    # (n_children_spawned), and the plan must be a pure function of the
    # spec — re-planning the same spec has to yield the same shards.
    root = np.random.SeedSequence(
        entropy=seed.entropy,
        spawn_key=seed.spawn_key,
        pool_size=seed.pool_size,
    )
    children = root.spawn(count)
    shards = tuple(
        Shard(index=i, trials=size, seed=child)
        for i, (size, child) in enumerate(zip(sizes, children))
    )
    return ShardPlan(shards=shards, total=total)
