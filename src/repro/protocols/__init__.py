"""Executable incentive models on a common simulation interface.

The four protocols analysed in the paper:

* :class:`ProofOfWork` (Section 2.1)
* :class:`MultiLotteryPoS` (Section 2.2, Qtum/Blackcoin)
* :class:`SingleLotteryPoS` (Section 2.3, NXT)
* :class:`CompoundPoS` (Section 2.4, Ethereum 2.0)

the paper's remedies:

* :class:`FairSingleLotteryPoS` (Section 6.2)
* :class:`RewardWithholding` (Section 6.3)

and the Section 6.4 extensions:

* :class:`NeoPoS`, :class:`AlgorandPoS`, :class:`EOSDelegatedPoS`,
  :class:`WavePoS`, :class:`VixifyPoS`, :class:`FilecoinStorage`.
"""

from .base import (
    EnsembleState,
    IncentiveProtocol,
    StakeLotteryProtocol,
    sample_winners,
    winners_from_uniforms,
)
from .c_pos import BlockGranularCompoundPoS, CompoundPoS
from .extended import (
    AlgorandPoS,
    EOSDelegatedPoS,
    FilecoinStorage,
    NeoPoS,
    VixifyPoS,
    WavePoS,
)
from .fsl_pos import FairSingleLotteryPoS
from .ml_pos import MultiLotteryPoS
from .pow import ProofOfWork
from .sl_pos import SingleLotteryPoS
from .withholding import RewardWithholding

__all__ = [
    "EnsembleState",
    "IncentiveProtocol",
    "StakeLotteryProtocol",
    "sample_winners",
    "winners_from_uniforms",
    "ProofOfWork",
    "MultiLotteryPoS",
    "SingleLotteryPoS",
    "CompoundPoS",
    "BlockGranularCompoundPoS",
    "FairSingleLotteryPoS",
    "RewardWithholding",
    "NeoPoS",
    "AlgorandPoS",
    "EOSDelegatedPoS",
    "WavePoS",
    "VixifyPoS",
    "FilecoinStorage",
]
