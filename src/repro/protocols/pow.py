"""The Proof-of-Work incentive model (Section 2.1).

Miners race to solve ``Hash(nonce, ...) < D``; per-miner solution
times are exponential with rates proportional to hash power, so each
block is won independently with probability ``H_i / sum(H)``
(:func:`repro.theory.pow_win_probabilities`).  The block reward is paid
in currency and does **not** change future hash power, so the
proposer law never drifts — the property behind Theorems 3.2 and 4.2.
"""

from __future__ import annotations

import numpy as np

from ..core.miners import Allocation
from .base import EnsembleState, StakeLotteryProtocol, winners_from_uniforms

__all__ = ["ProofOfWork"]


class ProofOfWork(StakeLotteryProtocol):
    """PoW: i.i.d. proportional lottery on (fixed) hash power.

    Parameters
    ----------
    reward:
        Block reward ``w``.  PoW fairness is insensitive to ``w``
        (Section 5.4.2) because rewards never feed back into hash
        power, but the reward still scales incomes.

    Notes
    -----
    ``state.stakes`` holds hash-power shares and stays constant; the
    number of blocks won over any stretch is Binomial, so
    :meth:`advance_many` jumps whole stretches with one multinomial
    draw per trial instead of looping.
    """

    round_unit = "block"

    @property
    def name(self) -> str:
        return "PoW"

    def win_probabilities(self, state: EnsembleState) -> np.ndarray:
        """Per-trial proposer law: proportional to fixed hash power."""
        return state.stake_shares()

    def sample_block_winners(
        self, state: EnsembleState, rng: np.random.Generator
    ) -> np.ndarray:
        probabilities = self.win_probabilities(state)
        draws = rng.random(state.trials)
        return winners_from_uniforms(probabilities, draws)

    def credit_reward(self, state: EnsembleState, winners: np.ndarray) -> None:
        # Reward accrues as income only; hash power is unchanged.
        rows = np.arange(state.trials)
        state.rewards[rows, winners] += self.reward

    def advance_many(
        self, state: EnsembleState, rounds: int, rng: np.random.Generator
    ) -> None:
        """Jump ``rounds`` blocks at once.

        The per-block winners are i.i.d., so the per-miner block counts
        over the stretch are Multinomial(rounds, shares); one draw per
        trial replaces ``rounds`` sequential lotteries.
        """
        if rounds <= 0:
            raise ValueError("rounds must be positive")
        shares = state.stake_shares()
        counts = rng.multinomial(rounds, shares)
        state.rewards += self.reward * counts
        state.round_index += rounds
