"""The six additional incentive models discussed in Section 6.4.

The paper sketches how its fairness lens applies to NEO, Algorand,
EOS, Wave, Vixify and Filecoin.  This module turns each sketch into an
executable model on the common :class:`IncentiveProtocol` interface so
the same experiments and fairness checkers run on them:

* :class:`NeoPoS` — rewards paid in a *separate* asset (NEO gas) that
  does not change future staking power; dynamically identical to PoW,
  so both fairness types hold long-run.
* :class:`AlgorandPoS` — inflation-only rewards, no proposer reward:
  incomes are deterministic and exactly proportional, i.e. (0, 0)-fair
  every epoch.
* :class:`EOSDelegatedPoS` — a delegate committee where each delegate
  earns a *constant* proposer reward plus proportional inflation:
  neither fairness type holds unless all stakes are equal.
* :class:`WavePoS` / :class:`VixifyPoS` — proportional-lottery designs
  equivalent to FSL-PoS/ML-PoS dynamics: expectationally fair, not
  robustly fair for large rewards.
* :class:`FilecoinStorage` — mining power mixes fixed storage with
  compounding pledge stake; interpolates between PoW (all storage)
  and ML-PoS (all stake).
"""

from __future__ import annotations

import numpy as np

from .._validation import (
    ensure_non_negative_float,
    ensure_positive_float,
    ensure_probability,
)
from ..core.miners import Allocation
from .base import EnsembleState, IncentiveProtocol, StakeLotteryProtocol, sample_winners
from .fsl_pos import FairSingleLotteryPoS
from .pow import ProofOfWork

__all__ = [
    "NeoPoS",
    "AlgorandPoS",
    "EOSDelegatedPoS",
    "WavePoS",
    "VixifyPoS",
    "FilecoinStorage",
]


class NeoPoS(ProofOfWork):
    """NEO: PoS lottery paid in a separate, non-compounding asset.

    Stakers win blocks proportionally to their NEO holdings, but the
    reward (NEO gas) cannot be staked, so holdings never change —
    exactly the PoW dynamics with stake shares in place of hash-power
    shares.  Inherits the i.i.d. fast path of :class:`ProofOfWork`.
    """

    @property
    def name(self) -> str:
        return "NEO"


class AlgorandPoS(IncentiveProtocol):
    """Algorand: inflation-only incentives.

    Every epoch distributes ``v`` proportionally to wallet balances and
    pays no proposer reward, so each miner's income is the
    deterministic quantity ``v * share`` and the reward fraction equals
    the initial share in every outcome: (0, 0)-fairness.  (The paper
    notes the flip side — no proposer subsidy may undermine consensus
    participation.)

    Parameters
    ----------
    inflation_reward:
        Per-epoch inflation ``v``.
    """

    round_unit = "epoch"

    def __init__(self, inflation_reward: float) -> None:
        self._inflation_reward = ensure_positive_float(
            "inflation_reward", inflation_reward
        )

    @property
    def name(self) -> str:
        return "Algorand"

    @property
    def reward_per_round(self) -> float:
        return self._inflation_reward

    def make_state(self, allocation: Allocation, trials: int) -> EnsembleState:
        return self._initial_arrays(allocation, trials)

    def step(self, state: EnsembleState, rng: np.random.Generator) -> None:
        shares = state.stake_shares()
        income = self._inflation_reward * shares
        state.rewards += income
        state.stakes += income
        state.round_index += 1

    def advance_many(
        self, state: EnsembleState, rounds: int, rng: np.random.Generator
    ) -> None:
        """Deterministic dynamics allow an exact multi-epoch jump.

        Shares are invariant (income is proportional), so ``rounds``
        epochs simply issue ``rounds * v * share`` to each miner.
        """
        if rounds <= 0:
            raise ValueError("rounds must be positive")
        shares = state.stake_shares()
        income = rounds * self._inflation_reward * shares
        state.rewards += income
        state.stakes += income
        state.round_index += rounds


class EOSDelegatedPoS(IncentiveProtocol):
    """EOS: delegate committee with a flat proposer reward.

    All miners are delegates who propose in turn: each epoch pays every
    delegate a *constant* ``w / m`` proposer reward regardless of
    stake, plus an inflation reward ``v * share``.  The flat component
    over-rewards small delegates and under-rewards large ones, so
    neither expectational nor robust fairness holds unless all stakes
    are equal — the Section 6.4 verdict.

    Parameters
    ----------
    proposer_reward:
        Total flat proposer budget ``w`` per epoch (split equally).
    inflation_reward:
        Total proportional inflation ``v`` per epoch.
    compound:
        Whether rewards are added to stake (affects future inflation
        splits).  Default true.
    """

    round_unit = "epoch"

    def __init__(
        self,
        proposer_reward: float,
        inflation_reward: float,
        *,
        compound: bool = True,
    ) -> None:
        self._proposer_reward = ensure_positive_float(
            "proposer_reward", proposer_reward
        )
        self._inflation_reward = ensure_non_negative_float(
            "inflation_reward", inflation_reward
        )
        self.compound = bool(compound)

    @property
    def name(self) -> str:
        return "EOS"

    @property
    def reward_per_round(self) -> float:
        return self._proposer_reward + self._inflation_reward

    def make_state(self, allocation: Allocation, trials: int) -> EnsembleState:
        return self._initial_arrays(allocation, trials)

    def step(self, state: EnsembleState, rng: np.random.Generator) -> None:
        shares = state.stake_shares()
        flat = self._proposer_reward / state.miners
        income = flat + self._inflation_reward * shares
        state.rewards += income
        if self.compound:
            state.stakes += income
        state.round_index += 1


class WavePoS(FairSingleLotteryPoS):
    """Wave (Begicheva & Kofman 2018): NXT with a corrected time function.

    Wave repairs the SL-PoS deadline in the same spirit as the paper's
    FSL-PoS treatment, yielding a proportional lottery on compounding
    stakes — expectationally fair, not robustly fair for large ``w``.
    Dynamically identical to :class:`FairSingleLotteryPoS`.
    """

    @property
    def name(self) -> str:
        return "Wave"


class VixifyPoS(FairSingleLotteryPoS):
    """Vixify (Orlicki 2020): VRF/VDF Nakamoto-style PoS.

    Proposes blocks with probability proportional to stake and pays
    only a compounding proposer reward — the ML-PoS/FSL-PoS fairness
    profile (Section 6.4).
    """

    @property
    def name(self) -> str:
        return "Vixify"


class FilecoinStorage(StakeLotteryProtocol):
    """Filecoin-style Proof-of-Storage-and-Time incentives.

    Mining power mixes a *fixed* storage contribution with a
    *compounding* pledge-stake contribution:

    ``power_i = theta * storage_i + (1 - theta) * stake_i``

    (both normalised).  ``theta = 1`` reduces to PoW dynamics (fixed
    resource), ``theta = 0`` to ML-PoS (pure compounding); intermediate
    values damp the Polya-urn feedback, improving robust fairness —
    quantified by the ablation benchmark.

    Parameters
    ----------
    reward:
        Block reward, credited to pledge stake.
    storage_weight:
        The mixing weight ``theta`` in [0, 1].
    """

    round_unit = "block"

    def __init__(self, reward: float, storage_weight: float = 0.5) -> None:
        super().__init__(reward)
        self.storage_weight = ensure_probability("storage_weight", storage_weight)

    @property
    def name(self) -> str:
        return "Filecoin"

    def make_state(self, allocation: Allocation, trials: int) -> EnsembleState:
        state = self._initial_arrays(allocation, trials)
        # Storage shares are fixed at the initial allocation.
        state.extra["storage"] = allocation.tiled(trials)
        return state

    def mining_power(self, state: EnsembleState) -> np.ndarray:
        """Normalised mining power mixing storage and stake shares."""
        stake_shares = state.stake_shares()
        storage = state.extra["storage"]
        storage_shares = storage / storage.sum(axis=1, keepdims=True)
        power = (
            self.storage_weight * storage_shares
            + (1.0 - self.storage_weight) * stake_shares
        )
        return power / power.sum(axis=1, keepdims=True)

    def win_probabilities(self, state: EnsembleState) -> np.ndarray:
        """Per-trial proposer law: proportional to mixed mining power."""
        return self.mining_power(state)

    def sample_block_winners(
        self, state: EnsembleState, rng: np.random.Generator
    ) -> np.ndarray:
        return sample_winners(self.mining_power(state), rng)
