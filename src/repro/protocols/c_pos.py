"""The compound Proof-of-Stake incentive model (Section 2.4).

Ethereum 2.0-style incentives.  Each *epoch* issues two kinds of
reward:

* a **proposer reward** ``w`` split over ``P`` shards — each shard
  elects one proposer proportionally to stake, paying ``w / P``; the
  number of shards won by miner ``i`` is ``Bin(P, share_i)``
  (jointly, Multinomial across miners);
* an **inflation (attester) reward** ``v`` distributed to *every*
  miner exactly proportionally to stake.

Both components compound into stake.  The deterministic inflation
dilutes the proposer-lottery noise, which is why C-PoS satisfies the
much weaker robust-fairness requirement of Theorem 4.10 — at ``v = 0,
P = 1`` it degenerates to ML-PoS.
"""

from __future__ import annotations

import numpy as np

from .._validation import (
    ensure_non_negative_float,
    ensure_positive_float,
    ensure_positive_int,
)
from ..core.miners import Allocation
from .base import EnsembleState, IncentiveProtocol, winners_from_uniforms

__all__ = ["CompoundPoS", "BlockGranularCompoundPoS"]


class CompoundPoS(IncentiveProtocol):
    """C-PoS: sharded proposer lottery plus proportional inflation.

    Parameters
    ----------
    proposer_reward:
        Total proposer reward ``w`` per epoch (split over shards).
    inflation_reward:
        Total inflation/attester reward ``v`` per epoch.  Ethereum 2.0
        sets ``v ~ 20 w`` (Section 2.4 remark); the paper's experiments
        use ``v = 10 w``.
    shards:
        Shard count ``P`` per epoch (32 in Ethereum 2.0).
    vote_participation:
        Fraction of attesters online (``vote`` in Section 2.4, usually
        close to 1).  Scales the inflation actually paid; the unpaid
        remainder is simply not issued, mirroring Ethereum's behaviour.
    """

    round_unit = "epoch"

    def __init__(
        self,
        proposer_reward: float,
        inflation_reward: float,
        shards: int = 32,
        *,
        vote_participation: float = 1.0,
    ) -> None:
        self._proposer_reward = ensure_positive_float(
            "proposer_reward", proposer_reward
        )
        self._inflation_reward = ensure_non_negative_float(
            "inflation_reward", inflation_reward
        )
        self.shards = ensure_positive_int("shards", shards)
        if not 0.0 < vote_participation <= 1.0:
            raise ValueError("vote_participation must be in (0, 1]")
        self.vote_participation = float(vote_participation)

    @property
    def name(self) -> str:
        return "C-PoS"

    @property
    def proposer_reward(self) -> float:
        """Per-epoch proposer reward ``w``."""
        return self._proposer_reward

    @property
    def inflation_reward(self) -> float:
        """Per-epoch inflation reward ``v`` (scaled by participation)."""
        return self._inflation_reward * self.vote_participation

    @property
    def reward_per_round(self) -> float:
        return self._proposer_reward + self.inflation_reward

    def make_state(self, allocation: Allocation, trials: int) -> EnsembleState:
        return self._initial_arrays(allocation, trials)

    def step(self, state: EnsembleState, rng: np.random.Generator) -> None:
        shares = state.stake_shares()
        # Proposer lottery: P shard proposers drawn proportionally.
        shard_wins = rng.multinomial(self.shards, shares)
        proposer_income = self._proposer_reward * shard_wins / self.shards
        # Inflation: exactly proportional to current stakes.
        inflation_income = self.inflation_reward * shares
        income = proposer_income + inflation_income
        state.rewards += income
        state.stakes += income
        state.round_index += 1

    def expected_epoch_income(self, shares: np.ndarray) -> np.ndarray:
        """Expected per-miner income of one epoch given stake shares.

        ``E[income_i] = (w + v) * share_i`` — the Theorem 3.5 identity.
        """
        shares = np.asarray(shares, dtype=float)
        return self.reward_per_round * shares


class BlockGranularCompoundPoS(IncentiveProtocol):
    """C-PoS with per-shard-block accounting.

    The epoch-level :class:`CompoundPoS` matches the Theorem 3.5/4.10
    model where one round = one epoch.  The paper's *plots*, however,
    use a "Number of Blocks" axis, and its Table 1 reports a C-PoS
    convergence time (~110) comparable to PoW's per-block ~1,000 —
    i.e. measured at shard-block granularity.  This variant advances
    one shard block per round so the early-horizon behaviour is
    visible: within the first epoch only the proposer lottery has paid
    out, so ``lambda`` is a pure binomial fraction (high unfair
    probability); once the first epoch's inflation lands the
    uncertainty collapses.  Reconciles the EXPERIMENTS.md deviation on
    the Table 1 convergence column.

    Rounds issue unequal rewards (``w/P`` per block plus ``v`` at each
    epoch boundary), so :meth:`total_issued` is overridden.

    Parameters match :class:`CompoundPoS`; proposers within an epoch
    are drawn from the stake distribution at the epoch start
    (committee assignment is per epoch, Section 2.4).
    """

    round_unit = "block"

    def __init__(
        self,
        proposer_reward: float,
        inflation_reward: float,
        shards: int = 32,
        *,
        vote_participation: float = 1.0,
    ) -> None:
        self._proposer_reward = ensure_positive_float(
            "proposer_reward", proposer_reward
        )
        self._inflation_reward = ensure_non_negative_float(
            "inflation_reward", inflation_reward
        )
        self.shards = ensure_positive_int("shards", shards)
        if not 0.0 < vote_participation <= 1.0:
            raise ValueError("vote_participation must be in (0, 1]")
        self.vote_participation = float(vote_participation)

    @property
    def name(self) -> str:
        return "C-PoS/block"

    @property
    def proposer_reward(self) -> float:
        """Per-epoch proposer reward ``w`` (each block pays ``w/P``)."""
        return self._proposer_reward

    @property
    def inflation_reward(self) -> float:
        """Per-epoch inflation ``v`` (scaled by participation)."""
        return self._inflation_reward * self.vote_participation

    @property
    def reward_per_round(self) -> float:
        """Average issuance per shard block, ``(w + v) / P``.

        Only meaningful as an average — see :meth:`total_issued` for
        the exact cumulative issuance.
        """
        return (self._proposer_reward + self.inflation_reward) / self.shards

    def total_issued(self, rounds: int) -> float:
        """Exact cumulative issuance after ``rounds`` shard blocks.

        ``(w/P) * rounds`` proposer subsidies plus one full inflation
        payment ``v`` per *completed* epoch.
        """
        if rounds <= 0:
            raise ValueError("rounds must be positive")
        completed_epochs = rounds // self.shards
        return (
            self._proposer_reward / self.shards * rounds
            + self.inflation_reward * completed_epochs
        )

    def make_state(self, allocation: Allocation, trials: int) -> EnsembleState:
        state = self._initial_arrays(allocation, trials)
        state.extra["epoch_shares"] = state.stake_shares()
        return state

    def step(self, state: EnsembleState, rng: np.random.Generator) -> None:
        position = state.round_index % self.shards
        if position == 0:
            # New epoch: committee drawn from the current stakes.
            state.extra["epoch_shares"] = state.stake_shares()
        shares = state.extra["epoch_shares"]
        # One shard proposer for this block.
        draws = rng.random(state.trials)
        winners = winners_from_uniforms(shares, draws)
        rows = np.arange(state.trials)
        block_reward = self._proposer_reward / self.shards
        state.rewards[rows, winners] += block_reward
        state.stakes[rows, winners] += block_reward
        if position == self.shards - 1 and self.inflation_reward > 0.0:
            # Epoch complete: attester rewards on the epoch committee
            # stakes.
            income = self.inflation_reward * shares
            state.rewards += income
            state.stakes += income
        state.round_index += 1
