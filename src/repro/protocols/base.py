"""Protocol interfaces for vectorised mining-game simulation.

Every incentive model in the paper advances in *rounds* — a block for
PoW/ML-PoS/SL-PoS, an epoch for C-PoS — and in each round issues a
fixed total reward whose split among miners is random.  The simulator
keeps an ensemble of independent trials as ``(trials, miners)`` arrays
and asks the protocol to advance all trials by one round at a time.

Two abstractions:

* :class:`IncentiveProtocol` — the general interface (``make_state``,
  ``step``, ``advance_many``).
* :class:`StakeLotteryProtocol` — the common single-winner-per-block
  case (PoW, ML-PoS, SL-PoS, FSL-PoS, Filecoin, ...): subclasses only
  define how the winner is drawn from the current competing resource.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import Any, Dict, Optional

import numpy as np

from .._validation import ensure_positive_int
from ..core.miners import Allocation

__all__ = [
    "EnsembleState",
    "IncentiveProtocol",
    "StakeLotteryProtocol",
    "sample_winners",
    "winners_from_uniforms",
]


def winners_from_uniforms(
    probabilities: np.ndarray, draws: np.ndarray
) -> np.ndarray:
    """Winner indices from per-trial categorical laws and given uniforms.

    The inverse-CDF arithmetic of :func:`sample_winners`, factored out
    so the batched kernels (:mod:`repro.sim.kernels`) can feed it
    pre-drawn uniforms while staying bit-identical to the per-round
    sampler.

    Parameters
    ----------
    probabilities:
        Array of shape ``(trials, miners)``; rows must sum to one.
    draws:
        Uniform variates in ``[0, 1)``, shape ``(trials,)``.
    """
    cdf = np.cumsum(probabilities, axis=1)
    # Guard against rounding: force the last column to 1 exactly.
    cdf[:, -1] = 1.0
    return (draws[:, None] > cdf).sum(axis=1)


def sample_winners(probabilities: np.ndarray, rng: np.random.Generator) -> np.ndarray:
    """Draw one winner per trial from per-trial categorical laws.

    Parameters
    ----------
    probabilities:
        Array of shape ``(trials, miners)``; rows must sum to one.
    rng:
        Random generator.

    Returns
    -------
    numpy.ndarray of shape ``(trials,)`` with winner indices.

    Notes
    -----
    Uses the inverse-CDF method vectorised across trials: one uniform
    per trial compared against the per-row cumulative sums.  This is
    the hot path of the whole simulator; the fused kernels in
    :mod:`repro.sim.kernels` batch the uniforms across rounds via
    :func:`winners_from_uniforms`.
    """
    if probabilities.ndim != 2:
        raise ValueError("probabilities must be 2-D (trials, miners)")
    draws = rng.random(probabilities.shape[0])
    return winners_from_uniforms(probabilities, draws)


@dataclass
class EnsembleState:
    """Mutable simulation state of an ensemble of mining games.

    Attributes
    ----------
    stakes:
        Current *competing resource* per trial and miner — hash power
        for PoW (constant), effective stakes for PoS.  Shape
        ``(trials, miners)``.
    rewards:
        Cumulative *issued* rewards per trial and miner.  Shape
        ``(trials, miners)``.  Reward-withholding schemes issue here
        immediately even though the stake effect is delayed.
    round_index:
        Number of completed rounds.
    extra:
        Protocol-private auxiliary arrays (e.g. pending vesting
        rewards).
    scratch:
        Reusable work-buffer pool attached by the batched kernels
        (:class:`repro.sim.kernels.ScratchBuffers`); None until a
        fused advance first runs.  Carries no simulation state — only
        preallocated arrays the inner loops overwrite each round.
    """

    stakes: np.ndarray
    rewards: np.ndarray
    round_index: int = 0
    extra: Dict[str, np.ndarray] = field(default_factory=dict)
    scratch: Optional[Any] = field(default=None, repr=False, compare=False)

    @property
    def trials(self) -> int:
        return self.stakes.shape[0]

    @property
    def miners(self) -> int:
        return self.stakes.shape[1]

    def stake_shares(self) -> np.ndarray:
        """Current stake shares, shape ``(trials, miners)``."""
        return self.stakes / self.stakes.sum(axis=1, keepdims=True)

    def reward_fractions(self, total_issued: float) -> np.ndarray:
        """Cumulative reward fractions given the total issued so far."""
        if total_issued <= 0.0:
            raise ValueError("total_issued must be positive")
        return self.rewards / total_issued


class IncentiveProtocol(abc.ABC):
    """Abstract incentive model advancing an ensemble round by round."""

    #: Cosmetic unit of one round ("block" or "epoch").
    round_unit: str = "block"

    @property
    @abc.abstractmethod
    def name(self) -> str:
        """Short protocol name ("PoW", "ML-PoS", ...)."""

    @property
    @abc.abstractmethod
    def reward_per_round(self) -> float:
        """Total reward issued to all miners in one round."""

    @abc.abstractmethod
    def make_state(self, allocation: Allocation, trials: int) -> EnsembleState:
        """Create the initial ensemble state for ``trials`` games."""

    @abc.abstractmethod
    def step(self, state: EnsembleState, rng: np.random.Generator) -> None:
        """Advance every trial by one round, in place."""

    def advance_many(
        self, state: EnsembleState, rounds: int, rng: np.random.Generator
    ) -> None:
        """Advance every trial by ``rounds`` rounds.

        The default implementation loops :meth:`step`; protocols whose
        dynamics allow it (PoW's i.i.d. lottery) override this with a
        closed-form jump.
        """
        rounds = ensure_positive_int("rounds", rounds)
        for _ in range(rounds):
            self.step(state, rng)

    def total_issued(self, rounds: int) -> float:
        """Total reward issued after ``rounds`` rounds."""
        if rounds <= 0:
            raise ValueError("rounds must be positive")
        return self.reward_per_round * rounds

    def _initial_arrays(self, allocation: Allocation, trials: int) -> EnsembleState:
        """Shared state construction: tiled stakes, zero rewards."""
        trials = ensure_positive_int("trials", trials)
        stakes = allocation.tiled(trials)
        rewards = np.zeros_like(stakes)
        return EnsembleState(stakes=stakes, rewards=rewards)

    def __repr__(self) -> str:
        return f"{type(self).__name__}(name={self.name!r})"


class StakeLotteryProtocol(IncentiveProtocol):
    """A protocol in which each round elects exactly one block proposer.

    Subclasses define :meth:`sample_block_winners` (how the proposer is
    drawn from the current competing resource) and optionally override
    :meth:`credit_reward` (how the block reward feeds back into the
    resource — PoW's does not, PoS's does).

    Parameters
    ----------
    reward:
        Block reward ``w``, normalised against the initial resource.
    """

    def __init__(self, reward: float) -> None:
        if reward <= 0.0:
            raise ValueError(f"reward must be positive, got {reward!r}")
        self._reward = float(reward)

    @property
    def reward_per_round(self) -> float:
        return self._reward

    @property
    def reward(self) -> float:
        """The block reward ``w`` (alias of :attr:`reward_per_round`)."""
        return self._reward

    @abc.abstractmethod
    def sample_block_winners(
        self, state: EnsembleState, rng: np.random.Generator
    ) -> np.ndarray:
        """Draw this round's proposer for every trial, shape ``(trials,)``."""

    def credit_reward(self, state: EnsembleState, winners: np.ndarray) -> None:
        """Apply the block reward of this round's winners to the state.

        Default: the reward both accrues as income and compounds into
        the competing resource (the PoS behaviour).  PoW overrides to
        skip compounding.
        """
        rows = np.arange(state.trials)
        state.rewards[rows, winners] += self._reward
        state.stakes[rows, winners] += self._reward

    def make_state(self, allocation: Allocation, trials: int) -> EnsembleState:
        return self._initial_arrays(allocation, trials)

    def step(self, state: EnsembleState, rng: np.random.Generator) -> None:
        winners = self.sample_block_winners(state, rng)
        self.credit_reward(state, winners)
        state.round_index += 1
