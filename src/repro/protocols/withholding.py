"""Reward withholding (Section 6.3).

The paper's second robust-fairness improvement: block rewards are
*issued* to the proposer immediately (they count as income) but only
*take effect* — start counting as staking power — at the next multiple
of the vesting period (e.g. a reward issued at block 1,024 becomes
stake at block 2,000 with a period of 1,000).  Between vesting points
the proposer lottery runs on frozen stakes, so the per-period block
counts concentrate by the law of large numbers and the compounding
feedback that widens the ML-PoS/FSL-PoS envelope is broken.

Implemented as a wrapper around any :class:`StakeLotteryProtocol`
whose winner law depends on ``state.stakes`` (ML-PoS, SL-PoS,
FSL-PoS): pending rewards accumulate in ``state.extra['pending']`` and
are folded into stakes at vesting boundaries.
"""

from __future__ import annotations

import numpy as np

from .._validation import ensure_positive_int
from ..core.miners import Allocation
from .base import EnsembleState, StakeLotteryProtocol

__all__ = ["RewardWithholding"]


class RewardWithholding(StakeLotteryProtocol):
    """Wrap a stake-lottery protocol with periodic reward vesting.

    Parameters
    ----------
    inner:
        The underlying lottery protocol (provides the winner law and
        the block reward).
    vesting_period:
        Rewards take effect at the next block index that is a multiple
        of this period (the paper uses 1,000).

    Notes
    -----
    ``state.stakes`` holds *effective* (vested) stakes — the resource
    the inner lottery actually sees.  ``state.rewards`` counts issued
    income, so reward fractions ``lambda`` include unvested rewards,
    matching how the paper plots Figure 6(b).
    """

    def __init__(self, inner: StakeLotteryProtocol, vesting_period: int = 1000) -> None:
        super().__init__(inner.reward)
        if isinstance(inner, RewardWithholding):
            raise TypeError("cannot nest RewardWithholding wrappers")
        self.inner = inner
        self.vesting_period = ensure_positive_int("vesting_period", vesting_period)
        self.round_unit = inner.round_unit

    @property
    def name(self) -> str:
        return f"{self.inner.name}+withhold"

    def make_state(self, allocation: Allocation, trials: int) -> EnsembleState:
        state = self.inner.make_state(allocation, trials)
        state.extra["pending"] = np.zeros_like(state.stakes)
        return state

    def sample_block_winners(
        self, state: EnsembleState, rng: np.random.Generator
    ) -> np.ndarray:
        # The inner lottery reads state.stakes, which holds only the
        # vested resource — exactly the intended semantics.
        return self.inner.sample_block_winners(state, rng)

    def credit_reward(self, state: EnsembleState, winners: np.ndarray) -> None:
        rows = np.arange(state.trials)
        state.rewards[rows, winners] += self.reward
        state.extra["pending"][rows, winners] += self.reward
        # Vesting happens *after* this block if the new height is a
        # multiple of the period.
        if (state.round_index + 1) % self.vesting_period == 0:
            state.stakes += state.extra["pending"]
            state.extra["pending"][:] = 0.0

    def win_probabilities(self, state: EnsembleState) -> np.ndarray:
        """Winner law of the wrapped protocol on vested stakes."""
        win_probabilities = getattr(self.inner, "win_probabilities", None)
        if win_probabilities is None:
            raise NotImplementedError(
                f"{self.inner.name} does not expose win probabilities"
            )
        return win_probabilities(state)
