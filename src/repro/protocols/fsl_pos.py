"""FSL-PoS: the paper's fair-single-lottery treatment (Section 6.2).

SL-PoS is unfair because its deadline ``basetime * Hash / stake`` is
uniform, so the earliest-deadline race is not proportional.  The
treatment replaces the time function with

``time = basetime * (-ln(1 - Hash / 2^256)) / stake``

via inverse-transform sampling: the deadline becomes exponential with
rate ``stake``, and the minimum of independent exponentials wins with
probability exactly ``S_i / sum(S)``.  The dynamics then coincide with
ML-PoS (proportional lottery on compounding stakes): expectational
fairness is restored, but robust fairness still requires a small block
reward (Figure 6a shows a wide envelope at ``w = 0.01``).
"""

from __future__ import annotations

import numpy as np

from .base import EnsembleState, StakeLotteryProtocol

__all__ = ["FairSingleLotteryPoS"]


class FairSingleLotteryPoS(StakeLotteryProtocol):
    """FSL-PoS: earliest-deadline lottery with exponential deadlines.

    Parameters
    ----------
    reward:
        Block reward ``w``, compounding into stakes.

    Notes
    -----
    The winner is sampled literally as the paper prescribes: draw
    ``U_i ~ U(0, 1)``, transform to ``T_i = -ln(1 - U_i) / S_i``, take
    the arg-min.  This equals a proportional categorical draw in law,
    but simulating the transform keeps the implementation a faithful
    executable of Section 6.2 (and the equivalence is asserted by the
    test suite).
    """

    round_unit = "block"

    @property
    def name(self) -> str:
        return "FSL-PoS"

    def sample_block_winners(
        self, state: EnsembleState, rng: np.random.Generator
    ) -> np.ndarray:
        uniforms = rng.random(state.stakes.shape)
        # -log1p(-u) = -ln(1 - u): exponential via inverse transform.
        deadlines = -np.log1p(-uniforms) / state.stakes
        return np.argmin(deadlines, axis=1)

    def win_probabilities(self, state: EnsembleState) -> np.ndarray:
        """Exact per-trial win law: proportional to stakes."""
        return state.stake_shares()
