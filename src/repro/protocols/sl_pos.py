"""The single-lottery Proof-of-Stake incentive model (Section 2.3).

NXT-style staking: each miner gets *one* lottery ticket per block, a
deadline ``time = basetime * Hash(pk, ...) / stake``; the earliest
deadline proposes.  With a uniform hash the deadline is
``U(0, basetime/stake)``, so the win probability of a miner below the
maximum stake is *less* than proportional (Eq. 1, Lemma 6.1) — the
protocol is unfair in expectation (Theorem 3.4) and monopolises almost
surely (Theorem 4.9).
"""

from __future__ import annotations

import numpy as np

from .base import EnsembleState, StakeLotteryProtocol

__all__ = ["SingleLotteryPoS"]


class SingleLotteryPoS(StakeLotteryProtocol):
    """SL-PoS: earliest-deadline lottery with uniform deadlines.

    Parameters
    ----------
    reward:
        Block reward ``w``, compounding into stakes.

    Notes
    -----
    The winner is sampled *exactly* by drawing each miner's deadline
    ``U_i / S_i`` with ``U_i ~ U(0, 1)`` and taking the arg-min — this
    reproduces the Lemma 6.1 law for any miner count without computing
    the law explicitly (ties occur with probability zero).  The
    ``basetime`` constant cancels out of the comparison and is omitted.
    """

    round_unit = "block"

    @property
    def name(self) -> str:
        return "SL-PoS"

    def sample_block_winners(
        self, state: EnsembleState, rng: np.random.Generator
    ) -> np.ndarray:
        uniforms = rng.random(state.stakes.shape)
        deadlines = uniforms / state.stakes
        return np.argmin(deadlines, axis=1)

    def win_probabilities(self, state: EnsembleState) -> np.ndarray:
        """Exact per-trial win law (Lemma 6.1).

        Provided for analysis and tests; the simulator itself samples
        deadlines directly.  Cost is O(miners^2) per distinct stake
        row, so this is meant for small ensembles.
        """
        from ..theory.win_probability import sl_pos_win_probabilities

        shares = state.stake_shares()
        return np.apply_along_axis(sl_pos_win_probabilities, 1, shares)
