"""The multi-lottery Proof-of-Stake incentive model (Section 2.2).

Qtum- and Blackcoin-style staking: at every timestamp each miner tests
``Hash(time, ...) < D * stake``; the first success proposes.  With the
paper's small per-timestamp probabilities, the block lottery is
proportional to *current* stakes — and since the block reward ``w``
compounds into stake, the process is a classical Polya urn: fair in
expectation (Theorem 3.3) but with a non-degenerate
``Beta(a/w, b/w)`` limit (Section 4.3), hence robust fairness requires
``1/n + w <= 2 a^2 eps^2 / ln(2/delta)`` (Theorem 4.3).
"""

from __future__ import annotations

import numpy as np

from .base import EnsembleState, StakeLotteryProtocol, sample_winners

__all__ = ["MultiLotteryPoS"]


class MultiLotteryPoS(StakeLotteryProtocol):
    """ML-PoS: proportional lottery on compounding stakes.

    Parameters
    ----------
    reward:
        Block reward ``w``, normalised against the initial total stake
        (Assumption 2/3 of the paper).
    exact_race:
        When true, sample each block with the exact two-miner geometric
        race of Section 2.2 (per-timestamp success probability
        ``timestamp_probability * stake_share``) including the
        simultaneous-success tie-break, instead of the proportional
        small-``p`` limit.  Only supported for two-miner games; the
        difference is O(p) and invisible at the paper's parameters —
        exposed to let tests quantify exactly that claim.
    timestamp_probability:
        Scale of the per-timestamp success probability used by the
        exact race (the paper quotes ``p ~ 1/1200`` for 5-10 minute
        blocks at 0.5s timestamps).
    """

    round_unit = "block"

    def __init__(
        self,
        reward: float,
        *,
        exact_race: bool = False,
        timestamp_probability: float = 1.0 / 1200.0,
    ) -> None:
        super().__init__(reward)
        self.exact_race = bool(exact_race)
        if not 0.0 < timestamp_probability <= 1.0:
            raise ValueError("timestamp_probability must be in (0, 1]")
        self.timestamp_probability = float(timestamp_probability)

    @property
    def name(self) -> str:
        return "ML-PoS"

    def win_probabilities(self, state: EnsembleState) -> np.ndarray:
        """Per-trial proposer law.

        Proportional to current stakes by default; the exact
        geometric-race law (two miners) when ``exact_race`` is set.
        """
        shares = state.stake_shares()
        if not self.exact_race:
            return shares
        if state.miners != 2:
            raise ValueError("exact_race is only defined for two-miner games")
        # Per-timestamp success probabilities scale with stake shares.
        p = self.timestamp_probability * 2.0 * shares  # mean p ~= timestamp_probability
        p = np.clip(p, 1e-15, 1.0)
        p_a, p_b = p[:, 0], p[:, 1]
        win_a = (p_a - p_a * p_b / 2.0) / (p_a + p_b - p_a * p_b)
        return np.stack([win_a, 1.0 - win_a], axis=1)

    def sample_block_winners(
        self, state: EnsembleState, rng: np.random.Generator
    ) -> np.ndarray:
        return sample_winners(self.win_probabilities(state), rng)
