"""Secondary analyses: equitability, attack risk, protocol comparison.

These build on the core fairness machinery to answer the adjacent
questions the paper raises — how its notions relate to Fanti et al.'s
equitability (Section 7), and how unfair incentives translate into
51%-attack exposure (Section 6.5).
"""

from .attack_risk import majority_risk, majority_risk_series, stake_share_series
from .comparison import ComparisonRow, ProtocolComparison, compare_protocols
from .equitability import equitability, equitability_series

__all__ = [
    "majority_risk",
    "majority_risk_series",
    "stake_share_series",
    "ComparisonRow",
    "ProtocolComparison",
    "compare_protocols",
    "equitability",
    "equitability_series",
]
