"""Equitability — the Fanti et al. (FC 2019) dispersion measure.

Section 7 of the paper contrasts its fairness notions with the
*equitability* of Fanti, Kogan, Oh, Ruan, Viswanath and Wang
("Compounding of Wealth in Proof-of-Stake Cryptocurrencies"), defined
through the variance of the reward fraction relative to the initial
resource dispersion.  The paper argues equitability "cannot answer the
fairness concern directly" — it measures dispersion, not the relation
between reward and investment — but it remains a useful secondary
lens, so the reproduction ships it for comparison studies.

For a miner with initial share ``a``, the maximal possible variance of
a [0, 1]-valued reward fraction with mean ``a`` is ``a (1 - a)``
(attained by the all-or-nothing lottery of the paper's Section 1.2
example).  We therefore report

``equitability(lambda) = 1 - Var(lambda) / (a (1 - a))``

so that 1 means perfectly deterministic proportional rewards and 0
means the all-or-nothing worst case.
"""

from __future__ import annotations

import numpy as np

from .._validation import ensure_fraction

__all__ = ["equitability", "equitability_series"]


def equitability(fractions, share: float) -> float:
    """Normalised equitability of reward-fraction samples.

    Parameters
    ----------
    fractions:
        Samples of ``lambda_A`` in [0, 1].
    share:
        The miner's initial resource share ``a``.

    Returns
    -------
    float in [0, 1]; 1 = deterministic proportional, 0 = all-or-nothing.
    """
    share = ensure_fraction("share", share)
    values = np.asarray(fractions, dtype=float).ravel()
    if values.size < 2:
        raise ValueError("need at least two samples to measure dispersion")
    if np.any(values < -1e-12) or np.any(values > 1.0 + 1e-12):
        raise ValueError("reward fractions must lie in [0, 1]")
    worst_case = share * (1.0 - share)
    ratio = float(values.var()) / worst_case
    return float(np.clip(1.0 - ratio, 0.0, 1.0))


def equitability_series(fractions_by_checkpoint: np.ndarray, share: float) -> np.ndarray:
    """Equitability at every checkpoint.

    Parameters
    ----------
    fractions_by_checkpoint:
        Array of shape ``(trials, checkpoints)``.
    share:
        The miner's initial resource share ``a``.
    """
    values = np.asarray(fractions_by_checkpoint, dtype=float)
    if values.ndim != 2:
        raise ValueError("fractions_by_checkpoint must be 2-D")
    return np.array(
        [equitability(values[:, i], share) for i in range(values.shape[1])]
    )
