"""Side-by-side protocol comparison (the paper's contribution (2)).

The paper ranks the protocols PoW > C-PoS > ML-PoS > SL-PoS in terms
of fairness.  :func:`compare_protocols` runs any set of protocols on a
common allocation/horizon and produces one row per protocol with every
metric the paper (and its related work) uses:

* expected reward fraction vs the initial share (Def. 3.1),
* unfair probability at the paper's ``(0.1, 0.1)`` setting (Def. 4.1),
* convergence time (Table 1),
* equitability (Fanti et al., Section 7),
* terminal-stake Gini and monopolisation probability (Section 6.5).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from ..core.fairness import DEFAULT_DELTA, DEFAULT_EPSILON
from ..core.metrics import gini_coefficient
from ..core.miners import Allocation
from ..protocols.base import IncentiveProtocol
from ..sim.engine import simulate
from ..sim.rng import RandomSource
from .equitability import equitability

__all__ = ["ProtocolComparison", "ComparisonRow", "compare_protocols"]


@dataclass(frozen=True)
class ComparisonRow:
    """One protocol's metrics in a comparison run."""

    protocol: str
    mean_fraction: float
    bias: float
    unfair_probability: float
    convergence_time: float
    equitability: float
    terminal_gini: float
    monopolisation: float


@dataclass
class ProtocolComparison:
    """The full comparison table."""

    share: float
    horizon: int
    trials: int
    epsilon: float
    delta: float
    rows: List[ComparisonRow]

    def ranked(self) -> List[ComparisonRow]:
        """Rows sorted from fairest (lowest unfair probability, then
        smallest bias) to least fair."""
        return sorted(
            self.rows,
            key=lambda row: (row.unfair_probability, abs(row.bias)),
        )

    def render(self) -> str:
        from ..experiments.report import render_table

        headers = [
            "protocol", "E[lambda]", "bias", "unfair", "cvg time",
            "equit.", "gini", "monopoly",
        ]
        rows = [
            [
                row.protocol,
                row.mean_fraction,
                row.bias,
                row.unfair_probability,
                row.convergence_time,
                row.equitability,
                row.terminal_gini,
                row.monopolisation,
            ]
            for row in self.ranked()
        ]
        return render_table(
            headers,
            rows,
            precision=3,
            title=(
                f"Protocol comparison: a={self.share}, horizon={self.horizon}, "
                f"trials={self.trials}, (eps, delta)=({self.epsilon}, {self.delta})"
            ),
        )


def compare_protocols(
    protocols: Sequence[IncentiveProtocol],
    allocation: Allocation,
    horizon: int,
    *,
    trials: int = 2000,
    epsilon: float = DEFAULT_EPSILON,
    delta: float = DEFAULT_DELTA,
    seed=None,
) -> ProtocolComparison:
    """Run every protocol on the same game and tabulate all metrics.

    Each protocol gets an independent child random stream of ``seed``,
    so adding a protocol to the list does not perturb the others.
    """
    if not protocols:
        raise ValueError("protocols must not be empty")
    names = [p.name for p in protocols]
    if len(set(names)) != len(names):
        raise ValueError("protocol names must be unique for a comparison")
    source = seed if isinstance(seed, RandomSource) else RandomSource(seed)
    share = allocation.focal_share
    rows: List[ComparisonRow] = []
    for protocol in protocols:
        result = simulate(
            protocol, allocation, horizon, trials=trials,
            seed=source.spawn_one(),
        )
        final = result.final_fractions()
        robust = result.robust_verdict(epsilon=epsilon, delta=delta)
        terminal = result.terminal_stake_shares()
        rows.append(
            ComparisonRow(
                protocol=protocol.name,
                mean_fraction=float(final.mean()),
                bias=float(final.mean() - share),
                unfair_probability=robust.unfair_probability,
                convergence_time=result.convergence_time(
                    epsilon=epsilon, delta=delta
                ),
                equitability=equitability(final, share),
                terminal_gini=float(
                    np.mean([gini_coefficient(row) for row in terminal])
                ),
                monopolisation=result.monopolisation_probability(margin=0.9),
            )
        )
    return ProtocolComparison(
        share=share,
        horizon=horizon,
        trials=trials,
        epsilon=epsilon,
        delta=delta,
        rows=rows,
    )
