"""Majority (51%-attack) risk derived from mining outcomes.

Section 6.5 motivates fairness through security: when incentives
concentrate stakes, one miner eventually crosses 50% and can roll back
transactions (the 2020 Ethereum Classic incident the paper cites).
This module quantifies that risk from simulation output.

For protocols whose rewards compound into the competing resource
(ML-PoS, SL-PoS, FSL-PoS, C-PoS), the stake vector at a checkpoint is
reconstructible from the recorded reward fractions:

``stake_i(n) = a_i + R n lambda_i(n)``

with ``R`` the per-round issuance.  :func:`stake_share_series` performs
that reconstruction and :func:`majority_risk_series` reports the
fraction of trials in which some miner holds more than half of all
stakes at each checkpoint.
"""

from __future__ import annotations

import numpy as np

from .._validation import ensure_positive_float
from ..core.results import EnsembleResult

__all__ = ["stake_share_series", "majority_risk_series", "majority_risk"]


def stake_share_series(result: EnsembleResult, reward_per_round: float) -> np.ndarray:
    """Reconstruct stake shares at every checkpoint.

    Parameters
    ----------
    result:
        Simulation output of a protocol whose rewards compound into
        stake (ML-PoS, SL-PoS, FSL-PoS, C-PoS).  For PoW/NEO the
        "stakes" never move, so this reconstruction does not apply —
        their majority risk is static.
    reward_per_round:
        The protocol's total issuance per block/epoch ``R``.

    Returns
    -------
    numpy.ndarray of shape ``(trials, checkpoints, miners)`` with rows
    summing to one across miners.
    """
    reward_per_round = ensure_positive_float("reward_per_round", reward_per_round)
    initial = result.allocation.shares[None, None, :]
    rounds = result.checkpoints[None, :, None].astype(float)
    stakes = initial + reward_per_round * rounds * result.reward_fractions
    return stakes / stakes.sum(axis=2, keepdims=True)


def majority_risk_series(
    result: EnsembleResult, reward_per_round: float, *, threshold: float = 0.5
) -> np.ndarray:
    """Probability that some miner exceeds ``threshold`` of total stake.

    Returns one probability per checkpoint.  A value of 1 means every
    trial has a majority stakeholder — the 51%-attack precondition.
    """
    if not 0.0 < threshold < 1.0:
        raise ValueError("threshold must be in (0, 1)")
    shares = stake_share_series(result, reward_per_round)
    dominant = shares.max(axis=2)
    return (dominant > threshold).mean(axis=0)


def majority_risk(
    result: EnsembleResult, reward_per_round: float, *, threshold: float = 0.5
) -> float:
    """Majority risk at the final checkpoint."""
    return float(
        majority_risk_series(result, reward_per_round, threshold=threshold)[-1]
    )
