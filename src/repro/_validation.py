"""Argument validation helpers shared across the package.

The public API of :mod:`repro` is numeric-heavy: probabilities, stake
fractions, block counts, reward sizes.  Validating these consistently in
one place keeps the error messages uniform and the call sites short.

All helpers raise :class:`ValueError` (or :class:`TypeError` for wrong
types) with a message that names the offending parameter, and return the
validated (possibly normalised) value so they can be used inline::

    self.reward = ensure_positive_float("reward", reward)
"""

from __future__ import annotations

import math
import numbers
from typing import Iterable, Sequence

import numpy as np

__all__ = [
    "ensure_probability",
    "ensure_fraction",
    "ensure_positive_float",
    "ensure_non_negative_float",
    "ensure_positive_int",
    "ensure_non_negative_int",
    "ensure_allocation",
    "ensure_epsilon_delta",
]


def _ensure_real(name: str, value: object) -> float:
    """Return ``value`` as a finite ``float`` or raise."""
    if isinstance(value, bool) or not isinstance(value, numbers.Real):
        raise TypeError(f"{name} must be a real number, got {type(value).__name__}")
    result = float(value)
    if math.isnan(result) or math.isinf(result):
        raise ValueError(f"{name} must be finite, got {result!r}")
    return result


def ensure_probability(name: str, value: object) -> float:
    """Validate that ``value`` lies in the closed interval [0, 1]."""
    result = _ensure_real(name, value)
    if not 0.0 <= result <= 1.0:
        raise ValueError(f"{name} must be in [0, 1], got {result!r}")
    return result


def ensure_fraction(name: str, value: object) -> float:
    """Validate that ``value`` lies in the open interval (0, 1).

    Used for resource shares where a degenerate miner (0% or 100%)
    makes the fairness question vacuous.
    """
    result = _ensure_real(name, value)
    if not 0.0 < result < 1.0:
        raise ValueError(f"{name} must be in the open interval (0, 1), got {result!r}")
    return result


def ensure_positive_float(name: str, value: object) -> float:
    """Validate that ``value`` is a finite float strictly greater than 0."""
    result = _ensure_real(name, value)
    if result <= 0.0:
        raise ValueError(f"{name} must be positive, got {result!r}")
    return result


def ensure_non_negative_float(name: str, value: object) -> float:
    """Validate that ``value`` is a finite float greater than or equal to 0."""
    result = _ensure_real(name, value)
    if result < 0.0:
        raise ValueError(f"{name} must be non-negative, got {result!r}")
    return result


def ensure_positive_int(name: str, value: object) -> int:
    """Validate that ``value`` is an integer strictly greater than 0."""
    if isinstance(value, bool) or not isinstance(value, numbers.Integral):
        raise TypeError(f"{name} must be an integer, got {type(value).__name__}")
    result = int(value)
    if result <= 0:
        raise ValueError(f"{name} must be positive, got {result}")
    return result


def ensure_non_negative_int(name: str, value: object) -> int:
    """Validate that ``value`` is an integer greater than or equal to 0."""
    if isinstance(value, bool) or not isinstance(value, numbers.Integral):
        raise TypeError(f"{name} must be an integer, got {type(value).__name__}")
    result = int(value)
    if result < 0:
        raise ValueError(f"{name} must be non-negative, got {result}")
    return result


def ensure_allocation(
    name: str,
    shares: Iterable[object],
    *,
    normalise: bool = False,
    atol: float = 1e-9,
) -> np.ndarray:
    """Validate a vector of resource shares.

    Parameters
    ----------
    name:
        Parameter name used in error messages.
    shares:
        A sequence of at least two positive shares.
    normalise:
        When true, rescale the shares so that they sum to one (the
        paper normalises ``a + b = 1``, Assumption 2).  When false, the
        shares must already sum to one within ``atol``.
    atol:
        Absolute tolerance used when checking the sum.

    Returns
    -------
    numpy.ndarray
        A float array of shares summing to one.
    """
    array = np.asarray(list(shares), dtype=float)
    if array.ndim != 1:
        raise ValueError(f"{name} must be one-dimensional, got shape {array.shape}")
    if array.size < 2:
        raise ValueError(f"{name} must contain at least two miners, got {array.size}")
    if not np.all(np.isfinite(array)):
        raise ValueError(f"{name} must contain only finite values")
    if np.any(array <= 0.0):
        raise ValueError(f"{name} must contain strictly positive shares")
    total = float(array.sum())
    if normalise:
        return array / total
    if abs(total - 1.0) > atol:
        raise ValueError(
            f"{name} must sum to 1 (got {total!r}); pass normalise=True to rescale"
        )
    return array


def ensure_epsilon_delta(epsilon: object, delta: object) -> tuple:
    """Validate the ``(epsilon, delta)`` pair from Definition 4.1.

    ``epsilon`` must be non-negative and ``delta`` must be a
    probability.  Returns the validated pair.
    """
    eps = ensure_non_negative_float("epsilon", epsilon)
    dlt = ensure_probability("delta", delta)
    return eps, dlt


def as_sequence_of_floats(name: str, values: Sequence[object]) -> np.ndarray:
    """Convert a sequence to a finite float array, validating it."""
    array = np.asarray(list(values), dtype=float)
    if array.size == 0:
        raise ValueError(f"{name} must not be empty")
    if not np.all(np.isfinite(array)):
        raise ValueError(f"{name} must contain only finite values")
    return array
