"""repro — fairness analysis for blockchain incentives.

A production-quality reproduction of

    Huang, Tang, Cong, Lim, Xu.
    "Do the Rich Get Richer? Fairness Analysis for Blockchain
    Incentives." SIGMOD 2021.

The package provides:

* executable incentive models — PoW, ML-PoS (Qtum/Blackcoin), SL-PoS
  (NXT), C-PoS (Ethereum 2.0), the FSL-PoS and reward-withholding
  remedies, and the Section 6.4 extensions (:mod:`repro.protocols`);
* the paper's fairness notions and metrics (:mod:`repro.core`);
* the analytical toolkit — win laws, Hoeffding/Azuma bounds, Polya
  urns, stochastic approximation (:mod:`repro.theory`);
* a vectorised Monte Carlo engine (:mod:`repro.sim`);
* a node-level blockchain substrate standing in for the paper's
  Geth/Qtum/NXT testbeds (:mod:`repro.chainsim`);
* sharded parallel execution and a content-addressed result cache
  (:mod:`repro.runtime`);
* runnable reproductions of every figure and table
  (:mod:`repro.experiments`).

Quickstart
----------
>>> import repro
>>> game = repro.MiningGame(
...     repro.protocols.ProofOfWork(reward=0.01),
...     repro.Allocation.two_miners(0.2))
>>> report = game.play(horizon=2000, trials=500, seed=42)
>>> report.robust.is_fair
True
"""

from . import analysis, core, protocols, runtime, sim, theory
from .core import (
    Allocation,
    EnsembleResult,
    ExpectationalFairness,
    FairArea,
    FairnessReport,
    MiningGame,
    RobustFairness,
    predict,
)
from .runtime import ParallelRunner, ResultCache, SimulationSpec
from .sim import MonteCarloEngine, RandomSource, simulate

__version__ = "1.1.0"

__all__ = [
    "analysis",
    "core",
    "protocols",
    "runtime",
    "sim",
    "theory",
    "ParallelRunner",
    "ResultCache",
    "SimulationSpec",
    "Allocation",
    "EnsembleResult",
    "ExpectationalFairness",
    "FairArea",
    "FairnessReport",
    "MiningGame",
    "RobustFairness",
    "predict",
    "MonteCarloEngine",
    "RandomSource",
    "simulate",
    "__version__",
]
