"""Multi-miner games and decentralisation health (Sections 6.1, 6.5).

Extends the two-miner analysis the way the paper's Table 1 does: one
focal miner with 20% against a field of equal competitors, across all
four protocols *and* the Section 6.4 extensions.  Alongside fairness,
it tracks the decentralisation metrics that motivate the whole study —
Gini, Herfindahl and Nakamoto coefficients of the terminal stake
distribution (a Nakamoto coefficient of 1 means someone can 51%-attack
the chain).

Run:  python examples/multi_miner.py
"""

import numpy as np

from repro import Allocation, simulate
from repro.core.metrics import (
    gini_coefficient,
    herfindahl_index,
    nakamoto_coefficient,
)
from repro.protocols import (
    AlgorandPoS,
    CompoundPoS,
    EOSDelegatedPoS,
    FilecoinStorage,
    MultiLotteryPoS,
    NeoPoS,
    ProofOfWork,
    SingleLotteryPoS,
)


def protocol_zoo():
    return [
        ProofOfWork(reward=0.01),
        MultiLotteryPoS(reward=0.01),
        SingleLotteryPoS(reward=0.01),
        CompoundPoS(proposer_reward=0.01, inflation_reward=0.1, shards=32),
        NeoPoS(reward=0.01),
        AlgorandPoS(inflation_reward=0.01),
        EOSDelegatedPoS(proposer_reward=0.01, inflation_reward=0.1),
        FilecoinStorage(reward=0.01, storage_weight=0.5),
    ]


def main() -> None:
    miners = 4
    allocation = Allocation.focal_vs_equal(0.2, miners)
    print(f"{miners}-miner game: A holds 20%, others split 80% equally")
    print("(A is strictly below the others, so flat-reward protocols like "
          "EOS over-pay A)")
    print(f"{'protocol':10s} {'E[lambda_A]':>12s} {'unfair prob':>12s} "
          f"{'gini':>7s} {'hhi':>7s} {'nakamoto':>9s}")
    for protocol in protocol_zoo():
        result = simulate(
            protocol, allocation, horizon=5000, trials=1000, seed=99
        )
        mean = result.final_fractions().mean()
        unfair = result.robust_verdict().unfair_probability
        terminal = result.terminal_stake_shares()
        gini = np.mean([gini_coefficient(row) for row in terminal])
        hhi = np.mean([herfindahl_index(row) for row in terminal])
        nakamoto = np.mean([nakamoto_coefficient(row) for row in terminal])
        print(
            f"{protocol.name:10s} {mean:12.4f} {unfair:12.4f} "
            f"{gini:7.3f} {hhi:7.3f} {nakamoto:9.2f}"
        )
    print()
    print("Reading: SL-PoS drifts towards concentration (rising Gini/HHI,")
    print("Nakamoto -> 1); proportional protocols keep the initial spread.")


if __name__ == "__main__":
    main()
