"""Quickstart: fairness verdicts for the paper's four protocols.

Simulates a two-miner game (miner A holds 20% of the resource) under
PoW, ML-PoS, SL-PoS and C-PoS, and prints the combined empirical +
theoretical fairness report for each — the library's one-call API.

Run:  python examples/quickstart.py
"""

from repro import Allocation, MiningGame
from repro.protocols import (
    CompoundPoS,
    MultiLotteryPoS,
    ProofOfWork,
    SingleLotteryPoS,
)


def main() -> None:
    allocation = Allocation.two_miners(0.2)
    protocols = [
        ProofOfWork(reward=0.01),
        MultiLotteryPoS(reward=0.01),
        SingleLotteryPoS(reward=0.01),
        CompoundPoS(proposer_reward=0.01, inflation_reward=0.1, shards=32),
    ]
    for protocol in protocols:
        game = MiningGame(protocol, allocation)
        report = game.play(horizon=3000, trials=2000, seed=2021)
        print(report.render())
        print(f"matches the paper's theorems: {report.consistent_with_theory()}")
        print("-" * 60)


if __name__ == "__main__":
    main()
