"""Designing a robustly fair PoS protocol with Theorem 4.10.

A protocol designer wants the cheapest C-PoS parameterisation that is
(0.1, 0.1)-fair for every miner holding at least 10% of stake within
one million epochs.  The script sweeps the proposer reward ``w``,
inflation reward ``v`` and shard count ``P`` through the Theorem 4.10
calculator, then validates the chosen design (and a deliberately bad
one) by simulation — theory proposes, Monte Carlo disposes.

Run:  python examples/protocol_design.py
"""

from repro import Allocation, simulate
from repro.protocols import CompoundPoS
from repro.theory import CPoSFairnessBound

EPSILON = 0.1
DELTA = 0.1
MIN_SHARE = 0.1
HORIZON = 1_000_000


def sweep() -> list:
    """All sufficient (w, v, P) designs from a small grid."""
    bound = CPoSFairnessBound(EPSILON, DELTA, MIN_SHARE)
    designs = []
    for w in (0.001, 0.01, 0.05):
        for v_ratio in (0, 1, 10, 20):  # v as a multiple of w
            v = v_ratio * w
            for shards in (1, 8, 32, 64):
                if v == 0.0 and shards == 1:
                    # Degenerate ML-PoS corner; still valid input.
                    pass
                ok = bound.is_sufficient(HORIZON, shards, w, v)
                designs.append((w, v, shards, ok))
    return designs


def main() -> None:
    print(f"Target: ({EPSILON}, {DELTA})-fairness for every miner with "
          f"a >= {MIN_SHARE} within {HORIZON:,} epochs\n")
    print("Theorem 4.10 sweep (w, v, P -> sufficient?):")
    sufficient = []
    for w, v, shards, ok in sweep():
        mark = "OK " if ok else "   "
        print(f"   {mark} w={w:<6g} v={v:<6g} P={shards}")
        if ok:
            sufficient.append((w, v, shards))
    if not sufficient:
        print("no sufficient design in the grid")
        return

    # The "cheapest" certified design: highest proposer reward (maximal
    # participation incentive) among certified ones, fewest shards.
    best = max(sufficient, key=lambda d: (d[0], -d[2]))
    w, v, shards = best
    print(f"\nChosen design: w={w:g}, v={v:g}, P={shards}")

    print("\nValidation by simulation (20,000 epochs, 2,000 trials):")
    for label, protocol in [
        ("chosen design     ", CompoundPoS(w, v, shards)),
        ("bad design (v=0,P=1, w=0.05)", CompoundPoS(0.05, 0.0, 1)),
    ]:
        result = simulate(
            protocol,
            Allocation.two_miners(MIN_SHARE),
            horizon=20_000,
            trials=2_000,
            seed=5,
        )
        verdict = result.robust_verdict(epsilon=EPSILON, delta=DELTA)
        print(
            f"   {label}: unfair probability "
            f"{verdict.unfair_probability:.3f} -> "
            f"{'robustly fair' if verdict.is_fair else 'NOT robustly fair'}"
        )


if __name__ == "__main__":
    main()
