"""Parallel + cached experiments with ``repro.runtime``.

Demonstrates the three ways to use the runtime layer:

1. the high-level :class:`MiningGame` knobs (``workers=``, ``cache=``),
2. an explicit :class:`ParallelRunner` over a :class:`SimulationSpec`
   (pin ``shards`` to make merged results bit-identical across any
   worker count),
3. the ambient runtime that the ``repro-experiments`` CLI flags map
   to::

       repro-experiments fig2 --preset ci --workers 4 --cache results/.cache

Run:  python examples/parallel_experiments.py
"""

import os
import tempfile
import time

import numpy as np

from repro import Allocation, MiningGame
from repro.experiments.config import CI
from repro.experiments.registry import run_experiment
from repro.protocols import MultiLotteryPoS
from repro.runtime import ParallelRunner, SimulationSpec, using_runtime

WORKERS = min(4, os.cpu_count() or 1)


def main() -> None:
    allocation = Allocation.two_miners(0.2)

    # 1. One-call API: shard the ensemble over processes and memoise it.
    with tempfile.TemporaryDirectory() as cache_dir:
        game = MiningGame(MultiLotteryPoS(reward=0.01), allocation)
        start = time.perf_counter()
        report = game.play(
            horizon=2000, trials=4000, seed=2021,
            workers=WORKERS, cache=cache_dir,
        )
        cold = time.perf_counter() - start
        start = time.perf_counter()
        game.play(horizon=2000, trials=4000, seed=2021,
                  workers=WORKERS, cache=cache_dir)
        warm = time.perf_counter() - start
        print(f"E[lambda_A] = {report.expectational.sample_mean:.4f} "
              f"(cold {cold:.2f}s, warm cache hit {warm:.2f}s)")

    # 2. Explicit specs: worker count never changes the merged bits for
    #    a fixed shard plan.
    spec = SimulationSpec(
        protocol=MultiLotteryPoS(reward=0.01),
        allocation=allocation,
        trials=1000,
        horizon=500,
        seed=7,
    )
    serial = ParallelRunner(workers=1).run(spec, shards=4)
    parallel = ParallelRunner(workers=WORKERS).run(spec, shards=4)
    identical = np.array_equal(serial.reward_fractions, parallel.reward_fractions)
    print(f"workers=1 vs workers={WORKERS}, same 4-shard plan: "
          f"bit-identical = {identical}")

    # 3. Ambient runtime: everything an experiment runs — Monte Carlo
    #    ensembles and node-level system repeats alike — is sharded and
    #    cached, with no per-figure plumbing.  This is exactly what
    #    `repro-experiments fig2 --workers 4 --cache DIR` does.
    with tempfile.TemporaryDirectory() as cache_dir:
        runner = ParallelRunner(workers=WORKERS, cache=cache_dir)
        with using_runtime(runner):
            run_experiment("fig3", CI, seed=1)
        print(f"fig3 at CI scale populated {len(runner.cache)} cache "
              f"entries ({runner.cache.hits} hits, "
              f"{runner.cache.misses} misses)")
        with using_runtime(runner):
            run_experiment("fig3", CI, seed=1)
        print(f"rerun: {runner.cache.hits} hits — near-free")


if __name__ == "__main__":
    main()
