"""Parallel + cached experiments with ``repro.runtime``.

Demonstrates the ways to use the runtime layer:

1. the high-level :class:`MiningGame` knobs (``workers=``, ``cache=``),
2. an explicit :class:`ParallelRunner` over a :class:`SimulationSpec`
   (pin ``shards`` to make merged results bit-identical across any
   worker count),
3. grid batching (``run_many``): a whole sweep of specs — every
   uncached shard of every cell — in a single pool dispatch,
   bit-identical to running the specs one at a time,

4. the ambient runtime that the ``repro-experiments`` CLI flags map
   to (figure grids go through ``run_many``, with a per-shard
   progress line on stderr)::

       repro-experiments fig3 --preset ci --workers 4 --cache results/.cache

5. the batched kernel layer (``kernel="batched"``, the default): fused
   multi-round advances that are bit-identical to the per-round loop
   but ~10x faster on the paper's ML-PoS headline configuration,

6. the node-level system path: a whole system sweep batched through
   ``run_system_many`` in one dispatch, and the networks' vectorized
   hot loop with its ``fast=False`` escape hatch (the system-side
   analogue of ``kernel="naive"`` — bit-identical either way),

7. the streaming shard merge (``stream=True``, the default, the CLI's
   ``--stream``/``--no-stream``): shard results fold into the merged
   ensemble as they complete instead of piling up for a terminal
   merge, so a 100k-trial run peaks near ONE merged ensemble in
   memory instead of two — bit-identical to the batch path, same
   cache artifacts,

8. runtime telemetry (``repro.obs``, the CLI's ``--trace PATH`` and
   ``--metrics``): install an ambient span tracer + metrics registry
   around any run and get per-shard submit/run/complete/merge spans
   (worker telemetry ships home inside the shard payloads, even
   across process boundaries), cache hit/miss/eviction counters, and
   kernel batched-vs-naive timings — summarized as a table, written
   as JSONL for ``repro-trace summarize``.  Telemetry never enters
   cache fingerprints and never touches random state: traced and
   untraced runs are bit-identical and share cache artifacts,

9. fault-tolerant execution (the CLI's ``--retries N``,
   ``--shard-timeout SECONDS`` and ``--resume``): shards are
   idempotent pure functions of the plan, so transient failures —
   flaky task errors, hung workers, crashed worker processes — are
   retried with deterministic backoff, per-shard deadlines abandon or
   kill stuck workers (respawning dead pools, degrading to serial with
   a loud warning only when a pool is unrecoverable), and a JSONL
   journal next to the cache checkpoints per-spec shard completion so
   a killed grid resumes recomputing only what was never journaled.
   Doctrine: retry/timeout/resume knobs never enter cache
   fingerprints, and backoff jitter is SHA-256-derived (no RNG) — a
   run that survived faults is bit-identical to one that never saw
   any, and shares its cache artifacts.  The seeded
   :class:`ChaosExecutor` proves it by injecting deterministic fault
   schedules in the differential suite,

10. the doctrine linter (``repro-lint``, the CI gate): the invariants
    behind all of the above, enforced statically,

11. storage integrity (``repro-fsck``, the CLI's ``--no-verify``
    opt-out): every cached artifact carries a SHA-256 sidecar,
    verified on read — bit rot is quarantined (never served, never
    silently deleted) and the slot recomputes bit-identically; a
    full disk degrades the cache to pass-through behind a loud
    warning instead of failing the run; ``repro-fsck --repair``
    scans and heals a cache+journal tree offline,

12. sufficient-statistics ensembles (``reduce="stats"``, the CLI's
    ``--reduce stats``): shards fold straight into mergeable moments,
    fixed-grid CDF sketches, and exact event counters instead of the
    ``(trials, checkpoints, miners)`` trajectory cube, so
    population-scale trial counts run in memory bounded by one shard
    — and the figure-facing numbers (unfair-probability series at the
    recorded epsilon, win/monopolisation counters) are bit-identical
    to full mode at the same shard plan.  ``reduce`` is a *physics*
    knob: unlike ``kernel``/``fast``/``stream`` it enters cache
    fingerprints, so the two artifact shapes never share an entry.

How the knobs compose: the kernel attacks per-round *depth*, workers
attack ensemble *breadth*.  Start with ``workers=1`` + the default
batched kernel; once a single run takes seconds, add workers — with
``backend="threads"`` for small/medium specs (the fused NumPy kernels
release the GIL, and threads skip pickling and process spawn) or
``backend="processes"`` for large shards and Python-bound protocols.

Run:  python examples/parallel_experiments.py
"""

import os
import tempfile
import time

import numpy as np

from repro import Allocation, MiningGame
from repro.experiments.config import CI
from repro.experiments.registry import run_experiment
from repro.protocols import MultiLotteryPoS
from repro.runtime import ParallelRunner, SimulationSpec, using_runtime

WORKERS = min(4, os.cpu_count() or 1)


def main() -> None:
    allocation = Allocation.two_miners(0.2)

    # 1. One-call API: shard the ensemble over processes and memoise it.
    with tempfile.TemporaryDirectory() as cache_dir:
        game = MiningGame(MultiLotteryPoS(reward=0.01), allocation)
        start = time.perf_counter()
        report = game.play(
            horizon=2000, trials=4000, seed=2021,
            workers=WORKERS, cache=cache_dir,
        )
        cold = time.perf_counter() - start
        start = time.perf_counter()
        game.play(horizon=2000, trials=4000, seed=2021,
                  workers=WORKERS, cache=cache_dir)
        warm = time.perf_counter() - start
        print(f"E[lambda_A] = {report.expectational.sample_mean:.4f} "
              f"(cold {cold:.2f}s, warm cache hit {warm:.2f}s)")

    # 2. Explicit specs: worker count never changes the merged bits for
    #    a fixed shard plan.
    spec = SimulationSpec(
        protocol=MultiLotteryPoS(reward=0.01),
        allocation=allocation,
        trials=1000,
        horizon=500,
        seed=7,
    )
    serial = ParallelRunner(workers=1).run(spec, shards=4)
    parallel = ParallelRunner(workers=WORKERS).run(spec, shards=4)
    identical = np.array_equal(serial.reward_fractions, parallel.reward_fractions)
    print(f"workers=1 vs workers={WORKERS}, same 4-shard plan: "
          f"bit-identical = {identical}")

    # 3. Grid batching: a figure sweep is many small specs.  run_many
    #    checks the cache per spec, then ships every uncached shard of
    #    every cell to the pool in ONE dispatch — same bits as a
    #    per-cell loop of run(), without paying pool latency per cell.
    grid = [
        SimulationSpec(
            protocol=MultiLotteryPoS(reward=0.01),
            allocation=Allocation.two_miners(share),
            trials=500,
            horizon=400,
            seed=seed,
        )
        for seed, share in enumerate((0.1, 0.2, 0.3, 0.4, 0.5))
    ]
    runner = ParallelRunner(workers=WORKERS)
    start = time.perf_counter()
    per_cell = [runner.run(spec, shards=4) for spec in grid]
    loop_s = time.perf_counter() - start
    start = time.perf_counter()
    batched = runner.run_many(grid, shards=4)
    many_s = time.perf_counter() - start
    identical = all(
        np.array_equal(a.reward_fractions, b.reward_fractions)
        for a, b in zip(per_cell, batched)
    )
    print(f"5-cell grid: per-cell loop {loop_s:.2f}s vs run_many "
          f"{many_s:.2f}s, bit-identical = {identical}")

    # 4. Ambient runtime: everything an experiment runs — Monte Carlo
    #    grids and node-level system repeats alike — is sharded and
    #    cached, with no per-figure plumbing.  Figure grids go through
    #    run_many, so fig3's 20 cells are one pool dispatch.  This is
    #    exactly what `repro-experiments fig3 --workers 4 --cache DIR`
    #    does.
    with tempfile.TemporaryDirectory() as cache_dir:
        runner = ParallelRunner(workers=WORKERS, cache=cache_dir)
        with using_runtime(runner):
            run_experiment("fig3", CI, seed=1)
        print(f"fig3 at CI scale populated {len(runner.cache)} cache "
              f"entries ({runner.cache.hits} hits, "
              f"{runner.cache.misses} misses)")
        with using_runtime(runner):
            run_experiment("fig3", CI, seed=1)
        print(f"rerun: {runner.cache.hits} hits — near-free")

    # 5. Batched kernels: the default advance path fuses whole
    #    checkpoint segments into a handful of NumPy dispatches with
    #    pre-drawn uniform blocks and reused scratch buffers.  The
    #    naive per-round loop is kept as an escape hatch — and the two
    #    are bit-identical, as the comparison below shows.
    game = MiningGame(MultiLotteryPoS(reward=0.01), allocation)
    start = time.perf_counter()
    naive = game.simulate(horizon=3000, trials=4000, seed=3, kernel="naive")
    naive_s = time.perf_counter() - start
    start = time.perf_counter()
    batched = game.simulate(horizon=3000, trials=4000, seed=3)  # default
    batched_s = time.perf_counter() - start
    identical = np.array_equal(
        naive.reward_fractions, batched.reward_fractions
    )
    print(f"kernel='naive' {naive_s:.2f}s vs batched {batched_s:.2f}s "
          f"({naive_s / batched_s:.1f}x), bit-identical = {identical}")

    # Threads compose with the kernels: the fused dispatches release
    # the GIL, so a thread pool scales without pickling anything.
    # (backend requires workers > 1 — simulate raises rather than
    # silently ignoring the knob on an in-process run.)
    if WORKERS > 1:
        threaded = game.simulate(horizon=3000, trials=4000, seed=3,
                                 workers=WORKERS, backend="threads")
        print(f"threads backend at workers={WORKERS}: "
              f"trials={threaded.trials}")

    # 6. The system path: node-level repeats batched like a figure
    #    grid.  SystemSpecs for several protocols go to the pool in ONE
    #    run_system_many dispatch (this is what fig2/fig6 do through
    #    experiments._common.run_system_grid), and the chainsim
    #    networks run their vectorized loop — batched hash-oracle
    #    draws, preallocated NumPy income ledgers.  fast=False is the
    #    per-object reference loop, bit-identical by the differential
    #    suite, and both flavors share one cache fingerprint.
    from repro.chainsim.harness import SystemExperiment
    from repro.runtime import SystemSpec

    sweep = [
        SystemSpec(
            experiment=SystemExperiment(protocol, allocation),
            rounds=150,
            repeats=6,
            seed=index,
        )
        for index, protocol in enumerate(("ml-pos", "sl-pos", "fsl-pos"))
    ]
    runner = ParallelRunner(workers=WORKERS)
    start = time.perf_counter()
    batched_system = runner.run_system_many(sweep, shards=2)
    sweep_s = time.perf_counter() - start
    print(f"3-protocol system sweep in one dispatch: {sweep_s:.2f}s "
          f"({sum(r.trials for r in batched_system)} deployments)")

    fast = SystemExperiment("sl-pos", allocation).run(400, 6, seed=9)
    start = time.perf_counter()
    slow = SystemExperiment("sl-pos", allocation, fast=False).run(400, 6, seed=9)
    naive_s = time.perf_counter() - start
    start = time.perf_counter()
    SystemExperiment("sl-pos", allocation).run(400, 6, seed=9)
    fast_s = time.perf_counter() - start
    identical = np.array_equal(slow.reward_fractions, fast.reward_fractions)
    print(f"sl-pos system loop: fast=False {naive_s:.2f}s vs fast=True "
          f"{fast_s:.2f}s ({naive_s / fast_s:.1f}x), "
          f"bit-identical = {identical}")

    # 7. Streaming merge on a large ensemble: the batch path holds
    #    every shard result AND the concatenated ensemble at its peak;
    #    streaming preallocates the merged arrays once and folds each
    #    shard as it completes (out-of-order completions wait in a
    #    bounded reorder buffer), so peak memory stays near one merged
    #    ensemble no matter how many shards the run splits into.  This
    #    is what `repro-experiments fig3 --workers 4 --stream` does —
    #    streaming is the default; `--no-stream` restores the old path.
    import tracemalloc

    big = SimulationSpec(
        protocol=MultiLotteryPoS(reward=0.01),
        allocation=allocation,
        trials=100_000,
        horizon=200,
        checkpoints=tuple(range(20, 220, 20)),
        seed=2021,
    )
    peaks = {}
    for label, stream in (("batch", False), ("stream", True)):
        tracemalloc.start()
        result = ParallelRunner(workers=1, stream=stream).run(big, shards=32)
        _, peaks[label] = tracemalloc.get_traced_memory()
        tracemalloc.stop()
    print(f"100k-trial ensemble, 32 shards: batch peak "
          f"{peaks['batch'] / 1e6:.0f} MB vs streaming peak "
          f"{peaks['stream'] / 1e6:.0f} MB "
          f"({peaks['stream'] / peaks['batch']:.2f}x, same bits, "
          f"{result.trials} trials)")

    # 8. Telemetry: wrap any run in an ambient tracer + metrics
    #    registry and every layer underneath reports in — the runner
    #    emits a root span and per-shard submit/merge events, the
    #    executors stamp completions, workers trace their shard.run
    #    (and the cache/kernel spans inside it) into a private buffer
    #    that ships home WITH the shard payload, so nothing is lost to
    #    process boundaries.  This is what
    #    `repro-experiments fig2 --workers 2 --trace run.jsonl --metrics`
    #    does; `repro-trace summarize run.jsonl` reads it back later.
    #    Doctrine: telemetry never enters cache fingerprints and never
    #    touches random state — a traced run is bit-identical to an
    #    untraced one and loads the same cache artifacts.
    from repro.obs import (
        MetricsRegistry, Tracer, summarize_spans,
        using_metrics, using_tracer,
    )

    tracer, metrics = Tracer(), MetricsRegistry()
    with using_tracer(tracer), using_metrics(metrics):
        traced = ParallelRunner(workers=WORKERS).run_many(grid, shards=4)
    identical = all(
        np.array_equal(a.reward_fractions, b.reward_fractions)
        for a, b in zip(per_cell, traced)
    )
    summary = summarize_spans(tracer.spans)
    shards = summary["shards"]
    kernel_calls = sum(
        mode["calls"] for mode in summary["kernel"].values()
    )
    print(f"traced rerun of the 5-cell grid: {len(tracer)} spans, "
          f"{shards['completed']} shards "
          f"(queue-wait p90 {shards['queue_wait']['p90'] * 1e3:.1f}ms, "
          f"merge-lag p90 {shards['merge_lag']['p90'] * 1e3:.1f}ms), "
          f"{kernel_calls} kernel calls, "
          f"{metrics.counter('runner.shards_dispatched').value} shards "
          f"dispatched, bit-identical to untraced = {identical}")

    # 9. Fault tolerance: wrap an executor in seeded chaos — injected
    #    transient failures, corrupt payloads, delays — and a retry
    #    policy absorbs every fault while the merged bits stay
    #    identical to a run that never failed.  The journal makes a
    #    killed grid resumable: rerunning with the same cache+journal
    #    recomputes only unjournaled shards.  This is what
    #    `repro-experiments fig2 --workers 4 --cache DIR --retries 3
    #    --shard-timeout 300 --resume` does.
    from repro.runtime import ChaosExecutor, ChaosSchedule, make_executor

    with tempfile.TemporaryDirectory() as root:
        schedule = ChaosSchedule(
            seed=11, state_dir=os.path.join(root, "chaos-state"),
            fail_rate=0.4, corrupt_rate=0.3, max_faults_per_task=2,
        )
        inner = make_executor(WORKERS, retry=4)
        chaotic_runner = ParallelRunner(
            executor=ChaosExecutor(inner, schedule),
            cache=os.path.join(root, "cache"),
            journal=os.path.join(root, "cache", "journal.jsonl"),
        )
        survived = chaotic_runner.run(spec, shards=4)
        identical = np.array_equal(
            survived.reward_fractions, serial.reward_fractions
        )
        print(f"chaos run (fail_rate=0.4, corrupt_rate=0.3): "
              f"{chaotic_runner.shards_retried} retries absorbed, "
              f"bit-identical to the clean run = {identical}")

        resumed_runner = ParallelRunner(
            workers=1,
            cache=os.path.join(root, "cache"),
            journal=os.path.join(root, "cache", "journal.jsonl"),
        )
        resumed_runner.run(spec, shards=4)
        print(f"rerun with the same cache+journal: "
              f"{resumed_runner.cache.hits} cache hit(s) — "
              f"nothing recomputed")

    # 10. Doctrine lint: everything above only works because of
    #     invariants no test can see locally — execution knobs stay
    #     out of cache fingerprints, retry jitter never consumes RNG,
    #     shard payloads stay picklable, shared tallies stay under
    #     their locks.  `repro-lint src/` (the CI gate) enforces those
    #     invariants statically; the same engine is importable, so a
    #     snippet can be checked in-process.  Note the waiver with its
    #     mandatory reason — a reason-less waiver is itself a finding.
    from repro.lint import check_source

    snippet = (
        "import time\n"
        "started = time.time()"
        "  # repro-lint: disable=DET003  # example metadata only\n"
        "\n"
        "deadline = time.time() + 60\n"
    )
    report = check_source(snippet, "snippet.py",
                          relpath="repro/runtime/chaos.py")
    print(f"repro-lint on a chaos-module snippet: "
          f"{len(report.findings)} finding(s) "
          f"({len(report.waived)} waived) — "
          + "; ".join(f"{f.rule} line {f.line}" for f in report.findings))

    # 11. Storage integrity: flip one byte in a cached artifact and the
    #     verify-on-read gate quarantines it (evidence preserved under
    #     <cache>/quarantine/, never served) and the next run
    #     recomputes the identical bytes.  `repro-fsck --repair` does
    #     the same scan offline — plus digest adoption, orphan sweeps
    #     and journal compaction — and exits 0 only when the tree
    #     re-scans clean.
    from repro.runtime.cache import ResultCache
    from repro.runtime.integrity import fsck
    from repro.runtime.spec import spec_fingerprint

    with tempfile.TemporaryDirectory() as root:
        cache = ResultCache(root)
        runner = ParallelRunner(workers=1, cache=cache)
        clean = runner.run(spec, shards=4)
        key = spec_fingerprint(spec, shards=4)
        artifact = cache.path_for(key)
        pristine = artifact.read_bytes()
        damaged = bytearray(pristine)
        damaged[len(damaged) // 2] ^= 0xFF  # one flipped bit of rot
        artifact.write_bytes(bytes(damaged))

        healed = ParallelRunner(workers=1, cache=cache).run(spec, shards=4)
        identical = artifact.read_bytes() == pristine
        report = fsck(root)
        print(f"flipped-byte artifact: quarantined={cache.quarantined}, "
              f"recomputed bit-identical = "
              f"{identical and np.array_equal(healed.reward_fractions, clean.reward_fractions)}, "
              f"fsck clean={report.clean} "
              f"(quarantine holds {report.quarantine_entries} entry)")

    # 12. Sufficient statistics: the same big ensemble as section 7,
    #     but the shards never assemble into a trajectory cube —
    #     each folds into count/mean/M2 moments, 1024-bin CDF
    #     sketches, and exact unfair/win/monopolisation counters, so
    #     the parent's peak memory is bounded by one shard no matter
    #     the trial count.  The figure queries come back exact: at
    #     the recorded epsilon the unfair series is bit-identical to
    #     full mode at the same shard plan.  This is what
    #     `repro-experiments fig3 --workers 4 --reduce stats` does.
    #     Asking a stats artifact for raw trajectories raises with a
    #     hint to rerun under reduce='full' — no silent approximation.
    import dataclasses

    full_big = ParallelRunner(workers=1).run(big, shards=32)
    stats_spec = dataclasses.replace(big, reduce="stats")
    tracemalloc.start()
    stats_big = ParallelRunner(workers=1).run(stats_spec, shards=32)
    _, stats_peak = tracemalloc.get_traced_memory()
    tracemalloc.stop()
    series_identical = np.array_equal(
        full_big.unfair_probabilities(epsilon=0.1),
        stats_big.unfair_probabilities(epsilon=0.1),
    )
    try:
        stats_big.fractions_of(0)
        refused = False
    except TypeError:
        refused = True
    print(f"reduce='stats' on the 100k-trial ensemble: peak "
          f"{stats_peak / 1e6:.0f} MB (vs {peaks['stream'] / 1e6:.0f} MB "
          f"streaming full mode), unfair series bit-identical = "
          f"{series_identical}, trajectory access refused = {refused}")


if __name__ == "__main__":
    main()
