"""Do the rich get richer?  The SL-PoS monopolisation study.

Reproduces the paper's central negative result (Theorems 3.4/4.9,
Figures 2c and 4): under NXT-style single-lottery PoS, a miner holding
any share below one half is driven to zero, while the richest miner
monopolises — no matter the initial split.

The script contrasts three views of the same phenomenon:

1. the analytic drift field and its stable/unstable rest points,
2. Monte Carlo trajectories showing absorption at {0, 1},
3. the treatment: FSL-PoS removes the drift entirely.

Run:  python examples/rich_get_richer.py
"""

import numpy as np

from repro import Allocation, simulate
from repro.core.metrics import monopolisation_probability
from repro.protocols import FairSingleLotteryPoS, SingleLotteryPoS
from repro.theory import (
    sl_pos_drift,
    sl_pos_win_probability_from_share,
    sl_pos_zero_report,
)


def drift_view() -> None:
    print("1) The drift field f(z) = Pr[A wins | share z] - z")
    for z in (0.1, 0.2, 0.3, 0.49, 0.5, 0.51, 0.7, 0.9):
        p = sl_pos_win_probability_from_share(z)
        f = sl_pos_drift(z)
        direction = "->" if f > 0 else ("<-" if f < 0 else "--")
        print(f"   z={z:4.2f}  win prob={p:6.4f}  drift={f:+7.4f}  {direction}")
    print("   rest points:", [(round(z, 3), s.value) for z, s in sl_pos_zero_report()])
    print()


def monte_carlo_view() -> None:
    print("2) Monte Carlo: terminal stake shares after 20,000 blocks (a=0.3)")
    result = simulate(
        SingleLotteryPoS(reward=0.01),
        Allocation.two_miners(0.3),
        horizon=20_000,
        trials=1000,
        seed=7,
    )
    terminal = result.terminal_stake_shares()[:, 0]
    print(f"   mean terminal share of A : {terminal.mean():.4f}")
    print(f"   trials with share < 0.05 : {np.mean(terminal < 0.05):.1%}")
    print(f"   trials with share > 0.95 : {np.mean(terminal > 0.95):.1%}")
    print(
        "   near-monopoly probability :",
        f"{monopolisation_probability(result.terminal_stake_shares(), margin=0.95):.1%}",
    )
    print()


def treatment_view() -> None:
    print("3) Treatment: FSL-PoS (exponential deadlines) restores E[lambda]=a")
    for protocol, label in [
        (SingleLotteryPoS(reward=0.01), "SL-PoS "),
        (FairSingleLotteryPoS(reward=0.01), "FSL-PoS"),
    ]:
        result = simulate(
            protocol, Allocation.two_miners(0.2), horizon=5000, trials=1000, seed=11
        )
        mean = result.final_fractions().mean()
        print(f"   {label}: E[lambda_A] after 5000 blocks = {mean:.4f} (target 0.2)")


def main() -> None:
    drift_view()
    monte_carlo_view()
    treatment_view()


if __name__ == "__main__":
    main()
