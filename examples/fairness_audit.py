"""Auditing a protocol portfolio: comparison table + attack exposure.

A due-diligence style walkthrough of :mod:`repro.analysis`: rank every
incentive model on one table (fairness, equitability, concentration),
then quantify how unfairness turns into 51%-attack exposure over time
— the Section 6.5 security argument, made numeric.

Run:  python examples/fairness_audit.py
"""

from repro import Allocation, simulate
from repro.analysis import compare_protocols, majority_risk_series
from repro.protocols import (
    CompoundPoS,
    FairSingleLotteryPoS,
    MultiLotteryPoS,
    ProofOfWork,
    RewardWithholding,
    SingleLotteryPoS,
)


def comparison_table() -> None:
    print("1) Ranked protocol comparison (A holds 20% vs one 80% whale)\n")
    comparison = compare_protocols(
        [
            ProofOfWork(reward=0.01),
            MultiLotteryPoS(reward=0.01),
            SingleLotteryPoS(reward=0.01),
            CompoundPoS(proposer_reward=0.01, inflation_reward=0.1, shards=32),
            FairSingleLotteryPoS(reward=0.01),
            RewardWithholding(FairSingleLotteryPoS(reward=0.01), 1000),
        ],
        Allocation.two_miners(0.2),
        horizon=3000,
        trials=1000,
        seed=17,
    )
    print(comparison.render())
    print()


def attack_exposure() -> None:
    print("2) 51%-attack exposure: four equal miners, who ends up with a")
    print("   majority? (probability of some miner holding > 50%)\n")
    allocation = Allocation.uniform(4)
    reward = 0.05
    checkpoints = [100, 500, 2000, 8000]
    header = "   " + f"{'n':>6s}" + "".join(f"{n:>10d}" for n in checkpoints)
    print(header.replace("n", " ", 1))
    for protocol in (
        MultiLotteryPoS(reward),
        SingleLotteryPoS(reward),
        FairSingleLotteryPoS(reward),
    ):
        result = simulate(
            protocol, allocation, max(checkpoints),
            trials=600, checkpoints=checkpoints, seed=23,
        )
        risks = majority_risk_series(result, protocol.reward_per_round)
        cells = "".join(f"{risk:10.3f}" for risk in risks)
        print(f"   {protocol.name:>6s}{cells}")
    print()
    print("   SL-PoS races to a majority holder (the 51%-attack")
    print("   precondition); proportional lotteries concentrate far slower.")


def main() -> None:
    comparison_table()
    attack_exposure()


if __name__ == "__main__":
    main()
