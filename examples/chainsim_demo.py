"""Driving the blockchain substrate directly.

Stands up a three-node ML-PoS network on the node-level simulator —
the repo's replacement for the paper's Qtum deployment — mines a few
hundred blocks with a live mempool, and inspects the ledger: balances,
proposer counts, block intervals, difficulty retargets, and how the
realised proposer frequencies track the stake-proportional law.

Run:  python examples/chainsim_demo.py
"""

from repro.chainsim import (
    Blockchain,
    DifficultyAdjuster,
    HASH_SPACE,
    HashOracle,
    MLPoSNode,
    Mempool,
    TickMiningNetwork,
    Transaction,
)


def main() -> None:
    oracle = HashOracle(seed=42)
    chain = Blockchain({"alice": 0.5, "bob": 0.3, "carol": 0.2})
    nodes = [MLPoSNode(name, oracle) for name in ("alice", "bob", "carol")]
    adjuster = DifficultyAdjuster(
        initial_difficulty=HASH_SPACE / 20.0, target_interval=20.0, window=25
    )
    mempool = Mempool()
    network = TickMiningNetwork(
        chain, nodes, adjuster, block_reward=0.005, mempool=mempool,
        max_txs_per_block=4,
    )

    # Seed some payments: alice pays carol in instalments, tipping the
    # proposers with fees.
    for i in range(12):
        mempool.add(
            Transaction("alice", "carol", amount=0.01, fee=0.0005, nonce=i)
        )

    network.run(blocks=400)

    print("chain height          :", chain.height)
    print("mean block interval   :", f"{chain.block_interval_mean():.1f} ticks "
          f"(target {adjuster.target_interval})")
    print("difficulty retargets  :", adjuster.retarget_count)
    print("pending transactions  :", len(mempool))
    print()
    counts = chain.proposer_counts()
    supply = chain.total_supply()
    print(f"{'miner':8s} {'blocks':>6s} {'share of blocks':>16s} "
          f"{'final balance':>14s} {'stake share':>12s}")
    for name in ("alice", "bob", "carol"):
        blocks = counts.get(name, 0)
        print(
            f"{name:8s} {blocks:6d} {blocks / chain.height:16.3f} "
            f"{chain.balance(name):14.4f} {chain.balance(name) / supply:12.3f}"
        )
    print()
    print("ML-PoS is expectationally fair: block shares should track the")
    print("initial 0.5 / 0.3 / 0.2 stake split (up to compounding noise).")


if __name__ == "__main__":
    main()
