"""Tests for repro.sim.persistence."""

import numpy as np
import pytest

from repro.core.miners import Allocation
from repro.protocols import MultiLotteryPoS, ProofOfWork
from repro.sim.engine import simulate
from repro.sim.persistence import load_result, save_result


@pytest.fixture
def result(two_miners):
    return simulate(MultiLotteryPoS(0.01), two_miners, 100, trials=20, seed=1)


class TestRoundTrip:
    def test_arrays_preserved(self, result, tmp_path):
        path = save_result(result, tmp_path / "run")
        loaded = load_result(path)
        np.testing.assert_array_equal(
            loaded.reward_fractions, result.reward_fractions
        )
        np.testing.assert_array_equal(loaded.checkpoints, result.checkpoints)
        np.testing.assert_array_equal(
            loaded.terminal_stakes, result.terminal_stakes
        )

    def test_metadata_preserved(self, result, tmp_path):
        loaded = load_result(save_result(result, tmp_path / "run"))
        assert loaded.protocol_name == result.protocol_name
        assert loaded.round_unit == result.round_unit
        assert loaded.allocation == result.allocation

    def test_suffix_appended(self, result, tmp_path):
        path = save_result(result, tmp_path / "run")
        assert path.suffix == ".npz"

    def test_load_without_suffix(self, result, tmp_path):
        save_result(result, tmp_path / "run")
        loaded = load_result(tmp_path / "run")
        assert loaded.trials == result.trials

    def test_without_terminal_stakes(self, two_miners, tmp_path):
        from repro.sim.engine import MonteCarloEngine

        engine = MonteCarloEngine(ProofOfWork(0.01), two_miners, trials=5, seed=1)
        result = engine.run(50, record_terminal_stakes=False)
        loaded = load_result(save_result(result, tmp_path / "bare"))
        assert loaded.terminal_stakes is None

    def test_analysis_survives_round_trip(self, result, tmp_path):
        loaded = load_result(save_result(result, tmp_path / "run"))
        original = result.robust_verdict()
        reloaded = loaded.robust_verdict()
        assert reloaded.unfair_probability == original.unfair_probability

    def test_creates_parent_directories(self, result, tmp_path):
        path = save_result(result, tmp_path / "deep" / "nested" / "run")
        assert path.exists()

    def test_missing_file_raises(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            load_result(tmp_path / "nothing.npz")
