"""Tests for repro.sim.rng."""

import numpy as np
import pytest

from repro.sim.rng import RandomSource, make_generator, spawn_generators


class TestMakeGenerator:
    def test_from_int(self):
        g1 = make_generator(42)
        g2 = make_generator(42)
        assert g1.random() == g2.random()

    def test_from_none(self):
        assert isinstance(make_generator(None), np.random.Generator)

    def test_passthrough_generator(self):
        g = np.random.default_rng(1)
        assert make_generator(g) is g

    def test_from_seed_sequence(self):
        seq = np.random.SeedSequence(7)
        g = make_generator(seq)
        assert isinstance(g, np.random.Generator)


class TestSpawnGenerators:
    def test_count(self):
        generators = spawn_generators(1, 5)
        assert len(generators) == 5

    def test_independent_streams(self):
        a, b = spawn_generators(1, 2)
        assert a.random() != b.random()

    def test_reproducible(self):
        first = [g.random() for g in spawn_generators(9, 3)]
        second = [g.random() for g in spawn_generators(9, 3)]
        assert first == second

    def test_from_generator(self):
        children = spawn_generators(np.random.default_rng(3), 2)
        assert len(children) == 2

    def test_rejects_zero_count(self):
        with pytest.raises(ValueError):
            spawn_generators(1, 0)


class TestRandomSource:
    def test_reproducible_generator(self):
        assert (
            RandomSource(5).generator().random()
            == RandomSource(5).generator().random()
        )

    def test_generator_memoised(self):
        source = RandomSource(5)
        assert source.generator() is source.generator()

    def test_spawn_independence(self):
        a, b = RandomSource(5).spawn(2)
        assert a.generator().random() != b.generator().random()

    def test_spawn_reproducible(self):
        values1 = [c.generator().random() for c in RandomSource(5).spawn(3)]
        values2 = [c.generator().random() for c in RandomSource(5).spawn(3)]
        assert values1 == values2

    def test_spawn_one(self):
        child = RandomSource(5).spawn_one()
        assert isinstance(child, RandomSource)

    def test_stream(self):
        stream = RandomSource(5).stream()
        children = [next(stream) for _ in range(3)]
        values = [c.generator().random() for c in children]
        assert len(set(values)) == 3

    def test_entropy_exposed(self):
        assert RandomSource(5).entropy == 5

    def test_wraps_another_source(self):
        source = RandomSource(5)
        rewrapped = RandomSource(source)
        assert rewrapped.entropy == 5

    def test_from_generator(self):
        source = RandomSource(np.random.default_rng(3))
        assert isinstance(source.generator(), np.random.Generator)
