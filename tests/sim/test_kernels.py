"""Tests for repro.sim.kernels — fused batched advance kernels.

The load-bearing guarantee is *bit-identity*: for every protocol, any
event/checkpoint schedule and any chunking, the batched kernels must
produce exactly the arrays (and leave the generator at exactly the
stream position) of the naive per-round loop.  The differential golden
tests below enforce it protocol by protocol; a hypothesis property
fuzzes the chunk size.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.miners import Allocation
from repro.protocols import (
    AlgorandPoS,
    BlockGranularCompoundPoS,
    CompoundPoS,
    EOSDelegatedPoS,
    FairSingleLotteryPoS,
    FilecoinStorage,
    MultiLotteryPoS,
    NeoPoS,
    ProofOfWork,
    RewardWithholding,
    SingleLotteryPoS,
    VixifyPoS,
    WavePoS,
)
from repro.sim.engine import MonteCarloEngine, simulate
from repro.sim.events import StakeTopUp, StakeWithdrawal
from repro.sim.kernels import (
    DEFAULT_CHUNK_ROUNDS,
    KERNEL_MODES,
    ScratchBuffers,
    batched_advance,
    ensure_kernel_mode,
    find_kernel,
)

TRIALS = 48
HORIZON = 60

#: Every incentive model in the library, keyed for test ids.  The
#: differential tests sweep all of them — the seven core models plus
#: the Section 6.4 extensions and the withholding wrapper over each
#: distinct inner sampler.
PROTOCOL_FACTORIES = {
    "pow": lambda: ProofOfWork(0.01),
    "ml-pos": lambda: MultiLotteryPoS(0.01),
    "ml-pos-exact": lambda: MultiLotteryPoS(0.02, exact_race=True),
    "sl-pos": lambda: SingleLotteryPoS(0.01),
    "fsl-pos": lambda: FairSingleLotteryPoS(0.01),
    "c-pos": lambda: CompoundPoS(0.01, 0.1, shards=4),
    "c-pos-block": lambda: BlockGranularCompoundPoS(0.01, 0.1, shards=4),
    "algorand": lambda: AlgorandPoS(0.05),
    "eos": lambda: EOSDelegatedPoS(0.01, 0.05),
    "neo": lambda: NeoPoS(0.01),
    "wave": lambda: WavePoS(0.01),
    "vixify": lambda: VixifyPoS(0.01),
    "filecoin": lambda: FilecoinStorage(0.01, storage_weight=0.5),
    "withhold-ml": lambda: RewardWithholding(
        MultiLotteryPoS(0.05), vesting_period=7
    ),
    "withhold-sl": lambda: RewardWithholding(
        SingleLotteryPoS(0.05), vesting_period=7
    ),
    "withhold-fsl": lambda: RewardWithholding(
        FairSingleLotteryPoS(0.05), vesting_period=7
    ),
    "withhold-pow": lambda: RewardWithholding(
        ProofOfWork(0.05), vesting_period=7
    ),
}

#: (checkpoints, events) schedules the differential sweep runs under.
SCENARIOS = {
    "default": dict(checkpoints=None, events=()),
    "custom-checkpoints": dict(checkpoints=(7, 13, 40, HORIZON), events=()),
    "events": dict(
        checkpoints=(10, 30, HORIZON),
        events=(
            StakeTopUp(round_index=9, miner=1, amount=0.3),
            StakeWithdrawal(round_index=31, miner=0, fraction=0.5),
        ),
    ),
}


def allocation_for(miners: int) -> Allocation:
    if miners == 2:
        return Allocation.two_miners(0.2)
    return Allocation.focal_vs_equal(0.2, miners)


def run_pair(factory, miners, scenario, seed=13):
    """The same simulation through the naive and the batched kernels."""
    kwargs = SCENARIOS[scenario]
    naive = simulate(
        factory(), allocation_for(miners), HORIZON,
        trials=TRIALS, seed=seed, kernel="naive", **kwargs,
    )
    batched = simulate(
        factory(), allocation_for(miners), HORIZON,
        trials=TRIALS, seed=seed, kernel="batched", **kwargs,
    )
    return naive, batched


class TestDifferentialGolden:
    """Batched output is bit-identical to naive for every protocol."""

    @pytest.mark.parametrize("scenario", sorted(SCENARIOS))
    @pytest.mark.parametrize("miners", [2, 5])
    @pytest.mark.parametrize("name", sorted(PROTOCOL_FACTORIES))
    def test_bit_identical(self, name, miners, scenario):
        if name == "ml-pos-exact" and miners != 2:
            pytest.skip("exact_race is only defined for two-miner games")
        factory = PROTOCOL_FACTORIES[name]
        naive, batched = run_pair(factory, miners, scenario)
        np.testing.assert_array_equal(
            naive.reward_fractions, batched.reward_fractions
        )
        np.testing.assert_array_equal(
            naive.terminal_stakes, batched.terminal_stakes
        )

    @pytest.mark.parametrize("scenario", sorted(SCENARIOS))
    @pytest.mark.parametrize(
        "name", ["ml-pos", "sl-pos", "fsl-pos", "filecoin", "withhold-ml"]
    )
    def test_bit_identical_at_ten_miners(self, name, scenario):
        """The 10-miner grids drive the transposed scatter-credit
        many-miner paths (miners > 2) the two-miner sweep never hits."""
        naive, batched = run_pair(PROTOCOL_FACTORIES[name], 10, scenario)
        np.testing.assert_array_equal(
            naive.reward_fractions, batched.reward_fractions
        )
        np.testing.assert_array_equal(
            naive.terminal_stakes, batched.terminal_stakes
        )

    @pytest.mark.parametrize("name", ["ml-pos", "sl-pos", "c-pos-block"])
    def test_generator_position_identical(self, name):
        # Both paths must consume the stream identically, so a draw
        # *after* the advance agrees too.
        factory = PROTOCOL_FACTORIES[name]
        allocation = allocation_for(2)
        outcomes = []
        for kernel in KERNEL_MODES:
            protocol = factory()
            state = protocol.make_state(allocation, TRIALS)
            rng = np.random.default_rng(99)
            if kernel == "batched":
                batched_advance(protocol, state, HORIZON, rng)
            else:
                protocol.advance_many(state, HORIZON, rng)
            outcomes.append((state.rewards.copy(), rng.random(4)))
        np.testing.assert_array_equal(outcomes[0][0], outcomes[1][0])
        np.testing.assert_array_equal(outcomes[0][1], outcomes[1][1])

    def test_withholding_pending_identical(self):
        # The wrapper's vesting buffer is part of the dynamics; it must
        # match exactly (vesting_period 7 leaves a mid-period residue).
        allocation = allocation_for(2)
        states = []
        for kernel in KERNEL_MODES:
            protocol = RewardWithholding(MultiLotteryPoS(0.05), vesting_period=7)
            state = protocol.make_state(allocation, TRIALS)
            rng = np.random.default_rng(3)
            if kernel == "batched":
                batched_advance(protocol, state, 40, rng)
            else:
                protocol.advance_many(state, 40, rng)
            states.append(state)
        np.testing.assert_array_equal(
            states[0].extra["pending"], states[1].extra["pending"]
        )
        np.testing.assert_array_equal(states[0].stakes, states[1].stakes)

    def test_segmented_advance_matches_single_advance(self):
        # Splitting the horizon into many fused segments (as the engine
        # does at checkpoints) must not change the bits either.
        allocation = allocation_for(2)
        protocol = MultiLotteryPoS(0.01)
        whole = protocol.make_state(allocation, TRIALS)
        rng = np.random.default_rng(5)
        batched_advance(protocol, whole, HORIZON, rng)
        pieces = protocol.make_state(allocation, TRIALS)
        rng = np.random.default_rng(5)
        for gap in (13, 7, 20, HORIZON - 40):
            batched_advance(protocol, pieces, gap, rng)
        np.testing.assert_array_equal(whole.rewards, pieces.rewards)
        np.testing.assert_array_equal(whole.stakes, pieces.stakes)


class TestChunking:
    @given(chunk=st.integers(min_value=1, max_value=97))
    @settings(max_examples=25, deadline=None)
    def test_chunk_size_never_changes_results(self, chunk):
        # Property: the pre-drawn block length is an implementation
        # detail — any chunking consumes the stream identically.
        allocation = allocation_for(3)
        protocol = MultiLotteryPoS(0.01)
        reference = protocol.make_state(allocation, 16)
        rng = np.random.default_rng(11)
        protocol.advance_many(reference, 45, rng)
        chunked = protocol.make_state(allocation, 16)
        rng = np.random.default_rng(11)
        batched_advance(protocol, chunked, 45, rng, chunk=chunk)
        np.testing.assert_array_equal(reference.rewards, chunked.rewards)
        np.testing.assert_array_equal(reference.stakes, chunked.stakes)

    @given(chunk=st.integers(min_value=1, max_value=50))
    @settings(max_examples=15, deadline=None)
    def test_chunk_property_deadline_protocol(self, chunk):
        allocation = allocation_for(2)
        protocol = SingleLotteryPoS(0.01)
        reference = protocol.make_state(allocation, 12)
        rng = np.random.default_rng(17)
        protocol.advance_many(reference, 30, rng)
        chunked = protocol.make_state(allocation, 12)
        rng = np.random.default_rng(17)
        batched_advance(protocol, chunked, 30, rng, chunk=chunk)
        np.testing.assert_array_equal(reference.rewards, chunked.rewards)

    def test_rejects_non_positive_chunk(self):
        protocol = MultiLotteryPoS(0.01)
        state = protocol.make_state(allocation_for(2), 8)
        with pytest.raises(ValueError):
            batched_advance(protocol, state, 5, np.random.default_rng(0), chunk=0)

    def test_memory_budget_caps_block(self):
        # At large trial counts the pre-drawn block must stay within
        # the byte budget rather than jump to DEFAULT_CHUNK_ROUNDS.
        from repro.sim.kernels import (
            DEFAULT_CHUNK_BUDGET_BYTES,
            _chunk_size,
        )

        rounds = 10 * DEFAULT_CHUNK_ROUNDS
        assert _chunk_size(rounds, 100, None) == DEFAULT_CHUNK_ROUNDS
        capped = _chunk_size(rounds, 100_000, None)
        assert 1 <= capped < DEFAULT_CHUNK_ROUNDS
        assert capped * 100_000 * 8 <= DEFAULT_CHUNK_BUDGET_BYTES
        # Explicit chunks are clamped to the round count.
        assert _chunk_size(5, 100, 64) == 5


class TestScratchBuffers:
    def test_same_request_reuses_buffer(self):
        scratch = ScratchBuffers()
        first = scratch.get("buf", (4, 3))
        second = scratch.get("buf", (4, 3))
        assert first is second

    def test_shape_change_reallocates(self):
        scratch = ScratchBuffers()
        first = scratch.get("buf", (4, 3))
        second = scratch.get("buf", (5, 3))
        assert first is not second
        assert second.shape == (5, 3)

    def test_dtype_change_reallocates(self):
        scratch = ScratchBuffers()
        floats = scratch.get("buf", (4,))
        bools = scratch.get("buf", (4,), np.bool_)
        assert bools.dtype == np.bool_
        assert floats is not bools

    def test_nbytes_and_len(self):
        scratch = ScratchBuffers()
        scratch.get("a", (10,))
        scratch.get("b", (5,), np.bool_)
        assert len(scratch) == 2
        assert scratch.nbytes == 10 * 8 + 5

    def test_attached_to_state_and_reused_across_advances(self):
        protocol = MultiLotteryPoS(0.01)
        state = protocol.make_state(allocation_for(2), 8)
        assert state.scratch is None
        rng = np.random.default_rng(1)
        batched_advance(protocol, state, 10, rng)
        scratch = state.scratch
        assert isinstance(scratch, ScratchBuffers)
        before = len(scratch)
        batched_advance(protocol, state, 10, rng)
        assert state.scratch is scratch
        assert len(scratch) == before  # steady state allocates nothing new


class TestRegistry:
    def test_all_library_protocols_have_kernels(self):
        for name, factory in PROTOCOL_FACTORIES.items():
            assert find_kernel(factory()) is not None, name

    def test_exact_type_lookup_ignores_subclasses(self):
        # A subclass may override step(); the fused parent recurrence
        # would silently diverge, so lookup must miss and fall back.
        class CustomML(MultiLotteryPoS):
            pass

        assert find_kernel(CustomML(0.01)) is None

    def test_unregistered_protocol_falls_back_to_naive(self):
        class CustomML(MultiLotteryPoS):
            pass

        reference = CustomML(0.01).make_state(allocation_for(2), 8)
        rng = np.random.default_rng(2)
        CustomML(0.01).advance_many(reference, 20, rng)

        state = CustomML(0.01).make_state(allocation_for(2), 8)
        rng = np.random.default_rng(2)
        batched_advance(CustomML(0.01), state, 20, rng)
        np.testing.assert_array_equal(reference.rewards, state.rewards)

    def test_ensure_kernel_mode(self):
        assert ensure_kernel_mode("batched") == "batched"
        assert ensure_kernel_mode("naive") == "naive"
        with pytest.raises(ValueError, match="kernel"):
            ensure_kernel_mode("fused")


class TestEngineKnob:
    def test_engine_rejects_unknown_kernel(self, two_miners):
        with pytest.raises(ValueError, match="kernel"):
            MonteCarloEngine(ProofOfWork(0.01), two_miners, kernel="fast")

    def test_engine_repr_shows_kernel(self, two_miners):
        engine = MonteCarloEngine(
            ProofOfWork(0.01), two_miners, trials=5, kernel="naive"
        )
        assert "naive" in repr(engine)

    def test_simulate_kernel_knob_round_trips(self, two_miners):
        naive = simulate(
            MultiLotteryPoS(0.01), two_miners, 50,
            trials=20, seed=3, kernel="naive",
        )
        batched = simulate(
            MultiLotteryPoS(0.01), two_miners, 50,
            trials=20, seed=3, kernel="batched",
        )
        np.testing.assert_array_equal(
            naive.reward_fractions, batched.reward_fractions
        )
