"""Tests for repro.sim.checkpoints."""

import pytest

from repro.sim.checkpoints import (
    geometric_checkpoints,
    linear_checkpoints,
    validate_checkpoints,
)


class TestLinear:
    def test_basic(self):
        checkpoints = linear_checkpoints(1000, count=10)
        assert checkpoints == [100, 200, 300, 400, 500, 600, 700, 800, 900, 1000]

    def test_ends_at_horizon(self):
        assert linear_checkpoints(997, count=7)[-1] == 997

    def test_count_capped_by_horizon(self):
        checkpoints = linear_checkpoints(5, count=50)
        assert checkpoints == [1, 2, 3, 4, 5]

    def test_strictly_increasing(self):
        checkpoints = linear_checkpoints(123, count=40)
        assert all(b > a for a, b in zip(checkpoints, checkpoints[1:]))

    def test_all_positive(self):
        assert min(linear_checkpoints(10, count=10)) >= 1


class TestGeometric:
    def test_endpoints(self):
        checkpoints = geometric_checkpoints(10_000, count=20, first=10)
        assert checkpoints[0] == 10
        assert checkpoints[-1] == 10_000

    def test_strictly_increasing(self):
        checkpoints = geometric_checkpoints(5000, count=30)
        assert all(b > a for a, b in zip(checkpoints, checkpoints[1:]))

    def test_log_spacing_denser_early(self):
        checkpoints = geometric_checkpoints(10_000, count=20, first=1)
        early_gap = checkpoints[1] - checkpoints[0]
        late_gap = checkpoints[-1] - checkpoints[-2]
        assert late_gap > 10 * early_gap

    def test_first_beyond_horizon_rejected(self):
        with pytest.raises(ValueError):
            geometric_checkpoints(10, first=20)

    def test_small_horizon_dedupes(self):
        checkpoints = geometric_checkpoints(5, count=50)
        assert checkpoints == sorted(set(checkpoints))


class TestValidate:
    def test_appends_horizon(self):
        assert validate_checkpoints([10, 20], 30) == [10, 20, 30]

    def test_keeps_exact(self):
        assert validate_checkpoints([10, 30], 30) == [10, 30]

    def test_rejects_beyond_horizon(self):
        with pytest.raises(ValueError):
            validate_checkpoints([10, 40], 30)

    def test_rejects_decreasing(self):
        with pytest.raises(ValueError):
            validate_checkpoints([20, 10], 30)

    def test_rejects_non_positive(self):
        with pytest.raises(ValueError):
            validate_checkpoints([0, 10], 30)

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            validate_checkpoints([], 30)
