"""Tests for repro.sim.engine."""

import numpy as np
import pytest

from repro.core.miners import Allocation
from repro.protocols.ml_pos import MultiLotteryPoS
from repro.protocols.pow import ProofOfWork
from repro.sim.engine import MonteCarloEngine, simulate
from repro.sim.events import MinerOutage, MinerRecovery, StakeTopUp


class TestConstruction:
    def test_rejects_non_protocol(self, two_miners):
        with pytest.raises(TypeError):
            MonteCarloEngine("pow", two_miners)

    def test_rejects_non_allocation(self):
        with pytest.raises(TypeError):
            MonteCarloEngine(ProofOfWork(0.01), [0.2, 0.8])

    def test_repr(self, two_miners):
        engine = MonteCarloEngine(ProofOfWork(0.01), two_miners, trials=10)
        assert "PoW" in repr(engine)


class TestRun:
    def test_result_shape(self, two_miners):
        engine = MonteCarloEngine(ProofOfWork(0.01), two_miners, trials=25, seed=1)
        result = engine.run(horizon=100, checkpoints=[10, 50, 100])
        assert result.reward_fractions.shape == (25, 3, 2)
        assert result.checkpoints.tolist() == [10, 50, 100]

    def test_default_checkpoints_cover_horizon(self, two_miners):
        result = simulate(
            ProofOfWork(0.01), two_miners, 200, trials=10, seed=1
        )
        assert result.horizon == 200

    def test_reproducible_with_seed(self, two_miners):
        r1 = simulate(MultiLotteryPoS(0.01), two_miners, 50, trials=20, seed=3)
        r2 = simulate(MultiLotteryPoS(0.01), two_miners, 50, trials=20, seed=3)
        np.testing.assert_array_equal(r1.reward_fractions, r2.reward_fractions)

    def test_different_seeds_differ(self, two_miners):
        r1 = simulate(MultiLotteryPoS(0.01), two_miners, 50, trials=20, seed=3)
        r2 = simulate(MultiLotteryPoS(0.01), two_miners, 50, trials=20, seed=4)
        assert not np.array_equal(r1.reward_fractions, r2.reward_fractions)

    def test_fractions_sum_to_one(self, two_miners):
        result = simulate(
            MultiLotteryPoS(0.01), two_miners, 100, trials=30, seed=2
        )
        totals = result.reward_fractions.sum(axis=2)
        np.testing.assert_allclose(totals, 1.0)

    def test_fractions_cumulative_consistency(self, two_miners):
        # The fraction at a later checkpoint is a weighted continuation
        # of the earlier one; with all rewards equal the block counts
        # are non-decreasing.
        result = simulate(
            MultiLotteryPoS(0.01), two_miners, 100,
            trials=10, checkpoints=[50, 100], seed=2,
        )
        blocks_at_50 = result.reward_fractions[:, 0, 0] * 50
        blocks_at_100 = result.reward_fractions[:, 1, 0] * 100
        assert np.all(blocks_at_100 >= blocks_at_50 - 1e-9)

    def test_terminal_stakes_recorded(self, two_miners):
        result = simulate(
            MultiLotteryPoS(0.01), two_miners, 50, trials=10, seed=1
        )
        assert result.terminal_stakes is not None
        np.testing.assert_allclose(
            result.terminal_stakes.sum(axis=1), 1.0 + 50 * 0.01
        )

    def test_no_terminal_stakes_option(self, two_miners):
        engine = MonteCarloEngine(ProofOfWork(0.01), two_miners, trials=5, seed=1)
        result = engine.run(50, record_terminal_stakes=False)
        assert result.terminal_stakes is None

    def test_simulate_forwards_record_terminal_stakes(self, two_miners):
        result = simulate(
            ProofOfWork(0.01), two_miners, 50,
            trials=5, seed=1, record_terminal_stakes=False,
        )
        assert result.terminal_stakes is None

    def test_round_unit_propagates(self, two_miners):
        from repro.protocols.c_pos import CompoundPoS

        result = simulate(
            CompoundPoS(0.01, 0.1, 4), two_miners, 20, trials=5, seed=1
        )
        assert result.round_unit == "epoch"


class TestEvents:
    def test_top_up_shifts_fairness(self, two_miners):
        # Doubling A's stake at round 0 should roughly double A's wins.
        events = [StakeTopUp(round_index=0, miner=0, amount=0.25)]
        result = simulate(
            MultiLotteryPoS(0.01), two_miners, 200,
            trials=800, events=events, seed=5,
        )
        mean = result.final_fractions().mean()
        assert mean == pytest.approx(0.45 / 1.25, abs=0.02)

    def test_outage_and_recovery(self, two_miners):
        events = [
            MinerOutage(round_index=50, miner=0),
            MinerRecovery(round_index=100, miner=0),
        ]
        result = simulate(
            MultiLotteryPoS(0.01), two_miners, 200,
            trials=400, events=events, checkpoints=[50, 100, 200], seed=6,
        )
        # A wins nothing between rounds 50 and 100.
        blocks_50 = result.reward_fractions[:, 0, 0] * 50
        blocks_100 = result.reward_fractions[:, 1, 0] * 100
        np.testing.assert_allclose(blocks_50, blocks_100, atol=1e-9)

    def test_event_beyond_horizon_rejected(self, two_miners):
        engine = MonteCarloEngine(ProofOfWork(0.01), two_miners, trials=5, seed=1)
        with pytest.raises(ValueError, match="exceeds horizon"):
            engine.run(50, events=[StakeTopUp(round_index=60, miner=0, amount=1.0)])

    def test_event_at_unchecked_round(self, two_miners):
        # Events do not have to coincide with checkpoints.
        events = [StakeTopUp(round_index=33, miner=0, amount=0.1)]
        result = simulate(
            MultiLotteryPoS(0.01), two_miners, 100,
            trials=5, events=events, checkpoints=[100], seed=7,
        )
        assert result.terminal_stakes.sum() > 5 * (1.0 + 1.0 * 0.01)


class TestStatisticalAgreement:
    def test_pow_matches_binomial_exactly(self, two_miners):
        # The PoW unfair probability at each checkpoint should match the
        # exact binomial mass from theory.polya.
        from repro.theory.polya import pow_fair_probability

        result = simulate(
            ProofOfWork(0.01), two_miners, 1000,
            trials=4000, checkpoints=[100, 500, 1000], seed=11,
        )
        unfair = result.unfair_probabilities()
        for i, n in enumerate([100, 500, 1000]):
            expected = 1.0 - pow_fair_probability(0.2, n, 0.1)
            assert unfair[i] == pytest.approx(expected, abs=0.03)
