"""Tests for repro.sim.events."""

import numpy as np
import pytest

from repro.core.miners import Allocation
from repro.protocols.ml_pos import MultiLotteryPoS
from repro.sim.events import (
    MinerOutage,
    MinerRecovery,
    StakeTopUp,
    StakeWithdrawal,
)


@pytest.fixture
def state(two_miners):
    return MultiLotteryPoS(0.01).make_state(two_miners, trials=5)


class TestStakeTopUp:
    def test_adds_amount(self, state):
        StakeTopUp(round_index=0, miner=0, amount=0.5).apply(state)
        np.testing.assert_allclose(state.stakes[:, 0], 0.7)
        np.testing.assert_allclose(state.stakes[:, 1], 0.8)

    def test_rejects_zero_amount(self):
        with pytest.raises(ValueError):
            StakeTopUp(round_index=0, miner=0, amount=0.0)

    def test_rejects_unknown_miner(self, state):
        with pytest.raises(IndexError):
            StakeTopUp(round_index=0, miner=7, amount=0.1).apply(state)


class TestStakeWithdrawal:
    def test_proportional_withdrawal(self, state):
        StakeWithdrawal(round_index=0, miner=1, fraction=0.25).apply(state)
        np.testing.assert_allclose(state.stakes[:, 1], 0.6)

    @pytest.mark.parametrize("fraction", [0.0, 1.0, -0.5])
    def test_rejects_degenerate_fraction(self, fraction):
        with pytest.raises(ValueError):
            StakeWithdrawal(round_index=0, miner=0, fraction=fraction)


class TestOutageAndRecovery:
    def test_outage_parks_stake(self, state):
        MinerOutage(round_index=0, miner=0).apply(state)
        assert np.all(state.stakes[:, 0] <= 1e-12)
        assert "outage_0" in state.extra

    def test_recovery_restores(self, state):
        MinerOutage(round_index=0, miner=0).apply(state)
        MinerRecovery(round_index=5, miner=0).apply(state)
        np.testing.assert_allclose(state.stakes[:, 0], 0.2)
        assert "outage_0" not in state.extra

    def test_double_outage_rejected(self, state):
        MinerOutage(round_index=0, miner=0).apply(state)
        with pytest.raises(RuntimeError):
            MinerOutage(round_index=1, miner=0).apply(state)

    def test_recovery_without_outage_rejected(self, state):
        with pytest.raises(RuntimeError):
            MinerRecovery(round_index=0, miner=0).apply(state)

    def test_offline_miner_stops_winning(self, two_miners, rng):
        protocol = MultiLotteryPoS(0.01)
        state = protocol.make_state(two_miners, trials=200)
        MinerOutage(round_index=0, miner=0).apply(state)
        protocol.advance_many(state, 50, rng)
        # With ~zero stake, miner 0 essentially never proposes.
        assert state.rewards[:, 0].sum() == pytest.approx(0.0, abs=1e-6)


class TestValidation:
    def test_negative_round_rejected(self):
        with pytest.raises(ValueError):
            StakeTopUp(round_index=-1, miner=0, amount=0.1)

    def test_negative_miner_rejected(self):
        with pytest.raises(ValueError):
            MinerOutage(round_index=0, miner=-1)
