"""Property-based tests of the chain substrate's ledger invariants.

The key conservation law: currency is only created by block subsidies
and protocol inflation; arbitrary valid transaction sequences never
change the total supply.  Hypothesis generates random payment streams
and mining schedules and checks the ledger holds.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.chainsim.block import Block
from repro.chainsim.chain import Blockchain, InvalidBlockError
from repro.chainsim.hash_oracle import HASH_SPACE, HashOracle
from repro.chainsim.mempool import Mempool
from repro.chainsim.transactions import Transaction
from repro.chainsim.vesting import VestingBlockchain

ADDRESSES = ["alice", "bob", "carol"]


def make_block(chain, proposer, reward, txs=()):
    return Block(
        height=chain.height + 1,
        parent_hash=chain.tip.block_hash,
        block_hash=chain.tip.block_hash + 1,
        proposer=proposer,
        timestamp=chain.tip.timestamp + 1,
        reward=reward,
        transactions=tuple(txs),
    )


@st.composite
def payment_plans(draw):
    """A random sequence of (sender, recipient, amount-fraction, fee)."""
    length = draw(st.integers(min_value=0, max_value=8))
    plan = []
    for _ in range(length):
        sender = draw(st.sampled_from(ADDRESSES))
        recipient = draw(
            st.sampled_from([a for a in ADDRESSES if a != sender])
        )
        fraction = draw(st.floats(min_value=0.01, max_value=0.5))
        fee_fraction = draw(st.floats(min_value=0.0, max_value=0.1))
        plan.append((sender, recipient, fraction, fee_fraction))
    return plan


class TestSupplyConservation:
    @given(
        plan=payment_plans(),
        reward=st.floats(min_value=0.0, max_value=2.0),
        proposers=st.lists(
            st.sampled_from(ADDRESSES), min_size=1, max_size=6
        ),
    )
    @settings(max_examples=80, deadline=None)
    def test_supply_grows_only_by_subsidies(self, plan, reward, proposers):
        chain = Blockchain({a: 10.0 for a in ADDRESSES})
        initial_supply = chain.total_supply()
        payments = iter(plan)
        blocks_applied = 0
        for proposer in proposers:
            txs = []
            item = next(payments, None)
            if item is not None:
                sender, recipient, fraction, fee_fraction = item
                balance = chain.balance(sender)
                amount = balance * fraction
                fee = balance * fee_fraction
                if amount > 0 and balance >= amount + fee:
                    txs.append(
                        Transaction(
                            sender, recipient, amount=amount, fee=fee,
                            nonce=chain.next_nonce(sender),
                        )
                    )
            chain.append(make_block(chain, proposer, reward, txs))
            blocks_applied += 1
        expected = initial_supply + reward * blocks_applied
        assert chain.total_supply() == pytest.approx(expected, rel=1e-9)

    @given(
        plan=payment_plans(),
        proposers=st.lists(
            st.sampled_from(ADDRESSES), min_size=1, max_size=6
        ),
        period=st.integers(min_value=1, max_value=4),
    )
    @settings(max_examples=60, deadline=None)
    def test_vesting_chain_conserves_supply(self, plan, proposers, period):
        chain = VestingBlockchain({a: 10.0 for a in ADDRESSES}, period)
        reward = 0.5
        for index, proposer in enumerate(proposers):
            chain.append(make_block(chain, proposer, reward))
        expected = 30.0 + reward * len(proposers)
        assert chain.total_supply() == pytest.approx(expected, rel=1e-9)
        # Vested + pending partition the issued rewards.
        vested = sum(chain.balance(a) for a in ADDRESSES)
        pending = sum(chain.pending(a) for a in ADDRESSES)
        assert vested + pending == pytest.approx(expected, rel=1e-9)

    @given(
        fraction=st.floats(min_value=0.01, max_value=0.99),
        fee_fraction=st.floats(min_value=0.0, max_value=0.5),
    )
    @settings(max_examples=60)
    def test_overdraft_always_rejected(self, fraction, fee_fraction):
        chain = Blockchain({"alice": 1.0, "bob": 1.0})
        amount = 1.0 * fraction
        fee = 1.0 * fee_fraction
        tx = Transaction("alice", "bob", amount=amount, fee=fee, nonce=0)
        block = make_block(chain, "bob", 0.1, [tx])
        if amount + fee > 1.0:
            with pytest.raises(InvalidBlockError):
                chain.append(block)
            assert chain.balance("alice") == 1.0
        else:
            chain.append(block)
            assert chain.balance("alice") == pytest.approx(
                1.0 - amount - fee
            )


class TestMempoolProperties:
    @given(
        fees=st.lists(
            st.floats(min_value=0.0, max_value=10.0), min_size=1, max_size=30
        ),
        capacity=st.integers(min_value=1, max_value=10),
    )
    @settings(max_examples=80)
    def test_capacity_never_exceeded(self, fees, capacity):
        pool = Mempool(capacity=capacity)
        for nonce, fee in enumerate(fees):
            pool.add(Transaction("a", "b", amount=1.0, fee=fee, nonce=nonce))
        assert len(pool) <= capacity

    @given(
        fees=st.lists(
            st.floats(min_value=0.0, max_value=10.0), min_size=2, max_size=30
        )
    )
    @settings(max_examples=80)
    def test_take_returns_descending_fees(self, fees):
        pool = Mempool()
        for nonce, fee in enumerate(fees):
            pool.add(Transaction("a", "b", amount=1.0, fee=fee, nonce=nonce))
        taken = pool.take(len(fees))
        observed = [tx.fee for tx in taken]
        assert observed == sorted(observed, reverse=True)


class TestOracleProperties:
    @given(fields=st.lists(st.integers(), min_size=1, max_size=5))
    @settings(max_examples=80)
    def test_digest_in_range(self, fields):
        oracle = HashOracle(1)
        assert 0 <= oracle.digest(*fields) < HASH_SPACE

    @given(seed=st.integers(min_value=0, max_value=2**32), x=st.integers())
    @settings(max_examples=80)
    def test_deterministic(self, seed, x):
        assert HashOracle(seed).digest(x) == HashOracle(seed).digest(x)
