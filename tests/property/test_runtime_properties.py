"""Property-based tests for the runtime subsystem.

Three paper-level guarantees:

* **Worker transparency** — for a fixed shard plan, the merged
  ensemble is bit-identical whether shards run serially or across
  processes; parallelism must never change the science.
* **Merge safety** — :meth:`EnsembleResult.merge` refuses to combine
  ensembles of different games (protocol, allocation, checkpoints,
  round unit, stake recording).
* **Cache fidelity** — a cache hit returns byte-equal arrays, so a
  warm rerun is indistinguishable from a cold one.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.miners import Allocation
from repro.core.results import EnsembleResult
from repro.protocols import MultiLotteryPoS, ProofOfWork, SingleLotteryPoS
from repro.runtime import ParallelRunner, SimulationSpec

PROTOCOLS = {
    "pow": lambda: ProofOfWork(0.01),
    "ml-pos": lambda: MultiLotteryPoS(0.01),
    "sl-pos": lambda: SingleLotteryPoS(0.01),
}

LIGHT_SETTINGS = settings(
    max_examples=8,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


@LIGHT_SETTINGS
@given(
    protocol_key=st.sampled_from(sorted(PROTOCOLS)),
    trials=st.integers(min_value=8, max_value=40),
    seed=st.integers(min_value=0, max_value=2**31 - 1),
    shards=st.integers(min_value=1, max_value=4),
)
def test_workers_one_and_four_merge_bit_identically(
    protocol_key, trials, seed, shards
):
    spec = SimulationSpec(
        protocol=PROTOCOLS[protocol_key](),
        allocation=Allocation.two_miners(0.2),
        trials=trials,
        horizon=60,
        seed=seed,
    )
    shards = min(shards, trials)
    serial = ParallelRunner(workers=1).run(spec, shards=shards)
    parallel = ParallelRunner(workers=4).run(spec, shards=shards)
    assert (
        serial.reward_fractions.tobytes() == parallel.reward_fractions.tobytes()
    )
    assert serial.terminal_stakes.tobytes() == parallel.terminal_stakes.tobytes()
    np.testing.assert_array_equal(serial.checkpoints, parallel.checkpoints)


@LIGHT_SETTINGS
@given(
    seed=st.integers(min_value=0, max_value=2**31 - 1),
    shards=st.integers(min_value=2, max_value=5),
)
def test_merge_of_shards_preserves_trial_count_and_range(seed, shards):
    spec = SimulationSpec(
        protocol=MultiLotteryPoS(0.01),
        allocation=Allocation.two_miners(0.2),
        trials=30,
        horizon=50,
        seed=seed,
    )
    merged = ParallelRunner(workers=1).run(spec, shards=shards)
    assert merged.trials == 30
    assert np.all(merged.reward_fractions >= 0.0)
    assert np.all(merged.reward_fractions <= 1.0)
    # Reward fractions at the final checkpoint sum to one per trial.
    np.testing.assert_allclose(
        merged.reward_fractions[:, -1, :].sum(axis=1), 1.0, atol=1e-9
    )


def _result(protocol_name="ML-PoS", share=0.2, checkpoints=(10, 20), trials=5,
            round_unit="block", with_terminal=True):
    allocation = Allocation.two_miners(share)
    fractions = np.full((trials, len(checkpoints), 2), 0.5)
    terminal = np.full((trials, 2), 0.5) if with_terminal else None
    return EnsembleResult(
        protocol_name=protocol_name,
        allocation=allocation,
        checkpoints=checkpoints,
        reward_fractions=fractions,
        terminal_stakes=terminal,
        round_unit=round_unit,
    )


class TestMergeRejectsMismatches:
    def test_empty(self):
        with pytest.raises(ValueError, match="empty"):
            EnsembleResult.merge([])

    def test_protocol_mismatch(self):
        with pytest.raises(ValueError, match="protocols"):
            EnsembleResult.merge([_result("PoW"), _result("ML-PoS")])

    def test_allocation_mismatch(self):
        with pytest.raises(ValueError, match="allocations"):
            EnsembleResult.merge([_result(share=0.2), _result(share=0.3)])

    def test_checkpoint_mismatch(self):
        with pytest.raises(ValueError, match="checkpoints"):
            EnsembleResult.merge(
                [_result(checkpoints=(10, 20)), _result(checkpoints=(10, 30))]
            )

    def test_round_unit_mismatch(self):
        with pytest.raises(ValueError, match="round units"):
            EnsembleResult.merge(
                [_result(round_unit="block"), _result(round_unit="epoch")]
            )

    def test_terminal_stake_disagreement(self):
        with pytest.raises(ValueError, match="terminal stake"):
            EnsembleResult.merge(
                [_result(with_terminal=True), _result(with_terminal=False)]
            )

    def test_merge_concatenates_in_order(self):
        a, b = _result(trials=3), _result(trials=4)
        a.reward_fractions[:] = 0.1
        b.reward_fractions[:] = 0.9
        merged = EnsembleResult.merge([a, b])
        assert merged.trials == 7
        assert np.all(merged.reward_fractions[:3] == 0.1)
        assert np.all(merged.reward_fractions[3:] == 0.9)


@LIGHT_SETTINGS
@given(seed=st.integers(min_value=0, max_value=2**31 - 1))
def test_cache_hit_round_trips_byte_equal(tmp_path_factory, seed):
    tmp_path = tmp_path_factory.mktemp("runtime-cache")
    spec = SimulationSpec(
        protocol=MultiLotteryPoS(0.01),
        allocation=Allocation.two_miners(0.2),
        trials=16,
        horizon=40,
        seed=seed,
    )
    runner = ParallelRunner(workers=1, cache=tmp_path)
    cold = runner.run(spec, shards=2)
    warm = runner.run(spec, shards=2)
    assert runner.cache.hits == 1
    assert cold.reward_fractions.tobytes() == warm.reward_fractions.tobytes()
    assert cold.terminal_stakes.tobytes() == warm.terminal_stakes.tobytes()
    assert cold.checkpoints.tobytes() == warm.checkpoints.tobytes()
