"""Property-based tests (hypothesis) on core invariants.

Each property encodes an invariant the paper's analysis relies on:
win laws are probability distributions, stakes are conserved,
reward fractions stay in [0, 1], bounds are monotone, the SL-PoS
drift has the Theorem 4.9 sign structure, and fairness checkers are
consistent under epsilon/delta monotonicity.
"""

import math

import numpy as np
import pytest
from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.core.fairness import FairArea, RobustFairness
from repro.core.metrics import gini_coefficient, herfindahl_index
from repro.core.miners import Allocation
from repro.protocols import (
    CompoundPoS,
    FairSingleLotteryPoS,
    MultiLotteryPoS,
    ProofOfWork,
    SingleLotteryPoS,
)
from repro.theory.bounds import (
    CPoSFairnessBound,
    MLPoSFairnessBound,
    fairness_budget,
)
from repro.theory.polya import ml_pos_block_count_pmf
from repro.theory.stochastic_approximation import sl_pos_drift
from repro.theory.win_probability import sl_pos_win_probabilities

# -- strategies ---------------------------------------------------------------

shares = st.floats(min_value=0.01, max_value=0.99)
rewards = st.floats(min_value=1e-4, max_value=0.5)
small_ints = st.integers(min_value=1, max_value=200)


def stake_vectors(min_size=2, max_size=8):
    return st.lists(
        st.floats(min_value=0.01, max_value=10.0),
        min_size=min_size,
        max_size=max_size,
    )


# -- win laws -----------------------------------------------------------------


class TestWinLawProperties:
    @given(stakes=stake_vectors())
    @settings(max_examples=60, deadline=None)
    def test_sl_pos_law_is_distribution(self, stakes):
        probabilities = sl_pos_win_probabilities(stakes)
        assert np.all(probabilities >= -1e-12)
        assert probabilities.sum() == pytest.approx(1.0, abs=1e-9)

    @given(stakes=stake_vectors())
    @settings(max_examples=60, deadline=None)
    def test_sl_pos_stochastic_dominance(self, stakes):
        # A miner with more stake never has a smaller win probability.
        probabilities = sl_pos_win_probabilities(stakes)
        order = np.argsort(stakes)
        sorted_probs = probabilities[order]
        assert np.all(np.diff(sorted_probs) >= -1e-9)

    @given(stakes=stake_vectors(), scale=st.floats(min_value=0.1, max_value=100))
    @settings(max_examples=40, deadline=None)
    def test_sl_pos_scale_invariance(self, stakes, scale):
        base = sl_pos_win_probabilities(stakes)
        scaled = sl_pos_win_probabilities([s * scale for s in stakes])
        np.testing.assert_allclose(base, scaled, atol=1e-9)


# -- drift --------------------------------------------------------------------


class TestDriftProperties:
    @given(z=st.floats(min_value=1e-6, max_value=0.5 - 1e-6))
    @settings(max_examples=80)
    def test_drift_negative_below_half(self, z):
        assert sl_pos_drift(z) < 0

    @given(z=st.floats(min_value=0.5 + 1e-6, max_value=1 - 1e-6))
    @settings(max_examples=80)
    def test_drift_positive_above_half(self, z):
        assert sl_pos_drift(z) > 0

    @given(z=st.floats(min_value=0.0, max_value=1.0))
    @settings(max_examples=80)
    def test_drift_bounded(self, z):
        assert abs(sl_pos_drift(z)) <= 1.0


# -- simulation invariants ------------------------------------------------------


class TestSimulationInvariants:
    @given(
        share=shares,
        reward=rewards,
        horizon=st.integers(min_value=1, max_value=60),
        seed=st.integers(min_value=0, max_value=2**31),
    )
    @settings(max_examples=25, deadline=None)
    def test_stake_conservation_ml_pos(self, share, reward, horizon, seed):
        rng = np.random.default_rng(seed)
        protocol = MultiLotteryPoS(reward)
        state = protocol.make_state(Allocation.two_miners(share), trials=8)
        protocol.advance_many(state, horizon, rng)
        np.testing.assert_allclose(
            state.stakes.sum(axis=1), 1.0 + horizon * reward, rtol=1e-9
        )
        np.testing.assert_allclose(
            state.rewards.sum(axis=1), horizon * reward, rtol=1e-9
        )

    @given(
        share=shares,
        reward=rewards,
        horizon=st.integers(min_value=1, max_value=60),
        seed=st.integers(min_value=0, max_value=2**31),
    )
    @settings(max_examples=25, deadline=None)
    def test_reward_fractions_in_unit_interval(self, share, reward, horizon, seed):
        rng = np.random.default_rng(seed)
        for protocol in (
            ProofOfWork(reward),
            SingleLotteryPoS(reward),
            FairSingleLotteryPoS(reward),
        ):
            state = protocol.make_state(Allocation.two_miners(share), trials=8)
            protocol.advance_many(state, horizon, rng)
            fractions = state.rewards / (horizon * reward)
            assert np.all(fractions >= -1e-12)
            assert np.all(fractions <= 1.0 + 1e-12)

    @given(
        share=shares,
        seed=st.integers(min_value=0, max_value=2**31),
        shards=st.integers(min_value=1, max_value=64),
    )
    @settings(max_examples=25, deadline=None)
    def test_c_pos_issuance_exact(self, share, seed, shards):
        rng = np.random.default_rng(seed)
        protocol = CompoundPoS(0.01, 0.1, shards)
        state = protocol.make_state(Allocation.two_miners(share), trials=5)
        protocol.advance_many(state, 10, rng)
        np.testing.assert_allclose(
            state.rewards.sum(axis=1), 10 * 0.11, rtol=1e-9
        )


# -- fairness checkers -----------------------------------------------------------


class TestFairnessProperties:
    @given(
        share=shares,
        epsilon=st.floats(min_value=0.0, max_value=1.0),
        values=st.lists(
            st.floats(min_value=0.0, max_value=1.0), min_size=1, max_size=50
        ),
    )
    @settings(max_examples=60)
    def test_fair_plus_unfair_is_one(self, share, epsilon, values):
        area = FairArea(share=share, epsilon=epsilon)
        total = area.fair_probability(values) + area.unfair_probability(values)
        assert total == pytest.approx(1.0)

    @given(
        share=shares,
        eps_small=st.floats(min_value=0.01, max_value=0.5),
        eps_extra=st.floats(min_value=0.0, max_value=0.5),
        values=st.lists(
            st.floats(min_value=0.0, max_value=1.0), min_size=1, max_size=50
        ),
    )
    @settings(max_examples=60)
    def test_wider_epsilon_never_less_fair(
        self, share, eps_small, eps_extra, values
    ):
        narrow = FairArea(share=share, epsilon=eps_small)
        wide = FairArea(share=share, epsilon=eps_small + eps_extra)
        assert wide.fair_probability(values) >= narrow.fair_probability(values)

    @given(
        share=shares,
        values=st.lists(
            st.floats(min_value=0.0, max_value=1.0), min_size=2, max_size=50
        ),
    )
    @settings(max_examples=60)
    def test_robust_verdict_consistent(self, share, values):
        verdict = RobustFairness(share, 0.1, 0.1).evaluate(values)
        assert verdict.is_fair == (verdict.unfair_probability <= 0.1)


# -- theory bounds ----------------------------------------------------------------


class TestBoundProperties:
    @given(
        eps=st.floats(min_value=0.01, max_value=1.0),
        delta=st.floats(min_value=0.01, max_value=0.99),
        share=shares,
    )
    @settings(max_examples=60)
    def test_budget_positive(self, eps, delta, share):
        assert fairness_budget(eps, delta, share) > 0

    @given(
        eps=st.floats(min_value=0.01, max_value=1.0),
        delta=st.floats(min_value=0.01, max_value=0.99),
        share=shares,
        n=st.integers(min_value=1, max_value=10**6),
        reward=rewards,
    )
    @settings(max_examples=60)
    def test_ml_pos_monotone_in_n(self, eps, delta, share, n, reward):
        bound = MLPoSFairnessBound(eps, delta, share)
        if bound.is_sufficient(n, reward):
            assert bound.is_sufficient(n + 1, reward)

    @given(
        eps=st.floats(min_value=0.01, max_value=1.0),
        delta=st.floats(min_value=0.01, max_value=0.99),
        share=shares,
        n=st.integers(min_value=1, max_value=10**6),
        shards=st.integers(min_value=1, max_value=128),
        reward=rewards,
        inflation=st.floats(min_value=0.0, max_value=1.0),
    )
    @settings(max_examples=60)
    def test_c_pos_monotone_in_shards(
        self, eps, delta, share, n, shards, reward, inflation
    ):
        bound = CPoSFairnessBound(eps, delta, share)
        if bound.is_sufficient(n, shards, reward, inflation):
            assert bound.is_sufficient(n, shards + 1, reward, inflation)

    @given(
        share=shares,
        reward=rewards,
        n=st.integers(min_value=1, max_value=60),
    )
    @settings(max_examples=40, deadline=None)
    def test_polya_pmf_is_distribution(self, share, reward, n):
        pmf = ml_pos_block_count_pmf(share, reward, n)
        assert np.all(pmf >= -1e-12)
        assert pmf.sum() == pytest.approx(1.0, abs=1e-8)


# -- metrics ----------------------------------------------------------------------


class TestMetricProperties:
    @given(amounts=stake_vectors(min_size=2, max_size=10))
    @settings(max_examples=60)
    def test_gini_in_unit_interval(self, amounts):
        g = gini_coefficient(amounts)
        assert -1e-9 <= g <= 1.0

    @given(amounts=stake_vectors(min_size=2, max_size=10))
    @settings(max_examples=60)
    def test_hhi_bounds(self, amounts):
        h = herfindahl_index(amounts)
        assert 1.0 / len(amounts) - 1e-9 <= h <= 1.0 + 1e-9

    @given(
        amounts=stake_vectors(min_size=2, max_size=10),
        scale=st.floats(min_value=0.1, max_value=100),
    )
    @settings(max_examples=40)
    def test_scale_invariance(self, amounts, scale):
        scaled = [a * scale for a in amounts]
        assert gini_coefficient(amounts) == pytest.approx(
            gini_coefficient(scaled), abs=1e-9
        )
        assert herfindahl_index(amounts) == pytest.approx(
            herfindahl_index(scaled), abs=1e-9
        )


# -- allocation -------------------------------------------------------------------


class TestAllocationProperties:
    @given(share=shares, count=st.integers(min_value=2, max_value=12))
    @settings(max_examples=60)
    def test_focal_vs_equal_normalised(self, share, count):
        allocation = Allocation.focal_vs_equal(share, count)
        assert allocation.shares.sum() == pytest.approx(1.0)
        assert allocation.focal_share == pytest.approx(share)

    @given(raw=stake_vectors(min_size=2, max_size=10))
    @settings(max_examples=60)
    def test_normalise_preserves_ratios(self, raw):
        allocation = Allocation(raw, normalise=True)
        ratios = allocation.shares / allocation.shares[0]
        expected = np.array(raw) / raw[0]
        np.testing.assert_allclose(ratios, expected, rtol=1e-9)
