"""Property-based tests for the streaming merge machinery.

Three algebraic guarantees behind ``ParallelRunner(stream=True)``:

* **Order restoration** — pushing a dispatch's completions through the
  :class:`ReorderBuffer` in *any* completion order releases them in
  plan order, each exactly once; folding the released sequence through
  a :class:`MergeAccumulator` is byte-identical to
  :meth:`EnsembleResult.merge` of the full list.
* **Identity** — an accumulator fed a single shard reproduces that
  shard byte-for-byte.
* **Associativity** — folding chunk-merged parts equals folding the
  parts directly equals the batch merge: chunking the fold never
  changes bits, so any grouping of shards along the way is safe.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.miners import Allocation
from repro.core.results import EnsembleResult, MergeAccumulator
from repro.runtime import ReorderBuffer

LIGHT_SETTINGS = settings(
    max_examples=30,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

CHECKPOINTS = (10, 20, 40)
MINERS = 2


def synthetic_part(seed: int, trials: int) -> EnsembleResult:
    """A cheap, deterministic shard-shaped result (no simulation)."""
    rng = np.random.default_rng(seed)
    fractions = rng.random((trials, len(CHECKPOINTS), MINERS))
    terminal = rng.random((trials, MINERS)) + 0.1
    return EnsembleResult(
        protocol_name="ML-PoS",
        allocation=Allocation.two_miners(0.2),
        checkpoints=CHECKPOINTS,
        reward_fractions=fractions,
        terminal_stakes=terminal,
    )


def parts_and_total(sizes):
    parts = [
        synthetic_part(seed=100 + index, trials=size)
        for index, size in enumerate(sizes)
    ]
    return parts, sum(sizes)


def assert_byte_equal(a: EnsembleResult, b: EnsembleResult) -> None:
    assert a.reward_fractions.tobytes() == b.reward_fractions.tobytes()
    assert a.terminal_stakes.tobytes() == b.terminal_stakes.tobytes()
    assert a.checkpoints.tobytes() == b.checkpoints.tobytes()


@LIGHT_SETTINGS
@given(
    sizes=st.lists(st.integers(min_value=1, max_value=7), min_size=1, max_size=8),
    order_seed=st.integers(min_value=0, max_value=2**31 - 1),
)
def test_any_completion_order_folds_to_the_batch_merge(sizes, order_seed):
    parts, total = parts_and_total(sizes)
    completion_order = np.random.default_rng(order_seed).permutation(len(parts))
    buffer = ReorderBuffer(len(parts))
    accumulator = MergeAccumulator(expected_trials=total)
    released_indices = []
    for index in completion_order:
        for plan_index, part in buffer.push(int(index), parts[index]):
            released_indices.append(plan_index)
            accumulator.add(part)
    assert buffer.complete
    assert released_indices == list(range(len(parts)))
    assert_byte_equal(accumulator.result(), EnsembleResult.merge(parts))


@LIGHT_SETTINGS
@given(
    total=st.integers(min_value=1, max_value=40),
    order_seed=st.integers(min_value=0, max_value=2**31 - 1),
)
def test_reorder_buffer_releases_every_index_once_in_order(total, order_seed):
    order = np.random.default_rng(order_seed).permutation(total)
    buffer = ReorderBuffer(total)
    released = []
    for index in order:
        batch = buffer.push(int(index), f"item-{index}")
        released.extend(batch)
        # Staging never exceeds what has been pushed but not released.
        assert buffer.staged <= total - len(released)
    assert buffer.complete
    assert [index for index, _ in released] == list(range(total))
    assert [item for _, item in released] == [f"item-{i}" for i in range(total)]


@LIGHT_SETTINGS
@given(
    seed=st.integers(min_value=0, max_value=2**31 - 1),
    trials=st.integers(min_value=1, max_value=20),
    preallocate=st.booleans(),
)
def test_accumulator_of_one_shard_is_that_shard(seed, trials, preallocate):
    part = synthetic_part(seed=seed, trials=trials)
    accumulator = MergeAccumulator(
        expected_trials=trials if preallocate else None
    )
    folded = part.merge_into(accumulator).result()
    assert folded.trials == part.trials
    assert_byte_equal(folded, EnsembleResult.merge([part]))
    # Clipping is idempotent on already-valid data, so the single-shard
    # fold reproduces the shard's own arrays bit-for-bit too.
    assert folded.reward_fractions.tobytes() == part.reward_fractions.tobytes()
    assert folded.terminal_stakes.tobytes() == part.terminal_stakes.tobytes()


@LIGHT_SETTINGS
@given(
    sizes=st.lists(st.integers(min_value=1, max_value=6), min_size=2, max_size=10),
    data=st.data(),
)
def test_chunked_folds_compose_associatively(sizes, data):
    parts, total = parts_and_total(sizes)
    cut = data.draw(
        st.integers(min_value=1, max_value=len(parts) - 1), label="cut"
    )
    chunks = [parts[:cut], parts[cut:]]
    # Fold pre-merged chunks...
    chunked = MergeAccumulator(expected_trials=total)
    for chunk in chunks:
        chunked.add(EnsembleResult.merge(chunk))
    # ...fold the parts one by one...
    flat = MergeAccumulator(expected_trials=total)
    for part in parts:
        flat.add(part)
    # ...and batch-merge everything: all three agree bit-for-bit.
    reference = EnsembleResult.merge(parts)
    assert_byte_equal(chunked.result(), reference)
    assert_byte_equal(flat.result(), reference)


class TestReorderBufferEdges:
    def test_rejects_out_of_range_index(self):
        buffer = ReorderBuffer(2)
        with pytest.raises(IndexError, match="out of range"):
            buffer.push(2, "x")
        with pytest.raises(IndexError, match="out of range"):
            buffer.push(-1, "x")

    def test_rejects_duplicate_pushes(self):
        buffer = ReorderBuffer(3)
        buffer.push(1, "staged")  # held, not yet released
        with pytest.raises(ValueError, match="already pushed"):
            buffer.push(1, "again")
        buffer.push(0, "released")  # releases 0 and 1
        with pytest.raises(ValueError, match="already pushed"):
            buffer.push(0, "again")

    def test_rejects_negative_total(self):
        with pytest.raises(ValueError, match="non-negative"):
            ReorderBuffer(-1)

    def test_empty_buffer_is_complete(self):
        assert ReorderBuffer(0).complete
