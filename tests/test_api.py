"""Tests of the top-level public API surface."""

import pytest

import repro


class TestPublicSurface:
    def test_version(self):
        assert repro.__version__ == "1.1.0"

    def test_subpackages_exposed(self):
        for name in ("core", "protocols", "sim", "theory", "analysis", "runtime"):
            assert hasattr(repro, name)

    def test_all_exports_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_subpackage_all_exports_resolve(self):
        import repro.analysis
        import repro.chainsim
        import repro.core
        import repro.experiments
        import repro.protocols
        import repro.sim
        import repro.theory

        for module in (
            repro.core,
            repro.protocols,
            repro.sim,
            repro.theory,
            repro.analysis,
            repro.chainsim,
            repro.experiments,
        ):
            for name in module.__all__:
                assert hasattr(module, name), f"{module.__name__}.{name}"


class TestDocstringExample:
    def test_module_docstring_example_runs(self):
        game = repro.MiningGame(
            repro.protocols.ProofOfWork(reward=0.01),
            repro.Allocation.two_miners(0.2),
        )
        report = game.play(horizon=2000, trials=500, seed=42)
        assert report.robust.is_fair

    def test_simulate_shortcut(self):
        result = repro.simulate(
            repro.protocols.MultiLotteryPoS(0.01),
            repro.Allocation.two_miners(0.2),
            horizon=100,
            trials=50,
            seed=1,
        )
        assert isinstance(result, repro.EnsembleResult)


class TestExamplesCompile:
    """The example scripts must at least parse and compile."""

    @pytest.mark.parametrize(
        "script",
        [
            "quickstart.py",
            "rich_get_richer.py",
            "protocol_design.py",
            "chainsim_demo.py",
            "multi_miner.py",
            "fairness_audit.py",
        ],
    )
    def test_example_compiles(self, script):
        import pathlib

        path = pathlib.Path(__file__).resolve().parent.parent / "examples" / script
        source = path.read_text()
        compile(source, str(path), "exec")
        assert '"""' in source  # every example carries a doc header
