"""Tests for repro.analysis.comparison."""

import pytest

from repro.analysis.comparison import compare_protocols
from repro.core.miners import Allocation
from repro.protocols import (
    CompoundPoS,
    MultiLotteryPoS,
    ProofOfWork,
    SingleLotteryPoS,
)


@pytest.fixture(scope="module")
def comparison():
    return compare_protocols(
        [
            ProofOfWork(0.01),
            MultiLotteryPoS(0.01),
            SingleLotteryPoS(0.01),
            CompoundPoS(0.01, 0.1, 32),
        ],
        Allocation.two_miners(0.2),
        horizon=2000,
        trials=600,
        seed=8,
    )


class TestCompareProtocols:
    def test_one_row_per_protocol(self, comparison):
        assert {row.protocol for row in comparison.rows} == {
            "PoW", "ML-PoS", "SL-PoS", "C-PoS",
        }

    def test_paper_ranking(self, comparison):
        ranked = [row.protocol for row in comparison.ranked()]
        # SL-PoS must rank last; PoW and C-PoS ahead of ML-PoS.
        assert ranked[-1] == "SL-PoS"
        assert ranked.index("PoW") < ranked.index("ML-PoS")
        assert ranked.index("C-PoS") < ranked.index("ML-PoS")

    def test_sl_pos_biased(self, comparison):
        row = next(r for r in comparison.rows if r.protocol == "SL-PoS")
        assert row.bias < -0.05
        assert row.unfair_probability > 0.9

    def test_pow_metrics(self, comparison):
        row = next(r for r in comparison.rows if r.protocol == "PoW")
        assert row.bias == pytest.approx(0.0, abs=0.01)
        assert row.equitability > 0.95

    def test_render(self, comparison):
        text = comparison.render()
        assert "Protocol comparison" in text
        assert "SL-PoS" in text

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            compare_protocols([], Allocation.two_miners(0.2), 100)

    def test_rejects_duplicate_names(self):
        with pytest.raises(ValueError, match="unique"):
            compare_protocols(
                [ProofOfWork(0.01), ProofOfWork(0.02)],
                Allocation.two_miners(0.2),
                100,
            )
