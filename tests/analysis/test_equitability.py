"""Tests for repro.analysis.equitability."""

import numpy as np
import pytest

from repro.analysis.equitability import equitability, equitability_series


class TestEquitability:
    def test_deterministic_is_one(self):
        assert equitability([0.2] * 100, 0.2) == pytest.approx(1.0)

    def test_all_or_nothing_is_zero(self):
        # The paper's Section 1.2 example: win everything with
        # probability a, nothing otherwise.
        samples = [1.0] * 20 + [0.0] * 80
        assert equitability(samples, 0.2) == pytest.approx(0.0, abs=0.02)

    def test_intermediate(self):
        rng = np.random.default_rng(1)
        samples = rng.beta(20, 80, size=5000)  # concentrated around 0.2
        value = equitability(samples, 0.2)
        assert 0.9 < value < 1.0

    def test_more_disperse_less_equitable(self):
        rng = np.random.default_rng(2)
        tight = rng.beta(200, 800, size=5000)
        loose = rng.beta(2, 8, size=5000)
        assert equitability(loose, 0.2) < equitability(tight, 0.2)

    def test_rejects_single_sample(self):
        with pytest.raises(ValueError):
            equitability([0.2], 0.2)

    def test_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            equitability([0.2, 1.5], 0.2)

    def test_series(self):
        fractions = np.column_stack(
            [np.full(100, 0.2), np.linspace(0, 1, 100)]
        )
        series = equitability_series(fractions, 0.2)
        assert series.shape == (2,)
        assert series[0] == pytest.approx(1.0)
        assert series[1] < 0.7

    def test_series_rejects_1d(self):
        with pytest.raises(ValueError):
            equitability_series(np.zeros(5), 0.2)


class TestProtocolEquitability:
    def test_pow_more_equitable_than_ml_pos(self):
        from repro.core.miners import Allocation
        from repro.protocols import MultiLotteryPoS, ProofOfWork
        from repro.sim.engine import simulate

        allocation = Allocation.two_miners(0.2)
        pow_result = simulate(
            ProofOfWork(0.01), allocation, 2000, trials=1000, seed=1
        )
        ml_result = simulate(
            MultiLotteryPoS(0.01), allocation, 2000, trials=1000, seed=1
        )
        assert equitability(
            pow_result.final_fractions(), 0.2
        ) > equitability(ml_result.final_fractions(), 0.2)
