"""Tests for repro.analysis.attack_risk."""

import numpy as np
import pytest

from repro.analysis.attack_risk import (
    majority_risk,
    majority_risk_series,
    stake_share_series,
)
from repro.core.miners import Allocation
from repro.protocols import MultiLotteryPoS, SingleLotteryPoS
from repro.sim.engine import simulate


class TestStakeReconstruction:
    def test_matches_recorded_terminal_stakes(self):
        allocation = Allocation.focal_vs_equal(0.25, 4)
        reward = 0.02
        result = simulate(
            MultiLotteryPoS(reward), allocation, 300, trials=50, seed=1
        )
        reconstructed = stake_share_series(result, reward)[:, -1, :]
        np.testing.assert_allclose(
            reconstructed, result.terminal_stake_shares(), atol=1e-9
        )

    def test_shares_normalised(self):
        allocation = Allocation.uniform(4)
        result = simulate(
            SingleLotteryPoS(0.05), allocation, 200, trials=20, seed=2
        )
        shares = stake_share_series(result, 0.05)
        np.testing.assert_allclose(shares.sum(axis=2), 1.0)

    def test_rejects_bad_reward(self):
        allocation = Allocation.uniform(3)
        result = simulate(
            MultiLotteryPoS(0.01), allocation, 50, trials=10, seed=3
        )
        with pytest.raises(ValueError):
            stake_share_series(result, 0.0)


class TestMajorityRisk:
    def test_sl_pos_risk_grows(self):
        # Four equal miners under SL-PoS: somebody eventually crosses
        # 50% in a growing fraction of trials.
        allocation = Allocation.uniform(4)
        result = simulate(
            SingleLotteryPoS(0.1), allocation, 4000,
            trials=400, checkpoints=[100, 1000, 4000], seed=4,
        )
        series = majority_risk_series(result, 0.1)
        assert series[0] < series[-1]
        assert series[-1] > 0.5

    def test_ml_pos_risk_lower_than_sl_pos(self):
        allocation = Allocation.uniform(4)
        kwargs = dict(trials=400, checkpoints=[2000], seed=5)
        ml = simulate(MultiLotteryPoS(0.1), allocation, 2000, **kwargs)
        sl = simulate(SingleLotteryPoS(0.1), allocation, 2000, **kwargs)
        assert majority_risk(ml, 0.1) < majority_risk(sl, 0.1)

    def test_threshold_validation(self):
        allocation = Allocation.uniform(3)
        result = simulate(
            MultiLotteryPoS(0.01), allocation, 50, trials=10, seed=6
        )
        with pytest.raises(ValueError):
            majority_risk(result, 0.01, threshold=1.0)

    def test_initially_dominant_allocation(self):
        # B starts above 50%: risk is 1 from the first checkpoint.
        allocation = Allocation.two_miners(0.2)
        result = simulate(
            MultiLotteryPoS(0.01), allocation, 50, trials=10, seed=7
        )
        series = majority_risk_series(result, 0.01)
        np.testing.assert_allclose(series, 1.0)
