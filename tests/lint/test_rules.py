"""Golden tests: every rule family is proven live by a bad fixture.

Each rule id has a ``<ID>_bad.py`` / ``<ID>_good.py`` fixture pair
under ``fixtures/``.  The bad snippet must trip exactly that rule when
linted at the rule's home relpath; the good snippet — the doctrinally
correct way to write the same thing — must come back completely clean
at the same relpath, across *all* rules, so the fix we would recommend
never trades one finding for another.
"""

from __future__ import annotations

import pathlib

import pytest

import repro.lint  # noqa: F401  (registers all rules)
from repro.lint.core import RULES, check_source

FIXTURES = pathlib.Path(__file__).parent / "fixtures"

#: rule id -> the repro-relative path the fixture is linted as.  Pinning
#: the relpath points the snippet at the scoped rule exactly the way the
#: real module would be.
CASES = {
    "DET001": "repro/runtime/chaos.py",
    "DET002": "repro/runtime/chaos.py",
    "DET003": "repro/runtime/chaos.py",
    "DET004": "repro/runtime/chaos.py",
    "FPR001": "repro/runtime/spec.py",
    "FPR002": "repro/chainsim/harness.py",
    "FPR003": "repro/chainsim/harness.py",
    "FPR004": "repro/chainsim/harness.py",
    "FPR005": "repro/chainsim/harness.py",
    "PKL001": "repro/runtime/faults.py",
    "PKL002": "repro/runtime/faults.py",
    "PKL003": "repro/runtime/faults.py",
    "LCK001": "repro/runtime/cache.py",
    "LCK002": "repro/obs/metrics.py",
    "EXC001": "repro/runtime/executor.py",
    "EXC002": "repro/runtime/executor.py",
    "EXC003": "repro/runtime/executor.py",
    "EXC004": "repro/runtime/cache.py",
}


def _lint_fixture(rule_id: str, kind: str):
    path = FIXTURES / f"{rule_id}_{kind}.py"
    source = path.read_text(encoding="utf-8")
    return check_source(source, str(path), relpath=CASES[rule_id])


def test_manifest_covers_every_non_meta_rule():
    """A new rule without a fixture pair fails here, not silently."""
    non_meta = {rule_id for rule_id in RULES if not rule_id.startswith("LNT")}
    assert non_meta == set(CASES)


@pytest.mark.parametrize("rule_id", sorted(CASES))
def test_bad_fixture_trips_its_rule(rule_id):
    report = _lint_fixture(rule_id, "bad")
    tripped = {finding.rule for finding in report.findings}
    assert rule_id in tripped, (
        f"{rule_id}_bad.py produced {sorted(tripped)} at "
        f"{CASES[rule_id]}; expected {rule_id}"
    )


@pytest.mark.parametrize("rule_id", sorted(CASES))
def test_good_fixture_is_clean(rule_id):
    report = _lint_fixture(rule_id, "good")
    assert report.findings == [], (
        f"{rule_id}_good.py should be clean but produced: "
        + "; ".join(f.render() for f in report.findings)
    )
    assert report.waived == [], "good fixtures must not rely on waivers"


@pytest.mark.parametrize("rule_id", sorted(CASES))
def test_findings_carry_location_and_message(rule_id):
    report = _lint_fixture(rule_id, "bad")
    for finding in report.findings:
        assert finding.line >= 1
        assert finding.col >= 1
        assert finding.message
        rendered = finding.render()
        assert finding.rule in rendered
        assert f":{finding.line}:" in rendered


def test_every_rule_has_summary_and_scope():
    for rule_id, rule in RULES.items():
        assert rule.id == rule_id
        assert rule.summary, f"{rule_id} has no summary"
        assert rule.scope, f"{rule_id} has no scope"


def test_det_rules_do_not_fire_outside_determinism_modules():
    """DET scoping: analysis code may use wall clocks and legacy RNG."""
    source = FIXTURES.joinpath("DET003_bad.py").read_text(encoding="utf-8")
    report = check_source(source, "DET003_bad.py",
                          relpath="repro/analysis/tables.py")
    assert not any(f.rule.startswith("DET") for f in report.findings)


def test_lck_inference_covers_attrs_without_config():
    """An attr written under a class's lock anywhere is guarded
    everywhere — no doctrine table entry needed."""
    source = FIXTURES.joinpath("LCK001_bad.py").read_text(encoding="utf-8")
    report = check_source(source, "LCK001_bad.py",
                          relpath="repro/runtime/cache.py")
    flagged_lines = {f.line for f in report.findings if f.rule == "LCK001"}
    lines = source.splitlines()
    # Both the configured ResultCache tally and the inferred SpanBuffer
    # buffer must be caught.
    assert any("self.hits += 1" in lines[line - 1] for line in flagged_lines)
    assert any("self._records = []" in lines[line - 1]
               for line in flagged_lines)
