"""Framework tests: waivers, meta-rules, selection, and the engine."""

from __future__ import annotations

import pytest

import repro.lint  # noqa: F401  (registers all rules)
from repro.lint.core import (
    Finding,
    RULES,
    check_source,
    repo_relative,
    select_rules,
)

RELPATH = "repro/runtime/chaos.py"  # inside DET scope


def lint(source, relpath=RELPATH):
    return check_source(source, "<test>", relpath=relpath)


# -- waivers ------------------------------------------------------------------


def test_waiver_on_same_line_suppresses():
    report = lint(
        "import time\n"
        "ts = time.time()  # repro-lint: disable=DET003  # trace metadata\n"
    )
    assert report.findings == []
    assert [f.rule for f in report.waived] == ["DET003"]


def test_waiver_on_line_above_suppresses():
    report = lint(
        "import time\n"
        "# repro-lint: disable=DET003  # trace metadata\n"
        "ts = time.time()\n"
    )
    assert report.findings == []
    assert [f.rule for f in report.waived] == ["DET003"]


def test_waiver_two_lines_above_does_not_suppress():
    report = lint(
        "import time\n"
        "# repro-lint: disable=DET003  # too far away\n"
        "\n"
        "ts = time.time()\n"
    )
    assert [f.rule for f in report.findings] == ["DET003"]


def test_waiver_only_covers_named_rules():
    report = lint(
        "import time\n"
        "ts = time.time()  # repro-lint: disable=DET004  # wrong rule\n"
    )
    assert [f.rule for f in report.findings] == ["DET003"]


def test_waiver_multiple_rules():
    report = lint(
        "import time, uuid\n"
        "# repro-lint: disable=DET003,DET004  # staging artifact only\n"
        "stamp = (time.time(), uuid.uuid4())\n"
    )
    assert report.findings == []
    assert sorted(f.rule for f in report.waived) == ["DET003", "DET004"]


def test_waiver_without_reason_is_lnt001():
    report = lint(
        "import time\n"
        "ts = time.time()  # repro-lint: disable=DET003\n"
    )
    rules = sorted(f.rule for f in report.findings)
    # The finding is still waived, but the reason-less waiver is itself
    # a finding — waivers cannot rot silently.
    assert rules == ["LNT001"]
    assert [f.rule for f in report.waived] == ["DET003"]


def test_waiver_unknown_rule_is_lnt003():
    report = lint("x = 1  # repro-lint: disable=ZZZ999  # bogus\n")
    assert [f.rule for f in report.findings] == ["LNT003"]
    assert "ZZZ999" in report.findings[0].message


def test_syntax_error_is_lnt002():
    report = lint("def broken(:\n    pass\n")
    assert [f.rule for f in report.findings] == ["LNT002"]
    assert report.files == 1


# -- selection ----------------------------------------------------------------


def test_select_exact_id():
    rules = select_rules(select=["DET003"])
    assert [rule.id for rule in rules] == ["DET003"]


def test_select_family_prefix():
    rules = select_rules(select=["DET"])
    ids = [rule.id for rule in rules]
    assert ids == sorted(r for r in RULES if r.startswith("DET"))
    assert len(ids) >= 4


def test_ignore_drops_rules():
    rules = select_rules(ignore=["DET", "LNT001"])
    ids = {rule.id for rule in rules}
    assert not any(r.startswith("DET") for r in ids)
    assert "LNT001" not in ids
    assert "EXC001" in ids


def test_unknown_select_entry_raises():
    with pytest.raises(ValueError, match="ZZZ"):
        select_rules(select=["ZZZ999"])
    with pytest.raises(ValueError, match="NOPE"):
        select_rules(ignore=["NOPE"])


def test_selection_respected_by_engine():
    source = "import time\nts = time.time()\n"
    only_det4 = check_source(source, "<t>", relpath=RELPATH,
                             rules=select_rules(select=["DET004"]))
    assert only_det4.findings == []
    det = check_source(source, "<t>", relpath=RELPATH,
                       rules=select_rules(select=["DET003"]))
    assert [f.rule for f in det.findings] == ["DET003"]


def test_ignoring_lnt001_silences_reasonless_waiver():
    source = "import time\nts = time.time()  # repro-lint: disable=DET003\n"
    report = check_source(source, "<t>", relpath=RELPATH,
                          rules=select_rules(ignore=["LNT001"]))
    assert report.findings == []


# -- scoping and plumbing -----------------------------------------------------


def test_rules_scope_by_relpath():
    source = "import time\nts = time.time()\n"
    in_scope = check_source(source, "<t>", relpath="repro/obs/trace.py")
    out_of_scope = check_source(source, "<t>", relpath="repro/analysis/tables.py")
    assert [f.rule for f in in_scope.findings] == ["DET003"]
    assert out_of_scope.findings == []


def test_repo_relative():
    assert repo_relative("src/repro/runtime/cache.py") == "repro/runtime/cache.py"
    assert repo_relative("/abs/x/src/repro/obs/trace.py") == "repro/obs/trace.py"
    assert repo_relative("standalone.py") == "standalone.py"


def test_finding_ordering_and_dict():
    early = Finding("a.py", 3, 1, "DET003", "m")
    late = Finding("a.py", 9, 1, "DET003", "m")
    assert sorted([late, early]) == [early, late]
    assert early.as_dict() == {
        "path": "a.py", "line": 3, "col": 1, "rule": "DET003", "message": "m",
    }


def test_rule_ids_are_well_formed():
    for rule_id in RULES:
        assert len(rule_id) == 6
        assert rule_id[:3].isalpha() and rule_id[:3].isupper()
        assert rule_id[3:].isdigit()
