"""Bad: BaseException caught and kept."""


def guard(task, log):
    try:
        return task()
    except BaseException as error:
        log(error)
        return None
