"""Good: a literal frozenset the linter (and reader) can see."""


class SystemThing:
    _fingerprint_exclude_ = frozenset({"fast"})

    def __init__(self, fast=True):
        self.fast = bool(fast)
