"""Good: the physics knob stays inside the content address."""


class SystemThing:
    def __init__(self, reward, reduce="full"):
        self.reward = float(reward)
        self.reduce = str(reduce)
