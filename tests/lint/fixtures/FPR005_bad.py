"""Bad: a physics knob excluded from the content address."""


class SystemThing:
    _fingerprint_exclude_ = frozenset({"reduce"})

    def __init__(self, reward, reduce="full"):
        self.reward = float(reward)
        self.reduce = str(reduce)
