"""Good: every excluded name is a live attribute."""


class SystemThing:
    _fingerprint_exclude_ = frozenset({"fast"})

    def __init__(self, fast=True):
        self.fast = bool(fast)
