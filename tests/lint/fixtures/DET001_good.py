"""Good: jitter derived from a SHA-256 of the task coordinates."""
import hashlib


def jitter(task, attempt):
    digest = hashlib.sha256(f"retry:{task}:{attempt}".encode()).digest()
    return int.from_bytes(digest[:8], "big") / float(1 << 64)
