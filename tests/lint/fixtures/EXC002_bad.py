"""Bad: a broad handler that silently discards the failure."""


def run_shard(task):
    try:
        return task()
    except Exception:
        pass
