"""Bad: a bare except absorbs KeyboardInterrupt and SystemExit."""


def salvage(results):
    merged = []
    for item in results:
        try:
            merged.append(item.load())
        except:
            continue
    return merged
