"""Good: the canonical (callable, args) reconstruction tuple."""


class Payload(tuple):
    def __new__(cls, error, attempts=1):
        self = super().__new__(cls, (error,))
        self.attempts = int(attempts)
        return self

    def __reduce__(self):
        return (Payload, (self[0], self.attempts))
