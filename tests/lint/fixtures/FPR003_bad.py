"""Bad: an execution knob the fingerprint would hash."""


class SystemThing:
    def __init__(self, reward, fast=True):
        self.reward = float(reward)
        self.fast = bool(fast)
