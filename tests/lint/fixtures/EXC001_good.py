"""Good: the absorbable failures are named."""


def salvage(results):
    merged = []
    for item in results:
        try:
            merged.append(item.load())
        except (OSError, ValueError):
            continue
    return merged
