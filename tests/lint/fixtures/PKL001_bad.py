"""Bad: a lambda stored on a boundary-crossing payload."""


class ShardTask:
    def __init__(self, spec):
        self.spec = spec
        self.classify = lambda error: True
