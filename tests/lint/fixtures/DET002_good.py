"""Good: the generator is seeded from the spec's SeedSequence."""
import numpy as np


def draw(seed, n):
    rng = np.random.default_rng(seed)
    return rng.uniform(size=n)
