"""Bad: a __reduce__ whose shape nothing can verify statically."""


class Payload(tuple):
    def __reduce__(self):
        return self.rebuild_spec()

    def rebuild_spec(self):
        return "Payload"
