"""Good: the foreign instrument's lock is held across the fold."""


def merge_gauge(gauge, value):
    with gauge._lock:
        gauge.value = max(gauge.value, value)
