"""Bad: folding a snapshot into an instrument it does not own,
without that instrument's lock."""


def merge_gauge(gauge, value):
    gauge.value = max(gauge.value, value)
