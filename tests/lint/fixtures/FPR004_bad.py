"""Bad: the exclusion list names an attribute that no longer exists."""


class SystemThing:
    _fingerprint_exclude_ = frozenset({"fast", "ghost"})

    def __init__(self, fast=True):
        self.fast = bool(fast)
