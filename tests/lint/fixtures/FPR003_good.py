"""Good: the knob is excluded from the content address."""


class SystemThing:
    _fingerprint_exclude_ = frozenset({"fast"})

    def __init__(self, reward, fast=True):
        self.reward = float(reward)
        self.fast = bool(fast)
