"""Bad: an execution knob hashed into the fingerprint payload."""


def spec_fingerprint(spec, shards=None):
    payload = {
        "trials": spec.trials,
        "kernel": spec.kernel,
        "shards": shards,
    }
    return payload
