"""Good: a module-level function pickles by qualified name."""


def classify(error):
    return True


class ShardTask:
    def __init__(self, spec):
        self.spec = spec
        self.classify = classify
