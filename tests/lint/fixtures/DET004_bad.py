"""Bad: an entropy-backed UUID naming an artifact."""
import uuid


def staging_name(key):
    return f"{key}-{uuid.uuid4().hex[:8]}.npz"
