"""Bad: an unseeded generator draws fresh OS entropy per call."""
import numpy as np


def draw(n):
    rng = np.random.default_rng()
    return rng.uniform(size=n)
