"""Bad: a wall-clock read feeding a schedule."""
import time


def deadline(budget):
    return time.time() + budget
