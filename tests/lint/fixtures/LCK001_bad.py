"""Bad: shared tallies written without the owning lock."""
import threading


class ResultCache:
    def __init__(self, directory):
        self.directory = directory
        self.hits = 0
        self._stats_lock = threading.Lock()

    def count_hit(self):
        self.hits += 1


class SpanBuffer:
    def __init__(self):
        self._lock = threading.Lock()
        self._records = []

    def record(self, item):
        with self._lock:
            self._records.append(item)

    def reset(self):
        self._records = []
