"""Good: monotonic durations are telemetry, not entropy."""
import time


def measure(fn):
    start = time.perf_counter()
    fn()
    return time.perf_counter() - start
