"""Good: artifact names derived from content coordinates."""
import hashlib


def staging_name(key, pid, tid):
    tag = hashlib.sha256(f"{key}:{pid}:{tid}".encode()).hexdigest()[:8]
    return f"{key}-{tag}.npz"
