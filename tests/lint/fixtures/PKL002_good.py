"""Good: plain data only; synchronisation lives with the parent."""


class ShardTask:
    def __init__(self, spec, attempts):
        self.spec = spec
        self.attempts = tuple(attempts)
