"""Bad: a storage-path handler that drops the disk error on the floor."""
import os


def remove_stale(path):
    try:
        os.unlink(path)
    except OSError:
        return False
