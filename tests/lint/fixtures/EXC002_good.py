"""Good: the failure travels home as data for retry classification."""
import traceback


def run_shard(task, failures):
    try:
        return task()
    except Exception as error:
        failures.append((repr(error), traceback.format_exc()))
        return None
