"""Good: the expected condition is narrowed; real disk trouble is counted."""
import os

from repro.runtime.integrity import note_storage_error


def remove_stale(path):
    try:
        os.unlink(path)
    except FileNotFoundError:
        return False  # already gone: the goal state, not an error
    except OSError:
        note_storage_error("cache", "unlink")
        return False
    return True
