"""Good: shutdown signals propagate after the bookkeeping."""


def guard(task, log):
    try:
        return task()
    except BaseException as error:
        log(error)
        raise
