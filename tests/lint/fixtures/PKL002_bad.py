"""Bad: a lock on a payload that must cross the process boundary."""
import threading


class ShardTask:
    def __init__(self, spec):
        self.spec = spec
        self._lock = threading.Lock()
