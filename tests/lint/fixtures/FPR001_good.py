"""Good: the payload covers physics knobs only."""


def spec_fingerprint(spec, shards=None):
    payload = {
        "trials": spec.trials,
        "horizon": spec.horizon,
        "shards": shards,
    }
    return payload
