"""Bad: the exclusion set is computed, so nothing can check it."""


def _compute_excludes():
    return frozenset({"fast"})


class SystemThing:
    _fingerprint_exclude_ = _compute_excludes()

    def __init__(self, fast=True):
        self.fast = bool(fast)
