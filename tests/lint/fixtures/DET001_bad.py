"""Bad: stdlib random and the legacy numpy global-state API."""
import random

import numpy as np


def jitter(task):
    return random.random() * 0.1 + np.random.rand()
