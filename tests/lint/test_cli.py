"""CLI tests, ending with the acceptance sweep of the real tree."""

from __future__ import annotations

import json
import pathlib

import pytest

from repro.lint.cli import main

REPO_ROOT = pathlib.Path(__file__).resolve().parents[2]
SRC = REPO_ROOT / "src"


@pytest.fixture
def mini_tree(tmp_path):
    """A tiny package shaped like the real one: one dirty determinism
    module, one clean module, one waived line."""
    pkg = tmp_path / "repro"
    (pkg / "runtime").mkdir(parents=True)
    (pkg / "runtime" / "chaos.py").write_text(
        "import time\n"
        "DEADLINE = time.time()\n",
        encoding="utf-8",
    )
    (pkg / "runtime" / "clean.py").write_text(
        "def double(x):\n    return 2 * x\n",
        encoding="utf-8",
    )
    (pkg / "obs").mkdir()
    (pkg / "obs" / "waived.py").write_text(
        "import time\n"
        "TS = time.time()  # repro-lint: disable=DET003  # test metadata\n",
        encoding="utf-8",
    )
    return tmp_path


def test_findings_exit_1_and_render(mini_tree, capsys):
    code = main([str(mini_tree)])
    out, err = capsys.readouterr()
    assert code == 1
    assert "DET003" in out
    assert "chaos.py" in out
    assert "clean.py" not in out
    assert "1 finding (1 waived) in 3 files" in err


def test_clean_tree_exits_0(mini_tree, capsys):
    code = main([str(mini_tree / "repro" / "runtime" / "clean.py")])
    out, err = capsys.readouterr()
    assert code == 0
    assert out == ""
    assert "0 findings" in err


def test_json_output(mini_tree, capsys):
    code = main([str(mini_tree), "--json"])
    out, _ = capsys.readouterr()
    assert code == 1
    payload = json.loads(out)
    assert payload["version"] == 1
    assert payload["files"] == 3
    assert [f["rule"] for f in payload["findings"]] == ["DET003"]
    assert [f["rule"] for f in payload["waived"]] == ["DET003"]
    finding = payload["findings"][0]
    assert finding["path"].endswith("chaos.py")
    assert finding["line"] == 2


def test_select_narrows_rules(mini_tree, capsys):
    code = main([str(mini_tree), "--select", "DET004"])
    capsys.readouterr()
    assert code == 0
    code = main([str(mini_tree), "--select", "DET"])
    capsys.readouterr()
    assert code == 1


def test_ignore_drops_family(mini_tree, capsys):
    code = main([str(mini_tree), "--ignore", "DET"])
    capsys.readouterr()
    assert code == 0


def test_unknown_rule_exits_2(mini_tree, capsys):
    with pytest.raises(SystemExit) as excinfo:
        main([str(mini_tree), "--select", "ZZZ999"])
    assert excinfo.value.code == 2
    assert "ZZZ999" in capsys.readouterr().err


def test_missing_path_exits_2(tmp_path, capsys):
    with pytest.raises(SystemExit) as excinfo:
        main([str(tmp_path / "nope")])
    assert excinfo.value.code == 2
    assert "no such path" in capsys.readouterr().err


def test_list_rules(capsys):
    code = main(["--list-rules"])
    out, _ = capsys.readouterr()
    assert code == 0
    for rule_id in ("DET001", "FPR001", "PKL001", "LCK001", "EXC001",
                    "LNT001"):
        assert rule_id in out


def test_live_sweep_of_real_tree_is_clean(capsys):
    """Acceptance criterion: ``repro-lint src/`` exits 0 on this repo."""
    assert SRC.is_dir()
    code = main([str(SRC)])
    out, err = capsys.readouterr()
    assert code == 0, f"doctrine sweep found violations:\n{out}"
    assert "0 findings" in err


def test_live_sweep_json_shape(capsys):
    code = main([str(SRC), "--json"])
    out, _ = capsys.readouterr()
    assert code == 0
    payload = json.loads(out)
    assert payload["findings"] == []
    # The deliberate waivers in trace.py and journal.py are visible to
    # CI rather than silently absorbed.
    waived_rules = {f["rule"] for f in payload["waived"]}
    assert "DET003" in waived_rules
    assert "LCK001" in waived_rules
    assert payload["files"] > 50
